//! `tune` — the model-based schedule autotuner, as a standalone tool.
//!
//! For each requested shape and device preset the tool walks the
//! schedule space with the closed-form cost predictor (`core::tune`),
//! prints the winning schedule with its predicted per-command cost
//! breakdown, then executes the winner exactly once (spans enabled) to
//! (a) assert the prediction is `.to_bits()`-identical to execution and
//! (b) print the `core::analyze` bottleneck attribution for the tuned
//! schedule. The search itself never runs a pipeline — execution happens
//! only for the self-check and the attribution.

use std::time::Instant;

use sharpness::cli::DevicePreset;
use sharpness::core::tune::{self, SearchMode};
use sharpness::prelude::*;

const USAGE: &str = "\
usage: tune [<w>x<h> ...] [options]
Model-based schedule autotuner: searches the optimization space with the
closed-form cost predictor (zero pipeline executions), prints the winner
and its predicted per-command breakdown, then executes the winner once to
self-check bit-identical prediction and attribute the bottlenecks.
Default shapes: 256x256 1024x1024 2048x2048.
options:
  --device <name>   w8000 | midrange | apu | embedded | hbm | all
                    (default w8000; `all` sweeps every preset)
  --exhaustive      walk the full 768-candidate cross product instead of
                    the ~71-candidate guided walk
  --top <n>         predicted-breakdown terms to print (default 6)
  --no-execute      skip the execution self-check and the attribution
                    (model output only)
";

#[derive(Debug, PartialEq)]
struct Args {
    shapes: Vec<(usize, usize)>,
    devices: Vec<DevicePreset>,
    mode: SearchMode,
    top: usize,
    execute: bool,
}

fn parse_shape(s: &str) -> Result<(usize, usize), String> {
    let (w, h) = s
        .split_once('x')
        .ok_or_else(|| format!("bad shape {s:?} (use <w>x<h>, e.g. 1024x1024)"))?;
    let w: usize = w.parse().map_err(|_| format!("bad width in {s:?}"))?;
    let h: usize = h.parse().map_err(|_| format!("bad height in {s:?}"))?;
    if w == 0 || h == 0 {
        return Err(format!("degenerate shape {s:?}"));
    }
    Ok((w, h))
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        shapes: Vec::new(),
        devices: vec![DevicePreset::W8000],
        mode: SearchMode::Guided,
        top: 6,
        execute: true,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--device" => match it.next().map(String::as_str) {
                Some("all") => {
                    parsed.devices = vec![
                        DevicePreset::W8000,
                        DevicePreset::Midrange,
                        DevicePreset::Apu,
                        DevicePreset::Embedded,
                        DevicePreset::Hbm,
                    ]
                }
                other => parsed.devices = vec![DevicePreset::parse(other)?],
            },
            "--exhaustive" => parsed.mode = SearchMode::Exhaustive,
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                parsed.top = v.parse().map_err(|_| format!("bad --top {v:?}"))?;
            }
            "--no-execute" => parsed.execute = false,
            s if s.starts_with("--") => return Err(format!("unknown option {s:?}")),
            shape => parsed.shapes.push(parse_shape(shape)?),
        }
    }
    if parsed.shapes.is_empty() {
        parsed.shapes = vec![(256, 256), (1024, 1024), (2048, 2048)];
    }
    Ok(parsed)
}

/// The predicted commands aggregated by name, heaviest first.
fn breakdown(p: &tune::Prediction, top: usize) -> String {
    let mut by_name: Vec<(String, f64, usize)> = Vec::new();
    for c in &p.commands {
        match by_name.iter_mut().find(|(n, _, _)| *n == c.name) {
            Some((_, s, k)) => {
                *s += c.seconds;
                *k += 1;
            }
            None => by_name.push((c.name.clone(), c.seconds, 1)),
        }
    }
    by_name.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out = String::new();
    for (name, s, count) in by_name.iter().take(top) {
        out.push_str(&format!(
            "    {:<28} {:>9.3} us  ({:>4.1}%, x{count})\n",
            name,
            s * 1e6,
            s / p.total_s * 100.0,
        ));
    }
    let shown: f64 = by_name.iter().take(top).map(|(_, s, _)| s).sum();
    if by_name.len() > top {
        out.push_str(&format!(
            "    {:<28} {:>9.3} us  ({:>4.1}%)\n",
            format!("(+{} more)", by_name.len() - top),
            (p.total_s - shown) * 1e6,
            (p.total_s - shown) / p.total_s * 100.0,
        ));
    }
    out
}

fn run_one(preset: DevicePreset, w: usize, h: usize, args: &Args) -> Result<String, String> {
    let dev = preset.spec();
    let ctx = Context::new(dev.clone());
    let t0 = Instant::now();
    let report = tune::search(w, h, &dev, ctx.cpu(), args.mode)?;
    let wall = t0.elapsed().as_secs_f64();

    let mut out = format!("{}\n", report.summary_line());
    out.push_str(&format!(
        "  search wall {:.2} ms ({:.1} us/candidate, {:.0} candidates/s)\n",
        wall * 1e3,
        wall * 1e6 / report.candidates as f64,
        report.candidates as f64 / wall,
    ));
    let p = tune::predict_frame(
        w,
        h,
        &report.opts,
        &report.tuning,
        Schedule::Monolithic,
        &dev,
        ctx.cpu(),
    )?;
    out.push_str("  predicted breakdown:\n");
    out.push_str(&breakdown(&p, args.top));

    if !args.execute {
        return Ok(out);
    }
    // One real execution of the winner: the bit-identity self-check, and
    // the span/telemetry data behind the attribution report.
    let pipe = GpuPipeline::new(
        Context::new(dev.clone()).with_spans(),
        SharpnessParams::default(),
        report.opts,
    )
    .with_tuning(report.tuning);
    let mut plan = pipe.prepared(w, h)?;
    let img = generate::natural(w, h, 2015);
    let executed = plan.run(&img)?;
    if executed.total_s.to_bits() == p.total_s.to_bits() {
        out.push_str(&format!(
            "  self-check: executed {:.6} ms — bit-identical to the prediction\n",
            executed.total_s * 1e3
        ));
    } else {
        return Err(format!(
            "self-check FAILED: predicted {} but executed {} ({}x{} on {})",
            p.total_s, executed.total_s, w, h, dev.name
        ));
    }
    let explanation = sharpness::core::analyze::explain(
        &plan.telemetry(),
        &plan.spans(),
        &dev,
        sharpness::core::autotune::detected_cache_bytes(),
    );
    out.push_str(&explanation.render(args.top));
    Ok(out)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().is_some_and(|a| a == "--help" || a == "-h") {
        eprint!("{USAGE}");
        std::process::exit(0);
    }
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    for &preset in &args.devices {
        for &(w, h) in &args.shapes {
            match run_one(preset, w, h, &args) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_shapes_and_flags() {
        let a = parse_args(&strs(&["640x480", "--device", "apu", "--exhaustive"])).unwrap();
        assert_eq!(a.shapes, vec![(640, 480)]);
        assert_eq!(a.devices, vec![DevicePreset::Apu]);
        assert_eq!(a.mode, SearchMode::Exhaustive);
        assert!(a.execute);
    }

    #[test]
    fn defaults_cover_the_papers_sizes() {
        let a = parse_args(&[]).unwrap();
        assert_eq!(a.shapes, vec![(256, 256), (1024, 1024), (2048, 2048)]);
        assert_eq!(a.mode, SearchMode::Guided);
    }

    #[test]
    fn rejects_bad_shapes_and_devices() {
        assert!(parse_args(&strs(&["640"])).is_err());
        assert!(parse_args(&strs(&["0x64"])).is_err());
        assert!(parse_args(&strs(&["--device", "vega"])).is_err());
        assert!(parse_args(&strs(&["--bogus"])).is_err());
    }

    #[test]
    fn tune_runs_end_to_end_with_selfcheck() {
        let args = Args {
            shapes: vec![(256, 256)],
            devices: vec![DevicePreset::W8000],
            mode: SearchMode::Guided,
            top: 4,
            execute: true,
        };
        let out = run_one(DevicePreset::W8000, 256, 256, &args).unwrap();
        assert!(out.contains("tune: 256x256 on AMD FirePro W8000"), "{out}");
        assert!(out.contains("bit-identical to the prediction"), "{out}");
        assert!(out.contains("predicted breakdown:"), "{out}");
    }
}
