//! `sharpen` — command-line image sharpening on the simulated GPU.
//!
//! See `sharpness::cli::USAGE` (printed with no arguments) for options.

use sharpness::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprint!("{}", cli::USAGE);
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args[0] == "serve" {
        if args.len() > 1 && (args[1] == "--help" || args[1] == "-h") {
            eprint!("{}", cli::SERVE_USAGE);
            std::process::exit(0);
        }
        let parsed = match cli::parse_serve_args(&args[1..]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}\n");
                eprint!("{}", cli::SERVE_USAGE);
                std::process::exit(2);
            }
        };
        match cli::run_serve(&parsed) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let parsed = match cli::parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    match cli::run(&parsed) {
        Ok(summary) => print!("{summary}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
