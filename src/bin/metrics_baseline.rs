//! Emit or check the committed per-config metric baselines.
//!
//! `metrics_baseline --update [dir]` regenerates the baseline JSONL files
//! (one per cumulative optimization step, deterministic workload);
//! `metrics_baseline --check [dir]` regenerates the metrics in-memory and
//! fails on >2% drift against the committed files, missing/extra metrics,
//! or violation of the paper's Sobel load-count claims (vec4 ≤ 4.6
//! loads/source-pixel, naive ≥ 7.5). `scripts/check_metrics.sh` runs the
//! check in CI.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sharpness_core::telemetry::{baseline_configs, baseline_registry, BASELINE_WIDTH};
use simgpu::metrics::parse_jsonl_line;

/// Relative drift tolerated per metric field before the check fails.
const TOLERANCE: f64 = 0.02;
/// Below this magnitude, drift is compared absolutely instead.
const ABS_EPS: f64 = 1e-12;

const USAGE: &str = "usage: metrics_baseline --update|--check [dir]\n\
                     default dir: baselines/metrics";

fn parse_file(text: &str) -> Result<BTreeMap<String, Vec<(String, f64)>>, String> {
    let mut map = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let (name, fields) =
            parse_jsonl_line(line).ok_or_else(|| format!("unparseable metric line: {line}"))?;
        map.insert(name, fields);
    }
    Ok(map)
}

fn within_tolerance(old: f64, new: f64) -> bool {
    let diff = (new - old).abs();
    diff <= ABS_EPS || diff <= TOLERANCE * old.abs().max(new.abs())
}

/// Compares a regenerated metric set against the committed baseline,
/// returning every drifted/missing/extra entry.
fn diff(
    old: &BTreeMap<String, Vec<(String, f64)>>,
    new: &BTreeMap<String, Vec<(String, f64)>>,
) -> Vec<String> {
    let mut problems = Vec::new();
    for (name, old_fields) in old {
        let Some(new_fields) = new.get(name) else {
            problems.push(format!("metric {name} missing from regenerated set"));
            continue;
        };
        for (field, old_v) in old_fields {
            match new_fields.iter().find(|(f, _)| f == field) {
                None => problems.push(format!("{name}.{field} missing from regenerated set")),
                Some((_, new_v)) if !within_tolerance(*old_v, *new_v) => {
                    let pct = if old_v.abs() > ABS_EPS {
                        (new_v - old_v) / old_v.abs() * 100.0
                    } else {
                        f64::INFINITY
                    };
                    problems.push(format!(
                        "{name}.{field}: baseline {old_v} vs current {new_v} ({pct:+.2}% > ±{:.0}%)",
                        TOLERANCE * 100.0
                    ));
                }
                Some(_) => {}
            }
        }
    }
    for name in new.keys() {
        if !old.contains_key(name) {
            problems.push(format!(
                "new metric {name} not in baseline (run --update to accept)"
            ));
        }
    }
    problems
}

/// The paper's §V.D Sobel load-count gates, checked on the regenerated
/// metrics regardless of what the committed files say.
fn paper_claim_problems(
    vectorized: bool,
    reg: &BTreeMap<String, Vec<(String, f64)>>,
) -> Vec<String> {
    let gauge = |name: &str| {
        reg.get(name)
            .and_then(|f| f.iter().find(|(k, _)| k == "value"))
            .map(|(_, v)| *v)
    };
    let mut problems = Vec::new();
    if vectorized {
        match gauge("kernel.sobel_vec4.loads_per_source_pixel") {
            Some(v) if v <= 4.6 => {}
            Some(v) => problems.push(format!(
                "vec4 sobel loads/source-pixel {v} exceeds the paper's ~4.5 claim (gate: ≤ 4.6)"
            )),
            None => problems.push("vec4 sobel load metric missing".to_string()),
        }
    } else {
        match gauge("kernel.sobel.loads_per_source_pixel") {
            Some(v) if v >= 7.5 => {}
            Some(v) => problems.push(format!(
                "naive sobel loads/source-pixel {v} below the paper's ~8 claim (gate: ≥ 7.5)"
            )),
            None => problems.push("naive sobel load metric missing".to_string()),
        }
    }
    problems
}

fn run(update: bool, dir: &Path) -> Result<(), String> {
    let mut failures = Vec::new();
    for (slug, cfg) in baseline_configs() {
        let reg = baseline_registry(&cfg)?;
        let jsonl = reg.to_jsonl();
        let path = dir.join(format!("{slug}.jsonl"));
        let current = parse_file(&jsonl)?;
        for p in paper_claim_problems(cfg.vectorization, &current) {
            failures.push(format!("{slug}: {p}"));
        }
        if update {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            std::fs::write(&path, &jsonl).map_err(|e| e.to_string())?;
            println!("wrote {} ({} metrics)", path.display(), current.len());
            continue;
        }
        let committed = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "cannot read baseline {}: {e} (run --update)",
                path.display()
            )
        })?;
        let problems = diff(&parse_file(&committed)?, &current);
        if problems.is_empty() {
            println!(
                "{slug}: OK ({} metrics within ±{:.0}%)",
                current.len(),
                TOLERANCE * 100.0
            );
        } else {
            for p in problems {
                failures.push(format!("{slug}: {p}"));
            }
        }
    }
    if failures.is_empty() {
        if !update {
            println!(
                "metric baselines clean ({}², deterministic workload)",
                BASELINE_WIDTH
            );
        }
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (update, rest) = match args.first().map(String::as_str) {
        Some("--update") => (true, &args[1..]),
        Some("--check") => (false, &args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let dir = match rest {
        [] => PathBuf::from("baselines/metrics"),
        [d] => PathBuf::from(d),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(update, &dir) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("metric baseline check FAILED:\n{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_windows() {
        assert!(within_tolerance(100.0, 101.9));
        assert!(!within_tolerance(100.0, 102.5));
        assert!(within_tolerance(0.0, 0.0));
        assert!(!within_tolerance(0.0, 1.0));
        assert!(within_tolerance(1e-15, 0.0)); // sub-epsilon noise
    }

    #[test]
    fn diff_reports_drift_and_shape_changes() {
        let old = parse_file(
            "{\"name\":\"a\",\"type\":\"gauge\",\"value\":1}\n\
             {\"name\":\"b\",\"type\":\"gauge\",\"value\":10}\n",
        )
        .unwrap();
        let same = old.clone();
        assert!(diff(&old, &same).is_empty());
        let drifted = parse_file(
            "{\"name\":\"a\",\"type\":\"gauge\",\"value\":1.5}\n\
             {\"name\":\"c\",\"type\":\"gauge\",\"value\":3}\n",
        )
        .unwrap();
        let problems = diff(&old, &drifted);
        assert_eq!(problems.len(), 3, "{problems:?}"); // a drift, b missing, c extra
    }

    #[test]
    fn paper_gates_fire_on_bad_values() {
        let good = parse_file(
            "{\"name\":\"kernel.sobel_vec4.loads_per_source_pixel\",\"type\":\"gauge\",\"value\":4.5}\n",
        )
        .unwrap();
        assert!(paper_claim_problems(true, &good).is_empty());
        let bad = parse_file(
            "{\"name\":\"kernel.sobel_vec4.loads_per_source_pixel\",\"type\":\"gauge\",\"value\":8.0}\n",
        )
        .unwrap();
        assert_eq!(paper_claim_problems(true, &bad).len(), 1);
        let naive = parse_file(
            "{\"name\":\"kernel.sobel.loads_per_source_pixel\",\"type\":\"gauge\",\"value\":7.9}\n",
        )
        .unwrap();
        assert!(paper_claim_problems(false, &naive).is_empty());
        assert_eq!(paper_claim_problems(false, &good).len(), 1);
    }
}
