//! trace_check — validates an emitted Chrome-trace JSON document.
//!
//! ```text
//! trace_check <trace.json>
//! ```
//!
//! Two checks, both required by CI:
//!
//! 1. the document is well-formed JSON with a `traceEvents` array (a real
//!    recursive-descent parse, not a brace count);
//! 2. on the span process (`pid` 2, the wall-clock span tree emitted by
//!    `trace::to_chrome_json_with_spans`), every span's interval nests
//!    within its parent's — for both the wall-clock `ts`/`dur` fields and
//!    the simulated `args.sim_start_us`/`args.sim_dur_us` interval.
//!
//! Exits 0 with a one-line summary, 1 with a diagnostic otherwise. The
//! parser is dependency-free and only as general as Chrome-trace JSON
//! needs (no scientific-notation corner cases are emitted by our writer,
//! but the parser accepts them anyway).

use std::collections::HashMap;
use std::process::ExitCode;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(HashMap<String, Value>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
    fn num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through byte-wise.
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
fn parse_json(s: &str) -> Result<Value, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// One span event's intervals: wall-clock and simulated, in µs.
struct SpanEvent {
    name: String,
    depth: i64,
    wall: (f64, f64),
    sim: (f64, f64),
}

/// Checks that every span event nests within its parent. Events arrive in
/// ring (tree pre-order) order with an explicit `depth`, so an interval
/// stack suffices. `eps` covers the 3-decimal µs rounding of the writer.
fn check_nesting(events: &[SpanEvent]) -> Result<usize, String> {
    const EPS: f64 = 0.01; // µs
    let mut stack: Vec<&SpanEvent> = Vec::new();
    let mut max_depth = 0usize;
    for e in events {
        while stack.last().is_some_and(|top| top.depth >= e.depth) {
            stack.pop();
        }
        if let Some(parent) = stack.last() {
            if parent.depth != e.depth - 1 {
                return Err(format!(
                    "span `{}` (depth {}) follows `{}` (depth {}) — a depth level was skipped",
                    e.name, e.depth, parent.name, parent.depth
                ));
            }
            for (label, (cs, ce), (ps, pe)) in
                [("wall", e.wall, parent.wall), ("sim", e.sim, parent.sim)]
            {
                if cs < ps - EPS || ce > pe + EPS {
                    return Err(format!(
                        "span `{}` {label} interval [{cs:.3}, {ce:.3}]µs escapes parent \
                         `{}` [{ps:.3}, {pe:.3}]µs",
                        e.name, parent.name
                    ));
                }
            }
        } else if e.depth != 0 {
            return Err(format!(
                "span `{}` has depth {} but no enclosing parent",
                e.name, e.depth
            ));
        }
        max_depth = max_depth.max(e.depth as usize);
        stack.push(e);
    }
    Ok(max_depth)
}

/// Extracts the span-process events (pid 2, ph "X") in document order.
fn span_events(events: &[Value]) -> Result<Vec<SpanEvent>, String> {
    let mut out = Vec::new();
    for ev in events {
        let pid = ev.get("pid").and_then(Value::num).unwrap_or(0.0);
        let ph = ev.get("ph").and_then(Value::str).unwrap_or("");
        if pid != 2.0 || ph != "X" {
            continue;
        }
        let field = |k: &str| {
            ev.get(k)
                .and_then(Value::num)
                .ok_or_else(|| format!("span event missing numeric `{k}`"))
        };
        let args = ev.get("args").ok_or("span event missing `args`")?;
        let arg = |k: &str| {
            args.get(k)
                .and_then(Value::num)
                .ok_or_else(|| format!("span event args missing `{k}`"))
        };
        let ts = field("ts")?;
        let dur = field("dur")?;
        let sim_ts = arg("sim_start_us")?;
        let sim_dur = arg("sim_dur_us")?;
        out.push(SpanEvent {
            name: ev
                .get("name")
                .and_then(Value::str)
                .unwrap_or("?")
                .to_string(),
            depth: arg("depth")? as i64,
            wall: (ts, ts + dur),
            sim: (sim_ts, sim_ts + sim_dur),
        });
    }
    Ok(out)
}

fn run(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse_json(&text)?;
    let events = match doc.get("traceEvents") {
        Some(Value::Arr(events)) => events,
        _ => return Err("document has no `traceEvents` array".to_string()),
    };
    for (i, ev) in events.iter().enumerate() {
        if !matches!(ev, Value::Obj(_)) {
            return Err(format!("traceEvents[{i}] is not an object"));
        }
    }
    let spans = span_events(events)?;
    let max_depth = check_nesting(&spans)?;
    Ok(format!(
        "trace OK: {} events, {} span events, max span depth {}",
        events.len(),
        spans.len(),
        max_depth
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.json>");
        return ExitCode::from(2);
    };
    match run(&path) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_the_emitted_grammar() {
        let v = parse_json(
            "{\"traceEvents\":[{\"name\":\"a \\\"q\\\"\",\"ph\":\"X\",\
             \"ts\":1.5,\"dur\":2,\"pid\":1,\"tid\":3}]}",
        )
        .unwrap();
        let events = match v.get("traceEvents") {
            Some(Value::Arr(e)) => e,
            _ => panic!("no array"),
        };
        assert_eq!(events[0].get("name").and_then(Value::str), Some("a \"q\""));
        assert_eq!(events[0].get("ts").and_then(Value::num), Some(1.5));
        // Malformed documents are rejected.
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("[1,2,]").is_err());
    }

    fn ev(name: &str, depth: i64, wall: (f64, f64), sim: (f64, f64)) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            depth,
            wall,
            sim,
        }
    }

    #[test]
    fn nesting_accepts_a_proper_tree() {
        let events = vec![
            ev("frame", 0, (0.0, 100.0), (0.0, 50.0)),
            ev("upload", 1, (1.0, 20.0), (0.0, 10.0)),
            ev("sobel", 1, (20.0, 90.0), (10.0, 50.0)),
            ev("sobel k", 2, (21.0, 89.0), (10.0, 50.0)),
        ];
        assert_eq!(check_nesting(&events).unwrap(), 2);
    }

    #[test]
    fn nesting_rejects_escaping_children() {
        let events = vec![
            ev("frame", 0, (0.0, 100.0), (0.0, 50.0)),
            ev("late", 1, (90.0, 120.0), (10.0, 20.0)),
        ];
        let err = check_nesting(&events).unwrap_err();
        assert!(err.contains("escapes parent"), "{err}");
        // Sim-interval escape is caught independently of wall.
        let events = vec![
            ev("frame", 0, (0.0, 100.0), (0.0, 50.0)),
            ev("sim-late", 1, (10.0, 20.0), (40.0, 60.0)),
        ];
        assert!(check_nesting(&events).unwrap_err().contains("sim"),);
        // Orphan depth and skipped levels are structural errors.
        let events = vec![ev("orphan", 1, (0.0, 1.0), (0.0, 1.0))];
        assert!(check_nesting(&events).unwrap_err().contains("no enclosing"));
        let events = vec![
            ev("frame", 0, (0.0, 100.0), (0.0, 50.0)),
            ev("deep", 2, (1.0, 2.0), (1.0, 2.0)),
        ];
        assert!(check_nesting(&events).unwrap_err().contains("skipped"));
    }

    #[test]
    fn end_to_end_on_a_real_span_export() {
        use simgpu::span::{SpanKind, SpanRing};
        let mut ring = SpanRing::new(16);
        let f = ring.open(SpanKind::Frame, "frame".into(), 0.0);
        let p = ring.open(SpanKind::Phase, "sobel".into(), 0.0);
        ring.leaf(SpanKind::Kernel, "sobel k".into(), 0.0, 30e-6);
        ring.close(p, 30e-6);
        ring.close(f, 45e-6);
        let json = simgpu::trace::to_chrome_json_with_spans(&[], &ring.snapshot());
        let doc = parse_json(&json).unwrap();
        let events = match doc.get("traceEvents") {
            Some(Value::Arr(e)) => e.clone(),
            _ => panic!("no traceEvents"),
        };
        let spans = span_events(&events).unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(check_nesting(&spans).unwrap(), 2);
    }
}
