//! Token-aware static invariant lint for hot-loop and accounting
//! discipline — the Rust port of the old `scripts/lint_invariants.sh`
//! greps (the script now just wraps this binary). Unlike the greps, every
//! rule here runs on a lexed view of the source with comments and
//! string/char literals blanked out, so prose that *mentions* a banned
//! construct no longer trips the lint and banned calls smuggled into
//! macro strings no longer hide from it.
//!
//! Ten rules, all load-bearing:
//!
//! 1. Kernel and CPU-stage hot loops use the shared `math` helpers
//!    (`math::fmin`/`fmax`/`clampf`), never `f32::min`/`f32::max`/
//!    `.clamp(` — the std forms branch on NaN semantics and have drifted
//!    CPU/GPU results before.
//! 2. Any kernel file reading or writing device memory through the raw
//!    (uncharged) span accessors must bulk-charge the traffic via
//!    `charge_global_n`, or the timing model silently undercounts bytes.
//! 3. Kernel shape preconditions are typed errors, not panics: no
//!    `assert!`/`assert_eq!`/`assert_ne!` in non-test kernel code
//!    (`debug_assert!` on internal invariants stays allowed).
//! 4. The megapass (banded) executor never charges cost itself — banded
//!    bit-identity rests on every cost flowing through the kernels' own
//!    per-group accounting merged by `commit_sliced`.
//! 5. Telemetry is observation-only: the metric/trace recording paths
//!    never mutate the state they observe.
//! 6. SIMD stays contained and cost-blind: `std::arch` intrinsics and
//!    feature detection only under `gpu/kernels/simd/`, and the span
//!    backends never touch the cost model (`charge_*`, `GroupCtx`).
//! 7. Every `CommandQueue` kernel dispatch declares an `AccessSummary`:
//!    raw `q.run(`/`q.run_sliced(` calls are confined to the two
//!    sanctioned dispatch modules (`kernels/mod.rs`, `kernels/
//!    reduction.rs`), and each such call site there is preceded by a
//!    `declare_access(` within a few lines. This is the static half of
//!    the `Context::with_access_required` guarantee: no dispatch path
//!    can grow that bypasses the access-summary verifier.
//! 8. Span recording is observation-only, like telemetry: the span
//!    module and the attribution layer never mutate the state they
//!    observe, and the queue's span hooks (any line touching the span
//!    ring) never advance the simulated clock or charge cost — spans
//!    must be removable without changing a single bit of output.
//! 9. The service layer (`core::service`) observes but never charges:
//!    scheduler, plan cache and traffic generator read frame component
//!    times and pool/cache counters, but all simulated cost flows through
//!    the kernels a plan runs — no `charge_*` calls, no simulated-clock
//!    writes, no device-record mutation. Served pixels and simulated
//!    seconds must be bit-identical to direct plan execution.
//! 10. The schedule tuner (`core::tune`) predicts cost without ever
//!     executing: no pipeline construction, plan preparation, queue
//!     dispatch, or cost charging anywhere under `crates/core/src/tune/`.
//!     The tuner's whole claim — thousands of candidates per second,
//!     `.to_bits()`-identical to execution — rests on the predictor
//!     replaying the timing model from closed-form counters; a single
//!     smuggled execution would turn the model search back into
//!     measure-by-running.

use std::path::{Path, PathBuf};

/// Blanks comments and string/char-literal contents with spaces while
/// preserving every newline, so rule matching sees only real tokens and
/// reported line numbers stay true to the original source.
fn strip_tokens(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    // Emits `c` if it is a newline (to keep line numbers), else a space.
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && next == Some('*') {
            let mut depth = 1;
            out.push_str("  ");
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
        } else if c == 'r' && matches!(next, Some('"') | Some('#'))
            || (c == 'b' && next == Some('r') && matches!(b.get(i + 2), Some('"') | Some('#')))
        {
            // Raw (byte) string: r"..", r#".."#, br#".."# — count the
            // hashes, then blank until `"` followed by that many hashes.
            let start = i;
            i += if c == 'b' { 2 } else { 1 };
            let mut hashes = 0;
            while b.get(i) == Some(&'#') {
                hashes += 1;
                i += 1;
            }
            if b.get(i) != Some(&'"') {
                // Not a raw string after all (e.g. `r#macro` identifiers);
                // emit what we consumed verbatim.
                for &c in &b[start..i] {
                    out.push(c);
                }
                continue;
            }
            for _ in start..=i {
                out.push(' ');
            }
            i += 1;
            while i < b.len() {
                if b[i] == '"'
                    && b[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == '#')
                        .count()
                        == hashes
                {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes;
                    break;
                }
                blank(&mut out, b[i]);
                i += 1;
            }
        } else if c == '"' || (c == 'b' && next == Some('"')) {
            out.push(' ');
            i += 1;
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            while i < b.len() {
                if b[i] == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Char literal vs lifetime: a literal is 'x' or an escape;
            // anything else (e.g. `'a`, `'static`) is a lifetime.
            if next == Some('\\') {
                out.push(' ');
                i += 1;
                out.push_str("  ");
                i += 2;
                while i < b.len() && b[i] != '\'' {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                out.push(' ');
                i += 1;
            } else if b.get(i + 2) == Some(&'\'') {
                out.push_str("   ");
                i += 3;
            } else {
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// The stripped lines of a file, 1-indexed, optionally cut at the first
/// `#[cfg(test)]` (fixtures below it are exempt from most rules).
fn lines(stripped: &str, until_test: bool) -> Vec<(usize, &str)> {
    let mut v = Vec::new();
    for (n, line) in stripped.lines().enumerate() {
        if until_test && line.contains("#[cfg(test)]") {
            break;
        }
        v.push((n + 1, line));
    }
    v
}

/// Is there a `needle` occurrence in `line` whose preceding char is not
/// part of an identifier? (Filters `debug_assert!` out of `assert!`.)
fn has_bare(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(p) = line[from..].find(needle) {
        let at = from + p;
        let prev = line[..at].chars().next_back();
        if !prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Does `line` call any `charge_*` function (an ident starting with
/// `charge_` immediately followed by `(`)?
fn has_charge_call(line: &str) -> bool {
    let mut from = 0;
    while let Some(p) = line[from..].find("charge_") {
        let at = from + p;
        let rest = &line[at + "charge_".len()..];
        let ident_len = rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        if rest[ident_len..].starts_with('(') {
            return true;
        }
        from = at + "charge_".len();
    }
    false
}

/// Does `line` assign through `.counters` (i.e. `.counters = …`, not a
/// comparison)?
fn has_counters_assign(line: &str) -> bool {
    let mut from = 0;
    while let Some(p) = line[from..].find(".counters") {
        let rest = line[from + p + ".counters".len()..].trim_start();
        if rest.starts_with('=') && !rest.starts_with("==") {
            return true;
        }
        from += p + ".counters".len();
    }
    false
}

/// Every `.rs` file under `dir`, recursively, sorted for deterministic
/// reports.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut v = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return v;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            v.extend(rust_files(&p));
        } else if p.extension().is_some_and(|x| x == "rs") {
            v.push(p);
        }
    }
    v.sort();
    v
}

struct Lint {
    root: PathBuf,
    failures: Vec<String>,
}

impl Lint {
    fn read(&self, rel: &Path) -> String {
        // Missing files lint clean: fixed-path rules (megapass, telemetry)
        // simply have nothing to check in a partial tree.
        let src = std::fs::read_to_string(self.root.join(rel)).unwrap_or_default();
        strip_tokens(&src)
    }

    fn fail(&mut self, header: &str, rel: &Path, hits: &[(usize, &str)]) {
        if hits.is_empty() {
            return;
        }
        let mut msg = format!("lint: {header}\n");
        for (n, line) in hits {
            msg.push_str(&format!("  {}:{n}: {}\n", rel.display(), line.trim()));
        }
        self.failures.push(msg);
    }

    /// Rule 1: std float min/max/clamp in hot-loop code.
    fn rule_std_float(&mut self, hot: &[PathBuf]) {
        for rel in hot {
            let s = self.read(rel);
            let hits: Vec<_> = lines(&s, false)
                .into_iter()
                .filter(|(_, l)| {
                    l.contains("f32::min") || l.contains("f32::max") || l.contains(".clamp(")
                })
                .collect();
            self.fail(
                "std float min/max/clamp in hot-loop code (use math::fmin/fmax/clampf)",
                rel,
                &hits,
            );
        }
    }

    /// Rule 2: raw span accessors without a bulk byte charge.
    fn rule_uncharged_spans(&mut self, kernel_files: &[PathBuf]) {
        for rel in kernel_files {
            let s = self.read(rel);
            let raw = ["read_into", "slice_raw", "set_span_raw"];
            if raw.iter().any(|m| s.contains(m)) && !s.contains("charge_global_n") {
                self.failures.push(format!(
                    "lint: {} uses raw span accessors but never calls charge_global_n\n",
                    rel.display()
                ));
            }
        }
    }

    /// Rule 3: kernel preconditions must not panic.
    fn rule_no_kernel_asserts(&mut self, kernel_files: &[PathBuf]) {
        for rel in kernel_files {
            let s = self.read(rel);
            let hits: Vec<_> = lines(&s, true)
                .into_iter()
                .filter(|(_, l)| {
                    has_bare(l, "assert!") || has_bare(l, "assert_eq!") || has_bare(l, "assert_ne!")
                })
                .collect();
            self.fail(
                "kernel precondition panics (return Error::InvalidKernelArgs instead)",
                rel,
                &hits,
            );
        }
    }

    /// Rule 4: the banded executor never charges cost directly.
    fn rule_megapass_charge_free(&mut self, rel: &Path) {
        let s = self.read(rel);
        let hits: Vec<_> = lines(&s, true)
            .into_iter()
            .filter(|(_, l)| has_charge_call(l))
            .collect();
        self.fail(
            "megapass executor charges cost directly (must flow through kernel accounting/commit_sliced)",
            rel,
            &hits,
        );
    }

    /// Rule 5: telemetry recording paths never mutate observed state.
    fn rule_observation_only(&mut self, telemetry_files: &[PathBuf]) {
        for rel in telemetry_files {
            let s = self.read(rel);
            let hits: Vec<_> = lines(&s, true)
                .into_iter()
                .filter(|(_, l)| {
                    l.contains(".reset(")
                        || l.contains("records_mut")
                        || l.contains("charge_global")
                        || l.contains("set_span")
                        || l.contains("&mut CommandRecord")
                        || l.contains("&mut CostCounters")
                        || has_counters_assign(l)
                })
                .collect();
            self.fail(
                "telemetry recording path mutates observed state (observation-only invariant)",
                rel,
                &hits,
            );
        }
    }

    /// Rule 6: SIMD contained to its module, and cost-blind inside it.
    fn rule_simd_contained(&mut self, all_files: &[PathBuf], simd_dir: &Path) {
        for rel in all_files {
            let in_simd = rel.starts_with(simd_dir);
            let s = self.read(rel);
            if !in_simd {
                let hits: Vec<_> = lines(&s, false)
                    .into_iter()
                    .filter(|(_, l)| {
                        l.contains("std::arch")
                            || l.contains("core::arch")
                            || l.contains("is_x86_feature_detected")
                            || l.contains("_mm_")
                            || l.contains("_mm256_")
                    })
                    .collect();
                self.fail(
                    "std::arch intrinsics/feature detection outside gpu/kernels/simd (keep SIMD behind the dispatch module)",
                    rel,
                    &hits,
                );
            } else {
                let hits: Vec<_> = lines(&s, true)
                    .into_iter()
                    .filter(|(_, l)| has_charge_call(l) || l.contains("GroupCtx"))
                    .collect();
                self.fail(
                    "simd span module touches the cost model (charges are owned by kernel closures)",
                    rel,
                    &hits,
                );
            }
        }
    }

    /// Rule 8: span-recording code never mutates observed state. The
    /// span/attribution files are held to the same predicates as rule 5
    /// (plus simulated-clock writes), and inside the queue any line that
    /// touches the span ring must be a pure read of clock and names.
    fn rule_spans_observation_only(&mut self, span_files: &[PathBuf], queue: &Path) {
        let mutates = |l: &str| {
            has_charge_call(l)
                || l.contains("records_mut")
                || l.contains("set_span")
                || l.contains("&mut CommandRecord")
                || l.contains("&mut CostCounters")
                || l.contains("clock_s +=")
                || l.contains("clock_s -=")
                || has_counters_assign(l)
        };
        for rel in span_files {
            let s = self.read(rel);
            let hits: Vec<_> = lines(&s, true)
                .into_iter()
                .filter(|(_, l)| mutates(l))
                .collect();
            self.fail(
                "span-recording/attribution code mutates observed state (observation-only invariant)",
                rel,
                &hits,
            );
        }
        let s = self.read(queue);
        let hits: Vec<_> = lines(&s, true)
            .into_iter()
            .filter(|(_, l)| (l.contains("ring.") || l.contains("self.spans")) && mutates(l))
            .collect();
        self.fail(
            "queue span hook mutates simulated state (span ring lines must be pure reads)",
            queue,
            &hits,
        );
    }

    /// Rule 9: the service layer never charges cost or mutates simulated
    /// state — same predicates as the span rule, applied to every file
    /// under `core/src/service/`.
    fn rule_service_observation_only(&mut self, service_files: &[PathBuf]) {
        for rel in service_files {
            let s = self.read(rel);
            let hits: Vec<_> = lines(&s, true)
                .into_iter()
                .filter(|(_, l)| {
                    has_charge_call(l)
                        || l.contains("records_mut")
                        || l.contains("set_span")
                        || l.contains("&mut CommandRecord")
                        || l.contains("&mut CostCounters")
                        || l.contains("clock_s +=")
                        || l.contains("clock_s -=")
                        || has_counters_assign(l)
                })
                .collect();
            self.fail(
                "service layer charges cost or mutates simulated state (all cost must flow \
                 through the kernels a PipelinePlan runs)",
                rel,
                &hits,
            );
        }
    }

    /// Rule 10: the tuner is execution-free — `core::tune` never builds a
    /// pipeline, prepares a plan, dispatches a queue command, or charges
    /// cost. Prediction must stay a pure function of the counters.
    fn rule_tune_execution_free(&mut self, tune_files: &[PathBuf]) {
        for rel in tune_files {
            let s = self.read(rel);
            let hits: Vec<_> = lines(&s, true)
                .into_iter()
                .filter(|(_, l)| {
                    l.contains("GpuPipeline")
                        || l.contains("CpuPipeline")
                        || l.contains("CommandQueue")
                        || l.contains("Context::new")
                        || l.contains(".prepared(")
                        || l.contains("run_into")
                        || l.contains("run_with_telemetry")
                        || l.contains("q.run(")
                        || l.contains(".run_sliced(")
                        // Counter *construction* via CostCounters::charge_*
                        // is the predictor's whole job; what is banned is
                        // charging a live group context like a kernel does.
                        || l.contains("GroupCtx")
                })
                .collect();
            self.fail(
                "schedule tuner executes a pipeline (core::tune must predict from closed-form \
                 counters only — execution belongs in the caller's self-check)",
                rel,
                &hits,
            );
        }
    }

    /// Rule 7: every CommandQueue dispatch site declares an AccessSummary.
    fn rule_declared_dispatches(&mut self, gpu_files: &[PathBuf], sanctioned: &[PathBuf]) {
        let is_dispatch = |l: &str| {
            l.contains("q.run(") || l.contains("q.run_sliced(") || l.contains(".run_sliced(")
        };
        for rel in gpu_files {
            let s = self.read(rel);
            let ls = lines(&s, true);
            if !sanctioned.contains(rel) {
                let hits: Vec<_> = ls.into_iter().filter(|(_, l)| is_dispatch(l)).collect();
                self.fail(
                    "raw CommandQueue dispatch outside the sanctioned declared-access modules \
                     (route kernels through gpu/kernels/mod.rs dispatch or declare_access first)",
                    rel,
                    &hits,
                );
            } else {
                // Inside the sanctioned modules every dispatch must have a
                // declare_access within the preceding few lines.
                const WINDOW: usize = 15;
                let mut hits = Vec::new();
                for (idx, (n, l)) in ls.iter().enumerate() {
                    if !is_dispatch(l) {
                        continue;
                    }
                    let declared = ls[idx.saturating_sub(WINDOW)..=idx]
                        .iter()
                        .any(|(_, prev)| prev.contains("declare_access("));
                    if !declared {
                        hits.push((*n, *l));
                    }
                }
                self.fail(
                    "CommandQueue dispatch without a declare_access within the preceding lines \
                     (every dispatch declares its verified AccessSummary)",
                    rel,
                    &hits,
                );
            }
        }
    }
}

fn run(root: &Path) -> i32 {
    let mut lint = Lint {
        root: root.to_path_buf(),
        failures: Vec::new(),
    };
    let kernels_dir = root.join("crates/core/src/gpu/kernels");
    let rel = |p: &Path| p.strip_prefix(root).expect("under root").to_path_buf();

    // Direct kernel files (the simd/ backends are held to rule 6 instead).
    let kernel_files: Vec<PathBuf> = rust_files(&kernels_dir)
        .into_iter()
        .filter(|p| p.parent() == Some(kernels_dir.as_path()))
        .map(|p| rel(&p))
        .collect();
    // Rule 1 sweeps the kernels tree recursively (simd backends included).
    let mut hot: Vec<PathBuf> = rust_files(&kernels_dir).iter().map(|p| rel(p)).collect();
    hot.push(PathBuf::from("crates/core/src/cpu/stages.rs"));

    lint.rule_std_float(&hot);
    lint.rule_uncharged_spans(&kernel_files);
    lint.rule_no_kernel_asserts(&kernel_files);
    lint.rule_megapass_charge_free(Path::new("crates/core/src/gpu/megapass.rs"));
    lint.rule_observation_only(&[
        PathBuf::from("crates/core/src/telemetry.rs"),
        PathBuf::from("crates/simgpu/src/metrics.rs"),
        PathBuf::from("crates/simgpu/src/trace.rs"),
    ]);

    let all: Vec<PathBuf> = [root.join("crates"), root.join("src")]
        .iter()
        .flat_map(|d| rust_files(d))
        .map(|p| rel(&p))
        .collect();
    lint.rule_simd_contained(&all, Path::new("crates/core/src/gpu/kernels/simd"));

    let gpu_files: Vec<PathBuf> = rust_files(&root.join("crates/core/src/gpu"))
        .into_iter()
        .map(|p| rel(&p))
        .collect();
    lint.rule_declared_dispatches(
        &gpu_files,
        &[
            PathBuf::from("crates/core/src/gpu/kernels/mod.rs"),
            PathBuf::from("crates/core/src/gpu/kernels/reduction.rs"),
        ],
    );
    lint.rule_spans_observation_only(
        &[
            PathBuf::from("crates/simgpu/src/span.rs"),
            PathBuf::from("crates/core/src/analyze.rs"),
        ],
        Path::new("crates/simgpu/src/queue.rs"),
    );

    let service_files: Vec<PathBuf> = rust_files(&root.join("crates/core/src/service"))
        .into_iter()
        .map(|p| rel(&p))
        .collect();
    lint.rule_service_observation_only(&service_files);

    let tune_files: Vec<PathBuf> = rust_files(&root.join("crates/core/src/tune"))
        .into_iter()
        .map(|p| rel(&p))
        .collect();
    lint.rule_tune_execution_free(&tune_files);

    if lint.failures.is_empty() {
        println!("lint_invariants: OK (10 rules, token-aware)");
        0
    } else {
        for f in &lint.failures {
            print!("{f}");
        }
        println!("lint_invariants: FAILED");
        1
    }
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")));
    std::process::exit(run(&root));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip_tokens("a // f32::min\nb /* .clamp( */ c\n");
        assert!(!s.contains("f32::min"));
        assert!(!s.contains(".clamp("));
        assert!(s.contains('a') && s.contains('b') && s.contains('c'));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn strips_nested_block_comments() {
        let s = strip_tokens("x /* outer /* f32::max */ still */ y");
        assert!(!s.contains("f32::max"));
        assert!(s.contains('x') && s.contains('y'));
    }

    #[test]
    fn strips_string_contents_but_keeps_code() {
        let s = strip_tokens(r#"let m = "f32::min"; q.run(x)"#);
        assert!(!s.contains("f32::min"));
        assert!(s.contains("q.run(x)"));
    }

    #[test]
    fn strips_raw_strings_and_escapes() {
        let s = strip_tokens("let a = r#\"assert!( \"# ; let b = \"\\\"assert!\";");
        assert!(!s.contains("assert!"));
        let s = strip_tokens("let c = br\"charge_x(\";");
        assert!(!s.contains("charge_x("));
    }

    #[test]
    fn keeps_lifetimes_and_strips_char_literals() {
        let s = strip_tokens("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'z'; }");
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
        assert!(!s.contains('z'));
        // The '"' char literal must not open a string.
        assert!(s.contains("let d"));
    }

    #[test]
    fn bare_match_excludes_debug_assert() {
        assert!(has_bare("    assert!(x);", "assert!"));
        assert!(!has_bare("    debug_assert!(x);", "assert!"));
        assert!(has_bare("debug_assert!(a); assert!(b);", "assert!"));
    }

    #[test]
    fn charge_call_detection() {
        assert!(has_charge_call("g.charge_global_n(4);"));
        assert!(has_charge_call("charge_flops(n)"));
        assert!(!has_charge_call("let charge_total = 4;"));
        assert!(!has_charge_call("// none here"));
    }

    #[test]
    fn counters_assignment_vs_comparison() {
        assert!(has_counters_assign("rec.counters = Some(c);"));
        assert!(!has_counters_assign("if rec.counters == other {}"));
    }

    #[test]
    fn repo_is_clean() {
        assert_eq!(run(Path::new(env!("CARGO_MANIFEST_DIR"))), 0);
    }

    #[test]
    fn flags_violations_in_a_synthetic_tree() {
        let root = std::env::temp_dir().join(format!("lint-fixture-{}", std::process::id()));
        let kernels = root.join("crates/core/src/gpu/kernels");
        std::fs::create_dir_all(&kernels).unwrap();
        // Four violations: std clamp (rule 1), raw span without a charge
        // (rule 2), a bare assert (rule 3), and an undeclared queue
        // dispatch outside the sanctioned modules (rule 7). A comment
        // mentioning `f32::min` must NOT count.
        std::fs::write(
            kernels.join("bad.rs"),
            "// f32::min in prose is fine\n\
             fn k(x: f32) -> f32 {\n\
                 assert!(x > 0.0);\n\
                 g.slice_raw(0, n);\n\
                 q.run(&desc, &[], body);\n\
                 x.clamp(0.0, 1.0)\n\
             }\n",
        )
        .unwrap();
        let code = run(&root);
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(code, 1);
    }

    #[test]
    fn flags_service_code_that_charges_cost() {
        let root =
            std::env::temp_dir().join(format!("lint-service-fixture-{}", std::process::id()));
        let service = root.join("crates/core/src/service");
        std::fs::create_dir_all(&service).unwrap();
        // Rule 9: a scheduler that charges cost itself would double-count
        // against the kernels' own accounting.
        std::fs::write(
            service.join("scheduler.rs"),
            "fn run(&mut self) {\n\
                 g.charge_global_n(4, n);\n\
             }\n",
        )
        .unwrap();
        let code = run(&root);
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(code, 1);
    }

    #[test]
    fn flags_tune_code_that_executes() {
        let root = std::env::temp_dir().join(format!("lint-tune-fixture-{}", std::process::id()));
        let tune = root.join("crates/core/src/tune");
        std::fs::create_dir_all(&tune).unwrap();
        // Rule 10: a tuner stage that prepares and runs a real plan is
        // measure-by-running in disguise. A doc comment mentioning
        // CommandQueue must NOT count, and neither must test code.
        std::fs::write(
            tune.join("search.rs"),
            "//! Mirrors what the CommandQueue charges.\n\
             fn probe(ctx: &Context) -> f64 {\n\
                 let plan = pipe.prepared(w, h).unwrap();\n\
                 plan.run_into(&img, &mut out).unwrap().total()\n\
             }\n\
             #[cfg(test)]\n\
             mod tests { fn lockstep() { let p = GpuPipeline::new(c, d, o); } }\n",
        )
        .unwrap();
        let code = run(&root);
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(code, 1);
    }

    #[test]
    fn flags_span_code_that_mutates_state() {
        let root = std::env::temp_dir().join(format!("lint-span-fixture-{}", std::process::id()));
        std::fs::create_dir_all(root.join("crates/simgpu/src")).unwrap();
        // Rule 8: a span module that advances the clock or charges cost
        // breaks the observation-only invariant.
        std::fs::write(
            root.join("crates/simgpu/src/span.rs"),
            "fn record(&mut self) {\n\
                 self.clock_s += 1.0;\n\
             }\n",
        )
        .unwrap();
        std::fs::write(
            root.join("crates/simgpu/src/queue.rs"),
            "fn hook(&mut self) {\n\
                 if let Some(ring) = &mut self.spans { ring.leaf(); self.clock_s += dur; }\n\
             }\n",
        )
        .unwrap();
        let code = run(&root);
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(code, 1);
    }
}
