//! # sharpness — umbrella crate for the ICPP 2015 sharpness reproduction
//!
//! Re-exports the three layers of the system so examples and downstream
//! users need a single dependency:
//!
//! * [`simgpu`] — the simulated OpenCL-like GPU substrate (device model,
//!   buffers, command queues, kernels, PCI-E transfer model, timing);
//! * [`imagekit`] — image matrices, synthetic generators, Netpbm I/O and
//!   quality metrics;
//! * [`core`] (crate `sharpness-core`) — the sharpness pipeline itself:
//!   the CPU reference and the optimization-configurable GPU port.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! paper-to-module map.
//!
//! ## Quickstart
//!
//! ```
//! use sharpness::prelude::*;
//!
//! let image = imagekit::generate::natural(256, 256, 42);
//! let ctx = Context::new(DeviceSpec::firepro_w8000());
//! let pipeline = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all());
//! let run = pipeline.run(&image).unwrap();
//! assert_eq!(run.output.width(), 256);
//! println!("sharpened in {:.3} simulated ms", run.total_s * 1e3);
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use imagekit;
pub use sharpness_core as core;
pub use simgpu;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use imagekit::{generate, metrics, ImageF32, ImageU8, RgbImageU8};
    pub use sharpness_core::cpu::CpuPipeline;
    pub use sharpness_core::gpu::{
        enumerate_access, verify_static, BandedStats, GpuPipeline, OptConfig, PipelinePlan,
        Schedule, StaticDispatch, StaticReport, ThroughputEngine, ThroughputReport, Tuning,
    };
    pub use sharpness_core::params::SharpnessParams;
    pub use sharpness_core::report::RunReport;
    pub use simgpu::context::Context;
    pub use simgpu::device::{CpuSpec, DeviceSpec};
}
