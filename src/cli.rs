//! Implementation of the `sharpen` command-line tool.
//!
//! Parsing and orchestration live here (unit-testable); the binary in
//! `src/bin/sharpen.rs` is a thin wrapper.

use std::path::PathBuf;

use imagekit::{io, metrics, ImageF32};
use sharpness_core::color::{sharpen_rgb, ColorMode};
use sharpness_core::cpu::CpuPipeline;
use sharpness_core::gpu::{
    verify_static, GpuPipeline, OptConfig, Schedule, StaticReport, ThroughputEngine,
    ThroughputReport, Tuning,
};
use sharpness_core::params::SharpnessParams;
use sharpness_core::report::RunReport;
use sharpness_core::telemetry::FrameTelemetry;
use simgpu::context::Context;
use simgpu::device::DeviceSpec;
use simgpu::metrics::MetricsRegistry;
use simgpu::queue::{CommandKind, CommandRecord};
use simgpu::span::SpanRecord;
use simgpu::trace;

/// Which engine executes the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The serial CPU reference.
    Cpu,
    /// The simulated-GPU port with the given device preset.
    Gpu(DevicePreset),
}

/// Named device presets selectable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevicePreset {
    /// AMD FirePro W8000 (the paper's card).
    W8000,
    /// Mid-range GPU.
    Midrange,
    /// APU-like part with a shared-memory link.
    Apu,
    /// Embedded SoC-class GPU: few CUs, slow launches, narrow memory.
    Embedded,
    /// HBM server part on a PCI-E 4.0 link.
    Hbm,
}

impl DevicePreset {
    /// Resolves the preset to a device spec.
    pub fn spec(self) -> DeviceSpec {
        match self {
            DevicePreset::W8000 => DeviceSpec::firepro_w8000(),
            DevicePreset::Midrange => DeviceSpec::midrange_gpu(),
            DevicePreset::Apu => DeviceSpec::apu(),
            DevicePreset::Embedded => DeviceSpec::embedded_gpu(),
            DevicePreset::Hbm => DeviceSpec::hbm_gpu(),
        }
    }

    /// Parses a `--device` name.
    pub fn parse(name: Option<&str>) -> Result<Self, String> {
        match name {
            Some("w8000") => Ok(DevicePreset::W8000),
            Some("midrange") => Ok(DevicePreset::Midrange),
            Some("apu") => Ok(DevicePreset::Apu),
            Some("embedded") => Ok(DevicePreset::Embedded),
            Some("hbm") => Ok(DevicePreset::Hbm),
            other => Err(format!("unknown device {other:?}")),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Input image path (`.pgm` grayscale or `.ppm` colour).
    pub input: PathBuf,
    /// Output image path (same format as input).
    pub output: PathBuf,
    /// Sharpening parameters.
    pub params: SharpnessParams,
    /// Engine selection.
    pub engine: Engine,
    /// GPU optimization flags.
    pub opts: OptConfig,
    /// Colour strategy for PPM inputs.
    pub color: ColorMode,
    /// Optional Chrome-trace JSON output path.
    pub trace_json: Option<PathBuf>,
    /// Print an ASCII Gantt chart of the run.
    pub gantt: bool,
    /// Number of frames the throughput engine replays the input for
    /// (1 = single-shot, no engine).
    pub frames: usize,
    /// Worker threads for the throughput engine (0 = host parallelism).
    pub threads: usize,
    /// Run every kernel under the shadow-execution sanitizer and fail on
    /// any finding (GPU single-frame only).
    pub sanitize: bool,
    /// Statically prove the dispatch schedule sound (bounds, write
    /// disjointness, byte accounting, slice coverage) before running, and
    /// require every live dispatch to declare its verified access summary
    /// (GPU only).
    pub verify_static: bool,
    /// Optional JSONL metrics output path — a file, or a directory to
    /// write `metrics.jsonl` into (GPU only).
    pub metrics: Option<PathBuf>,
    /// Print the per-kernel efficiency table (GPU only).
    pub profile: bool,
    /// Print the automated bottleneck report (GPU only).
    pub explain: bool,
    /// Cache-blocked banded scheduling: `None` = monolithic,
    /// `Some(0)` = auto band height from the host cache size,
    /// `Some(n)` = bands of about `n` rows (GPU only).
    pub banded: Option<usize>,
    /// Force the scalar/autovectorized kernel spans even when the `simd`
    /// feature is compiled in (pixels and simulated time are identical
    /// either way; only wall-clock changes).
    pub no_simd: bool,
    /// Replace the paper's hand-tuned schedule with the model-searched
    /// one for the input's exact shape on the selected device (GPU only).
    pub autotune: bool,
}

/// Usage text.
pub const USAGE: &str = "\
usage: sharpen <input.pgm|input.ppm> <output> [options]
       sharpen serve [options]      (see `sharpen serve --help`)
options:
  --gain <f>        strength gain            (default 1.8)
  --gamma <f>       strength exponent        (default 0.5)
  --osc <f>         overshoot fraction 0..1  (default 0.35)
  --cpu             run the CPU reference instead of the GPU port
  --device <name>   w8000 | midrange | apu | embedded | hbm (default w8000)
  --opts <which>    none | all               (default all)
  --autotune        replace the paper's hand-tuned schedule with the
                    model-searched one for this exact shape and device:
                    a guided search over the full optimization space
                    (closed-form cost model, zero pipeline executions)
                    picks the OptConfig and Tuning, overriding --opts;
                    the summary reports the chosen schedule and its
                    predicted speedup over the paper default (GPU only)
  --color <mode>    luma | rgb               (default luma; PPM only)
  --trace <file>    write a Chrome-trace JSON of the run
  --gantt           print an ASCII timeline of the run
  --frames <n>      replay the input as an n-frame stream through the
                    throughput engine and report frames/sec (GPU only);
                    --trace/--gantt then show one lane per worker and a
                    latency histogram summary goes to stderr
  --threads <n>     worker threads for --frames (default 0 = all cores)
  --metrics <path>  write a JSONL metrics file: per-kernel efficiency
                    (loads/source-pixel, vector fraction, arithmetic
                    intensity, achieved vs peak bandwidth, occupancy);
                    with --frames also throughput gauges and wall +
                    simulated latency histograms. If <path> is an existing
                    directory the file is written as <path>/metrics.jsonl
                    (`repro --metrics` accepts the same spelling) (GPU only)
  --profile         print the per-kernel efficiency table (GPU only)
  --explain         print the automated bottleneck report: per-kernel
                    roofline verdicts (compute/bandwidth/LDS/launch-bound,
                    arithmetic intensity vs machine balance, achieved vs
                    peak fractions), the frame-level transfer verdict, the
                    host LLC-residency verdict, and per-phase span shares
                    (GPU only)
  --banded[=rows]   run the cache-blocked megapass schedule: kernels
                    execute band-by-band over row bands sized to the host
                    cache (default auto; =N requests ~N-row bands).
                    Pixels and simulated time are identical to the
                    monolithic schedule — only wall-clock changes
                    (GPU only)
  --no-simd         force the scalar/autovectorized kernel spans even when
                    the simd feature is compiled in. Pixels and simulated
                    time are bit-identical either way — only wall-clock
                    changes
  --sanitize        run every kernel under the shadow-execution sanitizer
                    (data races, out-of-bounds, barrier divergence, cost
                    accounting drift); exits non-zero on any finding.
                    GPU single-frame only; results and simulated time are
                    unchanged — the overhead is wall-clock only
  --verify-static   statically prove the dispatch schedule sound before
                    running — every kernel in-bounds, write-sets disjoint,
                    charged bytes within the closed-form overcharge bound,
                    banded slices an exact partition of each grid — then
                    require every live dispatch to declare its verified
                    access summary (undeclared dispatch is a hard error).
                    Pixels and simulated time are unchanged (GPU only)
";

/// Usage text for `sharpen serve`.
pub const SERVE_USAGE: &str = "\
usage: sharpen serve [options]
Replays a deterministic synthetic request stream (Zipf-distributed frame
shapes, bursty arrivals, per-request priority class) through the sharpen
service scheduler and prints served/shed counters, wall + simulated
latency quantiles, and plan-cache/buffer-pool statistics.
options:
  --requests <n>    requests in the stream           (default 256)
  --seed <n>        traffic seed; same seed, same stream (default 2015)
  --gap-us <f>      mean simulated inter-arrival gap in microseconds —
                    the offered-load knob            (default 2000)
  --device <name>   w8000 | midrange | apu | embedded | hbm (default w8000)
  --opts <which>    none | all                       (default all)
  --autotune        key the plan cache on per-shape model-tuned schedules:
                    each cache miss runs the guided cost-model search for
                    the requested shape and prepares the winning plan
                    (pixels are bit-identical; simulated seconds drop)
  --banded[=rows]   serve with the banded schedule   (default monolithic)
  --queue-cap <n>   bounded queue length per class   (default 64)
  --max-batch <n>   max requests coalesced per batch (default 16)
  --cache-cap <n>   plan-cache capacity, plans       (default 8)
  --shards <n>      plan-cache shards                (default 4)
  --selfcheck       re-run every served request directly (fresh plan, no
                    scheduler) and fail unless the pixels are bit-identical
  --sanitize        serve on a sanitized context; exits non-zero on any
                    finding (wall-clock overhead only)
  --metrics <path>  write the service metrics registry as JSONL
  --no-simd         force the scalar/autovectorized kernel spans
";

/// Parsed `sharpen serve` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Requests in the synthetic stream.
    pub requests: usize,
    /// Traffic seed (identical seed ⇒ identical stream).
    pub seed: u64,
    /// Mean simulated inter-arrival gap, microseconds (offered load).
    pub gap_us: f64,
    /// Device preset to serve on.
    pub device: DevicePreset,
    /// GPU optimization flags.
    pub opts: OptConfig,
    /// Banded schedule (`None` = monolithic, as in the main CLI).
    pub banded: Option<usize>,
    /// Bounded queue length per priority class.
    pub queue_cap: usize,
    /// Maximum batch size.
    pub max_batch: usize,
    /// Plan-cache capacity in plans.
    pub cache_cap: usize,
    /// Plan-cache shard count.
    pub shards: usize,
    /// Byte-compare every served output against direct execution.
    pub selfcheck: bool,
    /// Serve on a sanitized context and fail on any finding.
    pub sanitize: bool,
    /// Optional JSONL metrics output path.
    pub metrics: Option<PathBuf>,
    /// Force the scalar/autovectorized kernel spans.
    pub no_simd: bool,
    /// Key the plan cache on per-shape model-tuned schedules.
    pub autotune: bool,
}

/// Parses a `sharpen serve` argument list (without the program name and
/// without the leading `serve`).
pub fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut sv = ServeArgs {
        requests: 256,
        seed: 2015,
        gap_us: 2000.0,
        device: DevicePreset::W8000,
        opts: OptConfig::all(),
        banded: None,
        queue_cap: 64,
        max_batch: 16,
        cache_cap: 8,
        shards: 4,
        selfcheck: false,
        sanitize: false,
        metrics: None,
        no_simd: false,
        autotune: false,
    };
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--requests" => sv.requests = parse_value(&arg, it.next())?,
            "--seed" => sv.seed = parse_value(&arg, it.next())?,
            "--gap-us" => sv.gap_us = parse_value(&arg, it.next())?,
            "--device" => sv.device = DevicePreset::parse(it.next().as_deref())?,
            "--opts" => {
                sv.opts = match it.next().as_deref() {
                    Some("none") => OptConfig::none(),
                    Some("all") => OptConfig::all(),
                    other => return Err(format!("unknown opts {other:?}")),
                }
            }
            "--banded" => sv.banded = Some(0),
            "--queue-cap" => sv.queue_cap = parse_value(&arg, it.next())?,
            "--max-batch" => sv.max_batch = parse_value(&arg, it.next())?,
            "--cache-cap" => sv.cache_cap = parse_value(&arg, it.next())?,
            "--shards" => sv.shards = parse_value(&arg, it.next())?,
            "--selfcheck" => sv.selfcheck = true,
            "--sanitize" => sv.sanitize = true,
            "--autotune" => sv.autotune = true,
            "--metrics" => {
                sv.metrics = Some(PathBuf::from(parse_value::<String>(&arg, it.next())?))
            }
            "--no-simd" => sv.no_simd = true,
            other => match other.strip_prefix("--banded=") {
                Some(rows) => sv.banded = Some(parse_value("--banded", Some(rows.to_string()))?),
                None => return Err(format!("unknown option {other:?}")),
            },
        }
    }
    if sv.requests == 0 {
        return Err("--requests must be at least 1".to_string());
    }
    if !sv.gap_us.is_finite() || sv.gap_us <= 0.0 {
        return Err("--gap-us must be positive".to_string());
    }
    if sv.queue_cap == 0 || sv.max_batch == 0 {
        return Err("--queue-cap and --max-batch must be at least 1".to_string());
    }
    Ok(sv)
}

/// Executes `sharpen serve`, returning the human-readable summary.
pub fn run_serve(sv: &ServeArgs) -> Result<String, String> {
    use sharpness_core::service::{
        generate_requests, ServiceConfig, SharpenService, TrafficConfig,
    };

    if sv.no_simd {
        sharpness_core::simd::set_backend(Some(sharpness_core::simd::Backend::Autovec));
    }
    let traffic = TrafficConfig {
        requests: sv.requests,
        seed: sv.seed,
        mean_gap_s: sv.gap_us * 1e-6,
        ..TrafficConfig::default()
    };
    let requests = generate_requests(&traffic);
    let schedule = match sv.banded {
        None => Schedule::Monolithic,
        Some(rows) => Schedule::Banded(rows),
    };
    let ctx = if sv.sanitize {
        Context::sanitized(sv.device.spec())
    } else {
        Context::new(sv.device.spec())
    };
    let pipe =
        GpuPipeline::new(ctx.clone(), SharpnessParams::default(), sv.opts).with_schedule(schedule);
    let service = SharpenService::new(
        pipe,
        ServiceConfig {
            queue_capacity: sv.queue_cap,
            max_batch: sv.max_batch,
            cache_shards: sv.shards,
            cache_capacity: sv.cache_cap,
            keep_outputs: sv.selfcheck,
            tune_per_shape: sv.autotune,
            ..ServiceConfig::default()
        },
    );
    let report = service.serve(&requests)?;
    let mut summary = format!(
        "serve: {} requests, seed {}, mean gap {:.0} us\n{}",
        sv.requests,
        sv.seed,
        sv.gap_us,
        report.summary()
    );
    if let Some(san) = ctx.sanitize_report() {
        if !san.is_clean() {
            return Err(format!("{san}"));
        }
        summary.push_str("sanitizer: clean across the whole served stream\n");
    }
    if sv.selfcheck {
        // Every served output must be bit-identical to a fresh,
        // scheduler-free plan executing the same request.
        let direct = GpuPipeline::new(
            Context::new(sv.device.spec()),
            SharpnessParams::default(),
            sv.opts,
        )
        .with_schedule(schedule);
        let by_id: std::collections::HashMap<u64, &sharpness_core::service::Request> =
            requests.iter().map(|r| (r.id, r)).collect();
        for (id, out) in &report.outputs {
            let r = by_id.get(id).ok_or_else(|| format!("unknown id {id}"))?;
            let mut plan = direct.prepared(r.width, r.height)?;
            let mut expect = vec![0.0f32; r.width * r.height];
            plan.run_into(&r.frame(), &mut expect)?;
            if out.pixels() != expect.as_slice() {
                return Err(format!(
                    "selfcheck: request {id} ({}) diverged from direct execution",
                    format_args!("{}x{}", r.width, r.height),
                ));
            }
        }
        summary.push_str(&format!(
            "selfcheck: {} served outputs bit-identical to direct execution\n",
            report.outputs.len()
        ));
    }
    if let Some(path) = &sv.metrics {
        let file = if path.is_dir() {
            path.join("metrics.jsonl")
        } else {
            path.clone()
        };
        std::fs::write(&file, report.to_registry().to_jsonl()).map_err(|e| e.to_string())?;
        summary.push_str(&format!("wrote metrics to {}\n", file.display()));
    }
    Ok(summary)
}

fn parse_value<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, String> {
    let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("invalid value {v:?} for {flag}"))
}

/// Parses the argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut it = args.iter().cloned();
    let input = PathBuf::from(it.next().ok_or("missing input path")?);
    let output = PathBuf::from(it.next().ok_or("missing output path")?);
    let mut cli = CliArgs {
        input,
        output,
        params: SharpnessParams::default(),
        engine: Engine::Gpu(DevicePreset::W8000),
        opts: OptConfig::all(),
        color: ColorMode::LumaOnly,
        trace_json: None,
        gantt: false,
        frames: 1,
        threads: 0,
        sanitize: false,
        verify_static: false,
        metrics: None,
        profile: false,
        explain: false,
        banded: None,
        no_simd: false,
        autotune: false,
    };
    let mut device = DevicePreset::W8000;
    let mut use_cpu = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gain" => cli.params.gain = parse_value(&arg, it.next())?,
            "--gamma" => cli.params.gamma = parse_value(&arg, it.next())?,
            "--osc" => cli.params.osc = parse_value(&arg, it.next())?,
            "--cpu" => use_cpu = true,
            "--device" => device = DevicePreset::parse(it.next().as_deref())?,
            "--opts" => {
                cli.opts = match it.next().as_deref() {
                    Some("none") => OptConfig::none(),
                    Some("all") => OptConfig::all(),
                    other => return Err(format!("unknown opts {other:?}")),
                }
            }
            "--color" => {
                cli.color = match it.next().as_deref() {
                    Some("luma") => ColorMode::LumaOnly,
                    Some("rgb") => ColorMode::PerChannel,
                    other => return Err(format!("unknown color mode {other:?}")),
                }
            }
            "--trace" => {
                cli.trace_json = Some(PathBuf::from(parse_value::<String>(&arg, it.next())?))
            }
            "--gantt" => cli.gantt = true,
            "--frames" => cli.frames = parse_value(&arg, it.next())?,
            "--threads" => cli.threads = parse_value(&arg, it.next())?,
            "--sanitize" => cli.sanitize = true,
            "--verify-static" => cli.verify_static = true,
            "--metrics" => {
                cli.metrics = Some(PathBuf::from(parse_value::<String>(&arg, it.next())?))
            }
            "--profile" => cli.profile = true,
            "--explain" => cli.explain = true,
            "--banded" => cli.banded = Some(0),
            "--no-simd" => cli.no_simd = true,
            "--autotune" => cli.autotune = true,
            other => match other.strip_prefix("--banded=") {
                Some(rows) => cli.banded = Some(parse_value("--banded", Some(rows.to_string()))?),
                None => return Err(format!("unknown option {other:?}")),
            },
        }
    }
    cli.engine = if use_cpu {
        Engine::Cpu
    } else {
        Engine::Gpu(device)
    };
    if cli.frames == 0 {
        return Err("--frames must be at least 1".to_string());
    }
    if cli.frames > 1 && use_cpu {
        return Err("--frames requires the GPU engine (drop --cpu)".to_string());
    }
    if cli.sanitize && use_cpu {
        return Err("--sanitize requires the GPU engine (drop --cpu)".to_string());
    }
    if cli.sanitize && cli.frames > 1 {
        return Err(
            "--sanitize cannot be combined with --frames: the sanitizer analyses one \
             kernel dispatch at a time, so the throughput engine runs unsanitized"
                .to_string(),
        );
    }
    if cli.verify_static && use_cpu {
        return Err("--verify-static requires the GPU engine (drop --cpu)".to_string());
    }
    if cli.banded.is_some() && use_cpu {
        return Err("--banded requires the GPU engine (drop --cpu)".to_string());
    }
    if cli.autotune && use_cpu {
        return Err("--autotune requires the GPU engine (drop --cpu)".to_string());
    }
    if (cli.metrics.is_some() || cli.profile || cli.explain) && use_cpu {
        return Err(
            "--metrics/--profile/--explain require the GPU engine (efficiency metrics \
             come from the simulated device's cost counters; drop --cpu)"
                .to_string(),
        );
    }
    cli.params.validate()?;
    Ok(cli)
}

/// Converts a run report back into command records for trace export,
/// inferring the command kind from the pipeline's naming convention.
pub fn report_to_records(report: &RunReport) -> Vec<CommandRecord> {
    let mut t = 0.0;
    report
        .stages
        .iter()
        .map(|s| {
            let kind = if s.name.starts_with("write:") {
                CommandKind::WriteBuffer
            } else if s.name.starts_with("rect-write:") {
                CommandKind::RectWrite
            } else if s.name.starts_with("read:") {
                CommandKind::ReadBuffer
            } else if s.name.starts_with("map-") {
                CommandKind::Map
            } else if s.name.starts_with("host:") {
                CommandKind::HostWork
            } else if s.name.as_ref() == "finish" {
                CommandKind::Finish
            } else {
                CommandKind::Kernel
            };
            let rec = CommandRecord {
                name: s.name.clone(),
                kind,
                start_s: t,
                duration_s: s.seconds,
                counters: None,
            };
            t += s.seconds;
            rec
        })
        .collect()
}

/// The schedule the command line asked for.
fn schedule_of(cli: &CliArgs) -> Schedule {
    match cli.banded {
        None => Schedule::Monolithic,
        Some(rows) => Schedule::Banded(rows),
    }
}

/// The effective (opts, tuning) for a GPU run of a `w`×`h` plane: the
/// command line's values under the paper's hand-tuned defaults, or —
/// with `--autotune` — the guided model search's winner for this exact
/// shape on the selected device. The search never executes the
/// pipeline, so re-deriving it per plane costs microseconds and stays
/// deterministic.
fn gpu_config_for(
    cli: &CliArgs,
    preset: DevicePreset,
    w: usize,
    h: usize,
) -> Result<(OptConfig, Tuning), String> {
    if !cli.autotune {
        return Ok((cli.opts, Tuning::default()));
    }
    let r = autotune_search(preset, w, h)?;
    Ok((r.opts, r.tuning))
}

/// Runs the guided model search for one shape on a preset.
fn autotune_search(
    preset: DevicePreset,
    w: usize,
    h: usize,
) -> Result<sharpness_core::tune::TuneReport, String> {
    let dev = preset.spec();
    let ctx = Context::new(dev.clone());
    sharpness_core::tune::search(
        w,
        h,
        &dev,
        ctx.cpu(),
        sharpness_core::tune::SearchMode::Guided,
    )
}

fn sharpen_plane(cli: &CliArgs, plane: &ImageF32) -> Result<RunReport, String> {
    match cli.engine {
        Engine::Cpu => CpuPipeline::new(cli.params).run(plane),
        Engine::Gpu(preset) => {
            let (opts, tuning) = gpu_config_for(cli, preset, plane.width(), plane.height())?;
            if cli.verify_static {
                // Prove the whole dispatch schedule sound before touching
                // a single pixel; a failed proof aborts the run.
                verify_static(
                    plane.width(),
                    plane.height(),
                    &opts,
                    &tuning,
                    schedule_of(cli),
                )?;
            }
            let ctx = if cli.sanitize {
                Context::sanitized(preset.spec())
            } else {
                Context::new(preset.spec())
            };
            let ctx = if cli.verify_static {
                ctx.with_access_required()
            } else {
                ctx
            };
            let report = GpuPipeline::new(ctx.clone(), cli.params, opts)
                .with_tuning(tuning)
                .with_schedule(schedule_of(cli))
                .run(plane)?;
            if let Some(san) = ctx.sanitize_report() {
                if !san.is_clean() {
                    return Err(format!("{san}"));
                }
            }
            Ok(report)
        }
    }
}

/// Replays `plane` as a `cli.frames`-long stream through the throughput
/// engine, returning the formatted rates and the full report (whose
/// per-worker traces feed `--trace`/`--gantt` and the latency summary).
fn run_throughput(cli: &CliArgs, plane: &ImageF32) -> Result<(String, ThroughputReport), String> {
    let Engine::Gpu(preset) = cli.engine else {
        return Err("--frames requires the GPU engine".to_string());
    };
    let (opts, tuning) = gpu_config_for(cli, preset, plane.width(), plane.height())?;
    let pipe = GpuPipeline::new(Context::new(preset.spec()), cli.params, opts)
        .with_tuning(tuning)
        .with_schedule(schedule_of(cli));
    let engine = ThroughputEngine::new(pipe, cli.threads);
    let frames: Vec<ImageF32> = (0..cli.frames).map(|_| plane.clone()).collect();
    let rep = engine.process(&frames)?;
    let text = format!(
        "throughput: {} frames on {} workers in {:.3} s wall ({:.1} frames/s)\n\
         simulated steady-state: {:.3} ms/frame pipelined ({:.1} frames/s; {:.3} ms serial)\n",
        cli.frames,
        rep.threads,
        rep.wall_s,
        rep.wall_fps(),
        rep.pipelined_s / cli.frames as f64 * 1e3,
        rep.simulated_fps(),
        rep.serial_s / cli.frames as f64 * 1e3,
    );
    Ok((text, rep))
}

/// Re-runs one plane through a prepared plan with spans enabled and
/// returns the frame's raw command records (with cost counters), its
/// derived telemetry, and its span tree — the data behind `--metrics`,
/// `--profile`, `--explain`, and enriched single-frame traces.
fn gpu_observe(
    cli: &CliArgs,
    plane: &ImageF32,
) -> Result<(Vec<CommandRecord>, FrameTelemetry, Vec<SpanRecord>), String> {
    let Engine::Gpu(preset) = cli.engine else {
        return Err("kernel telemetry requires the GPU engine".to_string());
    };
    let (opts, tuning) = gpu_config_for(cli, preset, plane.width(), plane.height())?;
    let pipe = GpuPipeline::new(Context::new(preset.spec()).with_spans(), cli.params, opts)
        .with_tuning(tuning)
        .with_schedule(schedule_of(cli));
    let mut plan = pipe.prepared(plane.width(), plane.height())?;
    plan.run(plane)?;
    let tel = plan.telemetry();
    let spans = plan.spans();
    Ok((plan.records().to_vec(), tel, spans))
}

/// Executes the parsed command, returning the human-readable summary that
/// the binary prints.
pub fn run(cli: &CliArgs) -> Result<String, String> {
    if cli.no_simd {
        sharpness_core::simd::set_backend(Some(sharpness_core::simd::Backend::Autovec));
    }
    let ext = cli.input.extension().and_then(|e| e.to_str()).unwrap_or("");
    let mut summary = String::new();
    let report: RunReport;
    let plane: ImageF32;
    match ext {
        "pgm" => {
            let img = io::read_pgm(&cli.input)
                .map_err(|e| e.to_string())?
                .to_f32();
            report = sharpen_plane(cli, &img)?;
            io::write_pgm(&cli.output, &report.output.to_u8()).map_err(|e| e.to_string())?;
            summary.push_str(&format!(
                "sharpened {}x{} grayscale in {:.3} simulated ms\n",
                img.width(),
                img.height(),
                report.total_s * 1e3
            ));
            summary.push_str(&format!(
                "gradient energy {:.3} -> {:.3}\n",
                metrics::gradient_energy(&img),
                metrics::gradient_energy(&report.output)
            ));
            plane = img;
        }
        "ppm" => {
            let frame = io::read_ppm(&cli.input).map_err(|e| e.to_string())?;
            struct PlaneSharpener<'a>(&'a CliArgs);
            impl sharpness_core::color::Sharpener for PlaneSharpener<'_> {
                fn sharpen(&self, plane: &ImageF32) -> Result<RunReport, String> {
                    sharpen_plane(self.0, plane)
                }
            }
            let color = sharpen_rgb(&PlaneSharpener(cli), &frame, cli.color)?;
            io::write_ppm(&cli.output, &color.output).map_err(|e| e.to_string())?;
            summary.push_str(&format!(
                "sharpened {}x{} colour frame ({:?}, {} plane runs) in {:.3} simulated ms\n",
                frame.width(),
                frame.height(),
                cli.color,
                color.plane_runs,
                color.total_s * 1e3
            ));
            // Trace/gantt/telemetry need a plane report; redo the luma
            // plane cheaply.
            let luma = frame.to_luma();
            report = sharpen_plane(cli, &luma)?;
            plane = luma;
        }
        other => {
            return Err(format!(
                "unsupported input extension {other:?} (use .pgm or .ppm)"
            ))
        }
    }

    // Multi-frame stream: run the throughput engine once; its report also
    // carries the per-worker traces for --trace/--gantt.
    let tput: Option<ThroughputReport> = if cli.frames > 1 {
        let (text, rep) = run_throughput(cli, &plane)?;
        summary.push_str(&text);
        eprint!("{}", rep.latency_summary());
        Some(rep)
    } else {
        None
    };

    // Kernel telemetry (counters survive only on the plan's queue, not in
    // the RunReport): collected when --metrics/--profile ask for it, and
    // for single-frame GPU traces so they carry real command kinds and the
    // cumulative global-bytes counter track.
    let is_gpu = matches!(cli.engine, Engine::Gpu(_));

    // Under --autotune report the schedule the model search picked (the
    // runs above already executed under it) and keep the report around
    // for the tune.* metric gauges.
    let tune_report = if cli.autotune && is_gpu {
        let Engine::Gpu(preset) = cli.engine else {
            unreachable!("--autotune rejected with --cpu at parse time");
        };
        let t0 = std::time::Instant::now();
        let r = autotune_search(preset, plane.width(), plane.height())?;
        let wall = t0.elapsed().as_secs_f64();
        summary.push_str(&format!("autotune: {}\n", r.summary_line()));
        Some((r, wall))
    } else {
        None
    };

    let wants_single_trace = (cli.trace_json.is_some() || cli.gantt) && cli.frames == 1;
    let observed =
        if is_gpu && (cli.metrics.is_some() || cli.profile || cli.explain || wants_single_trace) {
            Some(gpu_observe(cli, &plane)?)
        } else {
            None
        };

    if cli.sanitize {
        // Any violation aborts the run with the sanitizer's report, so
        // reaching this point means every dispatch came back clean.
        summary.push_str(
            "sanitizer: clean (no races, out-of-bounds, barrier divergence, or accounting drift)\n",
        );
    }
    // Reaching this point with --verify-static means the proof succeeded
    // (sharpen_plane aborts otherwise) and every live dispatch declared its
    // summary; recompute the report for the stats line and metric gauges.
    let static_report: Option<StaticReport> = if cli.verify_static && is_gpu {
        let Engine::Gpu(preset) = cli.engine else {
            unreachable!("--verify-static rejected with --cpu at parse time");
        };
        let (opts, tuning) = gpu_config_for(cli, preset, plane.width(), plane.height())?;
        let r = verify_static(
            plane.width(),
            plane.height(),
            &opts,
            &tuning,
            schedule_of(cli),
        )?;
        summary.push_str(&r.summary_line());
        summary.push('\n');
        Some(r)
    } else {
        None
    };
    if let Some(path) = &cli.metrics {
        let (_, tel, spans) = observed.as_ref().expect("observed when --metrics");
        let mut reg = MetricsRegistry::new();
        tel.to_registry(&mut reg);
        simgpu::span::to_registry(spans, &mut reg);
        if let Some(r) = &static_report {
            r.to_registry(&mut reg);
        }
        if let Some((r, wall)) = &tune_report {
            r.to_registry(&mut reg);
            // Wall time is the one non-deterministic tune gauge; it never
            // enters committed baselines (those use TuneReport::to_registry
            // alone) but belongs in an operator-requested metrics dump.
            reg.set_gauge("tune.search_wall_s", *wall);
        }
        if let Some(tp) = &tput {
            reg.inc("throughput.frames", tp.outputs.len() as u64);
            reg.set_gauge("throughput.threads", tp.threads as f64);
            reg.set_gauge("throughput.wall_fps", tp.wall_fps());
            reg.set_gauge("throughput.simulated_fps", tp.simulated_fps());
            reg.record_histogram("latency.wall_s", &tp.wall_latency_histogram());
            reg.record_histogram("latency.sim_s", &tp.sim_latency_histogram());
        }
        // `--metrics` accepts a file or a directory (same as `repro`):
        // directories get a metrics.jsonl inside.
        let file = if path.is_dir() {
            path.join("metrics.jsonl")
        } else {
            path.clone()
        };
        std::fs::write(&file, reg.to_jsonl()).map_err(|e| e.to_string())?;
        summary.push_str(&format!("wrote metrics to {}\n", file.display()));
    }
    if cli.profile {
        let (_, tel, _) = observed.as_ref().expect("observed when --profile");
        summary.push_str(&format!(
            "host: cpu features [{}], kernel backend {} (simd feature {})\n",
            sharpness_core::simd::host_features(),
            sharpness_core::simd::active_backend().label(),
            if sharpness_core::simd::simd_compiled() {
                "on"
            } else {
                "off"
            },
        ));
        summary.push_str("kernel efficiency (one luma-plane frame):\n");
        summary.push_str(&tel.efficiency_table());
    }
    if cli.explain {
        let Engine::Gpu(preset) = cli.engine else {
            unreachable!("--explain rejected with --cpu at parse time");
        };
        let (_, tel, spans) = observed.as_ref().expect("observed when --explain");
        let e = sharpness_core::analyze::explain(
            tel,
            spans,
            &preset.spec(),
            sharpness_core::autotune::detected_cache_bytes(),
        );
        summary.push_str(&e.render(8));
    }
    if let Some(path) = &cli.trace_json {
        let json = match &tput {
            Some(tp) => trace::multiframe_chrome_json(&tp.traces),
            None => match &observed {
                Some((records, _, spans)) => trace::to_chrome_json_with_spans(records, spans),
                None => trace::to_chrome_json(&report_to_records(&report)),
            },
        };
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        summary.push_str(&format!("wrote trace to {}\n", path.display()));
    }
    if cli.gantt {
        match &tput {
            Some(tp) => summary.push_str(&trace::worker_gantt(&tp.traces, 60)),
            None => match &observed {
                Some((records, _, _)) => summary.push_str(&trace::gantt(records, 60)),
                None => summary.push_str(&trace::gantt(&report_to_records(&report), 60)),
            },
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal() {
        let cli = parse_args(&strs(&["in.pgm", "out.pgm"])).unwrap();
        assert_eq!(cli.engine, Engine::Gpu(DevicePreset::W8000));
        assert_eq!(cli.opts, OptConfig::all());
        assert_eq!(cli.color, ColorMode::LumaOnly);
    }

    #[test]
    fn parses_everything() {
        let cli = parse_args(&strs(&[
            "a.ppm", "b.ppm", "--gain", "2.5", "--gamma", "0.7", "--osc", "0.2", "--device", "apu",
            "--opts", "none", "--color", "rgb", "--trace", "t.json", "--gantt",
        ]))
        .unwrap();
        assert_eq!(cli.engine, Engine::Gpu(DevicePreset::Apu));
        assert_eq!(cli.opts, OptConfig::none());
        assert_eq!(cli.color, ColorMode::PerChannel);
        assert!((cli.params.gain - 2.5).abs() < 1e-6);
        assert!(cli.gantt);
        assert_eq!(
            cli.trace_json.as_deref(),
            Some(std::path::Path::new("t.json"))
        );
    }

    #[test]
    fn cpu_flag_overrides_device() {
        let cli = parse_args(&strs(&["a.pgm", "b.pgm", "--cpu", "--device", "midrange"])).unwrap();
        assert_eq!(cli.engine, Engine::Cpu);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_args(&strs(&[])).is_err());
        assert!(parse_args(&strs(&["a.pgm"])).is_err());
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--bogus"])).is_err());
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--gain"])).is_err());
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--gain", "x"])).is_err());
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--device", "rtx"])).is_err());
        // Invalid parameter values are caught at parse time.
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--osc", "7"])).is_err());
    }

    #[test]
    fn parses_throughput_flags() {
        let cli = parse_args(&strs(&[
            "a.pgm",
            "b.pgm",
            "--frames",
            "32",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(cli.frames, 32);
        assert_eq!(cli.threads, 4);
        // Defaults: single frame, auto threads.
        let cli = parse_args(&strs(&["a.pgm", "b.pgm"])).unwrap();
        assert_eq!((cli.frames, cli.threads), (1, 0));
        // Invalid combinations are rejected at parse time.
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--frames", "0"])).is_err());
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--frames", "4", "--cpu"])).is_err());
    }

    #[test]
    fn frames_flag_reports_throughput() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("cli-tp-in-{}.pgm", std::process::id()));
        let output = dir.join(format!("cli-tp-out-{}.pgm", std::process::id()));
        let img = imagekit::generate::natural(64, 64, 5).to_u8();
        io::write_pgm(&input, &img).unwrap();
        let cli = parse_args(&strs(&[
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--frames",
            "6",
            "--threads",
            "2",
        ]))
        .unwrap();
        let summary = run(&cli).unwrap();
        assert!(
            summary.contains("throughput: 6 frames on 2 workers"),
            "{summary}"
        );
        assert!(summary.contains("simulated steady-state"), "{summary}");
        for p in [input, output] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn parses_banded_flag() {
        assert_eq!(parse_args(&strs(&["a.pgm", "b.pgm"])).unwrap().banded, None);
        let auto = parse_args(&strs(&["a.pgm", "b.pgm", "--banded"])).unwrap();
        assert_eq!(auto.banded, Some(0));
        let fixed = parse_args(&strs(&["a.pgm", "b.pgm", "--banded=128"])).unwrap();
        assert_eq!(fixed.banded, Some(128));
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--banded=x"])).is_err());
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--banded", "--cpu"])).is_err());
    }

    #[test]
    fn banded_run_matches_monolithic_output() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("cli-band-in-{}.pgm", std::process::id()));
        let out_mono = dir.join(format!("cli-band-mono-{}.pgm", std::process::id()));
        let out_band = dir.join(format!("cli-band-band-{}.pgm", std::process::id()));
        let img = imagekit::generate::natural(97, 61, 17).to_u8();
        io::write_pgm(&input, &img).unwrap();
        let mono = parse_args(&strs(&[
            input.to_str().unwrap(),
            out_mono.to_str().unwrap(),
        ]))
        .unwrap();
        let mono_summary = run(&mono).unwrap();
        let band = parse_args(&strs(&[
            input.to_str().unwrap(),
            out_band.to_str().unwrap(),
            "--banded=32",
            "--sanitize",
        ]))
        .unwrap();
        let band_summary = run(&band).unwrap();
        assert!(band_summary.contains("sanitizer: clean"), "{band_summary}");
        // Same pixels, same simulated milliseconds in the summary line.
        assert_eq!(
            std::fs::read(&out_mono).unwrap(),
            std::fs::read(&out_band).unwrap()
        );
        let line = |s: &str| s.lines().next().unwrap_or("").to_string();
        assert_eq!(line(&mono_summary), line(&band_summary));
        for p in [input, out_mono, out_band] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn parses_no_simd_flag() {
        assert!(!parse_args(&strs(&["a.pgm", "b.pgm"])).unwrap().no_simd);
        let cli = parse_args(&strs(&["a.pgm", "b.pgm", "--no-simd"])).unwrap();
        assert!(cli.no_simd);
        // Valid with either engine: the CPU reference shares the spans.
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--no-simd", "--cpu"])).is_ok());
    }

    #[test]
    fn parses_sanitize_flag_and_rejects_bad_combinations() {
        let cli = parse_args(&strs(&["a.pgm", "b.pgm", "--sanitize"])).unwrap();
        assert!(cli.sanitize);
        assert!(!parse_args(&strs(&["a.pgm", "b.pgm"])).unwrap().sanitize);
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--sanitize", "--cpu"])).is_err());
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--sanitize", "--frames", "4"])).is_err());
    }

    #[test]
    fn sanitize_flag_runs_clean_end_to_end() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("cli-san-in-{}.pgm", std::process::id()));
        let output = dir.join(format!("cli-san-out-{}.pgm", std::process::id()));
        let img = imagekit::generate::natural(64, 64, 4).to_u8();
        io::write_pgm(&input, &img).unwrap();
        let cli = parse_args(&strs(&[
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--sanitize",
        ]))
        .unwrap();
        let summary = run(&cli).unwrap();
        assert!(summary.contains("sanitizer: clean"), "{summary}");
        // The sanitized output is the same image the plain run produces.
        let plain =
            parse_args(&strs(&[input.to_str().unwrap(), output.to_str().unwrap()])).unwrap();
        let plain_summary = run(&plain).unwrap();
        let line = |s: &str| s.lines().next().unwrap_or("").to_string();
        assert_eq!(line(&summary), line(&plain_summary));
        for p in [input, output] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn parses_verify_static_flag() {
        let cli = parse_args(&strs(&["a.pgm", "b.pgm", "--verify-static"])).unwrap();
        assert!(cli.verify_static);
        assert!(
            !parse_args(&strs(&["a.pgm", "b.pgm"]))
                .unwrap()
                .verify_static
        );
        // The static verifier proves GPU dispatch schedules; the CPU
        // reference has none.
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--verify-static", "--cpu"])).is_err());
    }

    #[test]
    fn verify_static_flag_end_to_end() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("cli-vs-in-{}.pgm", std::process::id()));
        let out_plain = dir.join(format!("cli-vs-plain-{}.pgm", std::process::id()));
        let out_verif = dir.join(format!("cli-vs-verif-{}.pgm", std::process::id()));
        let mfile = dir.join(format!("cli-vs-{}.jsonl", std::process::id()));
        // Ragged shape: the proof must cover partial tail groups.
        let img = imagekit::generate::natural(101, 67, 7).to_u8();
        io::write_pgm(&input, &img).unwrap();
        let plain = parse_args(&strs(&[
            input.to_str().unwrap(),
            out_plain.to_str().unwrap(),
            "--banded=32",
        ]))
        .unwrap();
        let plain_summary = run(&plain).unwrap();
        let cli = parse_args(&strs(&[
            input.to_str().unwrap(),
            out_verif.to_str().unwrap(),
            "--banded=32",
            "--verify-static",
            "--metrics",
            mfile.to_str().unwrap(),
        ]))
        .unwrap();
        let summary = run(&cli).unwrap();
        assert!(summary.contains("static verifier:"), "{summary}");
        assert!(summary.contains("proved in-bounds"), "{summary}");
        // Verification is observation-only: same pixels, same simulated
        // milliseconds in the summary line.
        assert_eq!(
            std::fs::read(&out_plain).unwrap(),
            std::fs::read(&out_verif).unwrap()
        );
        let line = |s: &str| s.lines().next().unwrap_or("").to_string();
        assert_eq!(line(&plain_summary), line(&summary));
        // The verifier counters ride along in the metrics export.
        let jsonl = std::fs::read_to_string(&mfile).unwrap();
        assert!(jsonl.contains("\"name\":\"verify.dispatches\""), "{jsonl}");
        assert!(
            jsonl.contains("\"name\":\"verify.max_ratio_slack\""),
            "{jsonl}"
        );
        for p in [input, out_plain, out_verif, mfile] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn parses_metrics_and_profile_flags() {
        let cli = parse_args(&strs(&[
            "a.pgm",
            "b.pgm",
            "--metrics",
            "m.jsonl",
            "--profile",
        ]))
        .unwrap();
        assert_eq!(
            cli.metrics.as_deref(),
            Some(std::path::Path::new("m.jsonl"))
        );
        assert!(cli.profile);
        let cli = parse_args(&strs(&["a.pgm", "b.pgm"])).unwrap();
        assert_eq!(cli.metrics, None);
        assert!(!cli.profile);
        // Efficiency metrics come from the simulated device: CPU engine
        // combinations are rejected at parse time.
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--cpu", "--profile"])).is_err());
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--cpu", "--metrics", "m"])).is_err());
    }

    #[test]
    fn metrics_and_profile_end_to_end() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("cli-met-in-{}.pgm", std::process::id()));
        let output = dir.join(format!("cli-met-out-{}.pgm", std::process::id()));
        let mfile = dir.join(format!("cli-met-{}.jsonl", std::process::id()));
        let img = imagekit::generate::natural(64, 64, 11).to_u8();
        io::write_pgm(&input, &img).unwrap();
        let cli = parse_args(&strs(&[
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--metrics",
            mfile.to_str().unwrap(),
            "--profile",
        ]))
        .unwrap();
        let summary = run(&cli).unwrap();
        assert!(summary.contains("kernel efficiency"), "{summary}");
        assert!(summary.contains("host: cpu features ["), "{summary}");
        assert!(summary.contains("kernel backend"), "{summary}");
        assert!(summary.contains("loads/px"), "{summary}");
        assert!(summary.contains("wrote metrics"), "{summary}");
        let jsonl = std::fs::read_to_string(&mfile).unwrap();
        let mut sobel_loads = None;
        for line in jsonl.lines() {
            let (name, fields) =
                simgpu::metrics::parse_jsonl_line(line).unwrap_or_else(|| panic!("{line}"));
            if name == "kernel.sobel_vec4.loads_per_source_pixel" {
                sobel_loads = Some(fields[0].1);
            }
        }
        // The paper's §V.D claim, machine-checked end to end through the
        // CLI export path.
        let loads = sobel_loads.expect("vec4 sobel metric present");
        assert!((loads - 4.5).abs() < 0.01, "loads/px {loads}");
        for p in [input, output, mfile] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn parses_explain_flag() {
        let cli = parse_args(&strs(&["a.pgm", "b.pgm", "--explain"])).unwrap();
        assert!(cli.explain);
        assert!(!parse_args(&strs(&["a.pgm", "b.pgm"])).unwrap().explain);
        // The report needs the simulated device's cost counters.
        assert!(parse_args(&strs(&["a.pgm", "b.pgm", "--explain", "--cpu"])).is_err());
    }

    #[test]
    fn explain_flag_prints_bottleneck_report() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("cli-exp-in-{}.pgm", std::process::id()));
        let output = dir.join(format!("cli-exp-out-{}.pgm", std::process::id()));
        let img = imagekit::generate::natural(64, 64, 21).to_u8();
        io::write_pgm(&input, &img).unwrap();
        let cli = parse_args(&strs(&[
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--explain",
        ]))
        .unwrap();
        let summary = run(&cli).unwrap();
        assert!(summary.contains("bottleneck report: 64x64"), "{summary}");
        assert!(summary.contains("-bound"), "{summary}");
        assert!(summary.contains("host:"), "{summary}");
        assert!(summary.contains("wall/sim:"), "{summary}");
        assert!(summary.contains("phases:"), "{summary}");
        for p in [input, output] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn metrics_path_accepts_a_directory() {
        let dir = std::env::temp_dir().join(format!("cli-metdir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.pgm");
        let output = dir.join("out.pgm");
        let img = imagekit::generate::natural(64, 64, 2).to_u8();
        io::write_pgm(&input, &img).unwrap();
        let cli = parse_args(&strs(&[
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--metrics",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let summary = run(&cli).unwrap();
        let file = dir.join("metrics.jsonl");
        assert!(summary.contains("wrote metrics"), "{summary}");
        let jsonl = std::fs::read_to_string(&file).unwrap();
        assert!(jsonl.contains("\"name\":\"frame.simulated_s\""), "{jsonl}");
        // Span aggregates ride along in the export now.
        assert!(jsonl.contains("span.frame"), "{jsonl}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multiframe_trace_and_gantt_show_worker_lanes() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("cli-mf-in-{}.pgm", std::process::id()));
        let output = dir.join(format!("cli-mf-out-{}.pgm", std::process::id()));
        let tfile = dir.join(format!("cli-mf-trace-{}.json", std::process::id()));
        let mfile = dir.join(format!("cli-mf-met-{}.jsonl", std::process::id()));
        let img = imagekit::generate::natural(64, 64, 13).to_u8();
        io::write_pgm(&input, &img).unwrap();
        let cli = parse_args(&strs(&[
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--frames",
            "4",
            "--threads",
            "2",
            "--trace",
            tfile.to_str().unwrap(),
            "--gantt",
            "--metrics",
            mfile.to_str().unwrap(),
        ]))
        .unwrap();
        let summary = run(&cli).unwrap();
        // The gantt shows worker lanes, not a single-frame command list.
        assert!(summary.contains("worker 0"), "{summary}");
        assert!(summary.contains("throughput: 4 frames"), "{summary}");
        // The trace names one lane per worker and carries the frame spans.
        let json = std::fs::read_to_string(&tfile).unwrap();
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"worker 0\""), "{json}");
        assert!(json.contains("\"frame 3\""), "{json}");
        // The metrics file gains throughput gauges + latency histograms.
        let jsonl = std::fs::read_to_string(&mfile).unwrap();
        assert!(jsonl.contains("\"name\":\"throughput.frames\""), "{jsonl}");
        assert!(jsonl.contains("\"name\":\"latency.wall_s\""), "{jsonl}");
        assert!(jsonl.contains("\"name\":\"latency.sim_s\""), "{jsonl}");
        for p in [input, output, tfile, mfile] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn record_reconstruction_classifies_kinds() {
        use sharpness_core::report::StageRecord;
        let report = RunReport {
            output: ImageF32::zeros(4, 4),
            total_s: 4.0,
            stages: vec![
                StageRecord {
                    name: "rect-write:padded".into(),
                    seconds: 1.0,
                },
                StageRecord {
                    name: "sobel_vec4".into(),
                    seconds: 1.0,
                },
                StageRecord {
                    name: "host:reduction".into(),
                    seconds: 1.0,
                },
                StageRecord {
                    name: "read:final".into(),
                    seconds: 1.0,
                },
            ],
        };
        let recs = report_to_records(&report);
        assert_eq!(recs[0].kind, CommandKind::RectWrite);
        assert_eq!(recs[1].kind, CommandKind::Kernel);
        assert_eq!(recs[2].kind, CommandKind::HostWork);
        assert_eq!(recs[3].kind, CommandKind::ReadBuffer);
        assert!((recs[3].start_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_pgm_roundtrip() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("cli-in-{}.pgm", std::process::id()));
        let output = dir.join(format!("cli-out-{}.pgm", std::process::id()));
        let trace = dir.join(format!("cli-trace-{}.json", std::process::id()));
        let img = imagekit::generate::natural(64, 64, 3).to_u8();
        io::write_pgm(&input, &img).unwrap();
        let cli = parse_args(&strs(&[
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--gantt",
        ]))
        .unwrap();
        let summary = run(&cli).unwrap();
        assert!(summary.contains("sharpened 64x64 grayscale"));
        assert!(summary.contains("wrote trace"));
        assert!(summary.contains('#')); // gantt bars
        let out = io::read_pgm(&output).unwrap();
        assert_eq!(out.width(), 64);
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        for p in [input, output, trace] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn end_to_end_ppm_roundtrip() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("cli-in-{}.ppm", std::process::id()));
        let output = dir.join(format!("cli-out-{}.ppm", std::process::id()));
        let g = imagekit::generate::natural(32, 32, 9).to_u8();
        io::write_ppm(&input, &imagekit::rgb::gray_to_rgb(&g)).unwrap();
        let cli = parse_args(&strs(&[
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--color",
            "rgb",
        ]))
        .unwrap();
        let summary = run(&cli).unwrap();
        assert!(summary.contains("3 plane runs"));
        assert!(io::read_ppm(&output).is_ok());
        for p in [input, output] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn parses_serve_defaults_and_flags() {
        let sv = parse_serve_args(&strs(&[])).unwrap();
        assert_eq!((sv.requests, sv.seed), (256, 2015));
        assert_eq!(sv.gap_us, 2000.0);
        assert!(!sv.selfcheck && !sv.sanitize);
        let sv = parse_serve_args(&strs(&[
            "--requests",
            "48",
            "--seed",
            "9",
            "--gap-us",
            "500",
            "--max-batch",
            "8",
            "--queue-cap",
            "16",
            "--cache-cap",
            "4",
            "--shards",
            "2",
            "--opts",
            "none",
            "--banded=32",
            "--selfcheck",
            "--sanitize",
        ]))
        .unwrap();
        assert_eq!(sv.requests, 48);
        assert_eq!(sv.seed, 9);
        assert_eq!(sv.gap_us, 500.0);
        assert_eq!((sv.max_batch, sv.queue_cap), (8, 16));
        assert_eq!((sv.cache_cap, sv.shards), (4, 2));
        assert_eq!(sv.opts, OptConfig::none());
        assert_eq!(sv.banded, Some(32));
        assert!(sv.selfcheck && sv.sanitize);
        // Invalid values are rejected at parse time.
        assert!(parse_serve_args(&strs(&["--requests", "0"])).is_err());
        assert!(parse_serve_args(&strs(&["--gap-us", "-1"])).is_err());
        assert!(parse_serve_args(&strs(&["--bogus"])).is_err());
        assert!(parse_serve_args(&strs(&["--max-batch", "0"])).is_err());
    }

    #[test]
    fn serve_end_to_end_with_selfcheck_and_metrics() {
        let dir = std::env::temp_dir();
        let mfile = dir.join(format!("cli-serve-{}.jsonl", std::process::id()));
        let sv = parse_serve_args(&strs(&[
            "--requests",
            "24",
            "--seed",
            "7",
            "--selfcheck",
            "--metrics",
            mfile.to_str().unwrap(),
        ]))
        .unwrap();
        let summary = run_serve(&sv).unwrap();
        assert!(summary.contains("serve: 24 requests, seed 7"), "{summary}");
        assert!(summary.contains("frames/s wall"), "{summary}");
        assert!(summary.contains("p99"), "{summary}");
        assert!(summary.contains("plan cache:"), "{summary}");
        assert!(
            summary.contains("bit-identical to direct execution"),
            "{summary}"
        );
        let jsonl = std::fs::read_to_string(&mfile).unwrap();
        assert!(jsonl.contains("\"name\":\"service.served\""), "{jsonl}");
        assert!(
            jsonl.contains("\"name\":\"service.latency.sim_s\""),
            "{jsonl}"
        );
        assert!(jsonl.contains("service.pool.evicted"), "{jsonl}");
        std::fs::remove_file(&mfile).ok();
    }

    #[test]
    fn serve_sanitized_matches_plain_serve() {
        let base = strs(&["--requests", "16", "--seed", "3", "--selfcheck"]);
        let plain = run_serve(&parse_serve_args(&base).unwrap()).unwrap();
        let mut san_args = base.clone();
        san_args.push("--sanitize".to_string());
        let sanitized = run_serve(&parse_serve_args(&san_args).unwrap()).unwrap();
        assert!(sanitized.contains("sanitizer: clean"), "{sanitized}");
        // Served/shed/batches and latency-in-simulated-seconds lines are
        // identical: the sanitizer is observation-only.
        let sim_lines = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("served ") || l.contains("simulated, arrival"))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(sim_lines(&plain), sim_lines(&sanitized));
    }

    #[test]
    fn unsupported_extension_rejected() {
        let cli = parse_args(&strs(&["a.png", "b.png"])).unwrap();
        assert!(run(&cli).unwrap_err().contains("unsupported"));
    }
}
