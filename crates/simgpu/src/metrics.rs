//! A dependency-free metrics registry: counters, gauges, and fixed-bucket
//! histograms, with JSONL and terminal-table export.
//!
//! This is the observability substrate the telemetry layer builds on. It is
//! deliberately *passive*: nothing in this module touches queues, buffers or
//! cost counters — callers observe finished [`crate::queue::CommandRecord`]s
//! (or wall-clock samples) and write the derived numbers here. Recording
//! metrics therefore cannot perturb simulated time or pixels; the
//! observation-only invariant is enforced by the telemetry test suite.
//!
//! Histograms use fixed bucket bounds chosen at creation (no dynamic
//! resizing), so merging registries from parallel workers is exact:
//! bucket-wise addition.

use std::collections::HashMap;
use std::fmt::Write as _;

/// A monotonically increasing integer metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Current value.
    pub value: u64,
}

/// A last-writer-wins floating-point metric.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge {
    /// Current value.
    pub value: f64,
}

/// A fixed-bucket histogram of non-negative samples.
///
/// Buckets are defined by their ascending upper bounds; a final implicit
/// overflow bucket catches samples above the last bound. Quantiles are
/// estimated by linear interpolation inside the containing bucket and
/// clamped to the observed min/max, so exact-for-small-counts behaviour is
/// reasonable without storing raw samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending upper bucket bounds.
    bounds: Vec<f64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`, the
    /// last entry being the overflow bucket.
    counts: Vec<u64>,
    /// Total samples observed.
    count: u64,
    /// Sum of all samples.
    sum: f64,
    /// Smallest sample observed (`INFINITY` when empty).
    min: f64,
    /// Largest sample observed (`NEG_INFINITY` when empty).
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bucket bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Exponential bucket layout: `n` bounds starting at `start`, each
    /// `factor` times the previous. The default layout for latency metrics
    /// (`exponential(1e-6, 2.0, 40)` spans 1 µs to ~550 s).
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n > 0);
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(bounds)
    }

    /// The default latency layout: exponential 1 µs … ~550 s.
    pub fn latency_seconds() -> Self {
        Histogram::exponential(1e-6, 2.0, 40)
    }

    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the containing bucket, clamped to the observed min/max.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                let est = lo + (hi - lo) * frac;
                return est.clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }

    /// Bucket-wise merge of another histogram with identical bounds.
    ///
    /// # Panics
    /// If the bucket layouts differ (use [`Histogram::try_merge`] to
    /// handle the mismatch instead).
    pub fn merge(&mut self, o: &Histogram) {
        if let Err(e) = self.try_merge(o) {
            panic!("histogram layouts must match: {e}");
        }
    }

    /// Bucket-wise merge of another histogram, failing with a typed error
    /// when the bucket layouts differ. On `Err` the destination is left
    /// untouched — merging positionally across different layouts would
    /// silently misattribute counts.
    ///
    /// # Errors
    /// [`LayoutMismatch`] describing where the layouts diverge.
    pub fn try_merge(&mut self, o: &Histogram) -> Result<(), LayoutMismatch> {
        if self.bounds != o.bounds {
            return Err(LayoutMismatch {
                expected_bounds: self.bounds.len(),
                got_bounds: o.bounds.len(),
                first_diff: self.bounds.iter().zip(&o.bounds).position(|(a, b)| a != b),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&o.counts) {
            *a += b;
        }
        self.count += o.count;
        self.sum += o.sum;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        Ok(())
    }

    /// One-line `count/mean/p50/p95/p99/max` rendering with a unit scale
    /// (e.g. `1e3` and `"ms"` to print seconds as milliseconds).
    pub fn summary(&self, scale: f64, unit: &str) -> String {
        format!(
            "n={} mean={:.3}{u} p50={:.3}{u} p95={:.3}{u} p99={:.3}{u} max={:.3}{u}",
            self.count,
            self.mean() * scale,
            self.quantile(0.50) * scale,
            self.quantile(0.95) * scale,
            self.quantile(0.99) * scale,
            self.max() * scale,
            u = unit,
        )
    }
}

/// Error from [`Histogram::try_merge`]: the two histograms' bucket
/// layouts differ, so a positional merge would misattribute counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutMismatch {
    /// Number of bounds in the destination histogram.
    pub expected_bounds: usize,
    /// Number of bounds in the source histogram.
    pub got_bounds: usize,
    /// Index of the first bound that differs within the shared prefix
    /// (`None` when one layout is a strict prefix of the other).
    pub first_diff: Option<usize>,
}

impl std::fmt::Display for LayoutMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.first_diff {
            Some(i) => write!(
                f,
                "histogram bucket layouts differ at bound {i} \
                 ({} vs {} bounds)",
                self.expected_bounds, self.got_bounds
            ),
            None => write!(
                f,
                "histogram bucket layouts differ in length \
                 ({} vs {} bounds)",
                self.expected_bounds, self.got_bounds
            ),
        }
    }
}

impl std::error::Error for LayoutMismatch {}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic integer.
    Counter(Counter),
    /// Last-writer-wins float.
    Gauge(Gauge),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

/// A name-keyed collection of metrics preserving first-registration order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// Metrics in registration order.
    metrics: Vec<(String, Metric)>,
    /// Name → index into `metrics`.
    index: HashMap<String, usize>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, name: &str, default: Metric) -> &mut Metric {
        let i = match self.index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.metrics.len();
                self.metrics.push((name.to_string(), default));
                self.index.insert(name.to_string(), i);
                i
            }
        };
        &mut self.metrics[i].1
    }

    /// Adds `v` to the counter `name`, creating it at zero first.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn inc(&mut self, name: &str, v: u64) {
        match self.slot(name, Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c.value += v,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name` to `v`, creating it if needed.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        match self.slot(name, Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g.value = v,
            other => panic!("metric {name} is not a gauge: {other:?}"),
        }
    }

    /// Records `v` into the histogram `name`, creating it with `layout`'s
    /// bucket bounds on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn observe(&mut self, name: &str, v: f64, layout: impl FnOnce() -> Histogram) {
        match self.slot(name, Metric::Histogram(layout())) {
            Metric::Histogram(h) => h.observe(v),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Registers the histogram `name` with `h`'s contents, merging
    /// bucket-wise if it already exists.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type, or with
    /// a different bucket layout.
    pub fn record_histogram(&mut self, name: &str, h: &Histogram) {
        let existed = self.index.contains_key(name);
        match self.slot(name, Metric::Histogram(h.clone())) {
            Metric::Histogram(mine) => {
                if existed {
                    mine.merge(h);
                }
            }
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.index.get(name).map(|&i| &self.metrics[i].1)
    }

    /// The value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Metric::Counter(c)) => c.value,
            _ => 0,
        }
    }

    /// The value of gauge `name` (0 if absent).
    pub fn gauge(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(Metric::Gauge(g)) => g.value,
            _ => 0.0,
        }
    }

    /// The histogram `name`, if registered as one.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Merges another registry: counters add, gauges take the other's
    /// value, histograms merge bucket-wise. Metrics absent here are
    /// registered in the other's order.
    ///
    /// # Panics
    /// If a shared name has mismatched metric types or histogram layouts.
    pub fn merge(&mut self, o: &MetricsRegistry) {
        for (name, m) in o.iter() {
            match m {
                Metric::Counter(c) => self.inc(name, c.value),
                Metric::Gauge(g) => self.set_gauge(name, g.value),
                Metric::Histogram(h) => self.record_histogram(name, h),
            }
        }
    }

    /// Serialises every metric as one JSON object per line.
    ///
    /// Counters: `{"name":N,"type":"counter","value":V}`; gauges likewise
    /// with a float value; histograms carry `count`, `sum`, `min`, `max`
    /// and the `p50`/`p95`/`p99` estimates. The schema is stable — the
    /// metric-baseline gate parses it back.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, m) in self.iter() {
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"type\":\"counter\",\"value\":{}}}",
                        json_escape(name),
                        c.value
                    );
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"type\":\"gauge\",\"value\":{}}}",
                        json_escape(name),
                        fmt_f64(g.value)
                    );
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\
                         \"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        json_escape(name),
                        h.count(),
                        fmt_f64(h.sum()),
                        fmt_f64(h.min()),
                        fmt_f64(h.max()),
                        fmt_f64(h.quantile(0.50)),
                        fmt_f64(h.quantile(0.95)),
                        fmt_f64(h.quantile(0.99)),
                    );
                }
            }
        }
        out
    }

    /// Renders a two-column terminal table of every metric.
    pub fn summary_table(&self) -> String {
        let name_w = self.iter().map(|(n, _)| n.len()).max().unwrap_or(6).max(6);
        let mut out = String::new();
        let _ = writeln!(out, "{:<name_w$}  value", "metric");
        for (name, m) in self.iter() {
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name:<name_w$}  {}", c.value);
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name:<name_w$}  {:.6}", g.value);
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "{name:<name_w$}  {}", h.summary(1.0, ""));
                }
            }
        }
        out
    }
}

/// Formats an f64 as a JSON number (finite values only; non-finite values
/// become 0, which cannot occur for the metrics exported here).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Shortest roundtrip formatting keeps the files diff-friendly.
        format!("{v}")
    } else {
        String::from("0")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one line of [`MetricsRegistry::to_jsonl`] output back into its
/// numeric fields (`(metric_name, [(field, value), ...])`). Only the flat
/// schema emitted by this module is supported — this is the reader half of
/// the metric-baseline gate, not a general JSON parser.
pub fn parse_jsonl_line(line: &str) -> Option<(String, Vec<(String, f64)>)> {
    let line = line.trim();
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut name = None;
    let mut fields = Vec::new();
    for part in split_top_level(body) {
        let (k, v) = part.split_once(':')?;
        let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
        let v = v.trim();
        if k == "name" {
            name = Some(json_unescape(v.strip_prefix('"')?.strip_suffix('"')?)?);
        } else if k == "type" {
            continue;
        } else {
            fields.push((k.to_string(), v.parse().ok()?));
        }
    }
    Some((name?, fields))
}

/// Reverses [`json_escape`]: resolves `\"`, `\\` and `\uXXXX` sequences.
/// Returns `None` for a malformed escape.
fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Splits a JSON object body at top-level commas (no nested objects appear
/// in the flat schema, but quoted strings may contain commas).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        // Pin the empty-histogram contract: every statistic is exactly 0.0
        // (finite — never NaN from a 0/0 or a divide by `count`).
        let h = Histogram::exponential(1e-6, 2.0, 40);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert_eq!(v, 0.0, "quantile({q})");
            assert!(v.is_finite());
        }
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.inc("frames", 3);
        r.inc("frames", 2);
        r.set_gauge("fps", 12.5);
        r.set_gauge("fps", 14.0);
        assert_eq!(r.counter("frames"), 5);
        assert!((r.gauge("fps") - 14.0).abs() < 1e-12);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = Histogram::latency_seconds();
        for i in 1..=100 {
            h.observe(i as f64 * 1e-3); // 1..100 ms
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!(p50 >= h.min() && p50 <= h.max());
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!((h.max() - 0.1).abs() < 1e-12);
        assert!((h.mean() - 0.0505).abs() < 1e-6);
        // Worst-case quantile error is one bucket width: p50 of 1..100 ms
        // must land in the right power-of-two bucket (32..64 ms contains
        // the true median 50 ms).
        assert!(p50 > 0.032 && p50 < 0.064, "p50 {p50}");
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = Histogram::latency_seconds();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        let mut h = Histogram::latency_seconds();
        h.observe(5e-3);
        // Any quantile of a single sample is that sample (clamped).
        assert!((h.quantile(0.0) - 5e-3).abs() < 1e-12);
        assert!((h.quantile(1.0) - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.observe(100.0);
        h.observe(0.5);
        assert_eq!(h.count(), 2);
        assert!((h.quantile(1.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::latency_seconds();
        let mut b = Histogram::latency_seconds();
        let mut whole = Histogram::latency_seconds();
        for i in 0..50 {
            let v = (i + 1) as f64 * 1e-4;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            whole.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn registry_merge_semantics() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 1);
        a.observe("lat", 1e-3, Histogram::latency_seconds);
        let mut b = MetricsRegistry::new();
        b.inc("n", 2);
        b.set_gauge("fps", 9.0);
        b.observe("lat", 2e-3, Histogram::latency_seconds);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert!((a.gauge("fps") - 9.0).abs() < 1e-12);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        // Merging into an empty registry copies histograms verbatim.
        let mut c = MetricsRegistry::new();
        c.merge(&a);
        assert_eq!(c.histogram("lat").unwrap().count(), 2);
        // Recording identical histogram contents twice still accumulates.
        let mut d = MetricsRegistry::new();
        d.record_histogram("lat", a.histogram("lat").unwrap());
        d.record_histogram("lat", a.histogram("lat").unwrap());
        assert_eq!(d.histogram("lat").unwrap().count(), 4);
    }

    #[test]
    fn jsonl_roundtrips_through_parser() {
        let mut r = MetricsRegistry::new();
        r.inc("kernel.sobel.dispatches", 2);
        r.set_gauge("kernel.sobel.loads_per_source_pixel", 4.5);
        r.observe("latency_s", 3e-3, Histogram::latency_seconds);
        let jsonl = r.to_jsonl();
        let lines: Vec<_> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        let (name, fields) = parse_jsonl_line(lines[0]).unwrap();
        assert_eq!(name, "kernel.sobel.dispatches");
        assert_eq!(fields, vec![("value".to_string(), 2.0)]);
        let (name, fields) = parse_jsonl_line(lines[1]).unwrap();
        assert_eq!(name, "kernel.sobel.loads_per_source_pixel");
        assert!((fields[0].1 - 4.5).abs() < 1e-12);
        let (name, fields) = parse_jsonl_line(lines[2]).unwrap();
        assert_eq!(name, "latency_s");
        let get = |k: &str| {
            fields
                .iter()
                .find(|(f, _)| f == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("count"), 1.0);
        assert!((get("p50") - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_jsonl_line("").is_none());
        assert!(parse_jsonl_line("not json").is_none());
        assert!(parse_jsonl_line("{\"type\":\"gauge\",\"value\":1}").is_none());
        assert!(parse_jsonl_line("{\"name\":\"x\",\"value\":abc}").is_none());
    }

    #[test]
    fn summary_table_lists_everything() {
        let mut r = MetricsRegistry::new();
        r.inc("a.counter", 7);
        r.set_gauge("b.gauge", 1.25);
        r.observe("c.hist", 2.0, || Histogram::new(vec![1.0, 4.0]));
        let t = r.summary_table();
        assert!(t.contains("a.counter"));
        assert!(t.contains('7'));
        assert!(t.contains("b.gauge"));
        assert!(t.contains("c.hist"));
        assert!(t.contains("p95"));
    }

    #[test]
    fn mismatched_layout_merge_is_a_typed_error() {
        // Different bound values, same length.
        let mut a = Histogram::new(vec![1.0, 2.0, 4.0]);
        let mut b = Histogram::new(vec![1.0, 3.0, 4.0]);
        b.observe(2.5);
        let before = a.clone();
        let err = a.try_merge(&b).unwrap_err();
        assert_eq!(err.expected_bounds, 3);
        assert_eq!(err.got_bounds, 3);
        assert_eq!(err.first_diff, Some(1));
        assert!(err.to_string().contains("bound 1"), "{err}");
        // The destination is untouched on failure.
        assert_eq!(a, before);

        // Different lengths, shared prefix.
        let mut c = Histogram::new(vec![1.0, 2.0]);
        let err = c
            .try_merge(&Histogram::new(vec![1.0, 2.0, 4.0]))
            .unwrap_err();
        assert_eq!((err.expected_bounds, err.got_bounds), (2, 3));
        assert_eq!(err.first_diff, None);
        assert!(err.to_string().contains("length"), "{err}");

        // Identical layouts still merge exactly.
        let mut d = Histogram::new(vec![1.0, 3.0, 4.0]);
        d.try_merge(&b).unwrap();
        assert_eq!(d.count(), 1);

        // The panicking wrapper carries the typed error's message.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Histogram::new(vec![1.0]).merge(&Histogram::new(vec![2.0]))
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn jsonl_round_trips_every_metric_kind_and_layout() {
        let mut r = MetricsRegistry::new();
        r.inc("plain.counter", 42);
        r.set_gauge("negative.gauge", -3.25);
        r.set_gauge("tiny.gauge", 1.5e-9); // exponent formatting
        r.observe("hist.explicit", 2.0, || Histogram::new(vec![1.0, 4.0]));
        r.observe("hist.expo", 5e-4, || Histogram::exponential(1e-6, 4.0, 10));
        r.observe("hist.latency", 3e-3, Histogram::latency_seconds);
        // Escaped label values: quote, backslash, control char.
        let weird = "label \"quoted\" back\\slash\ttab";
        r.inc(weird, 7);

        let jsonl = r.to_jsonl();
        let parsed: Vec<_> = jsonl
            .lines()
            .map(|l| parse_jsonl_line(l).expect("every emitted line parses"))
            .collect();
        assert_eq!(parsed.len(), r.len());
        let field = |name: &str, key: &str| -> f64 {
            parsed
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .1
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("{name} field {key} missing"))
                .1
        };
        assert_eq!(field("plain.counter", "value"), 42.0);
        assert_eq!(field("negative.gauge", "value"), -3.25);
        assert_eq!(field("tiny.gauge", "value"), 1.5e-9);
        for h in ["hist.explicit", "hist.expo", "hist.latency"] {
            assert_eq!(field(h, "count"), 1.0, "{h}");
            assert_eq!(field(h, "sum"), field(h, "max"), "{h}");
        }
        // The escaped name round-trips back to the original string.
        assert_eq!(field(weird, "value"), 7.0);
    }

    #[test]
    fn parser_rejects_malformed_escapes() {
        assert!(parse_jsonl_line("{\"name\":\"a\\qb\",\"value\":1}").is_none());
        assert!(parse_jsonl_line("{\"name\":\"a\\u12\",\"value\":1}").is_none());
        assert_eq!(json_unescape("a\\u0041b"), Some("aAb".to_string()));
        assert_eq!(json_unescape("trailing\\"), None);
    }

    #[test]
    fn type_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.inc("x", 1);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.set_gauge("x", 1.0)
        }))
        .is_err());
    }
}
