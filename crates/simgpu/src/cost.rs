//! Cost accounting shared by the simulated device and the CPU model.
//!
//! Kernels (and the CPU reference pipeline) describe *what work they did* —
//! arithmetic operations by class, bytes moved through each level of the
//! memory hierarchy, synchronisation events — and the timing model in
//! [`crate::timing`] converts those counts into simulated seconds for a
//! particular [`crate::device::DeviceSpec`].
//!
//! Counting at this granularity is what makes the paper's optimizations
//! *visible* to the simulator: kernel fusion removes global-memory bytes and
//! kernel launches, vectorization moves bytes from the scalar-load to the
//! vector-load class (which coalesces better), instruction selection moves
//! ops from the `div` class to the `bit` class, and unrolling the last
//! wavefront of the reduction removes barrier events.

/// Arithmetic operation classes with distinct costs on both the simulated
/// GPU and the modeled CPU.
///
/// The classes follow Section V-F of the paper ("division, multiplication
/// and remainder execute slowly on GPU, relative to the addition,
/// subtraction and bit operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Additions, subtractions.
    Add,
    /// Multiplications and fused multiply-adds (GPUs issue MAD at rate 1).
    Mul,
    /// Divisions and remainders.
    Div,
    /// Transcendentals: `pow`, `exp`, `log`, `sqrt`.
    Pow,
    /// Comparisons and selects.
    Cmp,
    /// Bit operations: shifts, and/or/xor (cheap everywhere).
    Bit,
}

/// A bundle of arithmetic operation counts.
///
/// Typically built once per kernel as a *per-item* recipe and charged with
/// [`CostCounters::charge_ops_n`], so hot loops do not pay accounting
/// overhead per operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Number of add/sub operations.
    pub add: u64,
    /// Number of mul/mad operations.
    pub mul: u64,
    /// Number of div/rem operations.
    pub div: u64,
    /// Number of transcendental operations.
    pub pow: u64,
    /// Number of compare/select operations.
    pub cmp: u64,
    /// Number of bit operations.
    pub bit: u64,
}

impl OpCounts {
    /// A bundle with all counts zero.
    pub const ZERO: OpCounts = OpCounts {
        add: 0,
        mul: 0,
        div: 0,
        pow: 0,
        cmp: 0,
        bit: 0,
    };

    /// Returns the total number of operations, ignoring class weights.
    pub fn total(&self) -> u64 {
        self.add + self.mul + self.div + self.pow + self.cmp + self.bit
    }

    /// Component-wise sum.
    pub fn plus(&self, o: &OpCounts) -> OpCounts {
        OpCounts {
            add: self.add + o.add,
            mul: self.mul + o.mul,
            div: self.div + o.div,
            pow: self.pow + o.pow,
            cmp: self.cmp + o.cmp,
            bit: self.bit + o.bit,
        }
    }

    /// Component-wise scaling by `n` (e.g. per-item recipe × item count).
    pub fn times(&self, n: u64) -> OpCounts {
        OpCounts {
            add: self.add * n,
            mul: self.mul * n,
            div: self.div * n,
            pow: self.pow * n,
            cmp: self.cmp * n,
            bit: self.bit * n,
        }
    }
}

/// Aggregated work counters for one kernel dispatch (or one CPU stage).
///
/// All counts are *device-wide totals*: per-work-item counts summed over
/// every work-item of the dispatch. The timing model divides by device
/// throughput to obtain time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostCounters {
    /// Arithmetic operations by class.
    pub ops: OpCounts,
    /// Bytes read from global memory through scalar (one-element) loads.
    pub global_read_scalar: u64,
    /// Bytes read from global memory through vector (`vloadN`) loads.
    pub global_read_vector: u64,
    /// Bytes written to global memory through scalar stores.
    pub global_write_scalar: u64,
    /// Bytes written to global memory through vector (`vstoreN`) stores.
    pub global_write_vector: u64,
    /// Bytes moved through local (LDS / shared) memory.
    pub local_bytes: u64,
    /// Local-memory bytes *allocated* per work-group (static LDS usage —
    /// limits how many groups a compute unit can keep resident).
    pub local_alloc_bytes: u64,
    /// Work-group barrier events (each stalls every wavefront in the group).
    pub barriers: u64,
    /// Divergent-branch events (wavefront executes both sides).
    pub divergent_branches: u64,
    /// Number of work-items that executed.
    pub items: u64,
    /// Number of work-groups that executed.
    pub groups: u64,
    /// Work-group size in work-items (lanes), for occupancy/barrier costing.
    pub group_lanes: u64,
}

impl CostCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes moved through global memory (reads + writes, any width).
    pub fn global_bytes(&self) -> u64 {
        self.global_read_scalar
            + self.global_read_vector
            + self.global_write_scalar
            + self.global_write_vector
    }

    /// Charges one op bundle, `n` times.
    pub fn charge_ops_n(&mut self, per_item: &OpCounts, n: u64) {
        self.ops = self.ops.plus(&per_item.times(n));
    }

    /// Charges a single op bundle.
    pub fn charge_ops(&mut self, ops: &OpCounts) {
        self.ops = self.ops.plus(ops);
    }

    /// Merges another counter set into this one (used when reducing the
    /// per-work-group counters of a parallel dispatch).
    pub fn merge(&mut self, o: &CostCounters) {
        self.ops = self.ops.plus(&o.ops);
        self.global_read_scalar += o.global_read_scalar;
        self.global_read_vector += o.global_read_vector;
        self.global_write_scalar += o.global_write_scalar;
        self.global_write_vector += o.global_write_vector;
        self.local_bytes += o.local_bytes;
        // Allocation is per-group, not additive.
        self.local_alloc_bytes = self.local_alloc_bytes.max(o.local_alloc_bytes);
        self.barriers += o.barriers;
        self.divergent_branches += o.divergent_branches;
        self.items += o.items;
        self.groups += o.groups;
        // group_lanes is a per-dispatch constant, keep the max so a merge of
        // a zeroed accumulator with a real counter keeps the real value.
        self.group_lanes = self.group_lanes.max(o.group_lanes);
    }
}

/// Builder-style helpers so per-kernel op recipes read declaratively.
///
/// ```
/// use simgpu::cost::OpCounts;
/// let per_pixel = OpCounts::ZERO.adds(6).muls(2).divs(1);
/// assert_eq!(per_pixel.total(), 9);
/// ```
impl OpCounts {
    /// Adds `n` add/sub operations.
    pub fn adds(mut self, n: u64) -> Self {
        self.add += n;
        self
    }
    /// Adds `n` mul/mad operations.
    pub fn muls(mut self, n: u64) -> Self {
        self.mul += n;
        self
    }
    /// Adds `n` div/rem operations.
    pub fn divs(mut self, n: u64) -> Self {
        self.div += n;
        self
    }
    /// Adds `n` transcendental operations.
    pub fn pows(mut self, n: u64) -> Self {
        self.pow += n;
        self
    }
    /// Adds `n` compare/select operations.
    pub fn cmps(mut self, n: u64) -> Self {
        self.cmp += n;
        self
    }
    /// Adds `n` bit operations.
    pub fn bits(mut self, n: u64) -> Self {
        self.bit += n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_algebra() {
        let a = OpCounts::ZERO
            .adds(1)
            .muls(2)
            .divs(3)
            .pows(4)
            .cmps(5)
            .bits(6);
        let b = a.plus(&a);
        assert_eq!(b.add, 2);
        assert_eq!(b.bit, 12);
        assert_eq!(a.times(10).total(), a.total() * 10);
    }

    #[test]
    fn counters_merge_sums_everything() {
        let mut a = CostCounters::new();
        a.global_read_scalar = 100;
        a.barriers = 2;
        a.items = 64;
        a.groups = 1;
        a.group_lanes = 64;
        let mut b = CostCounters::new();
        b.global_read_scalar = 50;
        b.global_write_vector = 16;
        b.items = 64;
        b.groups = 1;
        b.group_lanes = 64;
        a.merge(&b);
        assert_eq!(a.global_read_scalar, 150);
        assert_eq!(a.global_write_vector, 16);
        assert_eq!(a.items, 128);
        assert_eq!(a.groups, 2);
        assert_eq!(a.group_lanes, 64);
        assert_eq!(a.global_bytes(), 166);
    }

    #[test]
    fn charge_ops_n_scales() {
        let mut c = CostCounters::new();
        let per_item = OpCounts::ZERO.adds(3).pows(1);
        c.charge_ops_n(&per_item, 1000);
        assert_eq!(c.ops.add, 3000);
        assert_eq!(c.ops.pow, 1000);
    }

    #[test]
    fn merge_keeps_group_lanes_from_real_counter() {
        let mut acc = CostCounters::new();
        let mut real = CostCounters::new();
        real.group_lanes = 256;
        acc.merge(&real);
        assert_eq!(acc.group_lanes, 256);
    }
}
