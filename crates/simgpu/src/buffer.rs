//! Device buffers and the views kernels use to access them.
//!
//! A [`Buffer`] owns a slab of device memory. Kernels do not touch buffers
//! directly; they capture cheap, clonable [`GlobalView`] (read) and
//! [`GlobalWriteView`] (write) handles and go through the
//! [`crate::kernel::GroupCtx`] accessors, which do the cost accounting.
//!
//! # Safety model
//!
//! Work-groups of one dispatch run in parallel (rayon). The simulator
//! relies on the same invariant a real GPU kernel does: *distinct
//! work-items write distinct elements*. Reads and writes go through raw
//! pointers internally; the invariant is checked — not assumed — when the
//! owning [`crate::context::Context`] enables validation, in which case
//! every store sets a per-element mark and a second store to the same
//! element within one write epoch is reported as a [`Error::WriteRace`].
//!
//! [`Error::WriteRace`]: crate::error::Error::WriteRace

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Element types storable in device buffers.
pub trait Scalar: Copy + Send + Sync + Default + 'static {}
impl Scalar for f32 {}
impl Scalar for f64 {}
impl Scalar for u8 {}
impl Scalar for i32 {}
impl Scalar for u32 {}
impl Scalar for u64 {}

/// `UnsafeCell` that can be shared across threads. All aliasing discipline
/// is enforced by the dispatch structure (disjoint writes) and optionally
/// checked by the validation marks.
struct SyncCell<T>(UnsafeCell<Box<[T]>>);
// SAFETY: access discipline is the GPU invariant documented in the module
// docs; violations are caught by the validation layer in tests.
unsafe impl<T: Scalar> Sync for SyncCell<T> {}
unsafe impl<T: Scalar> Send for SyncCell<T> {}

pub(crate) struct BufferInner<T: Scalar> {
    data: SyncCell<T>,
    len: usize,
    /// One mark per element; `Some` only when the context validates writes.
    marks: Option<Box<[AtomicU8]>>,
    /// `index + 1` of the first detected double-write, 0 if none.
    race: AtomicUsize,
    /// True while a map guard is outstanding (aliasing check).
    pub(crate) mapped: AtomicBool,
    /// Debug label (usually the logical matrix name, e.g. `"pEdge"`).
    label: String,
}

/// A slab of simulated device memory holding `len` elements of `T`.
///
/// Created through [`crate::context::Context::buffer`] /
/// [`Context::buffer_from`](crate::context::Context::buffer_from).
/// Clones share the same storage, like `cl_mem` handles.
pub struct Buffer<T: Scalar> {
    pub(crate) inner: Arc<BufferInner<T>>,
}

impl<T: Scalar> Clone for Buffer<T> {
    fn clone(&self) -> Self {
        Buffer { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Scalar> Buffer<T> {
    pub(crate) fn new(label: &str, len: usize, validate: bool) -> Self {
        let data = vec![T::default(); len].into_boxed_slice();
        let marks = if validate {
            Some((0..len).map(|_| AtomicU8::new(0)).collect::<Vec<_>>().into_boxed_slice())
        } else {
            None
        };
        Buffer {
            inner: Arc::new(BufferInner {
                data: SyncCell(UnsafeCell::new(data)),
                len,
                marks,
                race: AtomicUsize::new(0),
                mapped: AtomicBool::new(false),
                label: label.to_string(),
            }),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True if the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// The debug label the buffer was created with.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// Size of the buffer in bytes.
    pub fn byte_len(&self) -> u64 {
        (self.inner.len * std::mem::size_of::<T>()) as u64
    }

    /// Read-only view for capture by kernels.
    pub fn view(&self) -> GlobalView<T> {
        GlobalView { inner: Arc::clone(&self.inner) }
    }

    /// Writable view for capture by kernels.
    pub fn write_view(&self) -> GlobalWriteView<T> {
        GlobalWriteView { inner: Arc::clone(&self.inner) }
    }

    /// Starts a new write epoch: clears validation marks and any recorded
    /// race. Called by the queue before each dispatch that declares this
    /// buffer as an output.
    pub fn begin_write_epoch(&self) {
        if let Some(marks) = &self.inner.marks {
            for m in marks.iter() {
                m.store(0, Ordering::Relaxed);
            }
        }
        self.inner.race.store(0, Ordering::Relaxed);
    }

    /// Index of the first double-written element in the current epoch, if
    /// the validation layer detected one.
    pub fn race(&self) -> Option<usize> {
        match self.inner.race.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n - 1),
        }
    }

    /// Copies the buffer contents out for inspection.
    ///
    /// This is a *simulation debugging* facility: it does not charge any
    /// transfer time. Model-honest readbacks go through
    /// [`crate::queue::CommandQueue::enqueue_read`].
    pub fn snapshot(&self) -> Vec<T> {
        // SAFETY: no kernel is running while the host inspects (dispatches
        // are synchronous in the simulator).
        unsafe { (*self.inner.data.0.get()).to_vec() }
    }

    /// Overwrites buffer contents directly, without charging transfer time.
    /// Counterpart of [`Buffer::snapshot`] for test setup.
    pub fn fill_from(&self, src: &[T]) {
        assert_eq!(src.len(), self.inner.len, "fill_from length mismatch");
        // SAFETY: host-side, no concurrent kernel.
        unsafe {
            (*self.inner.data.0.get()).copy_from_slice(src);
        }
    }
}

impl<T: Scalar> BufferInner<T> {
    #[inline]
    pub(crate) fn load(&self, idx: usize) -> T {
        debug_assert!(idx < self.len, "load out of bounds: {idx} >= {}", self.len);
        // SAFETY: idx < len checked in debug; concurrent disjoint writes do
        // not alias this element per the dispatch invariant.
        unsafe { (*self.data.0.get())[idx] }
    }

    #[inline]
    pub(crate) fn store(&self, idx: usize, v: T) {
        debug_assert!(idx < self.len, "store out of bounds: {idx} >= {}", self.len);
        if let Some(marks) = &self.marks {
            if marks[idx].swap(1, Ordering::Relaxed) == 1 {
                // Record the first race only.
                let _ = self.race.compare_exchange(
                    0,
                    idx + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
        }
        // SAFETY: as above.
        unsafe {
            (*self.data.0.get())[idx] = v;
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Tries to mark the buffer mapped; `false` if already mapped.
    pub(crate) fn try_map(&self) -> bool {
        !self.mapped.swap(true, Ordering::AcqRel)
    }

    /// Clears the mapped flag.
    pub(crate) fn unmap(&self) {
        self.mapped.store(false, Ordering::Release);
    }

    /// Raw slice pointer for map guards. Callers must respect the mapping
    /// discipline enforced by `try_map`.
    pub(crate) fn data_ptr(&self) -> *mut T {
        // SAFETY: pointer derivation only; dereferencing is gated by the
        // map guard.
        unsafe { (*self.data.0.get()).as_mut_ptr() }
    }
}

/// Read-only handle to a buffer, cheap to clone into kernel closures.
pub struct GlobalView<T: Scalar> {
    pub(crate) inner: Arc<BufferInner<T>>,
}

impl<T: Scalar> Clone for GlobalView<T> {
    fn clone(&self) -> Self {
        GlobalView { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Scalar> GlobalView<T> {
    /// Number of elements visible through the view.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Raw, *unaccounted* element read. Prefer
    /// [`GroupCtx::load`](crate::kernel::GroupCtx::load), which charges the
    /// cost model; this accessor exists for index arithmetic setup and
    /// host-side checks.
    #[inline]
    pub fn get_raw(&self, idx: usize) -> T {
        self.inner.load(idx)
    }
}

/// Writable handle to a buffer, cheap to clone into kernel closures.
pub struct GlobalWriteView<T: Scalar> {
    pub(crate) inner: Arc<BufferInner<T>>,
}

impl<T: Scalar> Clone for GlobalWriteView<T> {
    fn clone(&self) -> Self {
        GlobalWriteView { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Scalar> GlobalWriteView<T> {
    /// Number of elements visible through the view.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Raw, *unaccounted* element write. Prefer
    /// [`GroupCtx::store`](crate::kernel::GroupCtx::store).
    #[inline]
    pub fn set_raw(&self, idx: usize, v: T) {
        self.inner.store(idx, v);
    }

    /// Raw, *unaccounted* element read from a writable view (used by
    /// read-modify-write stages).
    #[inline]
    pub fn get_raw(&self, idx: usize) -> T {
        self.inner.load(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let b: Buffer<f32> = Buffer::new("t", 16, false);
        b.fill_from(&(0..16).map(|i| i as f32).collect::<Vec<_>>());
        let s = b.snapshot();
        assert_eq!(s[3], 3.0);
        assert_eq!(b.len(), 16);
        assert_eq!(b.byte_len(), 64);
        assert_eq!(b.label(), "t");
    }

    #[test]
    fn views_share_storage() {
        let b: Buffer<f32> = Buffer::new("t", 4, false);
        let w = b.write_view();
        let r = b.view();
        w.set_raw(2, 7.5);
        assert_eq!(r.get_raw(2), 7.5);
        assert_eq!(b.snapshot()[2], 7.5);
    }

    #[test]
    fn race_detection_catches_double_write() {
        let b: Buffer<f32> = Buffer::new("t", 8, true);
        b.begin_write_epoch();
        let w = b.write_view();
        w.set_raw(5, 1.0);
        assert_eq!(b.race(), None);
        w.set_raw(5, 2.0);
        assert_eq!(b.race(), Some(5));
        // New epoch clears it.
        b.begin_write_epoch();
        assert_eq!(b.race(), None);
        w.set_raw(5, 3.0);
        assert_eq!(b.race(), None);
    }

    #[test]
    fn no_marks_means_no_race_reports() {
        let b: Buffer<f32> = Buffer::new("t", 8, false);
        let w = b.write_view();
        w.set_raw(1, 1.0);
        w.set_raw(1, 2.0);
        assert_eq!(b.race(), None);
    }

    #[test]
    fn parallel_disjoint_writes_are_clean() {
        use rayon::prelude::*;
        let b: Buffer<u32> = Buffer::new("t", 10_000, true);
        b.begin_write_epoch();
        let w = b.write_view();
        (0..10_000u32).into_par_iter().for_each(|i| {
            w.set_raw(i as usize, i * 2);
        });
        assert_eq!(b.race(), None);
        let s = b.snapshot();
        assert_eq!(s[1234], 2468);
    }

    #[test]
    fn parallel_racy_writes_are_caught() {
        use rayon::prelude::*;
        let b: Buffer<u32> = Buffer::new("t", 4, true);
        b.begin_write_epoch();
        let w = b.write_view();
        (0..1000u32).into_par_iter().for_each(|i| {
            w.set_raw((i % 4) as usize, i);
        });
        assert!(b.race().is_some());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fill_from_length_checked() {
        let b: Buffer<f32> = Buffer::new("t", 4, false);
        b.fill_from(&[1.0; 5]);
    }

    #[test]
    fn clone_is_shallow() {
        let b: Buffer<f32> = Buffer::new("t", 4, false);
        let c = b.clone();
        c.write_view().set_raw(0, 9.0);
        assert_eq!(b.snapshot()[0], 9.0);
    }
}
