//! Device buffers and the views kernels use to access them.
//!
//! A [`Buffer`] owns a slab of device memory. Kernels do not touch buffers
//! directly; they capture cheap, clonable [`GlobalView`] (read) and
//! [`GlobalWriteView`] (write) handles and go through the
//! [`crate::kernel::GroupCtx`] accessors, which do the cost accounting.
//!
//! # Safety model
//!
//! Work-groups of one dispatch run in parallel (scoped host threads, see
//! [`crate::par`]). The simulator
//! relies on the same invariant a real GPU kernel does: *distinct
//! work-items write distinct elements*. Reads and writes go through raw
//! pointers internally; the invariant is checked — not assumed — when the
//! owning [`crate::context::Context`] enables validation, in which case
//! every store sets a per-element mark and a second store to the same
//! element within one write epoch is reported as a [`Error::WriteRace`].
//!
//! [`Error::WriteRace`]: crate::error::Error::WriteRace

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use crate::pool::{BufferPool, PoolShared};
use crate::sanitize::{BufferShadow, SanitizeShared};

/// Element types storable in device buffers.
pub trait Scalar: Copy + Send + Sync + Default + 'static {}
impl Scalar for f32 {}
impl Scalar for f64 {}
impl Scalar for u8 {}
impl Scalar for i32 {}
impl Scalar for u32 {}
impl Scalar for u64 {}

/// `UnsafeCell` that can be shared across threads. All aliasing discipline
/// is enforced by the dispatch structure (disjoint writes) and optionally
/// checked by the validation marks.
struct SyncCell<T>(UnsafeCell<Box<[T]>>);
// SAFETY: access discipline is the GPU invariant documented in the module
// docs; violations are caught by the validation layer in tests.
unsafe impl<T: Scalar> Sync for SyncCell<T> {}
unsafe impl<T: Scalar> Send for SyncCell<T> {}

pub(crate) struct BufferInner<T: Scalar> {
    data: SyncCell<T>,
    len: usize,
    /// One mark per element; `Some` only when the context validates writes.
    marks: Option<Box<[AtomicU8]>>,
    /// `index + 1` of the first detected double-write, 0 if none.
    race: AtomicUsize,
    /// True while a map guard is outstanding (aliasing check).
    pub(crate) mapped: AtomicBool,
    /// Debug label (usually the logical matrix name, e.g. `"pEdge"`).
    label: String,
    /// Pool to return the backing slab to on drop, for pool-managed
    /// buffers. `Weak`: a buffer outliving its context must not keep the
    /// pool (and every parked slab) alive.
    pool: Option<Weak<PoolShared>>,
    /// Sanitizer shadow memory; `Some` only for buffers created from a
    /// sanitized context. Observation only — never alters data.
    shadow: Option<Arc<BufferShadow>>,
}

impl<T: Scalar> Drop for BufferInner<T> {
    fn drop(&mut self) {
        if let Some(weak) = self.pool.take() {
            if let Some(pool) = weak.upgrade() {
                pool.retire_live();
                let slab = std::mem::take(self.data.0.get_mut());
                pool.give(&self.label, slab);
            }
        }
    }
}

/// A slab of simulated device memory holding `len` elements of `T`.
///
/// Created through [`crate::context::Context::buffer`] /
/// [`Context::buffer_from`](crate::context::Context::buffer_from).
/// Clones share the same storage, like `cl_mem` handles.
pub struct Buffer<T: Scalar> {
    pub(crate) inner: Arc<BufferInner<T>>,
}

impl<T: Scalar> Clone for Buffer<T> {
    fn clone(&self) -> Self {
        Buffer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Scalar> Buffer<T> {
    #[cfg(test)]
    pub(crate) fn new(label: &str, len: usize, validate: bool) -> Self {
        Self::build_in(label, len, validate, None, None)
    }

    /// Full-control constructor used by [`crate::context::Context`]:
    /// optional pooling (reuse + re-zero of a recycled slab with the same
    /// `(label, len, T)` identity) and an optional sanitizer shadow. The
    /// shadow is always fresh, so a pooled buffer starts every life
    /// uninitialised as far as the sanitizer can tell.
    pub(crate) fn build_in(
        label: &str,
        len: usize,
        validate: bool,
        sanitize: Option<&Arc<SanitizeShared>>,
        pool: Option<&BufferPool>,
    ) -> Self {
        let (data, pool_weak) = match pool {
            Some(pool) => {
                let data = match pool.shared.take::<T>(label, len) {
                    Some(mut slab) => {
                        slab.fill(T::default());
                        slab
                    }
                    None => vec![T::default(); len].into_boxed_slice(),
                };
                (data, Some(Arc::downgrade(&pool.shared)))
            }
            None => (vec![T::default(); len].into_boxed_slice(), None),
        };
        let shadow = sanitize.map(|s| {
            Arc::new(BufferShadow::new(
                Arc::clone(s),
                label,
                len,
                std::mem::size_of::<T>(),
            ))
        });
        Self::build(label, len, validate, data, pool_weak, shadow)
    }

    fn build(
        label: &str,
        len: usize,
        validate: bool,
        data: Box<[T]>,
        pool: Option<Weak<PoolShared>>,
        shadow: Option<Arc<BufferShadow>>,
    ) -> Self {
        debug_assert_eq!(data.len(), len);
        let marks = if validate {
            Some(
                (0..len)
                    .map(|_| AtomicU8::new(0))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            )
        } else {
            None
        };
        Buffer {
            inner: Arc::new(BufferInner {
                data: SyncCell(UnsafeCell::new(data)),
                len,
                marks,
                race: AtomicUsize::new(0),
                mapped: AtomicBool::new(false),
                label: label.to_string(),
                pool,
                shadow,
            }),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True if the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// The debug label the buffer was created with.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// Size of the buffer in bytes.
    pub fn byte_len(&self) -> u64 {
        (self.inner.len * std::mem::size_of::<T>()) as u64
    }

    /// Buffer identity for the static access checker: label, extent, and
    /// element size.
    pub fn info(&self) -> crate::access::BufRef {
        crate::access::BufRef {
            label: self.inner.label.clone(),
            len: self.inner.len,
            elem_bytes: std::mem::size_of::<T>() as u64,
        }
    }

    /// Read-only view for capture by kernels.
    pub fn view(&self) -> GlobalView<T> {
        let ptr = self.inner.data_ptr();
        GlobalView {
            inner: Arc::clone(&self.inner),
            ptr,
        }
    }

    /// Writable view for capture by kernels.
    pub fn write_view(&self) -> GlobalWriteView<T> {
        let ptr = self.inner.data_ptr();
        let validate = self.inner.marks.is_some();
        GlobalWriteView {
            inner: Arc::clone(&self.inner),
            ptr,
            validate,
        }
    }

    /// Starts a new write epoch: clears validation marks and any recorded
    /// race. Called by the queue before each dispatch that declares this
    /// buffer as an output.
    pub fn begin_write_epoch(&self) {
        if let Some(marks) = &self.inner.marks {
            for m in marks.iter() {
                m.store(0, Ordering::Relaxed);
            }
        }
        self.inner.race.store(0, Ordering::Relaxed);
    }

    /// Index of the first double-written element in the current epoch, if
    /// the validation layer detected one.
    pub fn race(&self) -> Option<usize> {
        match self.inner.race.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n - 1),
        }
    }

    /// Copies the buffer contents out for inspection.
    ///
    /// This is a *simulation debugging* facility: it does not charge any
    /// transfer time. Model-honest readbacks go through
    /// [`crate::queue::CommandQueue::enqueue_read`].
    pub fn snapshot(&self) -> Vec<T> {
        // SAFETY: no kernel is running while the host inspects (dispatches
        // are synchronous in the simulator).
        unsafe { (*self.inner.data.0.get()).to_vec() }
    }

    /// Overwrites buffer contents directly, without charging transfer time.
    /// Counterpart of [`Buffer::snapshot`] for test setup.
    pub fn fill_from(&self, src: &[T]) {
        assert_eq!(src.len(), self.inner.len, "fill_from length mismatch");
        if let Some(sh) = &self.inner.shadow {
            sh.mark_init_range(0, src.len());
        }
        // SAFETY: host-side, no concurrent kernel.
        unsafe {
            (*self.inner.data.0.get()).copy_from_slice(src);
        }
    }

    /// Marks the whole buffer initialised for the sanitizer's stale-read
    /// detector. Called when a map-write guard exposes the full slab to
    /// the host.
    pub(crate) fn mark_all_init(&self) {
        if let Some(sh) = &self.inner.shadow {
            sh.mark_init_range(0, self.inner.len);
        }
    }
}

impl<T: Scalar> BufferInner<T> {
    #[inline]
    pub(crate) fn store(&self, idx: usize, v: T) {
        assert!(idx < self.len, "store out of bounds on {:?}", self.label);
        if let Some(marks) = &self.marks {
            if marks[idx].swap(1, Ordering::Relaxed) == 1 {
                // Record the first race only.
                let _ =
                    self.race
                        .compare_exchange(0, idx + 1, Ordering::Relaxed, Ordering::Relaxed);
            }
        }
        // SAFETY: as above.
        unsafe {
            *(*self.data.0.get()).as_mut_ptr().add(idx) = v;
        }
    }

    /// Bulk host→device copy of `src` into `offset..offset+src.len()`.
    /// Equivalent to a `store` per element (including write-race marking
    /// under validation) but memcpy-speed when no marks are kept.
    pub(crate) fn copy_in(&self, offset: usize, src: &[T]) {
        assert!(
            offset + src.len() <= self.len,
            "copy_in out of bounds on {:?}",
            self.label
        );
        if let Some(sh) = &self.shadow {
            sh.mark_init_range(offset, src.len());
        }
        if self.marks.is_some() {
            for (i, v) in src.iter().enumerate() {
                self.store(offset + i, *v);
            }
            return;
        }
        // SAFETY: bounds asserted above; host-side transfer, no concurrent
        // kernel is running on this buffer per the queue discipline.
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                (*self.data.0.get()).as_mut_ptr().add(offset),
                src.len(),
            );
        }
    }

    /// Bulk device→host copy of `offset..offset+dst.len()` into `dst`.
    pub(crate) fn copy_out(&self, offset: usize, dst: &mut [T]) {
        assert!(
            offset + dst.len() <= self.len,
            "copy_out out of bounds on {:?}",
            self.label
        );
        // SAFETY: bounds asserted above; reads never race per the dispatch
        // invariant.
        unsafe {
            std::ptr::copy_nonoverlapping(
                (*self.data.0.get()).as_ptr().add(offset),
                dst.as_mut_ptr(),
                dst.len(),
            );
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Tries to mark the buffer mapped; `false` if already mapped.
    pub(crate) fn try_map(&self) -> bool {
        !self.mapped.swap(true, Ordering::AcqRel)
    }

    /// Clears the mapped flag.
    pub(crate) fn unmap(&self) {
        self.mapped.store(false, Ordering::Release);
    }

    /// Raw slice pointer for map guards. Callers must respect the mapping
    /// discipline enforced by `try_map`.
    pub(crate) fn data_ptr(&self) -> *mut T {
        // SAFETY: pointer derivation only; dereferencing is gated by the
        // map guard.
        unsafe { (*self.data.0.get()).as_mut_ptr() }
    }
}

/// Read-only handle to a buffer, cheap to clone into kernel closures.
///
/// Caches the raw data pointer at creation so the kernel hot path is a
/// single bounds check + load, instead of re-chasing
/// `Arc → UnsafeCell → Box<[T]>` on every element access (the `Box`
/// allocation address is stable for the life of the view's `Arc`).
pub struct GlobalView<T: Scalar> {
    pub(crate) inner: Arc<BufferInner<T>>,
    ptr: *const T,
}

// SAFETY: the pointer targets storage owned by `inner` (kept alive by the
// Arc); cross-thread access follows the same disjoint-writes dispatch
// invariant as `SyncCell`.
unsafe impl<T: Scalar> Send for GlobalView<T> {}
unsafe impl<T: Scalar> Sync for GlobalView<T> {}

impl<T: Scalar> Clone for GlobalView<T> {
    fn clone(&self) -> Self {
        GlobalView {
            inner: Arc::clone(&self.inner),
            ptr: self.ptr,
        }
    }
}

impl<T: Scalar> GlobalView<T> {
    /// Number of elements visible through the view.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Buffer identity for the static access checker.
    pub fn info(&self) -> crate::access::BufRef {
        crate::access::BufRef {
            label: self.inner.label.clone(),
            len: self.inner.len(),
            elem_bytes: std::mem::size_of::<T>() as u64,
        }
    }

    /// True if the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Raw, *unaccounted* element read. Prefer
    /// [`GroupCtx::load`](crate::kernel::GroupCtx::load), which charges the
    /// cost model; this accessor exists for index arithmetic setup and
    /// host-side checks.
    #[inline]
    pub fn get_raw(&self, idx: usize) -> T {
        if let Some(sh) = &self.inner.shadow {
            if let Some((e, tag)) = sh.shared.cursor() {
                if idx >= self.inner.len {
                    // Record and recover: the sanitizer keeps collecting
                    // instead of aborting on the first bad access.
                    sh.on_oob(idx, false);
                    return T::default();
                }
                sh.on_read(e, tag, idx);
            }
        }
        assert!(
            idx < self.inner.len,
            "load out of bounds on {:?}",
            self.inner.label
        );
        // SAFETY: bounds asserted; disjoint-writes invariant as per module
        // docs; `ptr` is valid while `inner` is alive.
        unsafe { *self.ptr.add(idx) }
    }

    /// Raw, *unaccounted* bulk read of `out.len()` consecutive elements
    /// starting at `idx` — one bounds check for the whole run, so hot
    /// kernel loops that charge their traffic explicitly (via
    /// [`GroupCtx::charge`](crate::kernel::GroupCtx::charge) /
    /// [`GroupCtx::charge_global_n`](crate::kernel::GroupCtx::charge_global_n))
    /// stay vectorizable.
    #[inline]
    pub fn read_into(&self, idx: usize, out: &mut [T]) {
        if let Some(sh) = &self.inner.shadow {
            if let Some((e, tag)) = sh.shared.cursor() {
                let valid = sh.span_read(e, tag, idx, out.len());
                if valid < out.len() {
                    // Recover: copy the in-bounds prefix, zero the rest.
                    if valid > 0 {
                        // SAFETY: `idx + valid <= len` by construction.
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                self.ptr.add(idx),
                                out.as_mut_ptr(),
                                valid,
                            );
                        }
                    }
                    out[valid..].fill(T::default());
                    return;
                }
            }
        }
        assert!(
            idx + out.len() <= self.inner.len,
            "bulk load out of bounds on {:?}",
            self.inner.label
        );
        // SAFETY: bounds asserted; reads never race per the dispatch
        // invariant.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(idx), out.as_mut_ptr(), out.len());
        }
    }

    /// Raw, *unaccounted* read of four consecutive elements.
    #[inline]
    pub fn get4_raw(&self, idx: usize) -> [T; 4] {
        let mut q = [T::default(); 4];
        self.read_into(idx, &mut q);
        q
    }

    /// Raw, *unaccounted* borrow of `len` consecutive elements starting at
    /// `idx`, for span-at-a-time kernel loops (the returned slice borrows
    /// the view, so the storage stays alive). Callers rely on the dispatch
    /// invariant: no work-item writes this buffer while the slice is held.
    #[inline]
    pub fn slice_raw(&self, idx: usize, len: usize) -> &[T] {
        if let Some(sh) = &self.inner.shadow {
            if let Some((e, tag)) = sh.shared.cursor() {
                if sh.span_read(e, tag, idx, len) < len {
                    // Recover with a zeroed stand-in slice. Leaked — only
                    // on the violation path, which the report flags.
                    return Box::leak(vec![T::default(); len].into_boxed_slice());
                }
            }
        }
        assert!(
            idx + len <= self.inner.len,
            "slice out of bounds on {:?}",
            self.inner.label
        );
        // SAFETY: bounds asserted; reads never race per the dispatch
        // invariant.
        unsafe { std::slice::from_raw_parts(self.ptr.add(idx), len) }
    }
}

/// Writable handle to a buffer, cheap to clone into kernel closures.
///
/// Like [`GlobalView`], caches the raw data pointer; stores fall back to
/// the slow path only when the buffer keeps validation marks.
pub struct GlobalWriteView<T: Scalar> {
    pub(crate) inner: Arc<BufferInner<T>>,
    ptr: *mut T,
    validate: bool,
}

// SAFETY: as for `GlobalView`.
unsafe impl<T: Scalar> Send for GlobalWriteView<T> {}
unsafe impl<T: Scalar> Sync for GlobalWriteView<T> {}

impl<T: Scalar> Clone for GlobalWriteView<T> {
    fn clone(&self) -> Self {
        GlobalWriteView {
            inner: Arc::clone(&self.inner),
            ptr: self.ptr,
            validate: self.validate,
        }
    }
}

impl<T: Scalar> GlobalWriteView<T> {
    /// Number of elements visible through the view.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Buffer identity for the static access checker.
    pub fn info(&self) -> crate::access::BufRef {
        crate::access::BufRef {
            label: self.inner.label.clone(),
            len: self.inner.len(),
            elem_bytes: std::mem::size_of::<T>() as u64,
        }
    }

    /// True if the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Raw, *unaccounted* element write. Prefer
    /// [`GroupCtx::store`](crate::kernel::GroupCtx::store).
    #[inline]
    pub fn set_raw(&self, idx: usize, v: T) {
        if let Some(sh) = &self.inner.shadow {
            match sh.shared.cursor() {
                Some((e, tag)) => {
                    if idx >= self.inner.len {
                        // Record and recover by dropping the store.
                        sh.on_oob(idx, true);
                        return;
                    }
                    sh.on_write(e, tag, idx);
                }
                // Host-side store outside any dispatch (e.g. the CPU
                // border stage): only feeds the stale-read detector.
                None => {
                    if idx < self.inner.len {
                        sh.mark_init_range(idx, 1);
                    }
                }
            }
        }
        if self.validate {
            self.inner.store(idx, v);
            return;
        }
        assert!(
            idx < self.inner.len,
            "store out of bounds on {:?}",
            self.inner.label
        );
        // SAFETY: bounds asserted; work-items write disjoint elements per
        // the dispatch invariant; `ptr` is valid while `inner` is alive.
        unsafe {
            *self.ptr.add(idx) = v;
        }
    }

    /// Raw, *unaccounted* element read from a writable view (used by
    /// read-modify-write stages).
    #[inline]
    pub fn get_raw(&self, idx: usize) -> T {
        if let Some(sh) = &self.inner.shadow {
            if let Some((e, tag)) = sh.shared.cursor() {
                if idx >= self.inner.len {
                    sh.on_oob(idx, false);
                    return T::default();
                }
                // A read through a write view participates in the same
                // conflict tracking: another item's write to this element
                // is a read/write race.
                sh.on_read(e, tag, idx);
            }
        }
        assert!(
            idx < self.inner.len,
            "load out of bounds on {:?}",
            self.inner.label
        );
        // SAFETY: as for `set_raw`.
        unsafe { *self.ptr.add(idx) }
    }

    /// Shadow bookkeeping for a span store. Returns `Some(valid)` when the
    /// sanitizer recorded an out-of-bounds overflow and the caller must
    /// truncate the store to the in-bounds prefix.
    #[inline]
    fn shadow_span_write(&self, idx: usize, n: usize) -> Option<usize> {
        if let Some(sh) = &self.inner.shadow {
            match sh.shared.cursor() {
                Some((e, tag)) => {
                    let valid = sh.span_write(e, tag, idx, n);
                    if valid < n {
                        return Some(valid);
                    }
                }
                None => {
                    if idx + n <= self.inner.len {
                        sh.mark_init_range(idx, n);
                    }
                }
            }
        }
        None
    }

    /// Recovery path for a sanitized out-of-bounds span store: writes only
    /// the in-bounds prefix.
    #[cold]
    fn store_truncated(&self, idx: usize, src: &[T], valid: usize) {
        for (k, v) in src[..valid].iter().enumerate() {
            if self.validate {
                self.inner.store(idx + k, *v);
            } else {
                // SAFETY: `idx + valid <= len` per the shadow bounds check.
                unsafe {
                    *self.ptr.add(idx + k) = *v;
                }
            }
        }
    }

    /// Raw, *unaccounted* write of four consecutive elements — one bounds
    /// check. Falls back to per-element stores when validation marks are
    /// kept, so write-race detection still sees every element.
    #[inline]
    pub fn set4_raw(&self, idx: usize, v: [T; 4]) {
        if let Some(valid) = self.shadow_span_write(idx, 4) {
            self.store_truncated(idx, &v, valid);
            return;
        }
        if self.validate {
            for (k, x) in v.into_iter().enumerate() {
                self.inner.store(idx + k, x);
            }
            return;
        }
        assert!(
            idx + 4 <= self.inner.len,
            "bulk store out of bounds on {:?}",
            self.inner.label
        );
        // SAFETY: as for `set_raw`; the four elements belong to this
        // work-item per the dispatch invariant.
        unsafe {
            std::ptr::copy_nonoverlapping(v.as_ptr(), self.ptr.add(idx), 4);
        }
    }

    /// Raw, *unaccounted* write of a span of consecutive elements. Like
    /// [`GlobalWriteView::set4_raw`], per-element stores under validation
    /// (so write-race marks stay element-accurate), memcpy otherwise.
    #[inline]
    pub fn set_span_raw(&self, idx: usize, src: &[T]) {
        if let Some(valid) = self.shadow_span_write(idx, src.len()) {
            self.store_truncated(idx, src, valid);
            return;
        }
        if self.validate {
            for (k, v) in src.iter().enumerate() {
                self.inner.store(idx + k, *v);
            }
            return;
        }
        assert!(
            idx + src.len() <= self.inner.len,
            "bulk store out of bounds on {:?}",
            self.inner.label
        );
        // SAFETY: as for `set_raw`; the span belongs to the writing
        // work-items per the dispatch invariant.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(idx), src.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let b: Buffer<f32> = Buffer::new("t", 16, false);
        b.fill_from(&(0..16).map(|i| i as f32).collect::<Vec<_>>());
        let s = b.snapshot();
        assert_eq!(s[3], 3.0);
        assert_eq!(b.len(), 16);
        assert_eq!(b.byte_len(), 64);
        assert_eq!(b.label(), "t");
    }

    #[test]
    fn views_share_storage() {
        let b: Buffer<f32> = Buffer::new("t", 4, false);
        let w = b.write_view();
        let r = b.view();
        w.set_raw(2, 7.5);
        assert_eq!(r.get_raw(2), 7.5);
        assert_eq!(b.snapshot()[2], 7.5);
    }

    #[test]
    fn race_detection_catches_double_write() {
        let b: Buffer<f32> = Buffer::new("t", 8, true);
        b.begin_write_epoch();
        let w = b.write_view();
        w.set_raw(5, 1.0);
        assert_eq!(b.race(), None);
        w.set_raw(5, 2.0);
        assert_eq!(b.race(), Some(5));
        // New epoch clears it.
        b.begin_write_epoch();
        assert_eq!(b.race(), None);
        w.set_raw(5, 3.0);
        assert_eq!(b.race(), None);
    }

    #[test]
    fn no_marks_means_no_race_reports() {
        let b: Buffer<f32> = Buffer::new("t", 8, false);
        let w = b.write_view();
        w.set_raw(1, 1.0);
        w.set_raw(1, 2.0);
        assert_eq!(b.race(), None);
    }

    #[test]
    fn parallel_disjoint_writes_are_clean() {
        let b: Buffer<u32> = Buffer::new("t", 10_000, true);
        b.begin_write_epoch();
        let w = b.write_view();
        crate::par::for_each_index(10_000, 8, |i| {
            w.set_raw(i, i as u32 * 2);
        });
        assert_eq!(b.race(), None);
        let s = b.snapshot();
        assert_eq!(s[1234], 2468);
    }

    #[test]
    fn parallel_racy_writes_are_caught() {
        let b: Buffer<u32> = Buffer::new("t", 4, true);
        b.begin_write_epoch();
        let w = b.write_view();
        crate::par::for_each_index(1000, 8, |i| {
            w.set_raw(i % 4, i as u32);
        });
        assert!(b.race().is_some());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fill_from_length_checked() {
        let b: Buffer<f32> = Buffer::new("t", 4, false);
        b.fill_from(&[1.0; 5]);
    }

    #[test]
    fn clone_is_shallow() {
        let b: Buffer<f32> = Buffer::new("t", 4, false);
        let c = b.clone();
        c.write_view().set_raw(0, 9.0);
        assert_eq!(b.snapshot()[0], 9.0);
    }
}
