//! Hierarchical span tracing: a low-overhead, always-on-capable span tree
//! recorded alongside the command stream.
//!
//! Every queue command already leaves a [`crate::queue::CommandRecord`]
//! with its *simulated* interval; spans add the missing dimensions — the
//! **hierarchy** (frame → schedule phase / band → kernel dispatch → slice)
//! and the **wall clock** (what the host actually paid to run the
//! simulator). Each [`SpanRecord`] carries both timebases so the
//! attribution layer can compare them: a span whose wall share is far
//! above its simulated share is a host-side bottleneck, not a modeled one.
//!
//! Spans are recorded into a preallocated ring ([`SpanRing`]) owned by the
//! queue. Recording is **observation-only** by construction: the ring
//! never touches the virtual clock, the records, the counters, or any
//! buffer — it only copies interned names and reads `Instant::now()`. The
//! `tests/spans.rs` sweep enforces bit-identical pixels and simulated
//! seconds with spans on vs off across every optimization config, and
//! lint rule 8 statically bans mutation of observed state from this file.
//!
//! Wall-time attribution of leaf spans uses the *gap rule*: a leaf's wall
//! interval runs from the previous span event on the same ring to the
//! moment the leaf is recorded. Because queue commands execute
//! synchronously between their commits, the gap is exactly the host time
//! spent producing the command (kernel execution, memcpy, …) plus any
//! pipeline logic since the last event — a faithful "where did the wall
//! clock go" decomposition without per-call-site instrumentation.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::MetricsRegistry;

/// Default ring capacity: enough for many frames of the deepest pipeline
/// (a banded 4096² frame records a few hundred spans).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// What a span describes. Scope kinds (`Frame`, `Phase`, `Band`) are opened
/// and closed explicitly by the pipeline layers; leaf kinds are emitted
/// automatically by the queue as commands commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One full pipeline frame (scope).
    Frame,
    /// A schedule phase within a frame, e.g. `upload`, `megapass:A` (scope).
    Phase,
    /// One cache-resident band of a banded schedule (scope).
    Band,
    /// A committed kernel dispatch (leaf; simulated interval = the record).
    Kernel,
    /// One executed slice of a sliced dispatch (leaf; wall time only — the
    /// simulated clock moves at commit, not per slice).
    Slice,
    /// Host→device transfer: bulk, rect or map write (leaf).
    Transfer,
    /// Device→host readback (leaf).
    Readback,
    /// Host-side pipeline work charged to the CPU model (leaf).
    Host,
    /// Queue synchronisation (`finish`) (leaf).
    Sync,
}

impl SpanKind {
    /// Short lowercase tag for rendering and metric names.
    pub fn tag(self) -> &'static str {
        match self {
            SpanKind::Frame => "frame",
            SpanKind::Phase => "phase",
            SpanKind::Band => "band",
            SpanKind::Kernel => "kernel",
            SpanKind::Slice => "slice",
            SpanKind::Transfer => "transfer",
            SpanKind::Readback => "readback",
            SpanKind::Host => "host",
            SpanKind::Sync => "sync",
        }
    }

    /// Whether this kind is opened/closed as a scope (true) or emitted as
    /// a completed leaf (false).
    pub fn is_scope(self) -> bool {
        matches!(self, SpanKind::Frame | SpanKind::Phase | SpanKind::Band)
    }
}

/// Identifier of an open span, returned by [`SpanRing::open`] (via
/// `CommandQueue::span_open`) and consumed by the matching close. The
/// sentinel [`SpanId::NONE`] is returned when spans are disabled so call
/// sites stay branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Sentinel for "spans disabled / no parent".
    pub const NONE: SpanId = SpanId(u64::MAX);
}

/// One recorded span: a node of the frame's span tree.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Monotonically increasing id (never reused within a ring).
    pub id: u64,
    /// Parent span id, or `u64::MAX` for a root.
    pub parent: u64,
    /// Span class.
    pub kind: SpanKind,
    /// Span name (interned; kernels/transfers share the record's name).
    pub name: Arc<str>,
    /// Nesting depth at record time (roots are 0).
    pub depth: u16,
    /// Wall-clock start, nanoseconds since the ring's epoch.
    pub wall_start_ns: u64,
    /// Wall-clock end, nanoseconds since the ring's epoch (== start while
    /// a scope is still open).
    pub wall_end_ns: u64,
    /// Simulated start time, seconds on the owning queue's virtual clock.
    pub sim_start_s: f64,
    /// Simulated end time, seconds (== start for wall-only spans).
    pub sim_end_s: f64,
}

impl SpanRecord {
    /// Wall-clock duration in seconds.
    pub fn wall_s(&self) -> f64 {
        (self.wall_end_ns.saturating_sub(self.wall_start_ns)) as f64 * 1e-9
    }

    /// Simulated duration in seconds.
    pub fn sim_s(&self) -> f64 {
        self.sim_end_s - self.sim_start_s
    }
}

/// A preallocated ring of spans with an open-scope stack.
///
/// When the ring is full the oldest spans are evicted (the newest window
/// is kept); [`SpanRing::evicted`] counts how many were lost. Eviction
/// only drops history — it never blocks recording or reallocates.
pub struct SpanRing {
    epoch: Instant,
    buf: Vec<SpanRecord>,
    capacity: usize,
    /// Index of the oldest live entry in `buf`.
    tail: usize,
    /// Number of live entries.
    len: usize,
    /// Total spans ever recorded; the next span's id.
    seq: u64,
    /// Spans evicted by ring wrap-around.
    evicted: u64,
    /// Ids of currently open scopes, outermost first.
    stack: Vec<u64>,
    /// Wall timestamp of the most recent span event (the gap rule's left
    /// edge for the next leaf).
    last_wall_ns: u64,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (minimum 16).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        SpanRing {
            epoch: Instant::now(),
            buf: Vec::with_capacity(capacity),
            capacity,
            tail: 0,
            len: 0,
            seq: 0,
            evicted: 0,
            stack: Vec::new(),
            last_wall_ns: 0,
        }
    }

    /// Nanoseconds since the ring's epoch.
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push_record(&mut self, rec: SpanRecord) {
        if self.len < self.capacity {
            if self.buf.len() < self.capacity {
                self.buf.push(rec);
            } else {
                self.buf[(self.tail + self.len) % self.capacity] = rec;
            }
            self.len += 1;
        } else {
            // Full: overwrite the oldest entry.
            self.buf[self.tail] = rec;
            self.tail = (self.tail + 1) % self.capacity;
            self.evicted += 1;
        }
    }

    /// Buffer index of span `id`, if it is still in the retained window.
    fn index_of(&self, id: u64) -> Option<usize> {
        let first = self.seq - self.len as u64;
        if id < first || id >= self.seq {
            return None;
        }
        Some((self.tail + (id - first) as usize) % self.buf.len().max(1))
    }

    /// Opens a scope span at simulated time `sim_s`; subsequent spans nest
    /// under it until the matching [`SpanRing::close`].
    pub fn open(&mut self, kind: SpanKind, name: Arc<str>, sim_s: f64) -> SpanId {
        let now = self.now_ns();
        let id = self.seq;
        let rec = SpanRecord {
            id,
            parent: self.stack.last().copied().unwrap_or(u64::MAX),
            kind,
            name,
            depth: self.stack.len() as u16,
            wall_start_ns: now,
            wall_end_ns: now,
            sim_start_s: sim_s,
            sim_end_s: sim_s,
        };
        self.seq += 1;
        self.push_record(rec);
        self.stack.push(id);
        self.last_wall_ns = now;
        SpanId(id)
    }

    /// Closes the scope `id` at simulated time `sim_s`, popping it (and any
    /// scopes left open inside it) off the open stack.
    pub fn close(&mut self, id: SpanId, sim_s: f64) {
        let now = self.now_ns();
        while let Some(top) = self.stack.pop() {
            if let Some(i) = self.index_of(top) {
                self.buf[i].wall_end_ns = now;
                self.buf[i].sim_end_s = sim_s;
            }
            if top == id.0 {
                break;
            }
        }
        self.last_wall_ns = now;
    }

    /// Records a completed leaf span under the current scope. The wall
    /// interval is the gap since the previous span event (see module docs);
    /// the simulated interval is `[sim_start_s, sim_start_s + sim_dur_s]`.
    pub fn leaf(&mut self, kind: SpanKind, name: Arc<str>, sim_start_s: f64, sim_dur_s: f64) {
        let now = self.now_ns();
        let rec = SpanRecord {
            id: self.seq,
            parent: self.stack.last().copied().unwrap_or(u64::MAX),
            kind,
            name,
            depth: self.stack.len() as u16,
            wall_start_ns: self.last_wall_ns.min(now),
            wall_end_ns: now,
            sim_start_s,
            sim_end_s: sim_start_s + sim_dur_s,
        };
        self.seq += 1;
        self.push_record(rec);
        self.last_wall_ns = now;
    }

    /// The retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.len);
        for k in 0..self.len {
            out.push(self.buf[(self.tail + k) % self.buf.len().max(1)].clone());
        }
        out
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Spans lost to ring wrap-around since creation/clear.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears retained spans and the open stack, keeping the allocation
    /// (new measurement run; ids keep increasing).
    pub fn clear(&mut self) {
        self.tail = 0;
        self.len = 0;
        self.buf.clear();
        self.stack.clear();
        self.evicted = 0;
        self.last_wall_ns = self.now_ns();
    }
}

/// Aggregated statistics of one span-tree path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAgg {
    /// `/`-joined name path from the root, e.g. `frame/megapass:A/band`.
    pub path: String,
    /// Kind of the spans on this path.
    pub kind: SpanKind,
    /// Number of spans aggregated.
    pub count: u64,
    /// Total wall-clock seconds.
    pub wall_s: f64,
    /// Total simulated seconds.
    pub sim_s: f64,
}

/// Aggregates spans by their name path (parent names joined with `/`),
/// preserving first-occurrence order. Spans whose parents were evicted
/// from the ring aggregate as roots of their own paths.
pub fn aggregate(spans: &[SpanRecord]) -> Vec<SpanAgg> {
    use std::collections::HashMap;
    // id → position for parent-path lookup.
    let by_id: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut paths: Vec<String> = Vec::with_capacity(spans.len());
    let mut order: Vec<SpanAgg> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        let path = match by_id.get(&s.parent) {
            Some(&p) if p < i => format!("{}/{}", paths[p], s.name),
            _ => s.name.to_string(),
        };
        paths.push(path.clone());
        match index.get(&path) {
            Some(&k) => {
                order[k].count += 1;
                order[k].wall_s += s.wall_s();
                order[k].sim_s += s.sim_s();
            }
            None => {
                index.insert(path.clone(), order.len());
                order.push(SpanAgg {
                    path,
                    kind: s.kind,
                    count: 1,
                    wall_s: s.wall_s(),
                    sim_s: s.sim_s(),
                });
            }
        }
    }
    order
}

/// Writes the aggregated span statistics into a metrics registry under
/// `span.<path>.{wall_s, sim_s, count}`. Path separators stay `/` so span
/// metrics cannot collide with the dotted telemetry namespace.
pub fn to_registry(spans: &[SpanRecord], reg: &mut MetricsRegistry) {
    for a in aggregate(spans) {
        reg.set_gauge(&format!("span.{}.wall_s", a.path), a.wall_s);
        reg.set_gauge(&format!("span.{}.sim_s", a.path), a.sim_s);
        reg.inc(&format!("span.{}.count", a.path), a.count);
    }
}

/// Renders the span tree as an indented terminal listing. Sibling spans
/// with the same name and kind are folded into one line (`×N`); each line
/// shows total wall and simulated milliseconds plus the wall share of the
/// root.
pub fn span_tree(spans: &[SpanRecord]) -> String {
    use std::collections::HashMap;
    if spans.is_empty() {
        return String::from("(no spans)\n");
    }
    let by_id: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match by_id.get(&s.parent) {
            Some(&p) if p != i => children[p].push(i),
            _ => roots.push(i),
        }
    }
    let total_wall: f64 = roots.iter().map(|&i| spans[i].wall_s()).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>10} {:>10} {:>6}",
        "span", "wall ms", "sim ms", "wall%"
    );
    fn render(
        out: &mut String,
        spans: &[SpanRecord],
        children: &[Vec<usize>],
        nodes: &[usize],
        prefix: &str,
        total_wall: f64,
    ) {
        // Fold siblings sharing (kind, name) into one group, keeping
        // first-seen order; recurse into the union of their children.
        let mut groups: Vec<(SpanKind, Arc<str>, Vec<usize>)> = Vec::new();
        for &i in nodes {
            let s = &spans[i];
            match groups
                .iter_mut()
                .find(|(k, n, _)| *k == s.kind && **n == *s.name)
            {
                Some((_, _, v)) => v.push(i),
                None => groups.push((s.kind, Arc::clone(&s.name), vec![i])),
            }
        }
        let n_groups = groups.len();
        for (gi, (kind, name, members)) in groups.into_iter().enumerate() {
            let last = gi + 1 == n_groups;
            let branch = if last { "└─ " } else { "├─ " };
            let wall: f64 = members.iter().map(|&i| spans[i].wall_s()).sum();
            let sim: f64 = members.iter().map(|&i| spans[i].sim_s()).sum();
            let label = if members.len() > 1 {
                format!("{prefix}{branch}{name} ×{}", members.len())
            } else {
                format!("{prefix}{branch}{name}")
            };
            let share = if total_wall > 0.0 {
                wall / total_wall * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<44} {:>10.3} {:>10.3} {:>5.1}%  [{}]",
                label,
                wall * 1e3,
                sim * 1e3,
                share,
                kind.tag(),
            );
            let sub: Vec<usize> = members
                .iter()
                .flat_map(|&i| children[i].iter().copied())
                .collect();
            if !sub.is_empty() {
                let cont = if last { "   " } else { "│  " };
                render(
                    out,
                    spans,
                    children,
                    &sub,
                    &format!("{prefix}{cont}"),
                    total_wall,
                );
            }
        }
    }
    // Render roots without a branch glyph, their children indented.
    for &r in &roots {
        let s = &spans[r];
        let share = if total_wall > 0.0 {
            s.wall_s() / total_wall * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<44} {:>10.3} {:>10.3} {:>5.1}%  [{}]",
            s.name,
            s.wall_s() * 1e3,
            s.sim_s() * 1e3,
            share,
            s.kind.tag(),
        );
        render(&mut out, spans, &children, &children[r], "", total_wall);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn scopes_nest_and_close() {
        let mut ring = SpanRing::new(64);
        let f = ring.open(SpanKind::Frame, name("frame"), 0.0);
        let p = ring.open(SpanKind::Phase, name("upload"), 0.0);
        ring.leaf(SpanKind::Transfer, name("write:padded"), 0.0, 1e-3);
        ring.close(p, 1e-3);
        ring.close(f, 2e-3);
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].kind, SpanKind::Frame);
        assert_eq!(spans[0].parent, u64::MAX);
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[2].parent, spans[1].id);
        assert_eq!(spans[2].depth, 2);
        // Wall intervals nest: child within parent.
        assert!(spans[1].wall_start_ns >= spans[0].wall_start_ns);
        assert!(spans[1].wall_end_ns <= spans[0].wall_end_ns);
        assert!(spans[2].wall_start_ns >= spans[1].wall_start_ns);
        assert!(spans[2].wall_end_ns <= spans[1].wall_end_ns);
        // Simulated intervals recorded as given.
        assert_eq!(spans[2].sim_s(), 1e-3);
        assert_eq!(spans[0].sim_end_s, 2e-3);
    }

    #[test]
    fn close_pops_unclosed_inner_scopes() {
        let mut ring = SpanRing::new(64);
        let f = ring.open(SpanKind::Frame, name("frame"), 0.0);
        let _p = ring.open(SpanKind::Phase, name("p"), 0.0);
        ring.close(f, 1.0); // phase left open: closed implicitly
        let spans = ring.snapshot();
        assert!(spans.iter().all(|s| s.sim_end_s >= s.sim_start_s));
        assert_eq!(spans[1].sim_end_s, 1.0);
        // Stack is empty: the next open is a root again.
        let r = ring.open(SpanKind::Frame, name("frame2"), 2.0);
        assert_eq!(ring.snapshot().last().unwrap().parent, u64::MAX);
        ring.close(r, 3.0);
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_count() {
        let mut ring = SpanRing::new(16);
        for i in 0..40 {
            ring.leaf(SpanKind::Host, name(&format!("h{i}")), i as f64, 1.0);
        }
        assert_eq!(ring.len(), 16);
        assert_eq!(ring.evicted(), 24);
        let spans = ring.snapshot();
        assert_eq!(&*spans[0].name, "h24");
        assert_eq!(&*spans[15].name, "h39");
        // Ids stay monotone across eviction.
        assert!(spans.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn clear_keeps_capacity_and_monotone_ids() {
        let mut ring = SpanRing::new(16);
        ring.leaf(SpanKind::Host, name("a"), 0.0, 1.0);
        let before = ring.snapshot()[0].id;
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.evicted(), 0);
        ring.leaf(SpanKind::Host, name("b"), 0.0, 1.0);
        assert!(ring.snapshot()[0].id > before);
    }

    #[test]
    fn aggregate_folds_paths() {
        let mut ring = SpanRing::new(64);
        let f = ring.open(SpanKind::Frame, name("frame"), 0.0);
        for _ in 0..3 {
            let b = ring.open(SpanKind::Band, name("band"), 0.0);
            ring.leaf(SpanKind::Slice, name("sobel"), 0.0, 0.0);
            ring.close(b, 0.0);
        }
        ring.close(f, 1.0);
        let agg = aggregate(&ring.snapshot());
        let band = agg.iter().find(|a| a.path == "frame/band").unwrap();
        assert_eq!(band.count, 3);
        let sl = agg.iter().find(|a| a.path == "frame/band/sobel").unwrap();
        assert_eq!(sl.count, 3);
        assert_eq!(sl.kind, SpanKind::Slice);
    }

    #[test]
    fn registry_export_uses_span_namespace() {
        let mut ring = SpanRing::new(64);
        let f = ring.open(SpanKind::Frame, name("frame"), 0.0);
        ring.leaf(SpanKind::Kernel, name("sobel"), 0.0, 2e-3);
        ring.close(f, 2e-3);
        let mut reg = MetricsRegistry::new();
        to_registry(&ring.snapshot(), &mut reg);
        assert_eq!(reg.counter("span.frame.count"), 1);
        assert_eq!(reg.counter("span.frame/sobel.count"), 1);
        assert!((reg.gauge("span.frame/sobel.sim_s") - 2e-3).abs() < 1e-12);
        assert!(reg.gauge("span.frame.wall_s") >= 0.0);
    }

    #[test]
    fn tree_renders_folded_siblings() {
        let mut ring = SpanRing::new(64);
        let f = ring.open(SpanKind::Frame, name("frame"), 0.0);
        for _ in 0..4 {
            let b = ring.open(SpanKind::Band, name("band"), 0.0);
            ring.leaf(SpanKind::Slice, name("sobel"), 0.0, 0.0);
            ring.close(b, 0.0);
        }
        ring.close(f, 1.0);
        let t = span_tree(&ring.snapshot());
        assert!(t.contains("frame"), "{t}");
        assert!(t.contains("band ×4"), "{t}");
        assert!(t.contains("sobel ×4"), "{t}");
        assert!(t.contains("[band]"), "{t}");
        assert_eq!(span_tree(&[]), "(no spans)\n");
    }

    #[test]
    fn leaf_wall_uses_gap_rule() {
        let mut ring = SpanRing::new(64);
        ring.leaf(SpanKind::Host, name("first"), 0.0, 0.0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        ring.leaf(SpanKind::Host, name("second"), 0.0, 0.0);
        let spans = ring.snapshot();
        // The second leaf's wall interval starts where the first ended.
        assert_eq!(spans[1].wall_start_ns, spans[0].wall_end_ns);
        assert!(spans[1].wall_s() >= 1e-3, "{}", spans[1].wall_s());
    }
}
