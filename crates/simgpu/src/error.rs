//! Error types for the simulated GPU runtime.

use std::fmt;

/// Result alias used throughout `simgpu`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the simulated OpenCL-like runtime.
///
/// These mirror the failure classes a real OpenCL host program has to
/// handle: invalid launch geometry, buffer shape mismatches, out-of-bounds
/// transfers, and (unique to the simulator) write races detected by the
/// validation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The global NDRange size is not divisible by the work-group size.
    InvalidNdRange {
        /// Kernel name the launch was for.
        kernel: String,
        /// Requested global size (x, y).
        global: [usize; 2],
        /// Requested group size (x, y).
        group: [usize; 2],
    },
    /// A work-group size of zero was requested.
    EmptyGroup {
        /// Kernel name the launch was for.
        kernel: String,
    },
    /// A kernel was handed arguments that violate its shape preconditions
    /// (wrong padding, a stride that is not vec4-aligned, a buffer too
    /// small for the geometry). Returned to the caller as a typed error
    /// instead of panicking inside the dispatch, which would surface as an
    /// opaque [`Error::KernelPanic`] via the sanitizer's `catch_unwind`.
    InvalidKernelArgs {
        /// Kernel the arguments were for.
        kernel: String,
        /// Human-readable description of the violated precondition.
        detail: String,
    },
    /// A transfer touched bytes outside the buffer.
    TransferOutOfBounds {
        /// Human-readable operation name ("write", "read", "rect-write", ...).
        op: &'static str,
        /// Buffer length in elements.
        buffer_len: usize,
        /// First element index that was out of bounds.
        offending_index: usize,
    },
    /// A rectangular transfer described a region inconsistent with the
    /// host slice that backs it.
    RectShapeMismatch {
        /// Rows requested.
        rows: usize,
        /// Row length in elements.
        row_len: usize,
        /// Length of the host slice provided.
        host_len: usize,
    },
    /// Two work-items stored to the same global element during one kernel
    /// dispatch. Only detected when `Context::with_validation` is enabled.
    WriteRace {
        /// Kernel in which the race occurred.
        kernel: String,
        /// Element index that was written more than once.
        index: usize,
    },
    /// A kernel read an element that no work-item had initialised and the
    /// buffer was created uninitialised. Only detected under validation.
    UninitialisedRead {
        /// Kernel in which the read occurred.
        kernel: String,
        /// Element index read.
        index: usize,
    },
    /// Mapping a buffer that is already mapped.
    AlreadyMapped,
    /// Unmapping a buffer that is not mapped.
    NotMapped,
    /// A kernel closure panicked during dispatch (for example on an
    /// out-of-bounds access assertion). The dispatch is abandoned, no
    /// command is recorded, and the panic message is preserved so callers
    /// can surface it instead of aborting the process.
    KernelPanic {
        /// Kernel whose closure panicked.
        kernel: String,
        /// The panic payload, rendered as a string.
        message: String,
    },
    /// The static access checker rejected a dispatch: an out-of-bounds or
    /// overlapping declared window, an accounting mismatch, a coverage gap
    /// in a sliced dispatch, or a missing declaration while summaries are
    /// required. See [`crate::access::AccessError`] for the verdicts.
    Access(crate::access::AccessError),
}

impl From<crate::access::AccessError> for Error {
    fn from(e: crate::access::AccessError) -> Self {
        Error::Access(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidNdRange { kernel, global, group } => write!(
                f,
                "kernel `{kernel}`: global size {global:?} not divisible by group size {group:?}"
            ),
            Error::EmptyGroup { kernel } => {
                write!(f, "kernel `{kernel}`: work-group size must be non-zero")
            }
            Error::InvalidKernelArgs { kernel, detail } => {
                write!(f, "kernel `{kernel}`: invalid arguments: {detail}")
            }
            Error::TransferOutOfBounds { op, buffer_len, offending_index } => write!(
                f,
                "{op}: element index {offending_index} out of bounds for buffer of {buffer_len} elements"
            ),
            Error::RectShapeMismatch { rows, row_len, host_len } => write!(
                f,
                "rect transfer of {rows} rows x {row_len} elements does not match host slice of {host_len} elements"
            ),
            Error::WriteRace { kernel, index } => write!(
                f,
                "kernel `{kernel}`: write race detected at element {index} (two work-items stored to the same global location)"
            ),
            Error::UninitialisedRead { kernel, index } => write!(
                f,
                "kernel `{kernel}`: read of uninitialised element {index}"
            ),
            Error::AlreadyMapped => write!(f, "buffer is already mapped"),
            Error::NotMapped => write!(f, "buffer is not mapped"),
            Error::KernelPanic { kernel, message } => {
                write!(f, "kernel `{kernel}` panicked during dispatch: {message}")
            }
            Error::Access(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_kernel_name() {
        let e = Error::InvalidNdRange {
            kernel: "sobel".into(),
            global: [100, 100],
            group: [16, 16],
        };
        let s = e.to_string();
        assert!(s.contains("sobel"));
        assert!(s.contains("[100, 100]"));
    }

    #[test]
    fn display_write_race() {
        let e = Error::WriteRace {
            kernel: "k".into(),
            index: 42,
        };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::AlreadyMapped, Error::AlreadyMapped);
        assert_ne!(Error::AlreadyMapped, Error::NotMapped);
    }
}
