//! The context: device + host pairing, buffer factory, and buffer pool.

use std::sync::Arc;

use crate::buffer::{Buffer, Scalar};
use crate::device::{CpuSpec, DeviceSpec};
use crate::pool::{BufferPool, PoolStats};
use crate::queue::CommandQueue;
use crate::sanitize::{SanitizeConfig, SanitizeReport, SanitizeShared};

/// An OpenCL-like context binding a simulated device to a modeled host CPU.
///
/// Buffers are created from the context; command queues are created from it
/// too and inherit both machine models. When validation is enabled
/// (see [`Context::with_validation`]) every buffer carries per-element write
/// marks and kernel dispatches report write races — the simulator's
/// equivalent of running under a GPU race checker.
///
/// The context also owns a [`BufferPool`] that recycles buffer backing
/// storage across allocations (clones share the pool). Pooling is on by
/// default; [`Context::with_pooling`]`(false)` restores allocate-per-buffer
/// behaviour for baseline measurements.
#[derive(Clone)]
pub struct Context {
    device: DeviceSpec,
    cpu: CpuSpec,
    validate: bool,
    pool: BufferPool,
    pooling: bool,
    /// Host threads per kernel dispatch (0 = all available cores).
    dispatch_threads: usize,
    /// Shared sanitizer state (shadow-access recorder); `None` when the
    /// sanitizer is off. Clones share the same recorder.
    sanitize: Option<Arc<SanitizeShared>>,
    /// When true, queues require every kernel dispatch to declare an
    /// access summary and retain the verified summaries in their log.
    require_access: bool,
    /// Span-ring capacity for queues created from this context; `None`
    /// disables span tracing (the default).
    span_capacity: Option<usize>,
}

impl Context {
    /// Creates a context for `device` with the paper's host CPU
    /// (Core i5-3470) and validation off.
    pub fn new(device: DeviceSpec) -> Self {
        Context {
            device,
            cpu: CpuSpec::core_i5_3470(),
            validate: false,
            pool: BufferPool::new(),
            pooling: true,
            dispatch_threads: 0,
            sanitize: None,
            require_access: false,
            span_capacity: None,
        }
    }

    /// Creates a context with write-race validation enabled. Intended for
    /// tests: buffers allocate one mark byte per element.
    pub fn with_validation(device: DeviceSpec) -> Self {
        let mut ctx = Context::new(device);
        ctx.validate = true;
        ctx
    }

    /// Creates a context with the shadow-execution sanitizer enabled at its
    /// default configuration. Equivalent to
    /// `Context::new(device).with_sanitize(SanitizeConfig::default())`.
    ///
    /// Sanitized runs produce byte-identical pixels and identical simulated
    /// seconds to unsanitized runs — the overhead is wall-clock only. Only
    /// one kernel may be in flight at a time per sanitized context, so pin
    /// frame-level parallelism to a single frame when sanitizing.
    pub fn sanitized(device: DeviceSpec) -> Self {
        Context::new(device).with_sanitize(SanitizeConfig::default())
    }

    /// Enables the shadow-execution sanitizer with an explicit
    /// configuration. Buffers and queues created afterwards record every
    /// accounted access into shadow state; retrieve findings with
    /// [`Context::sanitize_report`].
    pub fn with_sanitize(mut self, config: SanitizeConfig) -> Self {
        self.sanitize = Some(Arc::new(SanitizeShared::new(
            config,
            self.device.wavefront as u64,
        )));
        self
    }

    /// Requires every kernel dispatch on queues created from this context
    /// to declare a statically verified
    /// [`AccessSummary`](crate::access::AccessSummary) first — an
    /// undeclared dispatch is a hard error — and retains the verified
    /// summaries in [`CommandQueue::access_log`] for static-vs-dynamic
    /// agreement checks. Observation-only: pixels and simulated seconds
    /// are unchanged.
    pub fn with_access_required(mut self) -> Self {
        self.require_access = true;
        self
    }

    /// Enables hierarchical span tracing on queues created from this
    /// context at the default ring capacity
    /// ([`crate::span::DEFAULT_SPAN_CAPACITY`]). Spans are
    /// observation-only: pixels and simulated seconds are bit-identical
    /// with spans on or off.
    pub fn with_spans(self) -> Self {
        self.with_span_capacity(crate::span::DEFAULT_SPAN_CAPACITY)
    }

    /// Enables span tracing with an explicit ring capacity (spans beyond
    /// it evict the oldest). See [`Context::with_spans`].
    pub fn with_span_capacity(mut self, capacity: usize) -> Self {
        self.span_capacity = Some(capacity);
        self
    }

    /// Overrides the host CPU model.
    pub fn with_cpu(mut self, cpu: CpuSpec) -> Self {
        self.cpu = cpu;
        self
    }

    /// Enables or disables buffer pooling (on by default). With pooling off
    /// every buffer allocates fresh storage — the per-run-allocation
    /// baseline the wall-clock benches compare against.
    pub fn with_pooling(mut self, pooling: bool) -> Self {
        self.pooling = pooling;
        self
    }

    /// Replaces the buffer pool with an empty one capped at
    /// `capacity_bytes` of parked storage (see
    /// [`BufferPool::with_capacity_bytes`]). Applies to this context and
    /// clones made *after* this call; earlier clones keep the old pool.
    pub fn with_pool_capacity(mut self, capacity_bytes: u64) -> Self {
        self.pool = BufferPool::with_capacity_bytes(capacity_bytes);
        self
    }

    /// Pins the number of host threads each kernel dispatch uses
    /// (0 = all available cores, the default). A throughput engine running
    /// frames concurrently pins this to 1 and parallelises across frames.
    pub fn with_dispatch_threads(mut self, threads: usize) -> Self {
        self.dispatch_threads = threads;
        self
    }

    /// The device spec this context is bound to.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The host CPU model.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// Whether buffers validate writes.
    pub fn validates(&self) -> bool {
        self.validate
    }

    /// Whether buffer allocations recycle through the pool.
    pub fn pools(&self) -> bool {
        self.pooling
    }

    /// Whether the shadow-execution sanitizer is enabled.
    pub fn sanitizes(&self) -> bool {
        self.sanitize.is_some()
    }

    /// Whether kernel dispatches must declare access summaries.
    pub fn requires_access(&self) -> bool {
        self.require_access
    }

    /// Whether queues created from this context record spans.
    pub fn spans_enabled(&self) -> bool {
        self.span_capacity.is_some()
    }

    /// Snapshot of the sanitizer's findings so far, or `None` when the
    /// sanitizer is off.
    pub fn sanitize_report(&self) -> Option<SanitizeReport> {
        self.sanitize.as_ref().map(|s| s.report())
    }

    /// The context's buffer pool (shared by clones).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Snapshot of the buffer pool's hit/miss/live counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Host threads per kernel dispatch (0 = all available cores).
    pub fn dispatch_threads(&self) -> usize {
        self.dispatch_threads
    }

    /// Allocates a zero-initialised device buffer of `len` elements,
    /// recycling pooled storage when available.
    pub fn buffer<T: Scalar>(&self, label: &str, len: usize) -> Buffer<T> {
        Buffer::build_in(
            label,
            len,
            self.validate,
            self.sanitize.as_ref(),
            self.pooling.then_some(&self.pool),
        )
    }

    /// Allocates a device buffer initialised from a host slice *without*
    /// charging transfer time (test/setup convenience; model-honest uploads
    /// go through [`CommandQueue::enqueue_write`]).
    pub fn buffer_from<T: Scalar>(&self, label: &str, data: &[T]) -> Buffer<T> {
        let b = self.buffer(label, data.len());
        b.fill_from(data);
        b
    }

    /// Creates a new in-order command queue.
    pub fn queue(&self) -> CommandQueue {
        CommandQueue::new(
            self.device.clone(),
            self.cpu.clone(),
            self.dispatch_threads,
            self.sanitize.clone(),
            self.require_access,
            self.span_capacity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_inherit_validation() {
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let b = ctx.buffer::<f32>("t", 4);
        b.begin_write_epoch();
        let w = b.write_view();
        w.set_raw(0, 1.0);
        w.set_raw(0, 2.0);
        assert_eq!(b.race(), Some(0));

        let ctx2 = Context::new(DeviceSpec::firepro_w8000());
        let b2 = ctx2.buffer::<f32>("t", 4);
        let w2 = b2.write_view();
        w2.set_raw(0, 1.0);
        w2.set_raw(0, 2.0);
        assert_eq!(b2.race(), None);
    }

    #[test]
    fn buffer_from_initialises() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let b = ctx.buffer_from("t", &[1.0f32, 2.0, 3.0]);
        assert_eq!(b.snapshot(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn with_cpu_overrides() {
        let mut cpu = CpuSpec::core_i5_3470();
        cpu.clock_ghz = 4.0;
        let ctx = Context::new(DeviceSpec::firepro_w8000()).with_cpu(cpu);
        assert!((ctx.cpu().clock_ghz - 4.0).abs() < 1e-12);
        assert_eq!(ctx.queue().cpu().name, "Intel Core i5-3470");
    }

    #[test]
    fn dispatch_threads_knob_round_trips() {
        let ctx = Context::new(DeviceSpec::firepro_w8000()).with_dispatch_threads(1);
        assert_eq!(ctx.dispatch_threads(), 1);
        assert_eq!(
            Context::new(DeviceSpec::firepro_w8000()).dispatch_threads(),
            0
        );
    }

    #[test]
    fn buffer_from_recycles_through_pool() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        drop(ctx.buffer_from("t", &[1.0f32, 2.0]));
        let b = ctx.buffer_from("t", &[3.0f32, 4.0]);
        assert_eq!(b.snapshot(), vec![3.0, 4.0]);
        assert_eq!(ctx.pool_stats().hits, 1);
    }
}
