//! Host-side parallelism for simulated work-group dispatch.
//!
//! The simulator executes work-groups functionally on the host. This
//! module provides the small scoped-thread fan-out used by
//! [`crate::queue::CommandQueue::run`] — a dependency-free replacement for
//! the rayon pool the seed used, which keeps the workspace buildable
//! offline. Work is handed out in chunks through an atomic cursor so
//! uneven groups (reduction tails, border kernels) still balance.
//!
//! Parallelism is a per-[`crate::context::Context`] knob: a latency-bound
//! caller uses every host core for one dispatch, while a throughput engine
//! running many simulated frames concurrently pins each frame's dispatches
//! to one thread and parallelises across frames instead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of workers used when a context does not pin one: the host's
/// available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(i)` for every `i` in `0..total` on up to `threads` workers and
/// folds the per-call results with `merge`, seeding each worker with
/// `zero()`. Falls back to a plain loop when one worker suffices.
///
/// `merge` order is unspecified; callers must use an associative,
/// commutative merge (cost-counter sums are).
pub fn map_reduce<R, Z, F, M>(total: usize, threads: usize, zero: Z, f: F, merge: M) -> R
where
    R: Send,
    Z: Fn() -> R + Sync,
    F: Fn(usize) -> R + Sync,
    M: Fn(R, R) -> R + Sync,
{
    let threads = threads.clamp(1, total.max(1));
    if threads == 1 {
        let mut acc = zero();
        for i in 0..total {
            acc = merge(acc, f(i));
        }
        return acc;
    }
    // Chunked work-stealing: large enough chunks to amortise the atomic,
    // small enough that a slow chunk cannot serialise the dispatch.
    let chunk = (total / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let workers: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut acc = zero();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        for i in start..(start + chunk).min(total) {
                            acc = merge(acc, f(i));
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dispatch worker panicked"))
            .collect()
    });
    workers.into_iter().fold(zero(), &merge)
}

/// Runs `f(i)` for every `i` in `0..total` on up to `threads` workers,
/// discarding results. Convenience wrapper over [`map_reduce`].
pub fn for_each_index<F>(total: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    map_reduce(total, threads, || (), f, |(), ()| ());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_reduce_sums_all_indices() {
        for threads in [1, 2, 7, 64] {
            let sum = map_reduce(1000, threads, || 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(sum, 999 * 1000 / 2, "threads={threads}");
        }
    }

    #[test]
    fn zero_total_returns_zero() {
        assert_eq!(map_reduce(0, 4, || 7u64, |_| 1, |a, b| a + b), 7);
    }

    #[test]
    fn for_each_visits_every_index_once() {
        let n = 4096;
        let marks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        for_each_index(n, 8, |i| {
            marks[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
