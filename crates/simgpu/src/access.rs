//! Declarative per-dispatch access summaries and their static checker.
//!
//! Every kernel dispatch can declare, *before it runs*, a compact affine
//! description of everything it will touch: per buffer, a set of
//! [`AccessWindow`]s (base index + contiguous row extent + two repeat
//! axes), plus the exact bytes it charges the cost model split by
//! scalar/vector class. [`verify_summary`] then proves in closed form,
//! without executing the kernel:
//!
//! * **(a) bounds** — every window stays inside its buffer, ragged
//!   vec4-aligned tails included;
//! * **(b) write disjointness** — no element of any buffer is stored twice
//!   by the dispatch, so the data-parallel execution is race-free by
//!   construction;
//! * **(c) accounting** — the charged write bytes equal the declared write
//!   set exactly, and the charged read bytes dominate the declared read
//!   set while staying within the declared overcharge ratio (the ratio
//!   itself is derived in closed form via
//!   [`AccessSummary::exact_read_ratio`], replacing any hand-waved floor);
//! * **(d) coverage** — for sliced (banded) dispatches,
//!   [`verify_partition`] proves the slices exactly tile the grid: no gap,
//!   no overlap.
//!
//! Summaries cannot rot. After execution the queue compares the summary's
//! charged bytes against the counters the kernel actually charged
//! ([`AccessSummary::charged_matches`]), and sanitized runs additionally
//! compare the declared window bytes against the per-element traffic
//! observed by the shadow sanitizer — any drift is reported as a
//! [`crate::sanitize::Violation::SummaryDrift`].
//!
//! A window's "vector width" is not separate metadata: vectorized access
//! shows up as charged bytes in the vector class ([`ChargedBytes`]), which
//! the post-run counter comparison checks per class, while the window
//! geometry describes the element footprint that both bounds and the
//! sanitizer's shadow traffic are defined over.

use std::fmt;
use std::ops::Range;

use crate::cost::CostCounters;

/// Whether an [`AccessWindow`] is loaded or stored by the dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Elements are read.
    Read,
    /// Elements are written.
    Write,
}

/// The buffer a window refers to, as the checker sees it: the debug label
/// (shared with the shadow sanitizer and the pool) plus its extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufRef {
    /// Debug label of the buffer.
    pub label: String,
    /// Buffer length in elements.
    pub len: usize,
    /// Size of one element in bytes.
    pub elem_bytes: u64,
}

impl BufRef {
    /// Convenience constructor for an `f32` buffer of `len` elements.
    pub fn f32(label: impl Into<String>, len: usize) -> Self {
        BufRef {
            label: label.into(),
            len,
            elem_bytes: 4,
        }
    }
}

/// One affine access window: the element set
/// `{ base + i·x_stride + j·y_stride + k  |  i < x_count, j < y_count,
/// k < elems }`.
///
/// `elems` is a contiguous run (a row span); the `x` axis repeats it with a
/// fixed stride (e.g. the three stencil rows of a 3×3 window, stride =
/// pitch), and the `y` axis repeats that again (e.g. once per covered image
/// row). Every element of the set counts as one access *event* — summaries
/// declare events exactly, which is what makes the sanitizer
/// cross-validation an equality check rather than a bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessWindow {
    /// Buffer the window belongs to.
    pub buffer: BufRef,
    /// Read or write.
    pub role: Role,
    /// First element index of the first row span.
    pub base: usize,
    /// Contiguous elements per span.
    pub elems: usize,
    /// Repeats along the inner axis.
    pub x_count: usize,
    /// Element stride between inner-axis repeats.
    pub x_stride: usize,
    /// Repeats along the outer axis.
    pub y_count: usize,
    /// Element stride between outer-axis repeats.
    pub y_stride: usize,
}

impl AccessWindow {
    /// A single contiguous read span.
    pub fn read(buffer: BufRef, base: usize, elems: usize) -> Self {
        AccessWindow {
            buffer,
            role: Role::Read,
            base,
            elems,
            x_count: 1,
            x_stride: 0,
            y_count: 1,
            y_stride: 0,
        }
    }

    /// A single contiguous write span.
    pub fn write(buffer: BufRef, base: usize, elems: usize) -> Self {
        AccessWindow {
            role: Role::Write,
            ..AccessWindow::read(buffer, base, elems)
        }
    }

    /// Repeats the span `count` times along the inner axis with `stride`.
    pub fn by_x(mut self, count: usize, stride: usize) -> Self {
        self.x_count = count;
        self.x_stride = stride;
        self
    }

    /// Repeats the window `count` times along the outer axis with `stride`.
    pub fn by_y(mut self, count: usize, stride: usize) -> Self {
        self.y_count = count;
        self.y_stride = stride;
        self
    }

    /// Number of access events the window declares.
    pub fn events(&self) -> u64 {
        (self.elems as u128 * self.x_count as u128 * self.y_count as u128)
            .try_into()
            .unwrap_or(u64::MAX)
    }

    /// Declared bytes: events × element size.
    pub fn bytes(&self) -> u64 {
        self.events().saturating_mul(self.buffer.elem_bytes)
    }

    /// True when the window declares no events.
    pub fn is_empty(&self) -> bool {
        self.elems == 0 || self.x_count == 0 || self.y_count == 0
    }

    /// Largest element index the window touches, or `None` when empty or
    /// arithmetically overflowing (treated as out of bounds by the
    /// checker).
    pub fn max_index(&self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let max = self.base as u128
            + (self.x_count as u128 - 1) * self.x_stride as u128
            + (self.y_count as u128 - 1) * self.y_stride as u128
            + self.elems as u128
            - 1;
        usize::try_from(max).ok()
    }
}

/// Bytes a dispatch charges the cost model, split by access class exactly
/// as [`CostCounters`] splits them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChargedBytes {
    /// Scalar-class global read bytes.
    pub read_scalar: u64,
    /// Vector-class global read bytes.
    pub read_vector: u64,
    /// Scalar-class global write bytes.
    pub write_scalar: u64,
    /// Vector-class global write bytes.
    pub write_vector: u64,
}

impl ChargedBytes {
    /// Total charged read bytes across classes.
    pub fn reads(&self) -> u64 {
        self.read_scalar + self.read_vector
    }

    /// Total charged write bytes across classes.
    pub fn writes(&self) -> u64 {
        self.write_scalar + self.write_vector
    }
}

/// The declarative access summary of one kernel dispatch (or one slice of
/// a banded dispatch): grid geometry, affine windows, and charged bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSummary {
    /// Kernel name (must match the dispatched [`crate::kernel::KernelDesc`]).
    pub kernel: String,
    /// Flat work-group range the summary covers.
    pub groups: Range<usize>,
    /// Total work-groups of the full grid.
    pub total_groups: usize,
    /// Declared access windows (empty windows are dropped on push).
    pub windows: Vec<AccessWindow>,
    /// Bytes the dispatch charges the cost model, by class.
    pub charged: ChargedBytes,
    /// Declared read-overcharge ratio: the audit bound is
    /// `charged_reads ≤ declared_reads × read_ratio`.
    pub read_ratio: f64,
}

impl AccessSummary {
    /// An empty summary for `kernel` covering the flat group range
    /// `groups` of a grid with `total_groups` work-groups.
    pub fn new(kernel: impl Into<String>, groups: Range<usize>, total_groups: usize) -> Self {
        AccessSummary {
            kernel: kernel.into(),
            groups,
            total_groups,
            windows: Vec::new(),
            charged: ChargedBytes::default(),
            read_ratio: 1.0,
        }
    }

    /// Declares a window; empty windows are dropped.
    pub fn push(&mut self, window: AccessWindow) {
        if !window.is_empty() {
            self.windows.push(window);
        }
    }

    /// Mirrors [`crate::kernel::GroupCtx::charge_global_n`]: per-item bytes
    /// by class, times `n` items.
    pub fn charge_global_n(
        &mut self,
        scalar_read: u64,
        vector_read: u64,
        scalar_write: u64,
        vector_write: u64,
        n: u64,
    ) {
        self.charged.read_scalar += scalar_read * n;
        self.charged.read_vector += vector_read * n;
        self.charged.write_scalar += scalar_write * n;
        self.charged.write_vector += vector_write * n;
    }

    /// Sum of declared read bytes over all windows.
    pub fn declared_read_bytes(&self) -> u64 {
        self.windows
            .iter()
            .filter(|w| w.role == Role::Read)
            .map(AccessWindow::bytes)
            .sum()
    }

    /// Sum of declared write bytes over all windows.
    pub fn declared_write_bytes(&self) -> u64 {
        self.windows
            .iter()
            .filter(|w| w.role == Role::Write)
            .map(AccessWindow::bytes)
            .sum()
    }

    /// True when the summary covers the whole grid.
    pub fn covers_full_grid(&self) -> bool {
        self.groups.start == 0 && self.groups.end == self.total_groups
    }

    /// The exact read-overcharge ratio of this summary: 1 when the charge
    /// is exact (or dominated by the declaration), else the closed-form
    /// quotient `charged / declared` with 1% headroom against float
    /// rounding in the audit comparison. Replaces the legacy blanket
    /// `.max(4.0)` floor, which masked undercharge on ragged shapes.
    pub fn exact_read_ratio(&self) -> f64 {
        let declared = self.declared_read_bytes();
        let charged = self.charged.reads();
        if charged <= declared || declared == 0 {
            1.0
        } else {
            charged as f64 / declared as f64 * 1.01
        }
    }

    /// Checks the summary's charged bytes against the counters the kernel
    /// actually charged, per class. This is the anti-rot half of the
    /// accounting proof: the closed-form charge formula in the summary
    /// must reproduce the kernel's real `charge_global_n` calls exactly.
    pub fn charged_matches(&self, counters: &CostCounters) -> Result<(), AccessError> {
        let pairs = [
            (
                "read-scalar",
                self.charged.read_scalar,
                counters.global_read_scalar,
            ),
            (
                "read-vector",
                self.charged.read_vector,
                counters.global_read_vector,
            ),
            (
                "write-scalar",
                self.charged.write_scalar,
                counters.global_write_scalar,
            ),
            (
                "write-vector",
                self.charged.write_vector,
                counters.global_write_vector,
            ),
        ];
        for (class, summary, counted) in pairs {
            if summary != counted {
                return Err(AccessError::ChargeDrift {
                    kernel: self.kernel.clone(),
                    class,
                    summary,
                    counted,
                });
            }
        }
        Ok(())
    }
}

/// A typed verdict from the static checker. Field types are integral so
/// the error (and [`crate::error::Error`] wrapping it) stays `Eq`; ratios
/// are carried as `f64::to_bits`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// A window reaches past the end of its buffer (property a).
    OutOfBounds {
        /// Kernel that declared the window.
        kernel: String,
        /// Label of the offending buffer.
        buffer: String,
        /// Largest declared index (`usize::MAX` on arithmetic overflow).
        index: usize,
        /// Buffer length in elements.
        len: usize,
    },
    /// Two write events land on the same element (property b).
    WriteOverlap {
        /// Kernel that declared the windows.
        kernel: String,
        /// Label of the offending buffer.
        buffer: String,
        /// Human-readable description of the clash.
        detail: String,
    },
    /// Charged write bytes differ from the declared write set (property c:
    /// writes must be charged exactly).
    WriteChargeMismatch {
        /// Kernel that declared the summary.
        kernel: String,
        /// Declared write bytes.
        declared: u64,
        /// Charged write bytes.
        charged: u64,
    },
    /// Charged read bytes fall short of the declared read set (property c:
    /// the cost model would undercount real traffic).
    ReadUndercharge {
        /// Kernel that declared the summary.
        kernel: String,
        /// Declared read bytes.
        declared: u64,
        /// Charged read bytes.
        charged: u64,
    },
    /// Charged read bytes exceed the declared overcharge bound
    /// (property c: `charged ≤ declared × ratio` must hold).
    RatioExceeded {
        /// Kernel that declared the summary.
        kernel: String,
        /// Declared read bytes.
        declared: u64,
        /// Charged read bytes.
        charged: u64,
        /// Declared ratio, as `f64::to_bits` (keeps the error `Eq`).
        ratio_bits: u64,
    },
    /// Sliced launches do not exactly tile the grid (property d).
    CoverageGap {
        /// Kernel being committed.
        kernel: String,
        /// Human-readable description of the gap or overlap.
        detail: String,
    },
    /// A dispatch ran without declaring a summary while declarations are
    /// required.
    Undeclared {
        /// Kernel that was dispatched.
        kernel: String,
    },
    /// The summary's grid geometry does not match the dispatch it was
    /// declared for.
    GridMismatch {
        /// Kernel being dispatched.
        kernel: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Post-run check: the summary's charged bytes differ from what the
    /// kernel actually charged (the closed-form formula rotted).
    ChargeDrift {
        /// Kernel that was dispatched.
        kernel: String,
        /// Counter class that drifted.
        class: &'static str,
        /// Bytes the summary declared as charged.
        summary: u64,
        /// Bytes the kernel actually charged.
        counted: u64,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::OutOfBounds {
                kernel,
                buffer,
                index,
                len,
            } => write!(
                f,
                "access summary for kernel `{kernel}`: window on `{buffer}` reaches index \
                 {index} but the buffer has {len} elements"
            ),
            AccessError::WriteOverlap {
                kernel,
                buffer,
                detail,
            } => write!(
                f,
                "access summary for kernel `{kernel}`: overlapping write windows on \
                 `{buffer}` ({detail})"
            ),
            AccessError::WriteChargeMismatch {
                kernel,
                declared,
                charged,
            } => write!(
                f,
                "access summary for kernel `{kernel}`: declares {declared} write bytes but \
                 charges {charged} (writes must be charged exactly)"
            ),
            AccessError::ReadUndercharge {
                kernel,
                declared,
                charged,
            } => write!(
                f,
                "access summary for kernel `{kernel}`: declares {declared} read bytes but \
                 charges only {charged} (cost model would undercount traffic)"
            ),
            AccessError::RatioExceeded {
                kernel,
                declared,
                charged,
                ratio_bits,
            } => write!(
                f,
                "access summary for kernel `{kernel}`: charges {charged} read bytes, beyond \
                 the declared bound of {declared} x ratio {:.4}",
                f64::from_bits(*ratio_bits)
            ),
            AccessError::CoverageGap { kernel, detail } => write!(
                f,
                "sliced dispatch of kernel `{kernel}` does not partition the grid: {detail}"
            ),
            AccessError::Undeclared { kernel } => write!(
                f,
                "kernel `{kernel}` dispatched without an access summary while declarations \
                 are required"
            ),
            AccessError::GridMismatch { kernel, detail } => write!(
                f,
                "access summary for kernel `{kernel}` does not match its dispatch: {detail}"
            ),
            AccessError::ChargeDrift {
                kernel,
                class,
                summary,
                counted,
            } => write!(
                f,
                "access summary for kernel `{kernel}`: summary says {summary} charged \
                 {class} bytes, kernel actually charged {counted}"
            ),
        }
    }
}

/// True when the window cannot store any element twice: repeats along each
/// axis must step at least as far as the extent of the level below. This
/// is conservative (it assumes `x` is the inner axis), which all kernel
/// constructors follow.
fn internally_disjoint(w: &AccessWindow) -> bool {
    if w.events() <= 1 {
        return true;
    }
    let x_ok = w.x_count <= 1 || w.x_stride >= w.elems;
    let x_span = (w.x_count.max(1) - 1).saturating_mul(w.x_stride) + w.elems;
    let y_ok = w.y_count <= 1 || w.y_stride >= x_span;
    x_ok && y_ok
}

/// True when two windows on the same buffer provably share no element:
/// either their index intervals are disjoint, or both are column bands of
/// a common row period `p` (every active stride a multiple of the smallest
/// one) with disjoint column ranges modulo `p`.
fn pairwise_disjoint(a: &AccessWindow, b: &AccessWindow) -> bool {
    let (Some(a_max), Some(b_max)) = (a.max_index(), b.max_index()) else {
        return true; // empty windows share nothing
    };
    if a_max < b.base || b_max < a.base {
        return true;
    }
    // Collect the strides that actually advance; a window with none is a
    // single run and only the interval test above can clear it.
    let mut strides = [0usize; 4];
    let mut n = 0;
    for w in [a, b] {
        for (count, stride) in [(w.x_count, w.x_stride), (w.y_count, w.y_stride)] {
            if count > 1 {
                strides[n] = stride;
                n += 1;
            }
        }
    }
    if n == 0 {
        return false;
    }
    let p = *strides[..n].iter().min().expect("n > 0");
    if p == 0 || strides[..n].iter().any(|s| s % p != 0) {
        return false;
    }
    let (ca, cb) = (a.base % p, b.base % p);
    ca + a.elems <= p && cb + b.elems <= p && (ca + a.elems <= cb || cb + b.elems <= ca)
}

/// Statically checks one summary: bounds (a), write disjointness (b), and
/// accounting (c). The overcharge-ratio bound of (c) applies to full-grid
/// summaries; for slices it is enforced on the merged totals at
/// [`crate::queue::CommandQueue::commit_sliced`], mirroring how the
/// dynamic audit works (a slice covering only border rows may observe zero
/// reads while still charging its share of the whole-dispatch bound).
pub fn verify_summary(s: &AccessSummary) -> Result<(), AccessError> {
    if s.groups.start > s.groups.end || s.groups.end > s.total_groups {
        return Err(AccessError::GridMismatch {
            kernel: s.kernel.clone(),
            detail: format!(
                "group range {}..{} outside grid of {} groups",
                s.groups.start, s.groups.end, s.total_groups
            ),
        });
    }
    // (a) bounds, including arithmetic overflow of the affine form.
    for w in &s.windows {
        let max = w.max_index().unwrap_or(usize::MAX);
        if !w.is_empty() && max >= w.buffer.len {
            return Err(AccessError::OutOfBounds {
                kernel: s.kernel.clone(),
                buffer: w.buffer.label.clone(),
                index: max,
                len: w.buffer.len,
            });
        }
    }
    // (b) write disjointness: each write window self-disjoint, and write
    // windows on the same buffer pairwise disjoint.
    let writes: Vec<&AccessWindow> = s.windows.iter().filter(|w| w.role == Role::Write).collect();
    for w in &writes {
        if !internally_disjoint(w) {
            return Err(AccessError::WriteOverlap {
                kernel: s.kernel.clone(),
                buffer: w.buffer.label.clone(),
                detail: format!(
                    "window base {} elems {} strides ({}x{}, {}x{}) revisits elements",
                    w.base, w.elems, w.x_count, w.x_stride, w.y_count, w.y_stride
                ),
            });
        }
    }
    for (i, a) in writes.iter().enumerate() {
        for b in &writes[i + 1..] {
            if a.buffer.label == b.buffer.label && !pairwise_disjoint(a, b) {
                return Err(AccessError::WriteOverlap {
                    kernel: s.kernel.clone(),
                    buffer: a.buffer.label.clone(),
                    detail: format!(
                        "windows at bases {} and {} cannot be proved disjoint",
                        a.base, b.base
                    ),
                });
            }
        }
    }
    // (c) accounting: writes exact, reads dominated and ratio-bounded.
    let declared_w = s.declared_write_bytes();
    if s.charged.writes() != declared_w {
        return Err(AccessError::WriteChargeMismatch {
            kernel: s.kernel.clone(),
            declared: declared_w,
            charged: s.charged.writes(),
        });
    }
    let declared_r = s.declared_read_bytes();
    let charged_r = s.charged.reads();
    if charged_r < declared_r {
        return Err(AccessError::ReadUndercharge {
            kernel: s.kernel.clone(),
            declared: declared_r,
            charged: charged_r,
        });
    }
    if !s.read_ratio.is_finite() || s.read_ratio < 1.0 {
        return Err(AccessError::RatioExceeded {
            kernel: s.kernel.clone(),
            declared: declared_r,
            charged: charged_r,
            ratio_bits: s.read_ratio.to_bits(),
        });
    }
    if s.covers_full_grid()
        && charged_r != declared_r
        && charged_r as f64 > declared_r as f64 * s.read_ratio
    {
        return Err(AccessError::RatioExceeded {
            kernel: s.kernel.clone(),
            declared: declared_r,
            charged: charged_r,
            ratio_bits: s.read_ratio.to_bits(),
        });
    }
    Ok(())
}

/// Statically checks property (d): the non-empty `ranges` must exactly
/// tile `0..total_groups` — any gap or overlap is a typed verdict.
pub fn verify_partition(
    kernel: &str,
    total_groups: usize,
    ranges: &[Range<usize>],
) -> Result<(), AccessError> {
    let mut rs: Vec<Range<usize>> = ranges.iter().filter(|r| !r.is_empty()).cloned().collect();
    rs.sort_by_key(|r| r.start);
    let mut cursor = 0usize;
    for r in rs {
        if r.start > cursor {
            return Err(AccessError::CoverageGap {
                kernel: kernel.to_string(),
                detail: format!("groups {cursor}..{} never executed", r.start),
            });
        }
        if r.start < cursor {
            return Err(AccessError::CoverageGap {
                kernel: kernel.to_string(),
                detail: format!(
                    "groups {}..{} executed more than once",
                    r.start,
                    cursor.min(r.end)
                ),
            });
        }
        cursor = r.end;
    }
    if cursor != total_groups {
        return Err(AccessError::CoverageGap {
            kernel: kernel.to_string(),
            detail: format!("slices covered {cursor} of {total_groups} work-groups"),
        });
    }
    Ok(())
}

/// Aggregate statistics over verified summaries, surfaced through
/// `--profile` and the metrics gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VerifyStats {
    /// Summaries verified (one per dispatch or slice).
    pub dispatches: u64,
    /// Declared windows across all summaries.
    pub windows: u64,
    /// Declared read bytes across all summaries.
    pub declared_read_bytes: u64,
    /// Declared write bytes across all summaries.
    pub declared_write_bytes: u64,
    /// Charged read bytes across all summaries.
    pub charged_read_bytes: u64,
    /// Charged write bytes across all summaries.
    pub charged_write_bytes: u64,
    /// Worst declared-ratio slack: `ratio − charged/declared`, maximised
    /// over summaries. Near zero when ratios are exact.
    pub max_ratio_slack: f64,
}

impl VerifyStats {
    /// Folds one summary into the statistics.
    pub fn absorb(&mut self, s: &AccessSummary) {
        self.dispatches += 1;
        self.windows += s.windows.len() as u64;
        let dr = s.declared_read_bytes();
        self.declared_read_bytes += dr;
        self.declared_write_bytes += s.declared_write_bytes();
        self.charged_read_bytes += s.charged.reads();
        self.charged_write_bytes += s.charged.writes();
        if dr > 0 {
            let slack = s.read_ratio - s.charged.reads() as f64 / dr as f64;
            if slack > self.max_ratio_slack {
                self.max_ratio_slack = slack;
            }
        }
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &VerifyStats) {
        self.dispatches += other.dispatches;
        self.windows += other.windows;
        self.declared_read_bytes += other.declared_read_bytes;
        self.declared_write_bytes += other.declared_write_bytes;
        self.charged_read_bytes += other.charged_read_bytes;
        self.charged_write_bytes += other.charged_write_bytes;
        if other.max_ratio_slack > self.max_ratio_slack {
            self.max_ratio_slack = other.max_ratio_slack;
        }
    }
}

/// Verifies a list of summaries and returns the aggregate statistics.
pub fn verify_all(summaries: &[AccessSummary]) -> Result<VerifyStats, AccessError> {
    let mut stats = VerifyStats::default();
    for s in summaries {
        verify_summary(s)?;
        stats.absorb(s);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(len: usize) -> BufRef {
        BufRef::f32("b", len)
    }

    fn clean_summary() -> AccessSummary {
        // A perror-like dispatch: 2 read rows + 1 write row per image row.
        let mut s = AccessSummary::new("k", 0..4, 4);
        s.push(AccessWindow::read(buf(1024), 0, 16).by_y(8, 32));
        s.push(AccessWindow::read(BufRef::f32("up", 1024), 0, 16).by_y(8, 32));
        s.push(AccessWindow::write(BufRef::f32("out", 1024), 0, 16).by_y(8, 32));
        s.charge_global_n(8, 0, 4, 0, 16 * 8);
        s
    }

    #[test]
    fn window_algebra() {
        let w = AccessWindow::read(buf(100), 5, 10).by_x(3, 20).by_y(2, 50);
        assert_eq!(w.events(), 10 * 3 * 2);
        assert_eq!(w.bytes(), 60 * 4);
        assert_eq!(w.max_index(), Some(5 + 2 * 20 + 50 + 9));
        assert!(AccessWindow::read(buf(10), 0, 0).is_empty());
        assert_eq!(AccessWindow::read(buf(10), 0, 0).max_index(), None);
    }

    #[test]
    fn clean_summary_verifies_with_exact_ratio() {
        let s = clean_summary();
        assert_eq!(s.exact_read_ratio(), 1.0);
        assert_eq!(verify_summary(&s), Ok(()));
        let stats = verify_all(std::slice::from_ref(&s)).unwrap();
        assert_eq!(stats.dispatches, 1);
        assert_eq!(stats.windows, 3);
        assert_eq!(stats.declared_read_bytes, 2 * 16 * 8 * 4);
        assert_eq!(stats.charged_write_bytes, 16 * 8 * 4);
        assert_eq!(stats.max_ratio_slack, 0.0);
    }

    #[test]
    fn oob_summary_is_rejected() {
        let mut s = clean_summary();
        // Last row span reaches one element past the buffer end.
        s.windows[2] = AccessWindow::write(BufRef::f32("out", 1024), 1, 16).by_y(8, 144);
        assert!(matches!(
            verify_summary(&s),
            Err(AccessError::OutOfBounds {
                index: 1024,
                len: 1024,
                ..
            })
        ));
    }

    #[test]
    fn overlapping_write_windows_are_rejected() {
        // Internal overlap: row stride smaller than the span.
        let mut s = AccessSummary::new("k", 0..1, 1);
        s.push(AccessWindow::write(buf(1024), 0, 16).by_y(4, 8));
        s.charge_global_n(0, 0, 4, 0, 64);
        assert!(matches!(
            verify_summary(&s),
            Err(AccessError::WriteOverlap { .. })
        ));
        // Pairwise overlap: two windows sharing an interval.
        let mut s = AccessSummary::new("k", 0..1, 1);
        s.push(AccessWindow::write(buf(1024), 0, 32));
        s.push(AccessWindow::write(buf(1024), 16, 32));
        s.charge_global_n(0, 0, 4, 0, 64);
        assert!(matches!(
            verify_summary(&s),
            Err(AccessError::WriteOverlap { .. })
        ));
    }

    #[test]
    fn column_bands_of_same_period_are_disjoint() {
        let mut s = AccessSummary::new("k", 0..1, 1);
        // Columns [0,4) and [8,16) of a 32-wide row, 8 rows: interleaved
        // intervals, provably disjoint by the modulo rule.
        s.push(AccessWindow::write(buf(256), 0, 4).by_y(8, 32));
        s.push(AccessWindow::write(buf(256), 8, 8).by_y(8, 32));
        s.charge_global_n(0, 0, 4, 0, 96);
        assert_eq!(verify_summary(&s), Ok(()));
    }

    #[test]
    fn undercharging_summary_is_rejected() {
        let mut s = clean_summary();
        s.charged.read_scalar = 100; // far below the declared 1024 B
        assert!(matches!(
            verify_summary(&s),
            Err(AccessError::ReadUndercharge { .. })
        ));
        // Writes must match exactly, in either direction.
        let mut s = clean_summary();
        s.charged.write_scalar += 4;
        assert!(matches!(
            verify_summary(&s),
            Err(AccessError::WriteChargeMismatch { .. })
        ));
    }

    #[test]
    fn ratio_bound_is_enforced_on_full_grid() {
        let mut s = clean_summary();
        s.charge_global_n(8, 0, 0, 0, 16 * 8); // double-charge the reads
        assert!(matches!(
            verify_summary(&s),
            Err(AccessError::RatioExceeded { .. })
        ));
        s.read_ratio = s.exact_read_ratio();
        assert!(s.read_ratio > 1.9 && s.read_ratio < 2.1);
        assert_eq!(verify_summary(&s), Ok(()));
        // A slice (not full grid) defers the ratio bound to commit.
        let mut slice = s.clone();
        slice.groups = 0..2;
        slice.read_ratio = 1.0;
        assert_eq!(verify_summary(&slice), Ok(()));
    }

    #[test]
    fn partition_detects_gap_and_overlap() {
        assert_eq!(verify_partition("k", 10, &[0..4, 4..10]), Ok(()));
        assert_eq!(verify_partition("k", 10, &[4..10, 0..4, 2..2]), Ok(()));
        assert!(matches!(
            verify_partition("k", 10, &[0..4, 6..10]),
            Err(AccessError::CoverageGap { .. })
        ));
        assert!(matches!(
            verify_partition("k", 10, &[0..6, 4..10]),
            Err(AccessError::CoverageGap { .. })
        ));
        assert!(matches!(
            verify_partition("k", 10, &[0..4, 4..8]),
            Err(AccessError::CoverageGap { .. })
        ));
    }

    #[test]
    fn charged_matches_catches_formula_rot() {
        let s = clean_summary();
        let mut c = CostCounters {
            global_read_scalar: s.charged.read_scalar,
            global_write_scalar: s.charged.write_scalar,
            ..CostCounters::default()
        };
        assert_eq!(s.charged_matches(&c), Ok(()));
        c.global_read_scalar += 4;
        assert!(matches!(
            s.charged_matches(&c),
            Err(AccessError::ChargeDrift {
                class: "read-scalar",
                ..
            })
        ));
    }
}
