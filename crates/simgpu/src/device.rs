//! Device descriptions: the machine parameters the timing model consumes.
//!
//! The default preset, [`DeviceSpec::firepro_w8000`], follows Table I of the
//! paper (AMD FirePro W8000: 1792 cores at 0.88 GHz, 3.23 TFlop/s peak,
//! 176 GB/s memory bandwidth). Additional presets exist for ablations and
//! for the paper's aside that map/unmap transfers "perform well on APU".

/// PCI-E / host-device interconnect model.
///
/// Three transfer modes are distinguished, matching Section V-A of the
/// paper:
///
/// * **bulk** (`clEnqueueWriteBuffer` / `clEnqueueReadBuffer`): one
///   fixed-latency DMA plus bytes at full link bandwidth;
/// * **rect** (`clEnqueueWriteBufferRect`): bulk plus a per-row descriptor
///   overhead, at a slightly lower effective bandwidth;
/// * **map/unmap**: a small setup cost plus dispersed accesses at a reduced
///   effective bandwidth (every touched region crosses the link piecemeal).
///
/// On an APU (`TransferModel::apu_like`), mapping is genuinely zero-copy and
/// the per-byte penalty disappears, which is why the paper notes map/unmap
/// is the right choice there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Fixed latency of one bulk read/write DMA, in seconds.
    pub bulk_latency_s: f64,
    /// Link bandwidth for bulk transfers, bytes/second.
    pub bulk_bw: f64,
    /// Fixed latency of a rect transfer, in seconds.
    pub rect_latency_s: f64,
    /// Extra per-row descriptor overhead for rect transfers, seconds/row.
    pub rect_row_overhead_s: f64,
    /// Effective bandwidth of rect transfers, bytes/second.
    pub rect_bw: f64,
    /// Setup cost of a map or unmap call, in seconds.
    pub map_setup_s: f64,
    /// Effective bandwidth of access through a mapping, bytes/second.
    pub map_bw: f64,
}

impl TransferModel {
    /// PCI-E 3.0 x16 discrete-GPU link, as in the paper's testbed.
    pub const fn pcie_discrete() -> Self {
        TransferModel {
            bulk_latency_s: 25e-6,
            bulk_bw: 6.0e9,
            rect_latency_s: 25e-6,
            rect_row_overhead_s: 0.6e-6,
            rect_bw: 6.0e9,
            map_setup_s: 3e-6,
            map_bw: 5.2e9,
        }
    }

    /// APU-like shared-memory link: mapping is near zero-copy, so map/unmap
    /// beats bulk copies (the paper's Section V-A aside).
    pub const fn apu_like() -> Self {
        TransferModel {
            bulk_latency_s: 8e-6,
            bulk_bw: 12.0e9,
            rect_latency_s: 10e-6,
            rect_row_overhead_s: 0.3e-6,
            rect_bw: 12.0e9,
            map_setup_s: 1e-6,
            map_bw: 20.0e9,
        }
    }
}

/// Parameters of a simulated GPU device.
///
/// All throughput-style numbers are peak values; efficiency factors that
/// derate them live here too so that a preset fully determines timing.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, used in profiling output.
    pub name: &'static str,
    /// Number of compute units (CUs).
    pub compute_units: u32,
    /// SIMD lanes per wavefront (64 on AMD GCN).
    pub wavefront: u32,
    /// Total scalar ALU lanes (`compute_units * lanes_per_cu`).
    pub total_lanes: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak single-precision throughput in GFlop/s (for documentation; the
    /// timing model works from lanes × clock × efficiency).
    pub peak_gflops: f64,
    /// Peak global-memory bandwidth, bytes/second.
    pub mem_bw: f64,
    /// Aggregate local-memory (LDS) bandwidth, bytes/second.
    pub lds_bw: f64,
    /// Local-memory capacity per compute unit, bytes (64 KiB on GCN).
    /// Limits resident work-groups, hence occupancy.
    pub lds_per_cu: u64,
    /// Fraction of peak ALU throughput a well-written kernel achieves.
    pub alu_efficiency: f64,
    /// Memory-coalescing factor for scalar, stencil-pattern accesses.
    pub coalesce_scalar: f64,
    /// Memory-coalescing factor for vector (`vloadN`) accesses.
    pub coalesce_vector: f64,
    /// Cost of launching one kernel, in seconds.
    pub launch_overhead_s: f64,
    /// Cost of a host-side synchronisation (`finish`) when commands are
    /// pending, in seconds.
    pub sync_overhead_s: f64,
    /// Stall cycles a work-group barrier costs each lane of the group.
    pub barrier_stall_cycles: f64,
    /// Extra lane-cycles charged per divergent-branch event.
    pub divergence_penalty_cycles: f64,
    /// Wavefronts per CU needed to fully hide latency (occupancy target).
    pub occupancy_target_waves_per_cu: f64,
    /// Host-device interconnect model.
    pub transfer: TransferModel,
}

impl DeviceSpec {
    /// The paper's device: AMD FirePro W8000 (Table I).
    ///
    /// 1792 stream processors = 28 CUs × 64 lanes, 0.88 GHz, 3.23 TFlop/s,
    /// 176 GB/s.
    pub fn firepro_w8000() -> Self {
        DeviceSpec {
            name: "AMD FirePro W8000",
            compute_units: 28,
            wavefront: 64,
            total_lanes: 1792,
            clock_ghz: 0.88,
            peak_gflops: 3230.0,
            mem_bw: 176.0e9,
            lds_bw: 1400.0e9,
            lds_per_cu: 64 * 1024,
            alu_efficiency: 0.70,
            coalesce_scalar: 0.55,
            coalesce_vector: 0.85,
            launch_overhead_s: 20e-6,
            sync_overhead_s: 12e-6,
            barrier_stall_cycles: 64.0,
            divergence_penalty_cycles: 48.0,
            occupancy_target_waves_per_cu: 4.0,
            transfer: TransferModel::pcie_discrete(),
        }
    }

    /// A mid-range GPU preset (roughly half a W8000), for ablations.
    pub fn midrange_gpu() -> Self {
        DeviceSpec {
            name: "Mid-range GPU",
            compute_units: 14,
            wavefront: 64,
            total_lanes: 896,
            clock_ghz: 0.9,
            peak_gflops: 1600.0,
            mem_bw: 96.0e9,
            lds_bw: 700.0e9,
            ..Self::firepro_w8000()
        }
    }

    /// An APU-like preset: weak ALU/bandwidth but a shared-memory
    /// interconnect where map/unmap shines.
    pub fn apu() -> Self {
        DeviceSpec {
            name: "APU",
            compute_units: 8,
            wavefront: 64,
            total_lanes: 512,
            clock_ghz: 0.8,
            peak_gflops: 820.0,
            mem_bw: 25.0e9,
            lds_bw: 200.0e9,
            transfer: TransferModel::apu_like(),
            ..Self::firepro_w8000()
        }
    }

    /// An embedded SoC-class GPU: a handful of CUs on a narrow LPDDR bus
    /// behind a shared-memory interconnect, with the slower driver stack
    /// typical of mobile parts (higher launch and sync overheads).
    pub fn embedded_gpu() -> Self {
        DeviceSpec {
            name: "Embedded SoC GPU",
            compute_units: 4,
            wavefront: 64,
            total_lanes: 256,
            clock_ghz: 0.65,
            peak_gflops: 330.0,
            mem_bw: 14.0e9,
            lds_bw: 100.0e9,
            launch_overhead_s: 30e-6,
            sync_overhead_s: 18e-6,
            transfer: TransferModel::apu_like(),
            ..Self::firepro_w8000()
        }
    }

    /// An HBM-class accelerator: W8000-era compute scaled up behind a
    /// stacked-memory bus an order of magnitude wider, on a newer host
    /// link with lower launch/sync overheads.
    pub fn hbm_gpu() -> Self {
        DeviceSpec {
            name: "HBM accelerator",
            compute_units: 64,
            wavefront: 64,
            total_lanes: 4096,
            clock_ghz: 1.5,
            peak_gflops: 12300.0,
            mem_bw: 900.0e9,
            lds_bw: 8000.0e9,
            launch_overhead_s: 8e-6,
            sync_overhead_s: 5e-6,
            transfer: TransferModel {
                // PCI-E 4.0 x16: twice the link bandwidth, lower DMA
                // latency; mapped access still crosses the link piecemeal.
                bulk_latency_s: 15e-6,
                bulk_bw: 12.0e9,
                rect_latency_s: 15e-6,
                rect_row_overhead_s: 0.4e-6,
                rect_bw: 12.0e9,
                map_setup_s: 2e-6,
                map_bw: 9.0e9,
            },
            ..Self::firepro_w8000()
        }
    }

    /// Effective ALU throughput in lane-cycles per second.
    pub fn effective_lane_hz(&self) -> f64 {
        f64::from(self.total_lanes) * self.clock_ghz * 1e9 * self.alu_efficiency
    }

    /// Number of wavefronts needed device-wide to reach the occupancy
    /// target.
    pub fn occupancy_target_waves(&self) -> f64 {
        f64::from(self.compute_units) * self.occupancy_target_waves_per_cu
    }
}

/// Parameters of the modeled host CPU.
///
/// The paper's baseline is a single-threaded, `-O3`-compiled C
/// implementation on an Intel Core i5-3470 (Table I: 3.2 GHz, 4 cores,
/// 57.76 GFlop/s peak, 25 GB/s). The pipeline is branchy (overshoot
/// control) and transcendental-heavy (the strength stage), which
/// auto-vectorisation does not rescue, so the model uses scalar issue with
/// a modest IPC.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Sustained scalar ops per cycle for this workload class.
    pub ipc: f64,
    /// Effective memory bandwidth from one core, bytes/second.
    pub mem_bw: f64,
    /// Cycle cost table: add/sub.
    pub cyc_add: f64,
    /// Cycle cost: mul/mad.
    pub cyc_mul: f64,
    /// Cycle cost: div/rem.
    pub cyc_div: f64,
    /// Cycle cost: pow/exp (libm call).
    pub cyc_pow: f64,
    /// Cycle cost: compare/select (includes branch-miss amortisation).
    pub cyc_cmp: f64,
    /// Cycle cost: bit ops.
    pub cyc_bit: f64,
    /// Bandwidth of a host-side memcpy (used for CPU-side padding),
    /// bytes/second.
    pub memcpy_bw: f64,
}

impl CpuSpec {
    /// The paper's host: Intel Core i5-3470 (Table I).
    pub fn core_i5_3470() -> Self {
        CpuSpec {
            name: "Intel Core i5-3470",
            clock_ghz: 3.2,
            ipc: 1.0,
            mem_bw: 8.0e9,
            cyc_add: 1.0,
            cyc_mul: 1.0,
            cyc_div: 20.0,
            cyc_pow: 250.0,
            cyc_cmp: 4.0,
            cyc_bit: 1.0,
            memcpy_bw: 12.0e9,
        }
    }

    /// Sustained scalar op throughput, ops/second (for unit-cost ops).
    pub fn op_hz(&self) -> f64 {
        self.clock_ghz * 1e9 * self.ipc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w8000_matches_table1() {
        let d = DeviceSpec::firepro_w8000();
        assert_eq!(d.total_lanes, 1792);
        assert_eq!(d.compute_units * d.wavefront, d.total_lanes);
        assert!((d.clock_ghz - 0.88).abs() < 1e-12);
        assert!((d.peak_gflops - 3230.0).abs() < 1e-9);
        assert!((d.mem_bw - 176.0e9).abs() < 1.0);
    }

    #[test]
    fn i5_matches_table1() {
        let c = CpuSpec::core_i5_3470();
        assert!((c.clock_ghz - 3.2).abs() < 1e-12);
    }

    #[test]
    fn effective_lane_hz_below_peak() {
        let d = DeviceSpec::firepro_w8000();
        // Effective throughput must be below lanes*clock (efficiency < 1).
        assert!(d.effective_lane_hz() < f64::from(d.total_lanes) * d.clock_ghz * 1e9);
        assert!(d.effective_lane_hz() > 0.0);
    }

    #[test]
    fn apu_map_beats_bulk_per_byte() {
        let t = TransferModel::apu_like();
        assert!(t.map_bw > t.bulk_bw);
        let d = TransferModel::pcie_discrete();
        assert!(d.map_bw < d.bulk_bw);
    }

    #[test]
    fn presets_differ() {
        let presets = [
            DeviceSpec::firepro_w8000(),
            DeviceSpec::midrange_gpu(),
            DeviceSpec::apu(),
            DeviceSpec::embedded_gpu(),
            DeviceSpec::hbm_gpu(),
        ];
        for (i, a) in presets.iter().enumerate() {
            for b in &presets[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn new_presets_are_internally_consistent() {
        for d in [DeviceSpec::embedded_gpu(), DeviceSpec::hbm_gpu()] {
            assert_eq!(d.compute_units * d.wavefront, d.total_lanes, "{}", d.name);
            // Peak GFlops ≈ lanes × clock × 2 (fma), as for the W8000.
            let fma_peak = f64::from(d.total_lanes) * d.clock_ghz * 2.0;
            assert!(
                (d.peak_gflops - fma_peak).abs() / fma_peak < 0.05,
                "{}: {} vs {}",
                d.name,
                d.peak_gflops,
                fma_peak
            );
        }
        // The HBM part must out-spec the W8000 everywhere that matters;
        // the embedded part must under-spec it.
        let w = DeviceSpec::firepro_w8000();
        let e = DeviceSpec::embedded_gpu();
        let h = DeviceSpec::hbm_gpu();
        assert!(h.mem_bw > w.mem_bw && h.effective_lane_hz() > w.effective_lane_hz());
        assert!(h.launch_overhead_s < w.launch_overhead_s);
        assert!(e.mem_bw < w.mem_bw && e.effective_lane_hz() < w.effective_lane_hz());
        assert!(e.launch_overhead_s > w.launch_overhead_s);
    }
}
