//! Kernel descriptions and the per-work-group execution context.
//!
//! A kernel in `simgpu` is a Rust closure invoked once per *work-group*
//! with a [`GroupCtx`]. The closure iterates over its work-items itself
//! (usually with [`items`]), which makes work-group barriers trivial to
//! express faithfully: the author simply finishes a phase across all items
//! before calling [`GroupCtx::barrier`] and starting the next — exactly the
//! lockstep structure an OpenCL kernel with `barrier(CLK_LOCAL_MEM_FENCE)`
//! has, without needing per-item coroutines.
//!
//! All data access goes through the `GroupCtx` accessors so the cost model
//! sees every byte: [`GroupCtx::load`]/[`GroupCtx::store`] count as scalar
//! accesses, [`GroupCtx::vload4`]/[`GroupCtx::vstore4`] as vector accesses
//! (better coalescing — the paper's Section V-D), and local memory has its
//! own counters.

use crate::buffer::{GlobalView, GlobalWriteView, Scalar};
use crate::cost::{CostCounters, OpCounts};
use crate::error::{Error, Result};
use crate::sanitize::GroupSan;

/// Geometry and identity of one kernel dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDesc {
    /// Kernel name, used in profiling records and error messages.
    pub name: String,
    /// Global NDRange size (x, y). Use `[n, 1]` for 1-D kernels.
    pub global: [usize; 2],
    /// Work-group size (x, y). Must divide `global` component-wise.
    pub group: [usize; 2],
}

impl KernelDesc {
    /// Describes a 2-D dispatch.
    pub fn new(name: &str, global: [usize; 2], group: [usize; 2]) -> Self {
        KernelDesc {
            name: name.to_string(),
            global,
            group,
        }
    }

    /// Describes a 1-D dispatch of `global` items in groups of `group`.
    pub fn new_1d(name: &str, global: usize, group: usize) -> Self {
        KernelDesc {
            name: name.to_string(),
            global: [global, 1],
            group: [group, 1],
        }
    }

    /// Validates the geometry.
    pub fn check(&self) -> Result<()> {
        if self.group[0] == 0 || self.group[1] == 0 {
            return Err(Error::EmptyGroup {
                kernel: self.name.clone(),
            });
        }
        if !self.global[0].is_multiple_of(self.group[0])
            || !self.global[1].is_multiple_of(self.group[1])
        {
            return Err(Error::InvalidNdRange {
                kernel: self.name.clone(),
                global: self.global,
                group: self.group,
            });
        }
        Ok(())
    }

    /// Number of work-groups along each axis.
    pub fn num_groups(&self) -> [usize; 2] {
        [
            self.global[0] / self.group[0],
            self.global[1] / self.group[1],
        ]
    }

    /// Total number of work-groups.
    pub fn total_groups(&self) -> usize {
        let g = self.num_groups();
        g[0] * g[1]
    }

    /// Work-items per group.
    pub fn group_lanes(&self) -> usize {
        self.group[0] * self.group[1]
    }

    /// Total work-items in the dispatch.
    pub fn total_items(&self) -> usize {
        self.global[0] * self.global[1]
    }
}

/// Rounds `n` up to the next multiple of `m` (for sizing NDRanges).
pub fn round_up(n: usize, m: usize) -> usize {
    debug_assert!(m > 0);
    n.div_ceil(m) * m
}

/// Iterates the local item coordinates of a group of the given size, row
/// major: `[x, y]` with `x` fastest.
pub fn items(group_size: [usize; 2]) -> impl Iterator<Item = [usize; 2]> {
    (0..group_size[1]).flat_map(move |y| (0..group_size[0]).map(move |x| [x, y]))
}

/// Per-work-group execution context handed to kernel closures.
///
/// Owns this group's cost counters and local (LDS) scratch memory.
pub struct GroupCtx {
    /// This group's coordinates in the grid.
    pub group_id: [usize; 2],
    /// The work-group size from the [`KernelDesc`].
    pub group_size: [usize; 2],
    /// Grid size in groups.
    pub num_groups: [usize; 2],
    /// Work accounting for this group; merged after the dispatch.
    pub counters: CostCounters,
    local: Vec<f32>,
    /// Sanitizer state for this group; `Some` only under a sanitized
    /// context. Observation only — never touches `counters`.
    san: Option<GroupSan>,
}

impl GroupCtx {
    #[cfg(test)]
    pub(crate) fn new(desc: &KernelDesc, group_id: [usize; 2]) -> Self {
        Self::new_with(desc, group_id, None)
    }

    pub(crate) fn new_with(desc: &KernelDesc, group_id: [usize; 2], san: Option<GroupSan>) -> Self {
        let mut counters = CostCounters::new();
        counters.groups = 1;
        counters.group_lanes = desc.group_lanes() as u64;
        counters.items = desc.group_lanes() as u64;
        GroupCtx {
            group_id,
            group_size: desc.group,
            num_groups: desc.num_groups(),
            counters,
            local: Vec::new(),
            san,
        }
    }

    // ---- sanitizer hooks -----------------------------------------------

    /// Declares which work-item the following accesses belong to, for the
    /// sanitizer's per-item attribution. Charges nothing and is a no-op on
    /// unsanitized contexts, so calling it never changes simulated time.
    ///
    /// Kernels that process one element per item call it at the top of
    /// their `items()` loop; span-form kernels that handle a whole row per
    /// logical thread call it once per row (row-level attribution — races
    /// *within* one row are not distinguished, which matches the
    /// one-thread-per-row dispatch shape they model).
    #[inline]
    pub fn begin_item(&mut self, local: [usize; 2]) {
        if let Some(s) = &mut self.san {
            let lane = (local[1] * self.group_size[0] + local[0]) as u64;
            s.begin_item(lane);
        }
    }

    /// Declares that this kernel deliberately charges up to `ratio`× the
    /// global read bytes it actually performs (e.g. vectorized stencil
    /// kernels charging redundant window loads the paper's GPU would
    /// issue). The sanitizer's drift audit then accepts
    /// `observed <= charged <= observed * ratio` for reads; writes must
    /// always match exactly. No-op (and free) on unsanitized contexts.
    #[inline]
    pub fn declare_read_overcharge(&mut self, ratio: f64) {
        if let Some(s) = &self.san {
            s.declare_read_overcharge(ratio);
        }
    }

    /// Global coordinates of a local item.
    #[inline]
    pub fn global_id(&self, local: [usize; 2]) -> [usize; 2] {
        [
            self.group_id[0] * self.group_size[0] + local[0],
            self.group_id[1] * self.group_size[1] + local[1],
        ]
    }

    /// Flat global index of a local item in a row-major matrix of width
    /// `width` (convenience for image kernels).
    #[inline]
    pub fn global_index(&self, local: [usize; 2], width: usize) -> usize {
        let g = self.global_id(local);
        g[1] * width + g[0]
    }

    // ---- global memory -------------------------------------------------

    /// Scalar load: one element, charged as a scalar global access.
    #[inline]
    pub fn load<T: Scalar>(&mut self, view: &GlobalView<T>, idx: usize) -> T {
        self.counters.global_read_scalar += std::mem::size_of::<T>() as u64;
        view.get_raw(idx)
    }

    /// Vector load of four consecutive elements (`vload4`), charged as a
    /// vector global access (coalesces better than four scalar loads).
    #[inline]
    pub fn vload4<T: Scalar>(&mut self, view: &GlobalView<T>, idx: usize) -> [T; 4] {
        self.counters.global_read_vector += 4 * std::mem::size_of::<T>() as u64;
        [
            view.get_raw(idx),
            view.get_raw(idx + 1),
            view.get_raw(idx + 2),
            view.get_raw(idx + 3),
        ]
    }

    /// Scalar store.
    #[inline]
    pub fn store<T: Scalar>(&mut self, view: &GlobalWriteView<T>, idx: usize, v: T) {
        self.counters.global_write_scalar += std::mem::size_of::<T>() as u64;
        view.set_raw(idx, v);
    }

    /// Vector store of four consecutive elements (`vstore4`).
    #[inline]
    pub fn vstore4<T: Scalar>(&mut self, view: &GlobalWriteView<T>, idx: usize, v: [T; 4]) {
        self.counters.global_write_vector += 4 * std::mem::size_of::<T>() as u64;
        view.set_raw(idx, v[0]);
        view.set_raw(idx + 1, v[1]);
        view.set_raw(idx + 2, v[2]);
        view.set_raw(idx + 3, v[3]);
    }

    /// Scalar load from a *writable* view (read-modify-write patterns).
    #[inline]
    pub fn load_mut<T: Scalar>(&mut self, view: &GlobalWriteView<T>, idx: usize) -> T {
        self.counters.global_read_scalar += std::mem::size_of::<T>() as u64;
        view.get_raw(idx)
    }

    // ---- local (LDS) memory --------------------------------------------

    /// Allocates (or reallocates) this group's local scratch of `n` f32
    /// elements, zero-initialised. Mirrors `__local float[n]`; the
    /// allocation size feeds the occupancy model (a compute unit can only
    /// keep as many groups resident as its LDS can hold).
    pub fn alloc_local(&mut self, n: usize) {
        self.local.clear();
        self.local.resize(n, 0.0);
        self.counters.local_alloc_bytes = self.counters.local_alloc_bytes.max(4 * n as u64);
        if let Some(s) = &mut self.san {
            s.on_alloc_local(n);
        }
    }

    /// Reads one element of local memory, charged to LDS traffic.
    #[inline]
    pub fn local_read(&mut self, idx: usize) -> f32 {
        self.counters.local_bytes += 4;
        if let Some(s) = &mut self.san {
            if !s.local_read(idx, self.local.len()) {
                // Out of bounds: recorded; recover with zero.
                return 0.0;
            }
        }
        self.local[idx]
    }

    /// Writes one element of local memory, charged to LDS traffic.
    #[inline]
    pub fn local_write(&mut self, idx: usize, v: f32) {
        self.counters.local_bytes += 4;
        if let Some(s) = &mut self.san {
            if !s.local_write(idx, self.local.len()) {
                // Out of bounds: recorded; recover by dropping the store.
                return;
            }
        }
        self.local[idx] = v;
    }

    /// Length of the local allocation.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    // ---- synchronisation & control flow --------------------------------

    /// Work-group barrier (`barrier(CLK_LOCAL_MEM_FENCE)`): stalls every
    /// lane of the group for the device's barrier cost.
    #[inline]
    pub fn barrier(&mut self) {
        self.counters.barriers += 1;
        if let Some(s) = &mut self.san {
            s.on_barrier();
        }
    }

    /// Records one divergent-branch event: the wavefront executes both
    /// sides of a condition that differs across its lanes.
    #[inline]
    pub fn divergent(&mut self, events: u64) {
        self.counters.divergent_branches += events;
    }

    // ---- arithmetic accounting -----------------------------------------

    /// Charges one op bundle.
    #[inline]
    pub fn charge(&mut self, ops: &OpCounts) {
        self.counters.charge_ops(ops);
    }

    /// Charges an op bundle `n` times (per-item recipe × items).
    #[inline]
    pub fn charge_n(&mut self, ops: &OpCounts, n: u64) {
        self.counters.charge_ops_n(ops, n);
    }

    /// Charges global-memory traffic in bulk, in bytes per access class.
    ///
    /// Hot kernels whose access pattern is fixed per work-item can read
    /// through the raw view accessors (`get_raw` / `read_into` /
    /// `set4_raw`) and charge the identical byte totals here once per item
    /// (or once per group with `n` items), instead of paying a counter
    /// update on every element. The cost model sees exactly the same
    /// traffic either way.
    #[inline]
    pub fn charge_global_n(
        &mut self,
        scalar_read: u64,
        vector_read: u64,
        scalar_write: u64,
        vector_write: u64,
        n: u64,
    ) {
        self.counters.global_read_scalar += scalar_read * n;
        self.counters.global_read_vector += vector_read * n;
        self.counters.global_write_scalar += scalar_write * n;
        self.counters.global_write_vector += vector_write * n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;

    fn desc() -> KernelDesc {
        KernelDesc::new("k", [64, 32], [16, 8])
    }

    #[test]
    fn desc_geometry() {
        let d = desc();
        assert!(d.check().is_ok());
        assert_eq!(d.num_groups(), [4, 4]);
        assert_eq!(d.total_groups(), 16);
        assert_eq!(d.group_lanes(), 128);
        assert_eq!(d.total_items(), 2048);
    }

    #[test]
    fn desc_rejects_bad_geometry() {
        let d = KernelDesc::new("k", [100, 100], [16, 16]);
        assert!(matches!(d.check(), Err(Error::InvalidNdRange { .. })));
        let d = KernelDesc::new("k", [64, 64], [0, 16]);
        assert!(matches!(d.check(), Err(Error::EmptyGroup { .. })));
    }

    #[test]
    fn one_d_constructor() {
        let d = KernelDesc::new_1d("r", 1024, 256);
        assert!(d.check().is_ok());
        assert_eq!(d.total_groups(), 4);
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(100, 16), 112);
        assert_eq!(round_up(112, 16), 112);
        assert_eq!(round_up(1, 64), 64);
    }

    #[test]
    fn items_iterates_row_major() {
        let v: Vec<_> = items([2, 2]).collect();
        assert_eq!(v, vec![[0, 0], [1, 0], [0, 1], [1, 1]]);
        assert_eq!(items([16, 8]).count(), 128);
    }

    #[test]
    fn global_id_offsets_by_group() {
        let g = GroupCtx::new(&desc(), [2, 3]);
        assert_eq!(g.global_id([5, 7]), [2 * 16 + 5, 3 * 8 + 7]);
        assert_eq!(g.global_index([0, 0], 64), (3 * 8) * 64 + 2 * 16);
    }

    #[test]
    fn accessors_account_bytes() {
        let buf: Buffer<f32> = Buffer::new("b", 64, false);
        buf.fill_from(&(0..64).map(|i| i as f32).collect::<Vec<_>>());
        let mut g = GroupCtx::new(&desc(), [0, 0]);
        let r = buf.view();
        let w = buf.write_view();
        let x = g.load(&r, 10);
        assert_eq!(x, 10.0);
        let v = g.vload4(&r, 4);
        assert_eq!(v, [4.0, 5.0, 6.0, 7.0]);
        g.store(&w, 0, 99.0);
        g.vstore4(&w, 20, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(g.counters.global_read_scalar, 4);
        assert_eq!(g.counters.global_read_vector, 16);
        assert_eq!(g.counters.global_write_scalar, 4);
        assert_eq!(g.counters.global_write_vector, 16);
        assert_eq!(buf.snapshot()[0], 99.0);
        assert_eq!(buf.snapshot()[22], 3.0);
    }

    #[test]
    fn load_mut_reads_through_write_view() {
        let buf: Buffer<f32> = Buffer::new("b", 8, false);
        buf.fill_from(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let mut g = GroupCtx::new(&desc(), [0, 0]);
        let w = buf.write_view();
        let v = g.load_mut(&w, 5);
        assert_eq!(v, 5.0);
        g.store(&w, 5, v * 2.0);
        assert_eq!(buf.snapshot()[5], 10.0);
        assert_eq!(g.counters.global_read_scalar, 4);
    }

    #[test]
    fn alloc_local_records_peak_allocation() {
        let mut g = GroupCtx::new(&desc(), [0, 0]);
        g.alloc_local(64);
        assert_eq!(g.counters.local_alloc_bytes, 256);
        // Re-allocation keeps the peak.
        g.alloc_local(16);
        assert_eq!(g.counters.local_alloc_bytes, 256);
        g.alloc_local(128);
        assert_eq!(g.counters.local_alloc_bytes, 512);
    }

    #[test]
    fn local_memory_roundtrip_and_accounting() {
        let mut g = GroupCtx::new(&desc(), [0, 0]);
        g.alloc_local(256);
        assert_eq!(g.local_len(), 256);
        g.local_write(3, 1.5);
        assert_eq!(g.local_read(3), 1.5);
        assert_eq!(g.counters.local_bytes, 8);
        // Fresh allocation is zeroed.
        assert_eq!(g.local_read(200), 0.0);
    }

    #[test]
    fn sync_and_ops_accounting() {
        let mut g = GroupCtx::new(&desc(), [0, 0]);
        g.barrier();
        g.barrier();
        g.divergent(5);
        g.charge_n(&OpCounts::ZERO.adds(2).pows(1), 10);
        assert_eq!(g.counters.barriers, 2);
        assert_eq!(g.counters.divergent_branches, 5);
        assert_eq!(g.counters.ops.add, 20);
        assert_eq!(g.counters.ops.pow, 10);
        assert_eq!(g.counters.group_lanes, 128);
    }
}
