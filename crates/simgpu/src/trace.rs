//! Timeline export of command records: Chrome-trace JSON (viewable in
//! `chrome://tracing` / Perfetto) and a terminal Gantt rendering.
//!
//! Useful for eyeballing where a pipeline variant spends its simulated
//! time — the visual counterpart of the paper's Fig. 13 stacked bars.

use std::fmt::Write as _;

use crate::pool::PoolStats;
use crate::queue::{CommandKind, CommandRecord};
use crate::span::SpanRecord;

/// Lane (trace "thread") a command kind is drawn on.
fn lane(kind: CommandKind) -> (&'static str, u32) {
    match kind {
        CommandKind::Kernel => ("device: kernels", 1),
        CommandKind::WriteBuffer
        | CommandKind::ReadBuffer
        | CommandKind::RectWrite
        | CommandKind::Map => ("bus: transfers", 2),
        CommandKind::HostWork => ("host: cpu work", 3),
        CommandKind::Finish => ("host: sync", 4),
    }
}

/// Gantt bar glyph for a command kind: kernels, transfers, host work and
/// sync get visually distinct bars so a row is identifiable even when its
/// name is truncated.
fn glyph(kind: CommandKind) -> char {
    match kind {
        CommandKind::Kernel => '#',
        CommandKind::WriteBuffer
        | CommandKind::ReadBuffer
        | CommandKind::RectWrite
        | CommandKind::Map => '=',
        CommandKind::HostWork => '~',
        CommandKind::Finish => '+',
    }
}

/// One frame processed by one worker, in wall-clock seconds relative to the
/// start of a multi-frame run. The unit of the per-worker timeline exports
/// ([`multiframe_chrome_json`], [`worker_gantt`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerSpan {
    /// Index of the frame in submission order.
    pub frame: usize,
    /// Index of the worker thread that processed it.
    pub worker: usize,
    /// Wall-clock start, seconds since the run began.
    pub start_s: f64,
    /// Wall-clock end, seconds since the run began.
    pub end_s: f64,
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialises the records as a Chrome-trace "traceEvents" JSON document.
/// Timestamps are microseconds of simulated time.
pub fn to_chrome_json(records: &[CommandRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    write_events(&mut out, records);
    out.push_str("]}");
    out
}

/// Like [`to_chrome_json`], with the hierarchical span tree appended as a
/// second trace process: records stay on pid 1 in **simulated**
/// microseconds; spans render on pid 2 in **wall-clock** microseconds
/// (relative to the ring's epoch), where parent/child scopes genuinely
/// nest. Each span event carries its simulated interval in `args`, so the
/// viewer shows both timebases side by side.
pub fn to_chrome_json_with_spans(records: &[CommandRecord], spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut any = write_events(&mut out, records);
    let mut sep = |out: &mut String| {
        if any {
            out.push(',');
        }
        any = true;
    };
    if !spans.is_empty() {
        sep(&mut out);
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\
             \"args\":{\"name\":\"spans (wall clock)\"}}",
        );
    }
    for s in spans {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":2,\"tid\":1,\"args\":{{\"sim_start_us\":{:.3},\"sim_dur_us\":{:.3},\
             \"depth\":{}}}}}",
            json_escape(&s.name),
            s.kind.tag(),
            s.wall_start_ns as f64 * 1e-3,
            (s.wall_end_ns.saturating_sub(s.wall_start_ns)) as f64 * 1e-3,
            s.sim_start_s * 1e6,
            s.sim_s() * 1e6,
            s.depth,
        );
    }
    out.push_str("]}");
    out
}

/// Like [`to_chrome_json`], with the buffer pool's hit/miss/live counters
/// appended as Chrome-trace counter events (`ph: "C"`), so the trace viewer
/// shows allocator recycling alongside the command timeline.
pub fn to_chrome_json_with_pool(records: &[CommandRecord], pool: &PoolStats) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let any = write_events(&mut out, records);
    let end_ts = records
        .iter()
        .map(|r| r.start_s + r.duration_s)
        .fold(0.0, f64::max)
        * 1e6;
    if any {
        out.push(',');
    }
    let _ = write!(
        out,
        "{{\"name\":\"buffer pool\",\"ph\":\"C\",\"ts\":{end_ts:.3},\"pid\":1,\
         \"args\":{{\"hits\":{},\"misses\":{},\"returns\":{},\"live\":{},\"pooled\":{}}}}}",
        pool.hits, pool.misses, pool.returns, pool.live, pool.pooled,
    );
    out.push_str("]}");
    out
}

/// Writes the duration events for `records` into `out`; returns whether any
/// event was written (callers appending more events need the comma state).
///
/// Records that carry [`crate::cost::CostCounters`] additionally emit a
/// cumulative "global bytes moved" counter track (`ph: "C"`), so the trace
/// viewer plots memory traffic under the command timeline.
fn write_events(out: &mut String, records: &[CommandRecord]) -> bool {
    let mut first = true;
    let mut cum_bytes = 0u64;
    for r in records {
        let (lane_name, tid) = lane(r.kind);
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
            json_escape(&r.name),
            json_escape(lane_name),
            r.start_s * 1e6,
            r.duration_s * 1e6,
            tid,
        );
        if let Some(c) = &r.counters {
            cum_bytes += c.global_bytes();
            let _ = write!(
                out,
                ",{{\"name\":\"global bytes moved\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":1,\
                 \"args\":{{\"bytes\":{cum_bytes}}}}}",
                (r.start_s + r.duration_s) * 1e6,
            );
        }
    }
    !first
}

/// Serialises a multi-frame run as a Chrome-trace document with **one lane
/// per worker**: each worker becomes a named thread (`ph: "M"` metadata),
/// each frame a duration event on its worker's lane, and consecutive frames
/// are linked with flow arrows (`ph: "s"`/`"f"`) showing hand-off order.
/// Timestamps are wall-clock microseconds since the run began.
pub fn multiframe_chrome_json(spans: &[WorkerSpan]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    let n_workers = spans.iter().map(|s| s.worker + 1).max().unwrap_or(0);
    for w in 0..n_workers {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"worker {w}\"}}}}",
            w + 1,
        );
    }
    let mut ordered: Vec<&WorkerSpan> = spans.iter().collect();
    ordered.sort_by_key(|s| s.frame);
    for s in &ordered {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"frame {}\",\"cat\":\"frame\",\"ph\":\"X\",\"ts\":{:.3},\
             \"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
            s.frame,
            s.start_s * 1e6,
            (s.end_s - s.start_s) * 1e6,
            s.worker + 1,
        );
    }
    // Flow arrows frame i → frame i+1 (submission order), drawn from the
    // end of the earlier frame to the start of the later one.
    for pair in ordered.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"order\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\
             \"ts\":{:.3},\"pid\":1,\"tid\":{}}},\
             {{\"name\":\"order\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
             \"ts\":{:.3},\"pid\":1,\"tid\":{}}}",
            a.frame + 1,
            a.end_s * 1e6,
            a.worker + 1,
            a.frame + 1,
            b.start_s.max(a.end_s) * 1e6,
            b.worker + 1,
        );
    }
    out.push_str("]}");
    out
}

/// Renders an ASCII Gantt chart of a multi-frame run with one row per
/// worker; each frame is a bar on its worker's row, alternating `#`/`=`
/// glyphs so adjacent frames stay distinguishable.
pub fn worker_gantt(spans: &[WorkerSpan], width: usize) -> String {
    let total = spans.iter().map(|s| s.end_s).fold(0.0, f64::max);
    if spans.is_empty() || total <= 0.0 {
        return String::from("(no frames)\n");
    }
    let width = width.clamp(20, 400);
    let n_workers = spans.iter().map(|s| s.worker + 1).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>7}  |{}| total {:.1} ms",
        "lane",
        "frames",
        "-".repeat(width),
        total * 1e3,
    );
    for w in 0..n_workers {
        let mut bar = vec![' '; width];
        let mut frames = 0usize;
        for s in spans.iter().filter(|s| s.worker == w) {
            frames += 1;
            let g = if s.frame % 2 == 0 { '#' } else { '=' };
            let c0 = ((s.start_s / total) * width as f64).floor() as usize;
            let c1 = ((s.end_s / total) * width as f64).ceil() as usize;
            let c1 = c1.clamp(c0 + 1, width);
            for cell in bar.iter_mut().take(c1).skip(c0.min(width - 1)) {
                *cell = g;
            }
        }
        let bar: String = bar.into_iter().collect();
        let name = format!("worker {w}");
        let _ = writeln!(out, "{name:<12} {frames:>7}  |{bar}|");
    }
    out
}

/// Renders an ASCII Gantt chart of the records, `width` columns wide.
/// Each row is one command; the bar spans its simulated interval.
pub fn gantt(records: &[CommandRecord], width: usize) -> String {
    let total: f64 = records
        .iter()
        .map(|r| r.start_s + r.duration_s)
        .fold(0.0, f64::max);
    if records.is_empty() || total <= 0.0 {
        return String::from("(no commands)\n");
    }
    let width = width.clamp(20, 400);
    let name_w = records
        .iter()
        .map(|r| r.name.chars().count())
        .max()
        .unwrap_or(0)
        .min(28);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$} {:>9}  |{}| total {:.1} µs",
        "command",
        "µs",
        "-".repeat(width),
        total * 1e6,
    );
    for r in records {
        let c0 = ((r.start_s / total) * width as f64).floor() as usize;
        let c1 = (((r.start_s + r.duration_s) / total) * width as f64).ceil() as usize;
        let c1 = c1.clamp(c0 + 1, width);
        let g = glyph(r.kind);
        let mut bar = String::with_capacity(width);
        bar.push_str(&" ".repeat(c0));
        bar.extend(std::iter::repeat_n(g, c1 - c0));
        bar.push_str(&" ".repeat(width - c1));
        let name = truncate_name(&r.name, name_w);
        let _ = writeln!(out, "{name:<name_w$} {:>9.1}  |{bar}|", r.duration_s * 1e6);
    }
    out
}

/// Truncates `name` to at most `max` display characters, marking any cut
/// with a trailing `…` so two long names that share a prefix never render
/// as misleadingly identical rows.
fn truncate_name(name: &str, max: usize) -> String {
    if name.chars().count() <= max {
        return name.to_string();
    }
    let keep = max.saturating_sub(1);
    let mut out: String = name.chars().take(keep).collect();
    out.push('…');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<CommandRecord> {
        vec![
            CommandRecord {
                name: "write:padded".into(),
                kind: CommandKind::WriteBuffer,
                start_s: 0.0,
                duration_s: 10e-6,
                counters: None,
            },
            CommandRecord {
                name: "sobel \"v4\"".into(),
                kind: CommandKind::Kernel,
                start_s: 10e-6,
                duration_s: 30e-6,
                counters: None,
            },
            CommandRecord {
                name: "finish".into(),
                kind: CommandKind::Finish,
                start_s: 40e-6,
                duration_s: 5e-6,
                counters: None,
            },
        ]
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let j = to_chrome_json(&records());
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.ends_with("]}"));
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 3);
        // Quote in the kernel name must be escaped.
        assert!(j.contains("sobel \\\"v4\\\""));
        // Balanced braces (crude well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn chrome_json_empty() {
        assert_eq!(to_chrome_json(&[]), "{\"traceEvents\":[]}");
    }

    #[test]
    fn chrome_json_with_pool_appends_counter_event() {
        let stats = PoolStats {
            hits: 5,
            misses: 2,
            returns: 4,
            live: 3,
            pooled: 1,
            ..PoolStats::default()
        };
        let j = to_chrome_json_with_pool(&records(), &stats);
        assert!(j.contains("\"ph\":\"C\""));
        assert!(j.contains("\"hits\":5"));
        assert!(j.contains("\"pooled\":1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // Counter-only document is still well-formed.
        let empty = to_chrome_json_with_pool(&[], &stats);
        assert!(empty.starts_with("{\"traceEvents\":[{\"name\":\"buffer pool\""));
    }

    #[test]
    fn chrome_json_with_spans_adds_second_process() {
        use crate::span::{SpanKind, SpanRing};
        let mut ring = SpanRing::new(16);
        let f = ring.open(SpanKind::Frame, "frame".into(), 0.0);
        ring.leaf(SpanKind::Kernel, "sobel".into(), 0.0, 30e-6);
        ring.close(f, 45e-6);
        let j = to_chrome_json_with_spans(&records(), &ring.snapshot());
        assert!(j.contains("\"spans (wall clock)\""));
        assert!(j.contains("\"pid\":2"));
        assert!(j.contains("\"cat\":\"frame\""));
        assert!(j.contains("\"sim_dur_us\":30.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // Records still present on pid 1.
        assert!(j.contains("\"pid\":1"));
        // Span-free call degrades to the plain export.
        assert_eq!(
            to_chrome_json_with_spans(&records(), &[]),
            to_chrome_json(&records())
        );
    }

    #[test]
    fn gantt_renders_rows_in_order() {
        let g = gantt(&records(), 40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 commands
        assert!(lines[1].contains("write:padded"));
        assert!(lines[3].contains("finish"));
        // Last command's bar ends at the right edge.
        assert!(lines[3].trim_end().ends_with('|'));
        // Kinds draw distinct glyphs: transfer '=', kernel '#', sync '+'.
        assert!(lines[1].contains('='), "{}", lines[1]);
        assert!(lines[2].contains('#'), "{}", lines[2]);
        assert!(lines[3].contains('+'), "{}", lines[3]);
    }

    #[test]
    fn gantt_handles_empty() {
        assert_eq!(gantt(&[], 40), "(no commands)\n");
    }

    #[test]
    fn gantt_truncation_marks_cut_names() {
        let long = |tag: &str| CommandRecord {
            name: format!("kernel:with-a-very-long-shared-prefix-{tag}").into(),
            kind: CommandKind::Kernel,
            start_s: 0.0,
            duration_s: 10e-6,
            counters: None,
        };
        let g = gantt(&[long("alpha"), long("beta")], 40);
        let lines: Vec<&str> = g.lines().collect();
        // Both names exceed the 28-char cap: each row ends in an ellipsis
        // and is capped at 28 display chars.
        for l in &lines[1..] {
            let name: String = l.chars().take(28).collect();
            assert!(name.trim_end().ends_with('…'), "{l}");
            assert_eq!(name.chars().count(), 28);
        }
    }

    #[test]
    fn counter_track_accumulates_global_bytes() {
        let mut recs = records();
        let c = crate::cost::CostCounters {
            global_read_scalar: 100,
            global_write_vector: 24,
            ..Default::default()
        };
        recs[1].counters = Some(c);
        let j = to_chrome_json(&recs);
        assert!(j.contains("\"global bytes moved\""));
        assert!(j.contains("\"bytes\":124"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    fn spans() -> Vec<WorkerSpan> {
        vec![
            WorkerSpan {
                frame: 0,
                worker: 0,
                start_s: 0.0,
                end_s: 2e-3,
            },
            WorkerSpan {
                frame: 1,
                worker: 1,
                start_s: 0.5e-3,
                end_s: 2.5e-3,
            },
            WorkerSpan {
                frame: 2,
                worker: 0,
                start_s: 2e-3,
                end_s: 4e-3,
            },
        ]
    }

    #[test]
    fn multiframe_trace_names_one_lane_per_worker() {
        let j = multiframe_chrome_json(&spans());
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.ends_with("]}"));
        // Two workers → two thread_name metadata events.
        assert_eq!(j.matches("\"thread_name\"").count(), 2);
        assert!(j.contains("\"worker 0\""));
        assert!(j.contains("\"worker 1\""));
        // One duration event per frame, plus flow arrows linking them.
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(j.matches("\"ph\":\"s\"").count(), 2);
        assert_eq!(j.matches("\"ph\":\"f\"").count(), 2);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(multiframe_chrome_json(&[]), "{\"traceEvents\":[]}");
    }

    #[test]
    fn worker_gantt_draws_one_row_per_worker() {
        let g = worker_gantt(&spans(), 40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 workers
        assert!(lines[1].starts_with("worker 0"));
        assert!(lines[2].starts_with("worker 1"));
        // Worker 0 processed frames 0 and 2 (both even → '#'); worker 1
        // frame 1 ('='). Alternating glyphs keep adjacent frames distinct.
        assert!(lines[1].contains('#'));
        assert!(lines[2].contains('='));
        assert!(worker_gantt(&[], 40).contains("no frames"));
    }

    #[test]
    fn lanes_partition_kinds() {
        assert_ne!(lane(CommandKind::Kernel).1, lane(CommandKind::Map).1);
        assert_eq!(
            lane(CommandKind::WriteBuffer).0,
            lane(CommandKind::RectWrite).0
        );
    }
}
