//! Timeline export of command records: Chrome-trace JSON (viewable in
//! `chrome://tracing` / Perfetto) and a terminal Gantt rendering.
//!
//! Useful for eyeballing where a pipeline variant spends its simulated
//! time — the visual counterpart of the paper's Fig. 13 stacked bars.

use std::fmt::Write as _;

use crate::pool::PoolStats;
use crate::queue::{CommandKind, CommandRecord};

/// Lane (trace "thread") a command kind is drawn on.
fn lane(kind: CommandKind) -> (&'static str, u32) {
    match kind {
        CommandKind::Kernel => ("device: kernels", 1),
        CommandKind::WriteBuffer
        | CommandKind::ReadBuffer
        | CommandKind::RectWrite
        | CommandKind::Map => ("bus: transfers", 2),
        CommandKind::HostWork => ("host: cpu work", 3),
        CommandKind::Finish => ("host: sync", 4),
    }
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialises the records as a Chrome-trace "traceEvents" JSON document.
/// Timestamps are microseconds of simulated time.
pub fn to_chrome_json(records: &[CommandRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    write_events(&mut out, records);
    out.push_str("]}");
    out
}

/// Like [`to_chrome_json`], with the buffer pool's hit/miss/live counters
/// appended as Chrome-trace counter events (`ph: "C"`), so the trace viewer
/// shows allocator recycling alongside the command timeline.
pub fn to_chrome_json_with_pool(records: &[CommandRecord], pool: &PoolStats) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let any = write_events(&mut out, records);
    let end_ts = records
        .iter()
        .map(|r| r.start_s + r.duration_s)
        .fold(0.0, f64::max)
        * 1e6;
    if any {
        out.push(',');
    }
    let _ = write!(
        out,
        "{{\"name\":\"buffer pool\",\"ph\":\"C\",\"ts\":{end_ts:.3},\"pid\":1,\
         \"args\":{{\"hits\":{},\"misses\":{},\"returns\":{},\"live\":{},\"pooled\":{}}}}}",
        pool.hits, pool.misses, pool.returns, pool.live, pool.pooled,
    );
    out.push_str("]}");
    out
}

/// Writes the duration events for `records` into `out`; returns whether any
/// event was written (callers appending more events need the comma state).
fn write_events(out: &mut String, records: &[CommandRecord]) -> bool {
    let mut first = true;
    for r in records {
        let (lane_name, tid) = lane(r.kind);
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
            json_escape(&r.name),
            json_escape(lane_name),
            r.start_s * 1e6,
            r.duration_s * 1e6,
            tid,
        );
    }
    !first
}

/// Renders an ASCII Gantt chart of the records, `width` columns wide.
/// Each row is one command; the bar spans its simulated interval.
pub fn gantt(records: &[CommandRecord], width: usize) -> String {
    let total: f64 = records
        .iter()
        .map(|r| r.start_s + r.duration_s)
        .fold(0.0, f64::max);
    if records.is_empty() || total <= 0.0 {
        return String::from("(no commands)\n");
    }
    let width = width.clamp(20, 400);
    let name_w = records
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(0)
        .min(28);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$} {:>9}  |{}| total {:.1} µs",
        "command",
        "µs",
        "-".repeat(width),
        total * 1e6,
    );
    for r in records {
        let c0 = ((r.start_s / total) * width as f64).floor() as usize;
        let c1 = (((r.start_s + r.duration_s) / total) * width as f64).ceil() as usize;
        let c1 = c1.clamp(c0 + 1, width);
        let mut bar = String::with_capacity(width);
        bar.push_str(&" ".repeat(c0));
        bar.push_str(&"#".repeat(c1 - c0));
        bar.push_str(&" ".repeat(width - c1));
        let mut name = r.name.to_string();
        if name.len() > name_w {
            name.truncate(name_w);
        }
        let _ = writeln!(out, "{name:<name_w$} {:>9.1}  |{bar}|", r.duration_s * 1e6);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<CommandRecord> {
        vec![
            CommandRecord {
                name: "write:padded".into(),
                kind: CommandKind::WriteBuffer,
                start_s: 0.0,
                duration_s: 10e-6,
                counters: None,
            },
            CommandRecord {
                name: "sobel \"v4\"".into(),
                kind: CommandKind::Kernel,
                start_s: 10e-6,
                duration_s: 30e-6,
                counters: None,
            },
            CommandRecord {
                name: "finish".into(),
                kind: CommandKind::Finish,
                start_s: 40e-6,
                duration_s: 5e-6,
                counters: None,
            },
        ]
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let j = to_chrome_json(&records());
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.ends_with("]}"));
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 3);
        // Quote in the kernel name must be escaped.
        assert!(j.contains("sobel \\\"v4\\\""));
        // Balanced braces (crude well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn chrome_json_empty() {
        assert_eq!(to_chrome_json(&[]), "{\"traceEvents\":[]}");
    }

    #[test]
    fn chrome_json_with_pool_appends_counter_event() {
        let stats = PoolStats {
            hits: 5,
            misses: 2,
            returns: 4,
            live: 3,
            pooled: 1,
        };
        let j = to_chrome_json_with_pool(&records(), &stats);
        assert!(j.contains("\"ph\":\"C\""));
        assert!(j.contains("\"hits\":5"));
        assert!(j.contains("\"pooled\":1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // Counter-only document is still well-formed.
        let empty = to_chrome_json_with_pool(&[], &stats);
        assert!(empty.starts_with("{\"traceEvents\":[{\"name\":\"buffer pool\""));
    }

    #[test]
    fn gantt_renders_rows_in_order() {
        let g = gantt(&records(), 40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 commands
        assert!(lines[1].contains("write:padded"));
        assert!(lines[3].contains("finish"));
        // Last command's bar ends at the right edge.
        assert!(lines[3].trim_end().ends_with('|'));
        // Every bar has at least one cell.
        for l in &lines[1..] {
            assert!(l.contains('#'), "{l}");
        }
    }

    #[test]
    fn gantt_handles_empty() {
        assert_eq!(gantt(&[], 40), "(no commands)\n");
    }

    #[test]
    fn lanes_partition_kinds() {
        assert_ne!(lane(CommandKind::Kernel).1, lane(CommandKind::Map).1);
        assert_eq!(
            lane(CommandKind::WriteBuffer).0,
            lane(CommandKind::RectWrite).0
        );
    }
}
