//! # simgpu — a simulated OpenCL-like GPU for deterministic performance studies
//!
//! This crate is the hardware substrate for the reproduction of
//! *Optimizing Image Sharpening Algorithm on GPU* (ICPP 2015). The paper's
//! experiments ran on an AMD FirePro W8000 over PCI-E; this environment has
//! neither, so the device is **simulated**: kernels execute functionally on
//! the host (work-groups in parallel on scoped threads, producing real
//! pixels) while
//! a calibrated analytical cost model charges simulated time for every
//! command — kernel launches, ALU work, global/local memory traffic,
//! barriers, divergence, PCI-E transfers in three modes (bulk, rect,
//! map/unmap), and host synchronisation.
//!
//! The API deliberately mirrors the OpenCL host API the paper uses:
//!
//! * [`Context`](context::Context) ≈ `cl_context` — owns the device spec and
//!   creates buffers/queues;
//! * [`Buffer`](buffer::Buffer) ≈ `cl_mem`;
//! * [`CommandQueue`](queue::CommandQueue) ≈ an in-order `cl_command_queue`
//!   with profiling enabled, including `enqueue_write`/`enqueue_read`
//!   (`clEnqueueWriteBuffer`/`clEnqueueReadBuffer`),
//!   [`enqueue_write_rect`](queue::CommandQueue::enqueue_write_rect)
//!   (`clEnqueueWriteBufferRect` — the paper pads during this transfer),
//!   [`map_write`](queue::CommandQueue::map_write)/[`map_read`](queue::CommandQueue::map_read)
//!   (`clEnqueueMapBuffer`), and [`finish`](queue::CommandQueue::finish)
//!   (`clFinish`);
//! * [`KernelDesc`](kernel::KernelDesc) + a closure ≈ a compiled kernel and
//!   its NDRange.
//!
//! Kernels are closures invoked per *work-group* with a
//! [`GroupCtx`](kernel::GroupCtx); they iterate their work-items and access
//! global memory through accounting accessors (`load`, `vload4`, `store`,
//! `vstore4`), local memory through `local_read`/`local_write`, and
//! synchronise with `barrier()`. See the [`kernel`] module docs for why this
//! reproduces OpenCL barrier semantics faithfully.
//!
//! ## Example
//!
//! ```
//! use simgpu::prelude::*;
//!
//! let ctx = Context::new(DeviceSpec::firepro_w8000());
//! let mut q = ctx.queue();
//!
//! // Upload 1024 floats.
//! let src: Vec<f32> = (0..1024).map(|i| i as f32).collect();
//! let a = ctx.buffer::<f32>("a", 1024);
//! q.enqueue_write(&a, &src).unwrap();
//!
//! // y[i] = 2*x[i] on the device.
//! let y = ctx.buffer::<f32>("y", 1024);
//! let (av, yv) = (a.view(), y.write_view());
//! let per_item = OpCounts::ZERO.muls(1);
//! q.run(&KernelDesc::new_1d("double", 1024, 256), &[&y], |g| {
//!     for l in items(g.group_size) {
//!         let i = g.global_index(l, 1024);
//!         let x = g.load(&av, i);
//!         g.store(&yv, i, 2.0 * x);
//!     }
//!     g.charge_n(&per_item, g.counters.items);
//! }).unwrap();
//!
//! let mut out = vec![0.0f32; 1024];
//! q.enqueue_read(&y, &mut out).unwrap();
//! assert_eq!(out[7], 14.0);
//! assert!(q.elapsed() > 0.0); // simulated seconds accumulated
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod buffer;
pub mod context;
pub mod cost;
pub mod device;
pub mod error;
pub mod kernel;
pub mod metrics;
pub mod par;
pub mod pool;
pub mod queue;
pub mod sanitize;
pub mod span;
pub mod timing;
pub mod trace;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::access::{
        AccessError, AccessSummary, AccessWindow, BufRef, ChargedBytes, Role, VerifyStats,
    };
    pub use crate::buffer::{Buffer, GlobalView, GlobalWriteView, Scalar};
    pub use crate::context::Context;
    pub use crate::cost::{CostCounters, OpCounts};
    pub use crate::device::{CpuSpec, DeviceSpec, TransferModel};
    pub use crate::error::{Error, Result};
    pub use crate::kernel::{items, round_up, GroupCtx, KernelDesc};
    pub use crate::metrics::{Counter, Gauge, Histogram, Metric, MetricsRegistry};
    pub use crate::pool::{BufferPool, PoolStats};
    pub use crate::queue::{CommandKind, CommandQueue, CommandRecord};
    pub use crate::sanitize::{DriftClass, RaceKind, SanitizeConfig, SanitizeReport, Violation};
    pub use crate::span::{
        aggregate as span_aggregate, span_tree, SpanAgg, SpanId, SpanKind, SpanRecord,
    };
    pub use crate::timing::{
        bulk_transfer_time, cpu_stage_time, host_memcpy_time, kernel_time, map_transfer_time,
        rect_transfer_time, KernelTime,
    };
}
