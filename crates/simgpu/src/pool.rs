//! Device-buffer pooling: recycles [`Buffer`](crate::buffer::Buffer)
//! backing storage across allocations.
//!
//! The paper's workloads are streams, and the dominant host-side waste in
//! a stream is re-allocating (and re-faulting) the same device buffers for
//! every frame. The pool keys retired backing slabs by
//! `(label, length, element type)` — the same identity a pipeline's
//! logical matrices have — so a frame's `padded`/`down`/`up`/… buffers are
//! satisfied from the previous frame's storage instead of the allocator.
//!
//! Recycled slabs are re-zeroed on acquisition, preserving the
//! freshly-allocated-buffers-are-zero contract, which is still far cheaper
//! than allocate + zero + first-touch page faults. Hit/miss/return
//! counters are exported through [`PoolStats`] and can be embedded in
//! Chrome traces via [`crate::trace::to_chrome_json_with_pool`].

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Retired slabs kept per key; beyond this the slab is simply freed.
const MAX_SLABS_PER_KEY: usize = 32;

#[derive(PartialEq, Eq, Hash)]
struct PoolKey {
    label: String,
    len: usize,
    ty: TypeId,
}

/// Snapshot of the pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffer requests satisfied from a recycled slab.
    pub hits: u64,
    /// Buffer requests that had to allocate fresh storage.
    pub misses: u64,
    /// Slabs returned to the pool by dropped buffers.
    pub returns: u64,
    /// Pool-managed buffers currently alive (acquired, not yet dropped).
    pub live: u64,
    /// Retired slabs currently parked in the pool.
    pub pooled: u64,
}

pub(crate) struct PoolShared {
    slabs: Mutex<HashMap<PoolKey, Vec<Box<dyn Any + Send>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    live: AtomicU64,
}

impl PoolShared {
    /// Takes a recycled slab for `(label, len, T)` if one is parked.
    pub(crate) fn take<T: 'static>(&self, label: &str, len: usize) -> Option<Box<[T]>> {
        let key = PoolKey {
            label: label.to_string(),
            len,
            ty: TypeId::of::<T>(),
        };
        let slab = self
            .slabs
            .lock()
            .expect("pool lock")
            .get_mut(&key)
            .and_then(Vec::pop);
        let hit = slab.map(|any| *any.downcast::<Box<[T]>>().expect("pool slab type"));
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        self.live.fetch_add(1, Ordering::Relaxed);
        hit
    }

    /// Parks a retired slab for reuse (dropping it if the key is full).
    pub(crate) fn give<T: Send + 'static>(&self, label: &str, slab: Box<[T]>) {
        let key = PoolKey {
            label: label.to_string(),
            len: slab.len(),
            ty: TypeId::of::<T>(),
        };
        let mut slabs = self.slabs.lock().expect("pool lock");
        let entry = slabs.entry(key).or_default();
        if entry.len() < MAX_SLABS_PER_KEY {
            entry.push(Box::new(slab));
            self.returns.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the death of a pool-managed buffer.
    pub(crate) fn retire_live(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A shared recycling pool for device-buffer backing storage.
///
/// Owned by a [`Context`](crate::context::Context); clones of the context
/// share the same pool, so every pipeline (and every worker thread of a
/// throughput engine) created from one context recycles from the same
/// inventory.
#[derive(Clone)]
pub struct BufferPool {
    pub(crate) shared: Arc<PoolShared>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool {
            shared: Arc::new(PoolShared {
                slabs: Mutex::new(HashMap::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                returns: AtomicU64::new(0),
                live: AtomicU64::new(0),
            }),
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> PoolStats {
        let pooled = self
            .shared
            .slabs
            .lock()
            .expect("pool lock")
            .values()
            .map(|v| v.len() as u64)
            .sum();
        PoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            returns: self.shared.returns.load(Ordering::Relaxed),
            live: self.shared.live.load(Ordering::Relaxed),
            pooled,
        }
    }

    /// Frees every parked slab (counters are preserved).
    pub fn clear(&self) {
        self.shared.slabs.lock().expect("pool lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use crate::context::Context;
    use crate::device::DeviceSpec;

    #[test]
    fn repeated_allocation_recycles() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        {
            let _b = ctx.buffer::<f32>("m", 1024);
        }
        let s = ctx.pool_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.returns, 1);
        assert_eq!(s.live, 0);
        assert_eq!(s.pooled, 1);
        {
            let b = ctx.buffer::<f32>("m", 1024);
            assert_eq!(b.snapshot()[0], 0.0);
            let s = ctx.pool_stats();
            assert_eq!(s.hits, 1);
            assert_eq!(s.live, 1);
            assert_eq!(s.pooled, 0);
        }
        assert_eq!(ctx.pool_stats().pooled, 1);
    }

    #[test]
    fn recycled_buffers_are_zeroed() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        {
            let b = ctx.buffer::<f32>("z", 64);
            b.fill_from(&[3.5; 64]);
        }
        let b = ctx.buffer::<f32>("z", 64);
        assert!(b.snapshot().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn distinct_identities_do_not_alias() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        drop(ctx.buffer::<f32>("a", 16));
        // Different label, length, or element type: all misses.
        drop(ctx.buffer::<f32>("b", 16));
        drop(ctx.buffer::<f32>("a", 32));
        drop(ctx.buffer::<u32>("a", 16));
        assert_eq!(ctx.pool_stats().hits, 0);
        assert_eq!(ctx.pool_stats().misses, 4);
        // Exact identity: hit.
        drop(ctx.buffer::<f32>("a", 16));
        assert_eq!(ctx.pool_stats().hits, 1);
    }

    #[test]
    fn live_counter_tracks_overlapping_lifetimes() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let a = ctx.buffer::<f32>("o", 8);
        let b = ctx.buffer::<f32>("o", 8);
        let c = ctx.buffer::<f32>("o", 16);
        assert_eq!(ctx.pool_stats().live, 3);
        drop(b);
        assert_eq!(ctx.pool_stats().live, 2);
        drop(a);
        drop(c);
        let s = ctx.pool_stats();
        assert_eq!(s.live, 0);
        assert_eq!(s.returns, 3);
        assert_eq!(s.pooled, 3);
    }

    #[test]
    fn pool_is_shared_across_context_clones() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let ctx2 = ctx.clone();
        drop(ctx.buffer::<f32>("s", 8));
        drop(ctx2.buffer::<f32>("s", 8));
        let s = ctx.pool_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn disabled_pooling_never_recycles() {
        let ctx = Context::new(DeviceSpec::firepro_w8000()).with_pooling(false);
        drop(ctx.buffer::<f32>("n", 8));
        drop(ctx.buffer::<f32>("n", 8));
        let s = ctx.pool_stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 0);
        assert_eq!(s.pooled, 0);
    }

    #[test]
    fn clear_empties_inventory() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        drop(ctx.buffer::<f32>("c", 8));
        assert_eq!(ctx.pool_stats().pooled, 1);
        ctx.pool().clear();
        assert_eq!(ctx.pool_stats().pooled, 0);
        // Next acquisition is a miss again.
        drop(ctx.buffer::<f32>("c", 8));
        assert_eq!(ctx.pool_stats().hits, 0);
    }
}
