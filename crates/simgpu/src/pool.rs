//! Device-buffer pooling: recycles [`Buffer`](crate::buffer::Buffer)
//! backing storage across allocations.
//!
//! The paper's workloads are streams, and the dominant host-side waste in
//! a stream is re-allocating (and re-faulting) the same device buffers for
//! every frame. The pool keys retired backing slabs by
//! `(label, length, element type)` — the same identity a pipeline's
//! logical matrices have — so a frame's `padded`/`down`/`up`/… buffers are
//! satisfied from the previous frame's storage instead of the allocator.
//!
//! Recycled slabs are re-zeroed on acquisition, preserving the
//! freshly-allocated-buffers-are-zero contract, which is still far cheaper
//! than allocate + zero + first-touch page faults. Hit/miss/return
//! counters are exported through [`PoolStats`] and can be embedded in
//! Chrome traces via [`crate::trace::to_chrome_json_with_pool`].

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Retired slabs kept per key; beyond this the slab is simply freed.
const MAX_SLABS_PER_KEY: usize = 32;

/// Default cap on total parked bytes (1 GiB). Generous enough that the
/// benchmark sweeps (up to 8192² f32 planes) never thrash, small enough
/// that Zipf-tailed mixed-shape traffic cannot grow the inventory without
/// bound: once the cap is reached, the least-recently-parked slab is
/// evicted (cold tail shapes age out, hot shapes stay resident).
pub const DEFAULT_CAPACITY_BYTES: u64 = 1 << 30;

#[derive(PartialEq, Eq, Hash)]
struct PoolKey {
    label: String,
    len: usize,
    ty: TypeId,
}

/// One retired slab plus the bookkeeping the LRU policy needs.
struct Parked {
    slab: Box<dyn Any + Send>,
    bytes: u64,
    /// Monotonic park order; the smallest live `seq` is the LRU victim.
    seq: u64,
}

/// The lock-guarded inventory: parked slabs plus LRU accounting.
#[derive(Default)]
struct Inventory {
    /// Per-key stacks, oldest at index 0 (takes pop the newest).
    slabs: HashMap<PoolKey, Vec<Parked>>,
    parked_bytes: u64,
    next_seq: u64,
}

/// Snapshot of the pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffer requests satisfied from a recycled slab.
    pub hits: u64,
    /// Buffer requests that had to allocate fresh storage.
    pub misses: u64,
    /// Slabs returned to the pool by dropped buffers.
    pub returns: u64,
    /// Pool-managed buffers currently alive (acquired, not yet dropped).
    pub live: u64,
    /// Retired slabs currently parked in the pool.
    pub pooled: u64,
    /// Slabs freed by the LRU capacity policy (or a full per-key stack).
    pub evicted: u64,
    /// Bytes currently parked (always ≤ the configured capacity).
    pub pooled_bytes: u64,
}

impl PoolStats {
    /// Exports the snapshot into a metrics registry under `prefix`
    /// (`<prefix>.hits`, `<prefix>.evicted`, …). Cumulative totals are
    /// **added** as counters (export once per registry); instantaneous
    /// values (`live`, `pooled`, `pooled_bytes`) become gauges.
    pub fn to_registry(&self, prefix: &str, reg: &mut crate::metrics::MetricsRegistry) {
        reg.inc(&format!("{prefix}.hits"), self.hits);
        reg.inc(&format!("{prefix}.misses"), self.misses);
        reg.inc(&format!("{prefix}.returns"), self.returns);
        reg.inc(&format!("{prefix}.evicted"), self.evicted);
        reg.set_gauge(&format!("{prefix}.live"), self.live as f64);
        reg.set_gauge(&format!("{prefix}.pooled"), self.pooled as f64);
        reg.set_gauge(&format!("{prefix}.pooled_bytes"), self.pooled_bytes as f64);
    }
}

pub(crate) struct PoolShared {
    inventory: Mutex<Inventory>,
    capacity_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    live: AtomicU64,
    evicted: AtomicU64,
}

/// Locks the inventory, recovering from poisoning: the inventory is plain
/// data and every mutation below leaves it internally consistent, so a
/// panicking holder must not wedge every later allocation.
fn lock_inventory(m: &Mutex<Inventory>) -> MutexGuard<'_, Inventory> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl PoolShared {
    /// Takes a recycled slab for `(label, len, T)` if one is parked.
    pub(crate) fn take<T: 'static>(&self, label: &str, len: usize) -> Option<Box<[T]>> {
        let key = PoolKey {
            label: label.to_string(),
            len,
            ty: TypeId::of::<T>(),
        };
        let slab = {
            let mut inv = lock_inventory(&self.inventory);
            let popped = inv.slabs.get_mut(&key).and_then(Vec::pop);
            if let Some(p) = &popped {
                inv.parked_bytes -= p.bytes;
            }
            popped
        };
        let hit = slab.map(|p| *p.slab.downcast::<Box<[T]>>().expect("pool slab type"));
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        self.live.fetch_add(1, Ordering::Relaxed);
        hit
    }

    /// Parks a retired slab for reuse, then enforces the byte capacity by
    /// evicting least-recently-parked slabs (across all keys) until the
    /// inventory fits. A full per-key stack drops the incoming slab.
    pub(crate) fn give<T: Send + 'static>(&self, label: &str, slab: Box<[T]>) {
        let key = PoolKey {
            label: label.to_string(),
            len: slab.len(),
            ty: TypeId::of::<T>(),
        };
        let bytes = (slab.len() * std::mem::size_of::<T>()) as u64;
        let mut inv = lock_inventory(&self.inventory);
        let seq = inv.next_seq;
        inv.next_seq += 1;
        let entry = inv.slabs.entry(key).or_default();
        if entry.len() >= MAX_SLABS_PER_KEY {
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        entry.push(Parked {
            slab: Box::new(slab),
            bytes,
            seq,
        });
        inv.parked_bytes += bytes;
        self.returns.fetch_add(1, Ordering::Relaxed);
        while inv.parked_bytes > self.capacity_bytes {
            self.evict_lru(&mut inv);
        }
    }

    /// Frees the least-recently-parked slab. Per-key stacks are in park
    /// order, so the global LRU victim is the smallest front-of-stack seq
    /// (the map is small: one key per distinct `(label, len, type)`).
    fn evict_lru(&self, inv: &mut Inventory) {
        let victim = inv
            .slabs
            .iter()
            .filter_map(|(k, v)| v.first().map(|p| (p.seq, k)))
            .min_by_key(|(seq, _)| *seq)
            .map(|(_, k)| PoolKey {
                label: k.label.clone(),
                len: k.len,
                ty: k.ty,
            });
        let Some(key) = victim else { return };
        let Some(stack) = inv.slabs.get_mut(&key) else {
            return;
        };
        let parked = stack.remove(0);
        let emptied = stack.is_empty();
        inv.parked_bytes -= parked.bytes;
        self.evicted.fetch_add(1, Ordering::Relaxed);
        if emptied {
            inv.slabs.remove(&key);
        }
    }

    /// Records the death of a pool-managed buffer.
    pub(crate) fn retire_live(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A shared recycling pool for device-buffer backing storage.
///
/// Owned by a [`Context`](crate::context::Context); clones of the context
/// share the same pool, so every pipeline (and every worker thread of a
/// throughput engine) created from one context recycles from the same
/// inventory.
#[derive(Clone)]
pub struct BufferPool {
    pub(crate) shared: Arc<PoolShared>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// Creates an empty pool with the default byte capacity
    /// ([`DEFAULT_CAPACITY_BYTES`]).
    pub fn new() -> Self {
        Self::with_capacity_bytes(DEFAULT_CAPACITY_BYTES)
    }

    /// Creates an empty pool that parks at most `capacity_bytes` of
    /// retired storage; beyond that, least-recently-parked slabs are
    /// evicted (counted in [`PoolStats::evicted`]).
    pub fn with_capacity_bytes(capacity_bytes: u64) -> Self {
        BufferPool {
            shared: Arc::new(PoolShared {
                inventory: Mutex::new(Inventory::default()),
                capacity_bytes,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                returns: AtomicU64::new(0),
                live: AtomicU64::new(0),
                evicted: AtomicU64::new(0),
            }),
        }
    }

    /// The configured cap on parked bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.shared.capacity_bytes
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> PoolStats {
        let (pooled, pooled_bytes) = {
            let inv = lock_inventory(&self.shared.inventory);
            (
                inv.slabs.values().map(|v| v.len() as u64).sum(),
                inv.parked_bytes,
            )
        };
        PoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            returns: self.shared.returns.load(Ordering::Relaxed),
            live: self.shared.live.load(Ordering::Relaxed),
            pooled,
            evicted: self.shared.evicted.load(Ordering::Relaxed),
            pooled_bytes,
        }
    }

    /// Frees every parked slab (counters are preserved).
    pub fn clear(&self) {
        let mut inv = lock_inventory(&self.shared.inventory);
        inv.slabs.clear();
        inv.parked_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use crate::context::Context;
    use crate::device::DeviceSpec;

    #[test]
    fn repeated_allocation_recycles() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        {
            let _b = ctx.buffer::<f32>("m", 1024);
        }
        let s = ctx.pool_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.returns, 1);
        assert_eq!(s.live, 0);
        assert_eq!(s.pooled, 1);
        {
            let b = ctx.buffer::<f32>("m", 1024);
            assert_eq!(b.snapshot()[0], 0.0);
            let s = ctx.pool_stats();
            assert_eq!(s.hits, 1);
            assert_eq!(s.live, 1);
            assert_eq!(s.pooled, 0);
        }
        assert_eq!(ctx.pool_stats().pooled, 1);
    }

    #[test]
    fn recycled_buffers_are_zeroed() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        {
            let b = ctx.buffer::<f32>("z", 64);
            b.fill_from(&[3.5; 64]);
        }
        let b = ctx.buffer::<f32>("z", 64);
        assert!(b.snapshot().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn distinct_identities_do_not_alias() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        drop(ctx.buffer::<f32>("a", 16));
        // Different label, length, or element type: all misses.
        drop(ctx.buffer::<f32>("b", 16));
        drop(ctx.buffer::<f32>("a", 32));
        drop(ctx.buffer::<u32>("a", 16));
        assert_eq!(ctx.pool_stats().hits, 0);
        assert_eq!(ctx.pool_stats().misses, 4);
        // Exact identity: hit.
        drop(ctx.buffer::<f32>("a", 16));
        assert_eq!(ctx.pool_stats().hits, 1);
    }

    #[test]
    fn live_counter_tracks_overlapping_lifetimes() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let a = ctx.buffer::<f32>("o", 8);
        let b = ctx.buffer::<f32>("o", 8);
        let c = ctx.buffer::<f32>("o", 16);
        assert_eq!(ctx.pool_stats().live, 3);
        drop(b);
        assert_eq!(ctx.pool_stats().live, 2);
        drop(a);
        drop(c);
        let s = ctx.pool_stats();
        assert_eq!(s.live, 0);
        assert_eq!(s.returns, 3);
        assert_eq!(s.pooled, 3);
    }

    #[test]
    fn pool_is_shared_across_context_clones() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let ctx2 = ctx.clone();
        drop(ctx.buffer::<f32>("s", 8));
        drop(ctx2.buffer::<f32>("s", 8));
        let s = ctx.pool_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn disabled_pooling_never_recycles() {
        let ctx = Context::new(DeviceSpec::firepro_w8000()).with_pooling(false);
        drop(ctx.buffer::<f32>("n", 8));
        drop(ctx.buffer::<f32>("n", 8));
        let s = ctx.pool_stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 0);
        assert_eq!(s.pooled, 0);
    }

    #[test]
    fn capacity_evicts_least_recently_parked_first() {
        // Room for two 64-element f32 slabs (256 B each), not three.
        let ctx = Context::new(DeviceSpec::firepro_w8000()).with_pool_capacity(600);
        drop(ctx.buffer::<f32>("a", 64));
        drop(ctx.buffer::<f32>("b", 64));
        let s = ctx.pool_stats();
        assert_eq!((s.pooled, s.evicted, s.pooled_bytes), (2, 0, 512));
        // Parking a third slab pushes past the cap: "a" (oldest) goes.
        drop(ctx.buffer::<f32>("c", 64));
        let s = ctx.pool_stats();
        assert_eq!((s.pooled, s.evicted, s.pooled_bytes), (2, 1, 512));
        assert!(s.pooled_bytes <= ctx.pool().capacity_bytes());
        // "a" was evicted (miss), "b" and "c" are still parked (hits).
        drop(ctx.buffer::<f32>("b", 64));
        drop(ctx.buffer::<f32>("c", 64));
        assert_eq!(ctx.pool_stats().hits, 2);
        drop(ctx.buffer::<f32>("a", 64));
        assert_eq!(ctx.pool_stats().misses, 4);
    }

    #[test]
    fn slab_larger_than_capacity_is_parked_then_immediately_evicted() {
        let ctx = Context::new(DeviceSpec::firepro_w8000()).with_pool_capacity(16);
        drop(ctx.buffer::<f32>("big", 64)); // 256 B > 16 B cap
        let s = ctx.pool_stats();
        assert_eq!((s.pooled, s.pooled_bytes), (0, 0));
        assert_eq!(s.evicted, 1);
        assert_eq!(s.returns, 1);
    }

    #[test]
    fn zipf_mixed_shapes_stay_under_cap_with_hot_hit_rate_high() {
        // Regression for unbounded growth: a long mixed-shape stream with a
        // Zipf-like skew (one hot shape, a tail of cold ones) must keep the
        // inventory under the configured cap while the hot shape keeps
        // recycling. Cap fits the hot slab (4 KiB) plus a couple of cold
        // tail slabs (1 KiB each).
        let ctx = Context::new(DeviceSpec::firepro_w8000()).with_pool_capacity(6 * 1024);
        let mut hot_hits = 0u64;
        for i in 0..400u64 {
            let before = ctx.pool_stats().hits;
            if i % 2 == 0 {
                drop(ctx.buffer::<f32>("hot", 1024));
                hot_hits += ctx.pool_stats().hits - before;
            } else {
                // 12-shape cold tail, cycled: far more distinct shapes than
                // the cap can park at once.
                drop(ctx.buffer::<f32>("cold", 256 + 13 * (i % 12) as usize));
            }
            let s = ctx.pool_stats();
            assert!(
                s.pooled_bytes <= ctx.pool().capacity_bytes(),
                "iteration {i}: {} parked bytes over the {} cap",
                s.pooled_bytes,
                ctx.pool().capacity_bytes()
            );
        }
        let s = ctx.pool_stats();
        assert!(s.evicted > 0, "cold tail never triggered eviction");
        // Every hot allocation after the first recycles: the hot slab is
        // always the most recently parked, so the LRU never victimises it.
        assert_eq!(hot_hits, 199, "hot-shape hit rate degraded: {s:?}");
    }

    #[test]
    fn stats_export_to_metrics_registry() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        drop(ctx.buffer::<f32>("m", 32));
        drop(ctx.buffer::<f32>("m", 32));
        let mut reg = crate::metrics::MetricsRegistry::new();
        ctx.pool_stats().to_registry("pool", &mut reg);
        assert_eq!(reg.counter("pool.hits"), 1);
        assert_eq!(reg.counter("pool.misses"), 1);
        assert_eq!(reg.gauge("pool.pooled"), 1.0);
        assert_eq!(reg.gauge("pool.pooled_bytes"), 128.0);
    }

    #[test]
    fn clear_empties_inventory() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        drop(ctx.buffer::<f32>("c", 8));
        assert_eq!(ctx.pool_stats().pooled, 1);
        ctx.pool().clear();
        assert_eq!(ctx.pool_stats().pooled, 0);
        // Next acquisition is a miss again.
        drop(ctx.buffer::<f32>("c", 8));
        assert_eq!(ctx.pool_stats().hits, 0);
    }
}
