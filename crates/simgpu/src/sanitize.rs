//! Shadow-execution sanitizer: race, bounds, barrier, and accounting checks.
//!
//! When a [`Context`](crate::context::Context) is created with
//! [`Context::sanitized`](crate::context::Context::sanitized) (or
//! [`with_sanitize`](crate::context::Context::with_sanitize)), every buffer
//! carries a *shadow* — per-element last-writer / last-reader words — and
//! every kernel dispatch runs an analysis pass alongside its functional
//! execution. The pass observes each global access (through the raw view
//! accessors every `GroupCtx` accessor funnels into), each local (LDS)
//! access, and each `barrier()`, attributing them to work-items via the
//! [`GroupCtx::begin_item`](crate::kernel::GroupCtx::begin_item) cursor,
//! and reports:
//!
//! * **data races** — write/write and read/write conflicts on the same
//!   global element by different work-items (global memory has no
//!   inter-work-item ordering in OpenCL, so any same-dispatch conflict is a
//!   hazard), and on the same local element by different work-items of a
//!   group not separated by a `barrier()` — with a *wavefront exemption*:
//!   lanes of one wavefront execute in lockstep, which is exactly what the
//!   paper's unrolled last-wavefront reduction relies on;
//! * **out-of-bounds accesses** — global (per buffer) and local (past the
//!   `alloc_local` size). Under the sanitizer these are recorded and
//!   *recovered* (reads return zero, writes are dropped) so one bad access
//!   does not abort the whole analysis run;
//! * **barrier divergence** — a `barrier()` reached under item-dependent
//!   control flow, detected when the item sweep resumes *past* the lane
//!   that hit the barrier (some lanes skipped it);
//! * **accounting drift** — the bytes a dispatch actually touched versus
//!   what the kernel charged the cost model via `charge_global_n` et al.
//!   Writes must match exactly; reads must match exactly unless the kernel
//!   declares a deliberate overcharge ratio (see
//!   [`GroupCtx::declare_read_overcharge`](crate::kernel::GroupCtx::declare_read_overcharge)),
//!   modelling kernels that charge redundant window loads;
//! * **uninitialised reads** (opt-in via
//!   [`SanitizeConfig::check_uninit_reads`]) — an element read before any
//!   host transfer or kernel store wrote it; this is the pool-recycling
//!   stale-data detector.
//!
//! The sanitizer is *observation only*: it charges nothing to the cost
//! model and never alters what a correct kernel computes, so sanitized runs
//! produce byte-identical pixels and identical simulated seconds. Its cost
//! is wall-clock only.
//!
//! **Concurrency contract:** one sanitized dispatch at a time per context.
//! Dispatches from clones of one sanitized context must not overlap in
//! wall-clock time (the per-dispatch epoch and byte accumulators are
//! shared), so the multi-frame `ThroughputEngine` should run unsanitized.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::cost::CostCounters;

// ---- violation records ----------------------------------------------------

/// Whether a detected race involved two writes or a read and a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Two different work-items wrote the same element.
    WriteWrite,
    /// One work-item read an element another wrote.
    ReadWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write/write"),
            RaceKind::ReadWrite => write!(f, "read/write"),
        }
    }
}

/// Which side of the cost accounting drifted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftClass {
    /// Global read bytes: observed vs charged.
    Read,
    /// Global write bytes: observed vs charged.
    Write,
}

impl fmt::Display for DriftClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriftClass::Read => write!(f, "read"),
            DriftClass::Write => write!(f, "write"),
        }
    }
}

/// One defect found by the sanitizer.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Conflicting accesses to one global element by different work-items
    /// of the same dispatch. On real hardware the result is undefined:
    /// OpenCL provides no ordering between work-items of different groups,
    /// and none within a group without an atomics/barrier protocol.
    GlobalRace {
        /// Kernel in which the conflict occurred.
        kernel: String,
        /// Label of the buffer involved.
        buffer: String,
        /// Element index both work-items touched.
        index: usize,
        /// Write/write or read/write.
        kind: RaceKind,
    },
    /// Conflicting same-phase accesses to one local (LDS) element by lanes
    /// of *different wavefronts* of a group, not separated by a barrier.
    LocalRace {
        /// Kernel in which the conflict occurred.
        kernel: String,
        /// LDS element index.
        index: usize,
        /// Write/write or read/write.
        kind: RaceKind,
    },
    /// A global access outside the buffer. Recovered under the sanitizer
    /// (reads return zero, writes are dropped).
    OobGlobal {
        /// Kernel performing the access.
        kernel: String,
        /// Label of the buffer involved.
        buffer: String,
        /// First out-of-bounds element index.
        index: usize,
        /// Buffer length in elements.
        len: usize,
        /// True for a store, false for a load.
        write: bool,
    },
    /// A local (LDS) access past the `alloc_local` size.
    OobLocal {
        /// Kernel performing the access.
        kernel: String,
        /// LDS element index accessed.
        index: usize,
        /// Allocated LDS length in elements.
        len: usize,
        /// True for a store, false for a load.
        write: bool,
    },
    /// A `barrier()` was not reached by every work-item of a group: after
    /// the barrier, the item sweep resumed past the lane that issued it.
    /// On real hardware this deadlocks or is undefined behaviour.
    BarrierDivergence {
        /// Kernel in which the divergence occurred.
        kernel: String,
        /// Flat index of the group that diverged.
        group: usize,
    },
    /// Observed global traffic differs from what the kernel charged the
    /// cost model. Every simulated-seconds figure derives from those
    /// charges, so drift silently corrupts the paper reproduction.
    AccountingDrift {
        /// Kernel whose charges drifted.
        kernel: String,
        /// Read-side or write-side drift.
        class: DriftClass,
        /// Bytes the dispatch actually touched.
        observed: u64,
        /// Bytes the kernel charged.
        charged: u64,
    },
    /// The dynamic access set observed by the shadow differs from what the
    /// dispatch's declared [`crate::access::AccessSummary`] promised. The
    /// declarations are cross-validated against the shadow on every
    /// sanitized run precisely so they cannot rot.
    SummaryDrift {
        /// Kernel whose declaration drifted.
        kernel: String,
        /// Read-side or write-side drift.
        class: DriftClass,
        /// Bytes the dispatch actually touched.
        observed: u64,
        /// Bytes the access summary declared.
        declared: u64,
    },
    /// An element was read before any host transfer or kernel store
    /// initialised it (only with [`SanitizeConfig::check_uninit_reads`]).
    UninitRead {
        /// Kernel performing the read.
        kernel: String,
        /// Label of the buffer involved.
        buffer: String,
        /// Element index read.
        index: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::GlobalRace {
                kernel,
                buffer,
                index,
                kind,
            } => write!(
                f,
                "global {kind} race on `{buffer}`[{index}] in kernel `{kernel}`"
            ),
            Violation::LocalRace {
                kernel,
                index,
                kind,
            } => write!(
                f,
                "local {kind} race on lds[{index}] in kernel `{kernel}` (lanes of different wavefronts, no barrier between)"
            ),
            Violation::OobGlobal {
                kernel,
                buffer,
                index,
                len,
                write,
            } => write!(
                f,
                "out-of-bounds {} on `{buffer}`[{index}] (len {len}) in kernel `{kernel}`",
                if *write { "store" } else { "load" }
            ),
            Violation::OobLocal {
                kernel,
                index,
                len,
                write,
            } => write!(
                f,
                "out-of-bounds local {} at lds[{index}] (alloc {len}) in kernel `{kernel}`",
                if *write { "store" } else { "load" }
            ),
            Violation::BarrierDivergence { kernel, group } => write!(
                f,
                "barrier divergence in kernel `{kernel}` (group {group}): barrier not reached by all work-items"
            ),
            Violation::AccountingDrift {
                kernel,
                class,
                observed,
                charged,
            } => write!(
                f,
                "accounting drift in kernel `{kernel}`: observed {observed} global {class} bytes, charged {charged}"
            ),
            Violation::SummaryDrift {
                kernel,
                class,
                observed,
                declared,
            } => write!(
                f,
                "access-summary drift in kernel `{kernel}`: observed {observed} global {class} bytes, summary declares {declared}"
            ),
            Violation::UninitRead {
                kernel,
                buffer,
                index,
            } => write!(
                f,
                "read of uninitialised `{buffer}`[{index}] in kernel `{kernel}`"
            ),
        }
    }
}

// ---- configuration & report -----------------------------------------------

/// Tuning knobs for the sanitizer.
#[derive(Debug, Clone)]
pub struct SanitizeConfig {
    /// Also flag reads of elements no host transfer or kernel store has
    /// written. Off by default: the pipeline deliberately reads the
    /// alloc-zeroed border of the padded buffer, which is correct but would
    /// trip a strict read-before-write detector.
    pub check_uninit_reads: bool,
    /// Keep at most this many violation records; the rest are counted in
    /// [`SanitizeReport::dropped`]. A race on a whole row would otherwise
    /// produce thousands of identical records.
    pub max_violations: usize,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig {
            check_uninit_reads: false,
            max_violations: 64,
        }
    }
}

/// Everything the sanitizer found, queryable from
/// [`Context::sanitize_report`](crate::context::Context::sanitize_report).
#[derive(Debug, Clone)]
pub struct SanitizeReport {
    /// Kernel dispatches analysed.
    pub dispatches: u64,
    /// Violations recorded (capped at `SanitizeConfig::max_violations`).
    pub violations: Vec<Violation>,
    /// Violations beyond the cap, counted but not stored.
    pub dropped: u64,
}

impl SanitizeReport {
    /// True when no violation of any class was observed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if self.is_clean() {
            let _ = write!(
                s,
                "sanitize: clean — {} dispatches, no races, out-of-bounds accesses, barrier divergence, or accounting drift",
                self.dispatches
            );
            return s;
        }
        let _ = writeln!(
            s,
            "sanitize: {} violation(s) across {} dispatches{}:",
            self.violations.len() as u64 + self.dropped,
            self.dispatches,
            if self.dropped > 0 {
                format!(" ({} not shown)", self.dropped)
            } else {
                String::new()
            }
        );
        for v in &self.violations {
            let _ = writeln!(s, "  - {v}");
        }
        s.pop();
        s
    }
}

impl fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

// ---- shared per-context state ---------------------------------------------

// Shadow words pack (epoch, tag) so a new dispatch implicitly invalidates
// every stale word without an O(len) clear. The epoch keeps the low 24 bits
// of the dispatch counter (collisions need an exact 16M-dispatch wrap onto
// the same element — ignorable); the tag is the 1-based flat work-item
// serial, with bit 39 marking "multiple readers".
const TAG_BITS: u32 = 40;
const MULTI: u64 = 1 << 39;
const TAG_MASK: u64 = MULTI - 1;
const EPOCH_MASK: u64 = (1 << 24) - 1;

#[inline]
fn pack(epoch: u64, tagfield: u64) -> u64 {
    ((epoch & EPOCH_MASK) << TAG_BITS) | tagfield
}

#[inline]
fn word_epoch(w: u64) -> u64 {
    w >> TAG_BITS
}

#[inline]
fn word_tag(w: u64) -> u64 {
    w & TAG_MASK
}

#[inline]
fn word_multi(w: u64) -> bool {
    w & MULTI != 0
}

thread_local! {
    /// (epoch, tag) of the work-item this thread is currently executing.
    /// Tag 0 = no item. Kernel worker threads set it via `begin_item`; the
    /// epoch check plus the dispatch `active` flag make stale values inert.
    static CURSOR: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Per-context sanitizer state, shared by the context, its queues, and
/// every buffer shadow. `pub(crate)`: reached only through `Context`.
pub(crate) struct SanitizeShared {
    /// Dispatch counter; doubles as the shadow-word epoch.
    epoch: AtomicU64,
    /// True only while a dispatch is running — host-side accesses between
    /// dispatches must not be attributed to the last kernel's work-items.
    active: AtomicBool,
    /// Name of the kernel currently (or last) dispatched.
    kernel: Mutex<String>,
    /// Global bytes observed this dispatch.
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    /// Max declared read-overcharge ratio this dispatch (f64 bits;
    /// positive-float bit patterns order like the floats, so fetch_max
    /// works).
    declared_ratio_bits: AtomicU64,
    violations: Mutex<Vec<Violation>>,
    dropped: AtomicU64,
    dispatches: AtomicU64,
    pub(crate) config: SanitizeConfig,
    /// Wavefront width of the device (lanes executing in lockstep).
    pub(crate) wavefront: u64,
}

impl SanitizeShared {
    pub(crate) fn new(config: SanitizeConfig, wavefront: u64) -> Self {
        SanitizeShared {
            epoch: AtomicU64::new(0),
            active: AtomicBool::new(false),
            kernel: Mutex::new(String::new()),
            read_bytes: AtomicU64::new(0),
            write_bytes: AtomicU64::new(0),
            declared_ratio_bits: AtomicU64::new(1.0f64.to_bits()),
            violations: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            config,
            wavefront: wavefront.max(1),
        }
    }

    /// Starts a dispatch: bumps the epoch (invalidating all shadow words),
    /// resets the per-dispatch accumulators, and returns the new epoch.
    pub(crate) fn begin_dispatch(&self, kernel: &str) -> u64 {
        let was_active = self.active.swap(true, Ordering::SeqCst);
        debug_assert!(
            !was_active,
            "simgpu sanitize: overlapping dispatches on one sanitized context \
             are unsupported (run the throughput engine unsanitized)"
        );
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        kernel.clone_into(&mut self.kernel.lock().unwrap());
        self.read_bytes.store(0, Ordering::Relaxed);
        self.write_bytes.store(0, Ordering::Relaxed);
        self.declared_ratio_bits
            .store(1.0f64.to_bits(), Ordering::Relaxed);
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    /// Ends the dispatch: host-side accesses stop being attributed.
    pub(crate) fn end_dispatch(&self) {
        self.active.store(false, Ordering::SeqCst);
    }

    /// Audits observed vs charged global traffic for the finished dispatch.
    pub(crate) fn audit(&self, kernel: &str, counters: &CostCounters) {
        let (observed_reads, observed_writes, ratio) = self.dispatch_traffic();
        self.audit_totals(kernel, counters, observed_reads, observed_writes, ratio);
    }

    /// The traffic observed since `begin_dispatch`: `(read_bytes,
    /// write_bytes, max declared read-overcharge ratio)`.
    ///
    /// The sliced-dispatch path ([`crate::queue::CommandQueue::run_sliced`])
    /// harvests these after each slice and sums them, so the drift audit
    /// runs once on the whole-dispatch totals at commit time. Auditing per
    /// slice would false-positive: one slice may legitimately observe zero
    /// read bytes (e.g. a group range covering only border rows that store
    /// constants) while the kernel's bulk charge for those groups is
    /// positive — only the totals are required to balance.
    pub(crate) fn dispatch_traffic(&self) -> (u64, u64, f64) {
        (
            self.read_bytes.load(Ordering::Relaxed),
            self.write_bytes.load(Ordering::Relaxed),
            f64::from_bits(self.declared_ratio_bits.load(Ordering::Relaxed)),
        )
    }

    /// Audits explicit observed totals against charged counters. `audit`
    /// delegates here with the current dispatch's accumulators; the sliced
    /// commit path passes slice-summed totals instead.
    pub(crate) fn audit_totals(
        &self,
        kernel: &str,
        counters: &CostCounters,
        observed_reads: u64,
        observed_writes: u64,
        ratio: f64,
    ) {
        let charged_reads = counters.global_read_scalar + counters.global_read_vector;
        let charged_writes = counters.global_write_scalar + counters.global_write_vector;
        if observed_writes != charged_writes {
            self.record(Violation::AccountingDrift {
                kernel: kernel.to_string(),
                class: DriftClass::Write,
                observed: observed_writes,
                charged: charged_writes,
            });
        }
        // Reads may be deliberately overcharged up to the declared ratio
        // (modelling redundant window loads), never undercharged.
        let overcharged =
            charged_reads != observed_reads && charged_reads as f64 > observed_reads as f64 * ratio;
        if observed_reads > charged_reads || overcharged {
            self.record(Violation::AccountingDrift {
                kernel: kernel.to_string(),
                class: DriftClass::Read,
                observed: observed_reads,
                charged: charged_reads,
            });
        }
    }

    pub(crate) fn declare_ratio(&self, ratio: f64) {
        debug_assert!(ratio >= 1.0 && ratio.is_finite());
        self.declared_ratio_bits
            .fetch_max(ratio.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn record(&self, v: Violation) {
        let mut g = self.violations.lock().unwrap();
        if g.len() < self.config.max_violations {
            g.push(v);
        } else {
            drop(g);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn kernel_name(&self) -> String {
        self.kernel.lock().unwrap().clone()
    }

    /// Sets this thread's work-item cursor.
    pub(crate) fn set_cursor(&self, epoch: u64, tag: u64) {
        CURSOR.with(|c| c.set((epoch, tag)));
    }

    /// The (epoch, tag) of the work-item executing on this thread, if a
    /// dispatch is active and the cursor belongs to it. `None` for
    /// host-side accesses.
    pub(crate) fn cursor(&self) -> Option<(u64, u64)> {
        if !self.active.load(Ordering::Relaxed) {
            return None;
        }
        let (e, t) = CURSOR.with(|c| c.get());
        if t != 0 && e == self.epoch.load(Ordering::Relaxed) {
            Some((e, t))
        } else {
            None
        }
    }

    /// Snapshot of everything recorded so far.
    pub(crate) fn report(&self) -> SanitizeReport {
        SanitizeReport {
            dispatches: self.dispatches.load(Ordering::Relaxed),
            violations: self.violations.lock().unwrap().clone(),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

// ---- per-buffer shadow ----------------------------------------------------

/// Shadow state for one buffer: last-writer and last-reader words per
/// element, plus an initialised flag for the stale-read detector.
pub(crate) struct BufferShadow {
    pub(crate) shared: Arc<SanitizeShared>,
    label: String,
    elem_size: u64,
    len: usize,
    writer: Box<[AtomicU64]>,
    reader: Box<[AtomicU64]>,
    init: Box<[AtomicU8]>,
}

fn atomic_words(len: usize) -> Box<[AtomicU64]> {
    (0..len).map(|_| AtomicU64::new(0)).collect()
}

impl BufferShadow {
    pub(crate) fn new(
        shared: Arc<SanitizeShared>,
        label: &str,
        len: usize,
        elem_size: usize,
    ) -> Self {
        BufferShadow {
            shared,
            label: label.to_string(),
            elem_size: elem_size as u64,
            len,
            writer: atomic_words(len),
            reader: atomic_words(len),
            init: (0..len).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Marks elements initialised by a host-side write (transfer, map,
    /// `fill_from`, or a raw store outside any dispatch).
    pub(crate) fn mark_init_range(&self, offset: usize, len: usize) {
        let end = (offset + len).min(self.len);
        for i in offset.min(self.len)..end {
            self.init[i].store(1, Ordering::Relaxed);
        }
    }

    /// Records an in-bounds element read by work-item `tag`.
    pub(crate) fn on_read(&self, epoch: u64, tag: u64, idx: usize) {
        self.shared
            .read_bytes
            .fetch_add(self.elem_size, Ordering::Relaxed);
        if self.shared.config.check_uninit_reads && self.init[idx].swap(1, Ordering::Relaxed) == 0 {
            self.shared.record(Violation::UninitRead {
                kernel: self.shared.kernel_name(),
                buffer: self.label.clone(),
                index: idx,
            });
        }
        let w = self.writer[idx].load(Ordering::Relaxed);
        if word_epoch(w) == (epoch & EPOCH_MASK) && word_tag(w) != tag {
            self.shared.record(Violation::GlobalRace {
                kernel: self.shared.kernel_name(),
                buffer: self.label.clone(),
                index: idx,
                kind: RaceKind::ReadWrite,
            });
        }
        let r = self.reader[idx].load(Ordering::Relaxed);
        let new = if word_epoch(r) == (epoch & EPOCH_MASK) {
            if word_tag(r) == tag {
                r
            } else {
                // Second distinct reader: keep the last one, flag "multi".
                pack(epoch, MULTI | tag)
            }
        } else {
            pack(epoch, tag)
        };
        if new != r {
            self.reader[idx].store(new, Ordering::Relaxed);
        }
    }

    /// Records an in-bounds element write by work-item `tag`.
    pub(crate) fn on_write(&self, epoch: u64, tag: u64, idx: usize) {
        self.shared
            .write_bytes
            .fetch_add(self.elem_size, Ordering::Relaxed);
        self.init[idx].store(1, Ordering::Relaxed);
        let prev = self.writer[idx].swap(pack(epoch, tag), Ordering::Relaxed);
        if word_epoch(prev) == (epoch & EPOCH_MASK) && word_tag(prev) != tag {
            self.shared.record(Violation::GlobalRace {
                kernel: self.shared.kernel_name(),
                buffer: self.label.clone(),
                index: idx,
                kind: RaceKind::WriteWrite,
            });
        }
        let r = self.reader[idx].load(Ordering::Relaxed);
        if word_epoch(r) == (epoch & EPOCH_MASK) && (word_multi(r) || word_tag(r) != tag) {
            self.shared.record(Violation::GlobalRace {
                kernel: self.shared.kernel_name(),
                buffer: self.label.clone(),
                index: idx,
                kind: RaceKind::ReadWrite,
            });
        }
    }

    /// Records an out-of-bounds access (the accessor recovers afterwards).
    pub(crate) fn on_oob(&self, idx: usize, write: bool) {
        self.shared.record(Violation::OobGlobal {
            kernel: self.shared.kernel_name(),
            buffer: self.label.clone(),
            index: idx,
            len: self.len,
            write,
        });
    }

    /// Span read starting at `idx` of `n` elements: records the in-bounds
    /// prefix and an OOB violation for any overflow. Returns the number of
    /// in-bounds elements.
    pub(crate) fn span_read(&self, epoch: u64, tag: u64, idx: usize, n: usize) -> usize {
        let valid = if idx >= self.len {
            0
        } else {
            n.min(self.len - idx)
        };
        for k in 0..valid {
            self.on_read(epoch, tag, idx + k);
        }
        if valid < n {
            self.on_oob(idx + valid, false);
        }
        valid
    }

    /// Span write counterpart of [`BufferShadow::span_read`].
    pub(crate) fn span_write(&self, epoch: u64, tag: u64, idx: usize, n: usize) -> usize {
        let valid = if idx >= self.len {
            0
        } else {
            n.min(self.len - idx)
        };
        for k in 0..valid {
            self.on_write(epoch, tag, idx + k);
        }
        if valid < n {
            self.on_oob(idx + valid, true);
        }
        valid
    }
}

// ---- per-group shadow (local memory, barriers, item cursor) ---------------

// Local shadow words pack ((phase + 1) << 32) | field, where field is the
// 1-based lane with bit 31 flagging "readers from multiple wavefronts".
// Phase = number of barriers issued so far; accesses in different phases
// are ordered by the barrier between them, so only same-phase conflicts
// count.
const LMULTI: u64 = 1 << 31;
const LLANE_MASK: u64 = LMULTI - 1;

/// Per-work-group sanitizer state, owned by the dispatching `GroupCtx`.
pub(crate) struct GroupSan {
    shared: Arc<SanitizeShared>,
    epoch: u64,
    group_serial: usize,
    lanes: usize,
    cur_lane: u64,
    have_item: bool,
    /// Lane that issued the last `barrier()`, pending the divergence check
    /// at the next `begin_item`.
    pending_barrier: Option<u64>,
    phase: u64,
    lwriter: Vec<u64>,
    lreader: Vec<u64>,
}

impl GroupSan {
    pub(crate) fn new(
        shared: Arc<SanitizeShared>,
        epoch: u64,
        group_serial: usize,
        lanes: usize,
    ) -> Self {
        GroupSan {
            shared,
            epoch,
            group_serial,
            lanes,
            cur_lane: 0,
            have_item: false,
            pending_barrier: None,
            phase: 0,
            lwriter: Vec::new(),
            lreader: Vec::new(),
        }
    }

    pub(crate) fn begin_item(&mut self, lane: u64) {
        if let Some(prev) = self.pending_barrier.take() {
            if lane > prev {
                // The sweep resumed *past* the lane that hit the barrier:
                // lanes in between never reached it.
                self.shared.record(Violation::BarrierDivergence {
                    kernel: self.shared.kernel_name(),
                    group: self.group_serial,
                });
            }
        }
        self.cur_lane = lane;
        self.have_item = true;
        let tag = (self.group_serial * self.lanes) as u64 + lane + 1;
        self.shared.set_cursor(self.epoch, tag);
    }

    pub(crate) fn on_barrier(&mut self) {
        self.phase += 1;
        // Only arm the divergence check once an item sweep has started; a
        // barrier before any item is trivially uniform.
        if self.have_item {
            self.pending_barrier = Some(self.cur_lane);
        }
    }

    pub(crate) fn on_alloc_local(&mut self, n: usize) {
        self.lwriter.clear();
        self.lwriter.resize(n, 0);
        self.lreader.clear();
        self.lreader.resize(n, 0);
    }

    pub(crate) fn declare_read_overcharge(&self, ratio: f64) {
        self.shared.declare_ratio(ratio);
    }

    #[inline]
    fn same_wavefront(&self, a: u64, b: u64) -> bool {
        a / self.shared.wavefront == b / self.shared.wavefront
    }

    /// Records a local read. Returns false when `idx` is out of bounds
    /// (the caller recovers by returning zero).
    pub(crate) fn local_read(&mut self, idx: usize, len: usize) -> bool {
        if idx >= len {
            self.shared.record(Violation::OobLocal {
                kernel: self.shared.kernel_name(),
                index: idx,
                len,
                write: false,
            });
            return false;
        }
        self.sync_local_len(len);
        let cur_phase = self.phase + 1;
        let w = self.lwriter[idx];
        if w >> 32 == cur_phase {
            let wlane = (w & LLANE_MASK) - 1;
            if wlane != self.cur_lane && !self.same_wavefront(wlane, self.cur_lane) {
                self.shared.record(Violation::LocalRace {
                    kernel: self.shared.kernel_name(),
                    index: idx,
                    kind: RaceKind::ReadWrite,
                });
            }
        }
        let r = self.lreader[idx];
        if r >> 32 == cur_phase {
            let multi = r & LMULTI != 0;
            let rlane = (r & LLANE_MASK) - 1;
            if !multi && !self.same_wavefront(rlane, self.cur_lane) {
                self.lreader[idx] = (cur_phase << 32) | LMULTI | (self.cur_lane + 1);
            }
        } else {
            self.lreader[idx] = (cur_phase << 32) | (self.cur_lane + 1);
        }
        true
    }

    /// Records a local write. Returns false when `idx` is out of bounds
    /// (the caller recovers by dropping the store).
    pub(crate) fn local_write(&mut self, idx: usize, len: usize) -> bool {
        if idx >= len {
            self.shared.record(Violation::OobLocal {
                kernel: self.shared.kernel_name(),
                index: idx,
                len,
                write: true,
            });
            return false;
        }
        self.sync_local_len(len);
        let cur_phase = self.phase + 1;
        let w = self.lwriter[idx];
        if w >> 32 == cur_phase {
            let wlane = (w & LLANE_MASK) - 1;
            if wlane != self.cur_lane && !self.same_wavefront(wlane, self.cur_lane) {
                self.shared.record(Violation::LocalRace {
                    kernel: self.shared.kernel_name(),
                    index: idx,
                    kind: RaceKind::WriteWrite,
                });
            }
        }
        self.lwriter[idx] = (cur_phase << 32) | (self.cur_lane + 1);
        let r = self.lreader[idx];
        if r >> 32 == cur_phase {
            let multi = r & LMULTI != 0;
            let rlane = (r & LLANE_MASK) - 1;
            if multi || (rlane != self.cur_lane && !self.same_wavefront(rlane, self.cur_lane)) {
                self.shared.record(Violation::LocalRace {
                    kernel: self.shared.kernel_name(),
                    index: idx,
                    kind: RaceKind::ReadWrite,
                });
            }
        }
        true
    }

    /// Keeps the shadow sized to the live allocation even if the kernel
    /// grew LDS without `alloc_local` being observed (defensive).
    #[inline]
    fn sync_local_len(&mut self, len: usize) {
        if self.lwriter.len() < len {
            self.lwriter.resize(len, 0);
            self.lreader.resize(len, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> Arc<SanitizeShared> {
        Arc::new(SanitizeShared::new(SanitizeConfig::default(), 64))
    }

    #[test]
    fn word_packing_roundtrips() {
        let w = pack(7, 123);
        assert_eq!(word_epoch(w), 7);
        assert_eq!(word_tag(w), 123);
        assert!(!word_multi(w));
        assert!(word_multi(pack(1, MULTI | 5)));
        assert_eq!(word_tag(pack(1, MULTI | 5)), 5);
    }

    #[test]
    fn cursor_requires_active_epoch() {
        let s = shared();
        assert!(s.cursor().is_none());
        let e = s.begin_dispatch("k");
        s.set_cursor(e, 3);
        assert_eq!(s.cursor(), Some((e, 3)));
        s.end_dispatch();
        assert!(s.cursor().is_none(), "inactive dispatch hides the cursor");
        let e2 = s.begin_dispatch("k2");
        assert!(s.cursor().is_none(), "stale epoch hides the cursor");
        s.set_cursor(e2, 1);
        assert_eq!(s.cursor(), Some((e2, 1)));
        s.end_dispatch();
    }

    #[test]
    fn shadow_detects_write_write_and_read_write() {
        let s = shared();
        let sh = BufferShadow::new(Arc::clone(&s), "b", 8, 4);
        let e = s.begin_dispatch("k");
        sh.on_write(e, 1, 3);
        sh.on_write(e, 2, 3); // different item, same element
        sh.on_read(e, 3, 5);
        sh.on_write(e, 4, 5); // write under another item's read
        sh.on_write(e, 4, 6);
        sh.on_read(e, 4, 6); // same item: no race
        s.end_dispatch();
        let r = s.report();
        assert_eq!(r.violations.len(), 2, "{:?}", r.violations);
        assert!(matches!(
            r.violations[0],
            Violation::GlobalRace {
                kind: RaceKind::WriteWrite,
                index: 3,
                ..
            }
        ));
        assert!(matches!(
            r.violations[1],
            Violation::GlobalRace {
                kind: RaceKind::ReadWrite,
                index: 5,
                ..
            }
        ));
    }

    #[test]
    fn new_epoch_clears_conflicts_implicitly() {
        let s = shared();
        let sh = BufferShadow::new(Arc::clone(&s), "b", 4, 4);
        let e1 = s.begin_dispatch("k1");
        sh.on_write(e1, 1, 0);
        s.end_dispatch();
        let e2 = s.begin_dispatch("k2");
        sh.on_write(e2, 2, 0); // same element, different dispatch: ordered
        s.end_dispatch();
        assert!(s.report().is_clean());
    }

    #[test]
    fn multi_reader_then_write_races() {
        let s = shared();
        let sh = BufferShadow::new(Arc::clone(&s), "b", 4, 4);
        let e = s.begin_dispatch("k");
        sh.on_read(e, 1, 2);
        sh.on_read(e, 2, 2);
        sh.on_write(e, 2, 2); // item 2 writes, but item 1 also read
        s.end_dispatch();
        let r = s.report();
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(
            r.violations[0],
            Violation::GlobalRace {
                kind: RaceKind::ReadWrite,
                ..
            }
        ));
    }

    #[test]
    fn uninit_read_detector_is_opt_in() {
        let relaxed = shared();
        let sh = BufferShadow::new(Arc::clone(&relaxed), "b", 4, 4);
        let e = relaxed.begin_dispatch("k");
        sh.on_read(e, 1, 0);
        relaxed.end_dispatch();
        assert!(relaxed.report().is_clean());

        let strict = Arc::new(SanitizeShared::new(
            SanitizeConfig {
                check_uninit_reads: true,
                ..SanitizeConfig::default()
            },
            64,
        ));
        let sh = BufferShadow::new(Arc::clone(&strict), "b", 4, 4);
        sh.mark_init_range(0, 1);
        let e = strict.begin_dispatch("k");
        sh.on_read(e, 1, 0); // initialised by the host: fine
        sh.on_read(e, 1, 2); // never written: flagged (once)
        sh.on_read(e, 1, 2);
        strict.end_dispatch();
        let r = strict.report();
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(
            r.violations[0],
            Violation::UninitRead { index: 2, .. }
        ));
    }

    #[test]
    fn local_race_rules_respect_wavefront_lockstep() {
        let s = shared(); // wavefront 64
        let mut g = GroupSan::new(Arc::clone(&s), s.begin_dispatch("k"), 0, 128);
        g.on_alloc_local(128);
        // Lanes 0 and 32 share a wavefront: same-phase conflict is exempt.
        g.begin_item(0);
        assert!(g.local_write(5, 128));
        g.begin_item(32);
        assert!(g.local_write(5, 128));
        assert!(s.report().is_clean());
        // Lane 64 is another wavefront: write/write race.
        g.begin_item(64);
        assert!(g.local_write(5, 128));
        let r = s.report();
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(
            r.violations[0],
            Violation::LocalRace {
                kind: RaceKind::WriteWrite,
                index: 5,
                ..
            }
        ));
        s.end_dispatch();
    }

    #[test]
    fn barrier_orders_local_phases() {
        let s = shared();
        let mut g = GroupSan::new(Arc::clone(&s), s.begin_dispatch("k"), 0, 128);
        g.on_alloc_local(16);
        g.begin_item(127);
        assert!(g.local_write(3, 16));
        g.on_barrier();
        g.begin_item(0); // sweep restarts: no divergence
        assert!(g.local_read(3, 16)); // cross-phase: ordered by the barrier
        s.end_dispatch();
        assert!(s.report().is_clean(), "{}", s.report().summary());
    }

    #[test]
    fn divergent_barrier_is_flagged() {
        let s = shared();
        let mut g = GroupSan::new(Arc::clone(&s), s.begin_dispatch("k"), 2, 128);
        g.begin_item(0);
        g.on_barrier(); // only lane 0 hit the barrier...
        g.begin_item(1); // ...and the sweep continues past it
        s.end_dispatch();
        let r = s.report();
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(
            r.violations[0],
            Violation::BarrierDivergence { group: 2, .. }
        ));
    }

    #[test]
    fn drift_audit_allows_exact_and_declared_ratio() {
        let s = shared();
        let sh = BufferShadow::new(Arc::clone(&s), "b", 64, 4);
        let e = s.begin_dispatch("k");
        for i in 0..8 {
            sh.on_read(e, 1, i);
        }
        sh.on_write(e, 1, 0);
        let mut c = CostCounters::new();
        c.global_read_scalar = 32; // exact
        c.global_write_scalar = 4; // exact
        s.audit("k", &c);
        s.end_dispatch();
        assert!(s.report().is_clean(), "{}", s.report().summary());

        // Overcharge reads without declaring: flagged.
        let e = s.begin_dispatch("k2");
        sh.on_read(e, 1, 0);
        let mut c = CostCounters::new();
        c.global_read_scalar = 40;
        s.audit("k2", &c);
        s.end_dispatch();
        assert_eq!(s.report().violations.len(), 1);

        // Same overcharge with a declared ratio: clean.
        let s2 = shared();
        let sh2 = BufferShadow::new(Arc::clone(&s2), "b", 64, 4);
        let e = s2.begin_dispatch("k3");
        sh2.on_read(e, 1, 0);
        s2.declare_ratio(10.0);
        let mut c = CostCounters::new();
        c.global_read_scalar = 40;
        s2.audit("k3", &c);
        s2.end_dispatch();
        assert!(s2.report().is_clean(), "{}", s2.report().summary());

        // Undercharged reads are never acceptable.
        let e = s2.begin_dispatch("k4");
        for i in 0..8 {
            sh2.on_read(e, 1, i);
        }
        let mut c = CostCounters::new();
        c.global_read_scalar = 4;
        s2.audit("k4", &c);
        s2.end_dispatch();
        assert_eq!(s2.report().violations.len(), 1);
    }

    #[test]
    fn violation_cap_counts_dropped() {
        let s = Arc::new(SanitizeShared::new(
            SanitizeConfig {
                max_violations: 2,
                ..SanitizeConfig::default()
            },
            64,
        ));
        let sh = BufferShadow::new(Arc::clone(&s), "b", 8, 4);
        let e = s.begin_dispatch("k");
        for i in 0..5 {
            sh.on_write(e, 1, i);
            sh.on_write(e, 2, i);
        }
        s.end_dispatch();
        let r = s.report();
        assert_eq!(r.violations.len(), 2);
        assert_eq!(r.dropped, 3);
        assert!(!r.is_clean());
        assert!(r.summary().contains("not shown"));
    }

    #[test]
    fn report_summary_reads_well() {
        let s = shared();
        assert!(s.report().summary().contains("clean"));
        s.record(Violation::OobGlobal {
            kernel: "k".into(),
            buffer: "out".into(),
            index: 40,
            len: 32,
            write: true,
        });
        let sum = s.report().summary();
        assert!(sum.contains("out-of-bounds store"));
        assert!(sum.contains("`out`[40]"));
    }
}
