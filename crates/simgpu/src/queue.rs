//! The in-order command queue: dispatch, transfers, host work, profiling.
//!
//! Commands execute *functionally* right away (kernels run in parallel over
//! work-groups on scoped host threads; transfers copy memory) while their
//! *simulated*
//! duration is computed from the timing model and appended to the queue's
//! virtual clock. Because the queue is in-order — like the paper's OpenCL
//! command queue with the default execution mode — virtual time is simply
//! the sum of command durations, plus explicit [`CommandQueue::finish`]
//! synchronisation overheads (which the paper's Section V-F optimization
//! removes).
//!
//! Every command leaves a [`CommandRecord`]; the per-stage breakdowns of
//! the paper's Fig. 13 are produced by aggregating these records by name.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::access::{self, AccessError, AccessSummary};
use crate::buffer::{Buffer, Scalar};
use crate::cost::CostCounters;
use crate::device::{CpuSpec, DeviceSpec};
use crate::error::{Error, Result};
use crate::kernel::{GroupCtx, KernelDesc};
use crate::sanitize::{DriftClass, GroupSan, SanitizeShared, Violation};
use crate::span::{SpanId, SpanKind, SpanRecord, SpanRing};
use crate::timing::{
    bulk_transfer_time, cpu_stage_time, kernel_time, map_transfer_time, rect_transfer_time,
    KernelTime,
};

/// What kind of command a [`CommandRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// NDRange kernel dispatch.
    Kernel,
    /// Bulk host→device write.
    WriteBuffer,
    /// Bulk device→host read.
    ReadBuffer,
    /// Rectangular host→device write (`clEnqueueWriteBufferRect`).
    RectWrite,
    /// map/unmap round trip.
    Map,
    /// Host-side synchronisation (`clFinish`).
    Finish,
    /// Work executed on the host CPU as part of the pipeline (e.g. the
    /// border stage when it runs on CPU).
    HostWork,
}

/// One executed command with its simulated start time and duration.
#[derive(Debug, Clone)]
pub struct CommandRecord {
    /// Command name (kernel name, buffer label, or stage label). Interned:
    /// repeated commands of a steady-state frame loop share one allocation.
    pub name: Arc<str>,
    /// Command class.
    pub kind: CommandKind,
    /// Simulated start time, seconds since queue creation/reset.
    pub start_s: f64,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Work counters (kernels and host work only).
    pub counters: Option<CostCounters>,
}

/// Buffers whose write epoch the dispatcher should track for race checking.
///
/// Implemented by [`Buffer`]; a kernel launch lists its output buffers so
/// the validation layer can reset marks before and inspect races after the
/// dispatch.
pub trait WriteTracked: Sync {
    /// Resets validation marks for a new write epoch.
    fn begin_epoch(&self);
    /// First raced element, if any.
    fn race_index(&self) -> Option<usize>;
}

impl<T: Scalar> WriteTracked for Buffer<T> {
    fn begin_epoch(&self) {
        self.begin_write_epoch();
    }
    fn race_index(&self) -> Option<usize> {
        self.race()
    }
}

/// Accumulator for one *logical* kernel dispatch executed as several
/// contiguous work-group slices via [`CommandQueue::run_sliced`].
///
/// The banded (megapass) scheduler cuts a dispatch into row-band slices so
/// each band's data stays cache-resident on the host, but the cost model
/// must see exactly the dispatch a whole-grid [`CommandQueue::run`] would
/// have produced. Counters merge across slices with the same associative,
/// commutative merge the per-group reduction uses, so the record committed
/// by [`CommandQueue::commit_sliced`] carries bit-identical counters — and
/// therefore a bit-identical [`kernel_time`] — to the monolithic dispatch.
/// Nothing is recorded on the queue (and the simulated clock does not
/// move) until commit.
#[derive(Debug)]
pub struct SlicedDispatch {
    counters: CostCounters,
    groups_done: usize,
    /// Sanitizer-observed traffic summed across slices; audited once at
    /// commit against the merged counters.
    observed_read_bytes: u64,
    observed_write_bytes: u64,
    declared_ratio: f64,
    slices: usize,
    /// Flat group range of every non-empty slice, checked at commit to
    /// exactly partition the grid (static property d).
    ranges: Vec<std::ops::Range<usize>>,
    /// Access summaries declared per slice (when the kernels declare them).
    access: Vec<AccessSummary>,
}

impl SlicedDispatch {
    /// A fresh accumulator for one logical dispatch.
    pub fn new() -> Self {
        SlicedDispatch {
            counters: CostCounters::new(),
            groups_done: 0,
            observed_read_bytes: 0,
            observed_write_bytes: 0,
            declared_ratio: 1.0,
            slices: 0,
            ranges: Vec::new(),
            access: Vec::new(),
        }
    }

    /// Work-groups executed so far across all slices.
    pub fn groups_done(&self) -> usize {
        self.groups_done
    }

    /// Number of slices executed so far.
    pub fn slices(&self) -> usize {
        self.slices
    }
}

impl Default for SlicedDispatch {
    fn default() -> Self {
        Self::new()
    }
}

/// An in-order command queue bound to one simulated device and one modeled
/// host CPU.
pub struct CommandQueue {
    device: DeviceSpec,
    cpu: CpuSpec,
    clock_s: f64,
    records: Vec<CommandRecord>,
    commands_since_finish: usize,
    /// Host threads used per kernel dispatch (0 = all available).
    dispatch_threads: usize,
    /// Interned command names: one `Arc<str>` per distinct name for the
    /// queue's lifetime, shared by every record (survives [`Self::reset`]).
    interner: HashSet<Arc<str>>,
    /// Reused scratch for composing `"prefix:label"` names without a fresh
    /// `String` per command.
    name_scratch: String,
    /// Sanitizer handle inherited from the creating context; `Some` only
    /// for sanitized contexts.
    sanitize: Option<Arc<SanitizeShared>>,
    /// When true, every kernel dispatch must declare an [`AccessSummary`]
    /// first (an undeclared dispatch is a hard [`AccessError::Undeclared`])
    /// and declared summaries are retained in [`Self::access_log`].
    require_access: bool,
    /// Summary declared via [`Self::declare_access`] for the next dispatch.
    pending_access: Option<AccessSummary>,
    /// Verified summaries of past dispatches (populated only when
    /// declarations are required, to bound steady-state memory).
    access_log: Vec<AccessSummary>,
    /// Hierarchical span ring; `None` when span tracing is off. Boxed so
    /// the disabled (default) case costs one pointer in the queue.
    spans: Option<Box<SpanRing>>,
}

/// The span class a committed command reports as.
fn span_kind_of(kind: CommandKind) -> SpanKind {
    match kind {
        CommandKind::Kernel => SpanKind::Kernel,
        CommandKind::WriteBuffer | CommandKind::RectWrite | CommandKind::Map => SpanKind::Transfer,
        CommandKind::ReadBuffer => SpanKind::Readback,
        CommandKind::HostWork => SpanKind::Host,
        CommandKind::Finish => SpanKind::Sync,
    }
}

impl CommandQueue {
    pub(crate) fn new(
        device: DeviceSpec,
        cpu: CpuSpec,
        dispatch_threads: usize,
        sanitize: Option<Arc<SanitizeShared>>,
        require_access: bool,
        span_capacity: Option<usize>,
    ) -> Self {
        CommandQueue {
            device,
            cpu,
            clock_s: 0.0,
            records: Vec::new(),
            commands_since_finish: 0,
            dispatch_threads,
            interner: HashSet::new(),
            name_scratch: String::new(),
            sanitize,
            require_access,
            pending_access: None,
            access_log: Vec::new(),
            spans: span_capacity.map(|c| Box::new(SpanRing::new(c))),
        }
    }

    /// The device this queue dispatches to.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The modeled host CPU.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// Returns the interned `Arc<str>` for `name`, allocating only the
    /// first time each distinct name is seen.
    fn intern(&mut self, name: &str) -> Arc<str> {
        if let Some(n) = self.interner.get(name) {
            return Arc::clone(n);
        }
        let n: Arc<str> = Arc::from(name);
        self.interner.insert(Arc::clone(&n));
        n
    }

    fn push(&mut self, name: &str, kind: CommandKind, dur: f64, counters: Option<CostCounters>) {
        let name = self.intern(name);
        if let Some(ring) = &mut self.spans {
            // Leaf span before the clock advances: the simulated interval
            // is exactly the record's; the wall interval is the gap since
            // the previous span event (the host time spent producing this
            // command). Reads the clock, never writes it.
            ring.leaf(span_kind_of(kind), Arc::clone(&name), self.clock_s, dur);
        }
        self.records.push(CommandRecord {
            name,
            kind,
            start_s: self.clock_s,
            duration_s: dur,
            counters,
        });
        self.clock_s += dur;
        if kind != CommandKind::Finish {
            self.commands_since_finish += 1;
        }
    }

    /// Pushes a record named `"{prefix}{label}"`, composing the name in the
    /// queue's scratch `String` so steady-state frames allocate nothing.
    fn push_labeled(
        &mut self,
        prefix: &str,
        label: &str,
        kind: CommandKind,
        dur: f64,
        counters: Option<CostCounters>,
    ) {
        let mut scratch = std::mem::take(&mut self.name_scratch);
        scratch.clear();
        scratch.push_str(prefix);
        scratch.push_str(label);
        self.push(&scratch, kind, dur, counters);
        self.name_scratch = scratch;
    }

    // ---- kernel dispatch ------------------------------------------------

    /// Declares the access summary of the *next* kernel dispatch and
    /// statically verifies it (bounds, write disjointness, accounting) —
    /// a rejected summary is a typed error before any work runs. The
    /// dispatch itself then checks the declaration matches its grid and,
    /// after execution, that the summary's charged bytes equal what the
    /// kernel actually charged; sanitized runs additionally cross-validate
    /// the declared windows against the observed shadow traffic.
    pub fn declare_access(&mut self, summary: AccessSummary) -> Result<()> {
        if let Some(prev) = &self.pending_access {
            return Err(Error::Access(AccessError::GridMismatch {
                kernel: summary.kernel,
                detail: format!(
                    "previous declaration for kernel `{}` was never dispatched",
                    prev.kernel
                ),
            }));
        }
        access::verify_summary(&summary)?;
        self.pending_access = Some(summary);
        Ok(())
    }

    /// Verified summaries retained from declared dispatches. Populated
    /// only when the context requires access declarations
    /// ([`crate::context::Context::with_access_required`]); cleared by
    /// [`Self::reset`] and [`Self::take_access_log`].
    pub fn access_log(&self) -> &[AccessSummary] {
        &self.access_log
    }

    /// Takes the retained access summaries, leaving the log empty.
    pub fn take_access_log(&mut self) -> Vec<AccessSummary> {
        std::mem::take(&mut self.access_log)
    }

    /// Checks a declared summary against the dispatch it was declared for.
    fn check_declared(
        a: &AccessSummary,
        desc: &KernelDesc,
        groups: std::ops::Range<usize>,
    ) -> Result<()> {
        if a.kernel != desc.name || a.total_groups != desc.total_groups() || a.groups != groups {
            return Err(Error::Access(AccessError::GridMismatch {
                kernel: desc.name.clone(),
                detail: format!(
                    "declared `{}` groups {}..{} of {}, dispatching groups {}..{} of {}",
                    a.kernel,
                    a.groups.start,
                    a.groups.end,
                    a.total_groups,
                    groups.start,
                    groups.end,
                    desc.total_groups()
                ),
            }));
        }
        Ok(())
    }

    /// Compares the sanitizer's observed per-element traffic against the
    /// declared windows — equality, not a bound: summaries declare access
    /// *events* exactly, so any drift means the declaration rotted.
    fn cross_validate(sh: &SanitizeShared, a: &AccessSummary, observed_r: u64, observed_w: u64) {
        let declared_r = a.declared_read_bytes();
        if declared_r != observed_r {
            sh.record(Violation::SummaryDrift {
                kernel: a.kernel.clone(),
                class: DriftClass::Read,
                observed: observed_r,
                declared: declared_r,
            });
        }
        let declared_w = a.declared_write_bytes();
        if declared_w != observed_w {
            sh.record(Violation::SummaryDrift {
                kernel: a.kernel.clone(),
                class: DriftClass::Write,
                observed: observed_w,
                declared: declared_w,
            });
        }
    }

    /// Dispatches a kernel: runs `f` once per work-group (in parallel),
    /// merges the per-group cost counters, charges the timing model, and
    /// checks the listed output buffers for write races.
    ///
    /// Returns the timing decomposition of the dispatch.
    pub fn run<F>(
        &mut self,
        desc: &KernelDesc,
        outputs: &[&dyn WriteTracked],
        f: F,
    ) -> Result<KernelTime>
    where
        F: Fn(&mut GroupCtx) + Sync,
    {
        let declared = self.pending_access.take();
        desc.check()?;
        if let Some(a) = &declared {
            Self::check_declared(a, desc, 0..desc.total_groups())?;
        } else if self.require_access {
            return Err(Error::Access(AccessError::Undeclared {
                kernel: desc.name.clone(),
            }));
        }
        for out in outputs {
            out.begin_epoch();
        }
        let [gx, _gy] = desc.num_groups();
        let total = desc.total_groups();
        let threads = if self.dispatch_threads == 0 {
            crate::par::default_threads()
        } else {
            self.dispatch_threads
        };
        let san_epoch = self.sanitize.as_ref().map(|s| s.begin_dispatch(&desc.name));
        // A panicking kernel closure (e.g. an out-of-bounds assertion on an
        // unsanitized context) is caught and surfaced as a recoverable
        // `Error::KernelPanic` instead of tearing the process down.
        let panic_msg: Mutex<Option<String>> = Mutex::new(None);
        let poisoned = AtomicBool::new(false);
        let counters = crate::par::map_reduce(
            total,
            threads,
            CostCounters::new,
            |gi| {
                if poisoned.load(Ordering::Relaxed) {
                    return CostCounters::new();
                }
                let gid = [gi % gx, gi / gx];
                let san = match (&self.sanitize, san_epoch) {
                    (Some(s), Some(e)) => {
                        Some(GroupSan::new(Arc::clone(s), e, gi, desc.group_lanes()))
                    }
                    _ => None,
                };
                let mut ctx = GroupCtx::new_with(desc, gid, san);
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx))) {
                    Ok(()) => ctx.counters,
                    Err(payload) => {
                        poisoned.store(true, Ordering::Relaxed);
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "kernel closure panicked".to_string());
                        let mut g = panic_msg.lock().unwrap();
                        if g.is_none() {
                            *g = Some(msg);
                        }
                        CostCounters::new()
                    }
                }
            },
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        let panicked = panic_msg.into_inner().unwrap();
        if let Some(sh) = &self.sanitize {
            if panicked.is_none() {
                if let Some(a) = &declared {
                    let (r, w, _) = sh.dispatch_traffic();
                    Self::cross_validate(sh, a, r, w);
                }
                sh.audit(&desc.name, &counters);
            }
            sh.end_dispatch();
        }
        if let Some(message) = panicked {
            return Err(Error::KernelPanic {
                kernel: desc.name.clone(),
                message,
            });
        }
        for out in outputs {
            if let Some(index) = out.race_index() {
                return Err(Error::WriteRace {
                    kernel: desc.name.clone(),
                    index,
                });
            }
        }
        if let Some(a) = &declared {
            a.charged_matches(&counters)?;
        }
        let t = kernel_time(&self.device, &counters);
        self.push(&desc.name, CommandKind::Kernel, t.total_s, Some(counters));
        if self.require_access {
            if let Some(a) = declared {
                self.access_log.push(a);
            }
        }
        Ok(t)
    }

    /// Executes the contiguous flat-group-index slice `groups` of `desc`'s
    /// grid, merging the group counters into `acc` without recording any
    /// command. Flat index `gi` maps to group `[gi % gx, gi / gx]`, exactly
    /// as in [`CommandQueue::run`], so the union of disjoint slices over
    /// `0..desc.total_groups()` performs precisely the monolithic
    /// dispatch's work — and, because the counter merge is associative and
    /// commutative, accumulates bit-identical counters regardless of how
    /// the grid was cut.
    ///
    /// Write-race validation and the sanitizer's race/bounds/barrier
    /// analysis run per slice (each slice is its own write epoch and
    /// sanitizer dispatch; cross-slice conflicts are out of scope — a
    /// correct slicer gives slices disjoint output rows). The
    /// cost-accounting drift audit is deferred to
    /// [`CommandQueue::commit_sliced`], which compares the slice-summed
    /// observed traffic against the merged counters once: a single slice
    /// may legitimately observe zero read bytes while its bulk charge is
    /// positive.
    pub fn run_sliced<F>(
        &mut self,
        desc: &KernelDesc,
        outputs: &[&dyn WriteTracked],
        groups: std::ops::Range<usize>,
        acc: &mut SlicedDispatch,
        f: F,
    ) -> Result<()>
    where
        F: Fn(&mut GroupCtx) + Sync,
    {
        let declared = self.pending_access.take();
        desc.check()?;
        if groups.end > desc.total_groups() {
            return Err(Error::InvalidKernelArgs {
                kernel: desc.name.clone(),
                detail: format!(
                    "sliced dispatch range {}..{} exceeds the grid's {} work-groups",
                    groups.start,
                    groups.end,
                    desc.total_groups()
                ),
            });
        }
        if groups.is_empty() {
            // Nothing executes; a declaration for an empty slice (if any)
            // is discarded rather than leaking onto the next dispatch.
            return Ok(());
        }
        if let Some(a) = &declared {
            Self::check_declared(a, desc, groups.clone())?;
        } else if self.require_access {
            return Err(Error::Access(AccessError::Undeclared {
                kernel: desc.name.clone(),
            }));
        }
        for out in outputs {
            out.begin_epoch();
        }
        let [gx, _gy] = desc.num_groups();
        let threads = if self.dispatch_threads == 0 {
            crate::par::default_threads()
        } else {
            self.dispatch_threads
        };
        let san_epoch = self.sanitize.as_ref().map(|s| s.begin_dispatch(&desc.name));
        let panic_msg: Mutex<Option<String>> = Mutex::new(None);
        let poisoned = AtomicBool::new(false);
        let start = groups.start;
        let counters = crate::par::map_reduce(
            groups.len(),
            threads,
            CostCounters::new,
            |i| {
                if poisoned.load(Ordering::Relaxed) {
                    return CostCounters::new();
                }
                let gi = start + i;
                let gid = [gi % gx, gi / gx];
                let san = match (&self.sanitize, san_epoch) {
                    (Some(s), Some(e)) => {
                        Some(GroupSan::new(Arc::clone(s), e, gi, desc.group_lanes()))
                    }
                    _ => None,
                };
                let mut ctx = GroupCtx::new_with(desc, gid, san);
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx))) {
                    Ok(()) => ctx.counters,
                    Err(payload) => {
                        poisoned.store(true, Ordering::Relaxed);
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "kernel closure panicked".to_string());
                        let mut g = panic_msg.lock().unwrap();
                        if g.is_none() {
                            *g = Some(msg);
                        }
                        CostCounters::new()
                    }
                }
            },
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        let panicked = panic_msg.into_inner().unwrap();
        if let Some(sh) = &self.sanitize {
            if panicked.is_none() {
                let (r, w, ratio) = sh.dispatch_traffic();
                if let Some(a) = &declared {
                    Self::cross_validate(sh, a, r, w);
                }
                acc.observed_read_bytes += r;
                acc.observed_write_bytes += w;
                acc.declared_ratio = acc.declared_ratio.max(ratio);
            }
            sh.end_dispatch();
        }
        if let Some(message) = panicked {
            return Err(Error::KernelPanic {
                kernel: desc.name.clone(),
                message,
            });
        }
        for out in outputs {
            if let Some(index) = out.race_index() {
                return Err(Error::WriteRace {
                    kernel: desc.name.clone(),
                    index,
                });
            }
        }
        if let Some(a) = &declared {
            a.charged_matches(&counters)?;
        }
        acc.counters.merge(&counters);
        acc.groups_done += groups.len();
        acc.slices += 1;
        acc.ranges.push(groups);
        if let Some(a) = declared {
            acc.access.push(a);
        }
        if self.spans.is_some() {
            // The clock does not move until commit, so a slice's simulated
            // duration is zero; its wall gap is the slice's execution time.
            let name = self.intern(&desc.name);
            if let Some(ring) = &mut self.spans {
                ring.leaf(SpanKind::Slice, name, self.clock_s, 0.0);
            }
        }
        Ok(())
    }

    /// Commits a sliced dispatch: verifies every work-group of `desc`'s
    /// grid ran exactly once across the accumulated slices, audits the
    /// summed observed traffic against the merged counters (sanitized
    /// contexts), and records the *single* kernel command the monolithic
    /// [`CommandQueue::run`] would have recorded — same name, same
    /// counters, same [`kernel_time`], so the simulated clock advances
    /// identically.
    pub fn commit_sliced(&mut self, desc: &KernelDesc, acc: SlicedDispatch) -> Result<KernelTime> {
        desc.check()?;
        // Static property (d): the executed slices must exactly tile the
        // grid — a gap or an overlap (even one that happens to sum to the
        // right group count) is a typed verdict, not a silent mis-commit.
        access::verify_partition(&desc.name, desc.total_groups(), &acc.ranges)?;
        if self.require_access && acc.access.len() != acc.slices {
            return Err(Error::Access(AccessError::Undeclared {
                kernel: desc.name.clone(),
            }));
        }
        // Static property (c) for sliced dispatches: the overcharge-ratio
        // bound holds on the merged totals (a border-only slice may charge
        // reads while declaring none; the whole dispatch still balances),
        // mirroring how the dynamic audit treats slices.
        if !acc.access.is_empty() {
            let declared_r: u64 = acc.access.iter().map(|a| a.declared_read_bytes()).sum();
            let charged_r: u64 = acc.access.iter().map(|a| a.charged.reads()).sum();
            let ratio = acc.access.iter().fold(1.0f64, |m, a| m.max(a.read_ratio));
            if charged_r != declared_r && charged_r as f64 > declared_r as f64 * ratio {
                return Err(Error::Access(AccessError::RatioExceeded {
                    kernel: desc.name.clone(),
                    declared: declared_r,
                    charged: charged_r,
                    ratio_bits: ratio.to_bits(),
                }));
            }
        }
        if let Some(sh) = &self.sanitize {
            sh.audit_totals(
                &desc.name,
                &acc.counters,
                acc.observed_read_bytes,
                acc.observed_write_bytes,
                acc.declared_ratio,
            );
        }
        let t = kernel_time(&self.device, &acc.counters);
        self.push(
            &desc.name,
            CommandKind::Kernel,
            t.total_s,
            Some(acc.counters),
        );
        if self.require_access {
            self.access_log.extend(acc.access);
        }
        Ok(t)
    }

    // ---- transfers --------------------------------------------------------

    /// Bulk host→device write of `src` into the whole buffer
    /// (`clEnqueueWriteBuffer`). Returns the simulated transfer time.
    pub fn enqueue_write<T: Scalar>(&mut self, buf: &Buffer<T>, src: &[T]) -> Result<f64> {
        if src.len() > buf.len() {
            return Err(Error::TransferOutOfBounds {
                op: "write",
                buffer_len: buf.len(),
                offending_index: src.len() - 1,
            });
        }
        // Functional copy.
        buf.inner.copy_in(0, src);
        let dur = bulk_transfer_time(&self.device.transfer, std::mem::size_of_val(src) as u64);
        self.push_labeled("write:", buf.label(), CommandKind::WriteBuffer, dur, None);
        Ok(dur)
    }

    /// Bulk device→host read of the whole buffer into `dst`
    /// (`clEnqueueReadBuffer`). Returns the simulated transfer time.
    pub fn enqueue_read<T: Scalar>(&mut self, buf: &Buffer<T>, dst: &mut [T]) -> Result<f64> {
        if dst.len() > buf.len() {
            return Err(Error::TransferOutOfBounds {
                op: "read",
                buffer_len: buf.len(),
                offending_index: dst.len() - 1,
            });
        }
        buf.inner.copy_out(0, dst);
        let dur = bulk_transfer_time(&self.device.transfer, std::mem::size_of_val(dst) as u64);
        self.push_labeled("read:", buf.label(), CommandKind::ReadBuffer, dur, None);
        Ok(dur)
    }

    /// Rectangular host→device write (`clEnqueueWriteBufferRect`): copies a
    /// `src_width × rows` host matrix into the destination buffer (row
    /// pitch `buf_width`) at origin `(buf_x, buf_y)`.
    ///
    /// This is how the optimized pipeline pads during the transfer
    /// (Section V-A): the original image is written into the interior of a
    /// pre-zeroed padded buffer with one rect transfer.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_write_rect<T: Scalar>(
        &mut self,
        buf: &Buffer<T>,
        buf_width: usize,
        buf_x: usize,
        buf_y: usize,
        src: &[T],
        src_width: usize,
        rows: usize,
    ) -> Result<f64> {
        if src.len() != src_width * rows {
            return Err(Error::RectShapeMismatch {
                rows,
                row_len: src_width,
                host_len: src.len(),
            });
        }
        if rows == 0 || src_width == 0 {
            return Err(Error::RectShapeMismatch {
                rows,
                row_len: src_width,
                host_len: src.len(),
            });
        }
        if buf_x + src_width > buf_width {
            // The region would wrap into the next row of the destination.
            return Err(Error::TransferOutOfBounds {
                op: "rect-write",
                buffer_len: buf_width,
                offending_index: buf_x + src_width - 1,
            });
        }
        let last = (buf_y + rows - 1) * buf_width + buf_x + src_width - 1;
        if last >= buf.len() {
            return Err(Error::TransferOutOfBounds {
                op: "rect-write",
                buffer_len: buf.len(),
                offending_index: last,
            });
        }
        for r in 0..rows {
            let src_row = &src[r * src_width..(r + 1) * src_width];
            buf.inner.copy_in((buf_y + r) * buf_width + buf_x, src_row);
        }
        let dur = rect_transfer_time(
            &self.device.transfer,
            rows as u64,
            std::mem::size_of_val(src) as u64,
        );
        self.push_labeled(
            "rect-write:",
            buf.label(),
            CommandKind::RectWrite,
            dur,
            None,
        );
        Ok(dur)
    }

    /// Rectangular device→host read (`clEnqueueReadBufferRect`): copies a
    /// `src_width × rows` region of the buffer (row pitch `buf_width`,
    /// origin `(buf_x, buf_y)`) into `dst`. Symmetric counterpart of
    /// [`CommandQueue::enqueue_write_rect`] — useful for reading back a
    /// sub-region (e.g. a border or a tile) without the whole matrix.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_read_rect<T: Scalar>(
        &mut self,
        buf: &Buffer<T>,
        buf_width: usize,
        buf_x: usize,
        buf_y: usize,
        dst: &mut [T],
        src_width: usize,
        rows: usize,
    ) -> Result<f64> {
        if dst.len() != src_width * rows {
            return Err(Error::RectShapeMismatch {
                rows,
                row_len: src_width,
                host_len: dst.len(),
            });
        }
        if rows == 0 || src_width == 0 {
            return Err(Error::RectShapeMismatch {
                rows,
                row_len: src_width,
                host_len: dst.len(),
            });
        }
        if buf_x + src_width > buf_width {
            return Err(Error::TransferOutOfBounds {
                op: "rect-read",
                buffer_len: buf_width,
                offending_index: buf_x + src_width - 1,
            });
        }
        let last = (buf_y + rows - 1) * buf_width + buf_x + src_width - 1;
        if last >= buf.len() {
            return Err(Error::TransferOutOfBounds {
                op: "rect-read",
                buffer_len: buf.len(),
                offending_index: last,
            });
        }
        for r in 0..rows {
            let src_base = (buf_y + r) * buf_width + buf_x;
            buf.inner
                .copy_out(src_base, &mut dst[r * src_width..(r + 1) * src_width]);
        }
        let dur = rect_transfer_time(
            &self.device.transfer,
            rows as u64,
            std::mem::size_of_val(dst) as u64,
        );
        self.push_labeled(
            "rect-read:",
            buf.label(),
            CommandKind::ReadBuffer,
            dur,
            None,
        );
        Ok(dur)
    }

    /// Maps a buffer for host writing. The full map/unmap round-trip cost
    /// for touching the whole buffer is charged up front (the model from
    /// Section V-A: each access crosses the link piecemeal, so total cost
    /// scales with bytes at the reduced `map_bw`).
    pub fn map_write<'a, T: Scalar>(&mut self, buf: &'a Buffer<T>) -> Result<MapWriteGuard<'a, T>> {
        if !buf.inner.try_map() {
            return Err(Error::AlreadyMapped);
        }
        // The guard hands the host the whole slab, so for the stale-read
        // detector every element counts as initialised from here on.
        buf.mark_all_init();
        let dur = map_transfer_time(&self.device.transfer, buf.byte_len());
        self.push_labeled("map-write:", buf.label(), CommandKind::Map, dur, None);
        Ok(MapWriteGuard { buf })
    }

    /// Maps a buffer for host reading. Cost model as in
    /// [`CommandQueue::map_write`].
    pub fn map_read<'a, T: Scalar>(&mut self, buf: &'a Buffer<T>) -> Result<MapReadGuard<'a, T>> {
        if !buf.inner.try_map() {
            return Err(Error::AlreadyMapped);
        }
        let dur = map_transfer_time(&self.device.transfer, buf.byte_len());
        self.push_labeled("map-read:", buf.label(), CommandKind::Map, dur, None);
        Ok(MapReadGuard { buf })
    }

    // ---- host work & synchronisation --------------------------------------

    /// Charges host-side (CPU) work described by counters, timed against
    /// the queue's CPU model. Used for pipeline stages that run on the CPU
    /// (border, reduction stage 2, padding).
    pub fn charge_host(&mut self, name: &str, counters: &CostCounters) -> f64 {
        let dur = cpu_stage_time(&self.cpu, counters);
        self.push(name, CommandKind::HostWork, dur, Some(*counters));
        dur
    }

    /// Charges a fixed host-side duration (e.g. a memcpy modeled
    /// separately).
    pub fn charge_host_seconds(&mut self, name: &str, seconds: f64) {
        self.push(name, CommandKind::HostWork, seconds, None);
    }

    /// Charges a bulk transfer of `bytes` without moving data — used when
    /// the pipeline writes a sub-region it has already placed with raw
    /// stores (e.g. the CPU-computed border written back to the device).
    pub fn charge_bulk(&mut self, name: &str, kind: CommandKind, bytes: u64) {
        let dur = bulk_transfer_time(&self.device.transfer, bytes);
        self.push(name, kind, dur, None);
    }

    /// Charges a map/unmap-mode transfer of `bytes` without moving data;
    /// counterpart of [`CommandQueue::charge_bulk`] for the base pipeline.
    pub fn charge_map(&mut self, name: &str, bytes: u64) {
        let dur = map_transfer_time(&self.device.transfer, bytes);
        self.push(name, CommandKind::Map, dur, None);
    }

    /// Host synchronisation (`clFinish`). Charges the device's sync
    /// overhead if any command was enqueued since the last finish;
    /// otherwise free. The paper's "Eliminate Global Synchronization"
    /// optimization removes these calls between kernels.
    pub fn finish(&mut self) {
        if self.commands_since_finish > 0 {
            let dur = self.device.sync_overhead_s;
            self.push("finish", CommandKind::Finish, dur, None);
            self.commands_since_finish = 0;
        }
    }

    // ---- spans -------------------------------------------------------------

    /// Whether this queue records hierarchical spans.
    pub fn spans_enabled(&self) -> bool {
        self.spans.is_some()
    }

    /// Opens a scope span (frame / phase / band): subsequent commands and
    /// scopes nest under it until the matching [`CommandQueue::span_close`].
    /// Returns [`SpanId::NONE`] when spans are disabled, so call sites need
    /// no branching of their own.
    pub fn span_open(&mut self, kind: SpanKind, name: &str) -> SpanId {
        if self.spans.is_none() {
            return SpanId::NONE;
        }
        let name = self.intern(name);
        let sim = self.clock_s;
        match &mut self.spans {
            Some(ring) => ring.open(kind, name, sim),
            None => SpanId::NONE,
        }
    }

    /// Opens a scope span named `"{prefix}{label}"` (composed in the
    /// queue's scratch string, like [`CommandQueue::push_labeled`]).
    pub fn span_open_labeled(&mut self, kind: SpanKind, prefix: &str, label: &str) -> SpanId {
        if self.spans.is_none() {
            return SpanId::NONE;
        }
        let mut scratch = std::mem::take(&mut self.name_scratch);
        scratch.clear();
        scratch.push_str(prefix);
        scratch.push_str(label);
        let id = self.span_open(kind, &scratch);
        self.name_scratch = scratch;
        id
    }

    /// Closes the scope `id` at the current simulated/wall time. A
    /// [`SpanId::NONE`] (spans disabled) is a no-op.
    pub fn span_close(&mut self, id: SpanId) {
        if id == SpanId::NONE {
            return;
        }
        let sim = self.clock_s;
        if let Some(ring) = &mut self.spans {
            ring.close(id, sim);
        }
    }

    /// Snapshot of the retained spans, oldest first (empty when spans are
    /// disabled).
    pub fn span_snapshot(&self) -> Vec<SpanRecord> {
        self.spans
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }

    /// Spans lost to ring wrap-around since creation/reset.
    pub fn spans_evicted(&self) -> u64 {
        self.spans.as_ref().map(|r| r.evicted()).unwrap_or(0)
    }

    // ---- profiling ---------------------------------------------------------

    /// Total simulated time elapsed on this queue.
    pub fn elapsed(&self) -> f64 {
        self.clock_s
    }

    /// All command records, in execution order.
    pub fn records(&self) -> &[CommandRecord] {
        &self.records
    }

    /// Aggregated `(name, total_seconds)` pairs, in first-seen order.
    ///
    /// Names are the queue's interned `Arc<str>`s — aggregation allocates
    /// no per-record strings, only refcount bumps on the shared names.
    pub fn time_by_name(&self) -> Vec<(Arc<str>, f64)> {
        let mut order: Vec<(Arc<str>, f64)> = Vec::new();
        let mut index: std::collections::HashMap<Arc<str>, usize> =
            std::collections::HashMap::new();
        for r in &self.records {
            match index.get(&r.name) {
                Some(&i) => order[i].1 += r.duration_s,
                None => {
                    index.insert(Arc::clone(&r.name), order.len());
                    order.push((Arc::clone(&r.name), r.duration_s));
                }
            }
        }
        order
    }

    /// Clears the clock and records (new measurement run). The name
    /// interner is kept: subsequent frames reuse the same `Arc<str>` names.
    pub fn reset(&mut self) {
        self.clock_s = 0.0;
        self.records.clear();
        self.commands_since_finish = 0;
        self.pending_access = None;
        self.access_log.clear();
        if let Some(ring) = &mut self.spans {
            ring.clear();
        }
    }
}

/// RAII guard for a buffer mapped for host writing.
pub struct MapWriteGuard<'a, T: Scalar> {
    buf: &'a Buffer<T>,
}

impl<T: Scalar> MapWriteGuard<'_, T> {
    /// Mutable host view of the mapped buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: the mapped flag guarantees exclusive host access; no
        // kernels run while the guard is alive (dispatches are synchronous
        // and require `&mut CommandQueue`).
        unsafe { std::slice::from_raw_parts_mut(self.buf.inner.data_ptr(), self.buf.len()) }
    }
}

impl<T: Scalar> Drop for MapWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.buf.inner.unmap();
    }
}

/// RAII guard for a buffer mapped for host reading.
pub struct MapReadGuard<'a, T: Scalar> {
    buf: &'a Buffer<T>,
}

impl<T: Scalar> MapReadGuard<'_, T> {
    /// Host view of the mapped buffer.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: as for MapWriteGuard; reads only.
        unsafe { std::slice::from_raw_parts(self.buf.inner.data_ptr(), self.buf.len()) }
    }
}

impl<T: Scalar> Drop for MapReadGuard<'_, T> {
    fn drop(&mut self) {
        self.buf.inner.unmap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::cost::OpCounts;

    fn ctx() -> Context {
        Context::new(DeviceSpec::firepro_w8000())
    }

    #[test]
    fn write_then_read_roundtrip_and_clock_advances() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("b", 256);
        let src: Vec<f32> = (0..256).map(|i| i as f32).collect();
        q.enqueue_write(&buf, &src).unwrap();
        let mut dst = vec![0.0f32; 256];
        q.enqueue_read(&buf, &mut dst).unwrap();
        assert_eq!(src, dst);
        assert!(q.elapsed() > 0.0);
        assert_eq!(q.records().len(), 2);
    }

    #[test]
    fn kernel_runs_all_groups_and_items() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("out", 64 * 64);
        let w = buf.write_view();
        let desc = KernelDesc::new("fill", [64, 64], [16, 16]);
        let t = q
            .run(&desc, &[&buf], |g| {
                for l in crate::kernel::items(g.group_size) {
                    let idx = g.global_index(l, 64);
                    g.store(&w, idx, idx as f32);
                }
            })
            .unwrap();
        assert!(t.total_s > 0.0);
        let s = buf.snapshot();
        assert_eq!(s[100], 100.0);
        assert_eq!(s[64 * 64 - 1], (64 * 64 - 1) as f32);
        let rec = &q.records()[0];
        assert_eq!(rec.kind, CommandKind::Kernel);
        let c = rec.counters.unwrap();
        assert_eq!(c.items, 64 * 64);
        assert_eq!(c.groups, 16);
        assert_eq!(c.global_write_scalar, 64 * 64 * 4);
    }

    fn fill_kernel(
        q: &mut CommandQueue,
        buf: &Buffer<f32>,
        slices: Option<&[usize]>,
    ) -> Result<KernelTime> {
        let w = buf.write_view();
        let desc = KernelDesc::new("fill", [64, 64], [16, 16]);
        let body = |g: &mut GroupCtx| {
            for l in crate::kernel::items(g.group_size) {
                g.begin_item(l);
                let idx = g.global_index(l, 64);
                let v = g.load_mut(&w, idx);
                g.store(&w, idx, v + idx as f32);
                g.charge(&OpCounts::ZERO.adds(1));
            }
        };
        match slices {
            None => q.run(&desc, &[buf], body),
            Some(cuts) => {
                let mut acc = SlicedDispatch::new();
                let mut start = 0;
                for &end in cuts {
                    q.run_sliced(&desc, &[buf], start..end, &mut acc, body)?;
                    start = end;
                }
                q.run_sliced(&desc, &[buf], start..desc.total_groups(), &mut acc, body)?;
                q.commit_sliced(&desc, acc)
            }
        }
    }

    #[test]
    fn sliced_dispatch_commits_bit_identical_record() {
        let mono = ctx();
        let mut qm = mono.queue();
        let a = mono.buffer::<f32>("out", 64 * 64);
        let tm = fill_kernel(&mut qm, &a, None).unwrap();

        let sliced = ctx();
        let mut qs = sliced.queue();
        let b = sliced.buffer::<f32>("out", 64 * 64);
        // Deliberately uneven cuts (1, 6, 9 groups) of the 16-group grid.
        let ts = fill_kernel(&mut qs, &b, Some(&[1, 7])).unwrap();

        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(tm.total_s.to_bits(), ts.total_s.to_bits());
        assert_eq!(qm.elapsed().to_bits(), qs.elapsed().to_bits());
        let (rm, rs) = (&qm.records()[0], &qs.records()[0]);
        assert_eq!(rm.name, rs.name);
        assert_eq!(rm.kind, rs.kind);
        assert_eq!(rm.duration_s.to_bits(), rs.duration_s.to_bits());
        assert_eq!(rm.counters.unwrap(), rs.counters.unwrap());
        assert_eq!(qs.records().len(), 1);
    }

    #[test]
    fn sliced_dispatch_is_sanitizer_clean_and_audits_once() {
        let ctx = Context::sanitized(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("out", 64 * 64);
        buf.fill_from(&vec![0.0; 64 * 64]);
        fill_kernel(&mut q, &buf, Some(&[4, 8, 12])).unwrap();
        let report = ctx.sanitize_report().unwrap();
        assert!(report.is_clean(), "{report}");
        // Each slice counts as one analysed dispatch.
        assert_eq!(report.dispatches, 4);
    }

    #[test]
    fn sliced_dispatch_commit_requires_full_coverage() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("out", 64 * 64);
        let w = buf.write_view();
        let desc = KernelDesc::new("fill", [64, 64], [16, 16]);
        let mut acc = SlicedDispatch::new();
        q.run_sliced(&desc, &[&buf], 0..4, &mut acc, |g| {
            for l in crate::kernel::items(g.group_size) {
                let idx = g.global_index(l, 64);
                g.store(&w, idx, 1.0);
            }
        })
        .unwrap();
        assert_eq!(acc.groups_done(), 4);
        assert_eq!(acc.slices(), 1);
        let err = q.commit_sliced(&desc, acc).unwrap_err();
        assert!(matches!(
            err,
            Error::Access(crate::access::AccessError::CoverageGap { .. })
        ));
        // Nothing was recorded and the clock did not move.
        assert!(q.records().is_empty());
        assert_eq!(q.elapsed(), 0.0);
    }

    #[test]
    fn sliced_dispatch_range_checks_and_empty_slices() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("out", 64 * 64);
        let desc = KernelDesc::new("fill", [64, 64], [16, 16]);
        let mut acc = SlicedDispatch::new();
        // Empty slice: fine, a no-op.
        q.run_sliced(&desc, &[&buf], 3..3, &mut acc, |_| {})
            .unwrap();
        assert_eq!(acc.groups_done(), 0);
        // Out-of-grid range: typed error.
        let err = q
            .run_sliced(&desc, &[&buf], 10..17, &mut acc, |_| {})
            .unwrap_err();
        assert!(matches!(err, Error::InvalidKernelArgs { .. }));
    }

    #[test]
    fn kernel_race_detected_under_validation() {
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("out", 16);
        let w = buf.write_view();
        let desc = KernelDesc::new("racy", [64, 1], [8, 1]);
        let err = q
            .run(&desc, &[&buf], |g| {
                for l in crate::kernel::items(g.group_size) {
                    // Everyone writes slot local-x: races across groups.
                    g.store(&w, l[0], 1.0);
                }
            })
            .unwrap_err();
        assert!(matches!(err, Error::WriteRace { .. }));
    }

    #[test]
    fn rect_write_pads_into_interior() {
        let ctx = ctx();
        let mut q = ctx.queue();
        // 6x6 padded buffer, write a 4x4 source at (1,1).
        let buf = ctx.buffer::<f32>("padded", 36);
        let src: Vec<f32> = (1..=16).map(|i| i as f32).collect();
        q.enqueue_write_rect(&buf, 6, 1, 1, &src, 4, 4).unwrap();
        let s = buf.snapshot();
        assert_eq!(s[0], 0.0); // border untouched
        assert_eq!(s[6 + 1], 1.0); // (1,1)
        assert_eq!(s[6 + 4], 4.0); // (4,1)
        assert_eq!(s[4 * 6 + 4], 16.0); // (4,4)
        assert_eq!(s[35], 0.0);
    }

    #[test]
    fn rect_write_shape_errors() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("p", 36);
        assert!(matches!(
            q.enqueue_write_rect(&buf, 6, 1, 1, &[1.0; 10], 4, 4),
            Err(Error::RectShapeMismatch { .. })
        ));
        assert!(matches!(
            q.enqueue_write_rect(&buf, 6, 3, 3, &[1.0; 16], 4, 4),
            Err(Error::TransferOutOfBounds { .. })
        ));
    }

    #[test]
    fn rect_read_extracts_region() {
        let ctx = ctx();
        let mut q = ctx.queue();
        // 4x4 matrix 0..16; read the centre 2x2.
        let buf = ctx.buffer_from("m", &(0..16).map(|i| i as f32).collect::<Vec<_>>());
        let mut out = [0.0f32; 4];
        q.enqueue_read_rect(&buf, 4, 1, 1, &mut out, 2, 2).unwrap();
        assert_eq!(out, [5.0, 6.0, 9.0, 10.0]);
        let rec = q.records().last().unwrap();
        assert_eq!(rec.kind, CommandKind::ReadBuffer);
        assert!(rec.name.starts_with("rect-read:m"));
    }

    #[test]
    fn rect_read_bounds_checked() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("m", 16);
        let mut out = [0.0f32; 4];
        // Region wraps the row.
        assert!(q.enqueue_read_rect(&buf, 4, 3, 0, &mut out, 2, 2).is_err());
        // Region falls off the bottom.
        assert!(q.enqueue_read_rect(&buf, 4, 0, 3, &mut out, 2, 2).is_err());
        // Host slice wrong size.
        let mut small = [0.0f32; 3];
        assert!(matches!(
            q.enqueue_read_rect(&buf, 4, 0, 0, &mut small, 2, 2),
            Err(Error::RectShapeMismatch { .. })
        ));
    }

    #[test]
    fn map_guards_enforce_exclusivity() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("m", 16);
        {
            let mut g = q.map_write(&buf).unwrap();
            g.as_mut_slice()[3] = 42.0;
            // Second map while the first is alive fails. We must not hold
            // two guards on the same queue borrow, so check via a second
            // queue.
            let mut q2 = ctx.queue();
            assert!(matches!(q2.map_read(&buf), Err(Error::AlreadyMapped)));
        }
        // Guard dropped: mapping again works and sees the written data.
        let g = q.map_read(&buf).unwrap();
        assert_eq!(g.as_slice()[3], 42.0);
    }

    #[test]
    fn finish_charges_only_when_pending() {
        let ctx = ctx();
        let mut q = ctx.queue();
        q.finish(); // nothing pending: free, no record
        assert_eq!(q.records().len(), 0);
        let buf = ctx.buffer::<f32>("b", 4);
        q.enqueue_write(&buf, &[1.0; 4]).unwrap();
        let before = q.elapsed();
        q.finish();
        assert!(q.elapsed() > before);
        q.finish(); // no new commands: free again
        assert_eq!(
            q.records()
                .iter()
                .filter(|r| r.kind == CommandKind::Finish)
                .count(),
            1
        );
    }

    #[test]
    fn time_by_name_aggregates() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("b", 4);
        q.enqueue_write(&buf, &[1.0; 4]).unwrap();
        q.enqueue_write(&buf, &[2.0; 4]).unwrap();
        let agg = q.time_by_name();
        assert_eq!(agg.len(), 1);
        assert_eq!(&*agg[0].0, "write:b");
        // The aggregated name is the interned Arc, not a fresh allocation.
        assert!(Arc::ptr_eq(&agg[0].0, &q.records()[0].name));
        let rec_total: f64 = q.records().iter().map(|r| r.duration_s).sum();
        assert!((agg[0].1 - rec_total).abs() < 1e-15);
        assert!((q.elapsed() - rec_total).abs() < 1e-15);
    }

    #[test]
    fn repeated_names_share_one_interned_allocation() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("b", 4);
        q.enqueue_write(&buf, &[1.0; 4]).unwrap();
        q.enqueue_write(&buf, &[2.0; 4]).unwrap();
        let r = q.records();
        assert!(Arc::ptr_eq(&r[0].name, &r[1].name));
        // Interning survives reset: the next frame reuses the same name.
        let first = Arc::clone(&r[0].name);
        q.reset();
        q.enqueue_write(&buf, &[3.0; 4]).unwrap();
        assert!(Arc::ptr_eq(&q.records()[0].name, &first));
    }

    #[test]
    fn charge_host_uses_cpu_model() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let mut c = CostCounters::new();
        c.ops = OpCounts::ZERO.pows(1_000_000);
        let dur = q.charge_host("strength_cpu", &c);
        assert!(dur > 0.0);
        assert_eq!(q.records()[0].kind, CommandKind::HostWork);
    }

    #[test]
    fn charge_helpers_use_their_transfer_models() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let bytes = 1 << 20;
        q.charge_bulk("write:up_border", CommandKind::WriteBuffer, bytes);
        q.charge_map("map-write:up_border", bytes);
        let recs = q.records();
        assert_eq!(recs.len(), 2);
        let t = &q.device().transfer;
        assert!((recs[0].duration_s - crate::timing::bulk_transfer_time(t, bytes)).abs() < 1e-15);
        assert!((recs[1].duration_s - crate::timing::map_transfer_time(t, bytes)).abs() < 1e-15);
        assert_eq!(recs[1].kind, CommandKind::Map);
    }

    #[test]
    fn reset_clears_everything() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("b", 4);
        q.enqueue_write(&buf, &[1.0; 4]).unwrap();
        q.reset();
        assert_eq!(q.elapsed(), 0.0);
        assert!(q.records().is_empty());
    }

    #[test]
    fn oversized_transfers_error() {
        let ctx = ctx();
        let mut q = ctx.queue();
        let buf = ctx.buffer::<f32>("b", 4);
        assert!(q.enqueue_write(&buf, &[0.0; 8]).is_err());
        let mut dst = [0.0f32; 8];
        assert!(q.enqueue_read(&buf, &mut dst).is_err());
    }
}
