//! The analytical timing model: work counters → simulated seconds.
//!
//! # Kernel time
//!
//! A dispatch is charged
//!
//! ```text
//! t = launch_overhead + max(t_alu, t_mem, t_lds) / utilisation
//! ```
//!
//! * `t_alu` converts weighted op counts (plus barrier stalls and
//!   divergence penalties) into lane-cycles and divides by the device's
//!   effective lane throughput;
//! * `t_mem` divides global bytes by bandwidth derated per access width
//!   (scalar stencil loads coalesce worse than `vloadN` accesses — this is
//!   how Section V-D's vectorization shows up);
//! * `t_lds` divides local-memory traffic by LDS bandwidth;
//! * `utilisation` models occupancy: dispatches with fewer resident
//!   wavefronts than the device needs to hide latency run proportionally
//!   slower. This is why small images see smaller GPU speedups (Fig. 12).
//!
//! # Transfers
//!
//! See [`crate::device::TransferModel`]; the three cost functions here
//! implement bulk, rect and map modes.
//!
//! # CPU stages
//!
//! The same counter type is interpreted against a [`CpuSpec`]:
//! `t = max(weighted_cycles / (clock·ipc), bytes / bw)`.
//!
//! # Calibration note
//!
//! The constants in the presets were calibrated once so that the
//! end-to-end Fig. 12 speedup band lands near the paper's 10.7–69.3× and
//! the crossovers of Figs. 14–17 fall where the paper reports them. They
//! are *not* fitted per-experiment; one set of constants produces every
//! figure. See EXPERIMENTS.md.

use crate::cost::{CostCounters, OpCounts};
use crate::device::{CpuSpec, DeviceSpec, TransferModel};

/// GPU cycle weights per op class (Section V-F: div and transcendentals are
/// slow relative to add/sub/bit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuOpWeights {
    /// Cycles per add/sub.
    pub add: f64,
    /// Cycles per mul/mad.
    pub mul: f64,
    /// Cycles per div/rem.
    pub div: f64,
    /// Cycles per pow/exp.
    pub pow: f64,
    /// Cycles per compare/select.
    pub cmp: f64,
    /// Cycles per bit op.
    pub bit: f64,
}

impl Default for GpuOpWeights {
    fn default() -> Self {
        GpuOpWeights {
            add: 1.0,
            mul: 1.0,
            div: 16.0,
            pow: 32.0,
            cmp: 1.0,
            bit: 1.0,
        }
    }
}

impl GpuOpWeights {
    /// Weighted lane-cycles for an op bundle.
    pub fn cycles(&self, ops: &OpCounts) -> f64 {
        ops.add as f64 * self.add
            + ops.mul as f64 * self.mul
            + ops.div as f64 * self.div
            + ops.pow as f64 * self.pow
            + ops.cmp as f64 * self.cmp
            + ops.bit as f64 * self.bit
    }
}

/// Detailed decomposition of one kernel dispatch's simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelTime {
    /// Fixed launch overhead.
    pub launch_s: f64,
    /// ALU-bound execution time (after occupancy derating).
    pub alu_s: f64,
    /// Global-memory-bound execution time (after occupancy derating).
    pub mem_s: f64,
    /// LDS-bound execution time (after occupancy derating).
    pub lds_s: f64,
    /// Synchronisation stalls (barriers + divergence), additive: a stalled
    /// wavefront is not hidden behind the memory stream.
    pub sync_s: f64,
    /// Occupancy-derived utilisation in (0, 1].
    pub utilisation: f64,
    /// Total: `launch + max(alu, mem, lds) + sync`.
    pub total_s: f64,
}

/// Computes the simulated execution time of one kernel dispatch.
pub fn kernel_time(dev: &DeviceSpec, c: &CostCounters) -> KernelTime {
    let w = GpuOpWeights::default();
    let t_alu = w.cycles(&c.ops) / dev.effective_lane_hz();

    // Barriers stall every lane of the group; divergent branches execute
    // both sides. Both are pipeline stalls that overlap with nothing, so
    // they are charged additively below rather than folded into t_alu.
    let sync_cycles = c.barriers as f64 * c.group_lanes as f64 * dev.barrier_stall_cycles
        + c.divergent_branches as f64 * dev.divergence_penalty_cycles;
    let t_sync = sync_cycles / dev.effective_lane_hz();

    let t_mem = c.global_read_scalar as f64 / (dev.mem_bw * dev.coalesce_scalar)
        + c.global_write_scalar as f64 / (dev.mem_bw * dev.coalesce_scalar)
        + c.global_read_vector as f64 / (dev.mem_bw * dev.coalesce_vector)
        + c.global_write_vector as f64 / (dev.mem_bw * dev.coalesce_vector);

    let t_lds = c.local_bytes as f64 / dev.lds_bw;

    // Occupancy: how many wavefronts does this dispatch keep resident?
    // Two limits apply — the dispatch may simply be too small (few
    // groups), or each group's static LDS allocation may cap how many
    // groups fit on a compute unit.
    let lanes_per_group = c.group_lanes.max(1) as f64;
    let waves_per_group = (lanes_per_group / f64::from(dev.wavefront)).max(1.0);
    let waves = c.groups as f64 * waves_per_group;
    let lds_groups_per_cu = if c.local_alloc_bytes == 0 {
        f64::INFINITY
    } else {
        ((dev.lds_per_cu as f64 / c.local_alloc_bytes as f64).floor()).max(1.0)
    };
    let resident_cap = lds_groups_per_cu * waves_per_group * f64::from(dev.compute_units);
    let utilisation = (waves.min(resident_cap) / dev.occupancy_target_waves()).clamp(1e-6, 1.0);

    let body = (t_alu.max(t_mem).max(t_lds) + t_sync) / utilisation;
    KernelTime {
        launch_s: dev.launch_overhead_s,
        alu_s: t_alu / utilisation,
        mem_s: t_mem / utilisation,
        lds_s: t_lds / utilisation,
        sync_s: t_sync / utilisation,
        utilisation,
        total_s: dev.launch_overhead_s + body,
    }
}

/// Cost of one bulk (`read`/`write` buffer) transfer of `bytes`.
pub fn bulk_transfer_time(t: &TransferModel, bytes: u64) -> f64 {
    t.bulk_latency_s + bytes as f64 / t.bulk_bw
}

/// Cost of one rectangular transfer of `rows` rows totalling `bytes`.
pub fn rect_transfer_time(t: &TransferModel, rows: u64, bytes: u64) -> f64 {
    t.rect_latency_s + rows as f64 * t.rect_row_overhead_s + bytes as f64 / t.rect_bw
}

/// Cost of moving `bytes` through a map/unmap mapping (setup for the map
/// call plus dispersed per-access traffic at the map bandwidth).
pub fn map_transfer_time(t: &TransferModel, bytes: u64) -> f64 {
    t.map_setup_s + bytes as f64 / t.map_bw
}

/// Computes the simulated time of a CPU stage described by `c`.
///
/// The CPU model is roofline-style: the stage takes the longer of its
/// compute time (weighted cycles at `clock × ipc`) and its memory time
/// (global bytes at the single-core effective bandwidth).
pub fn cpu_stage_time(cpu: &CpuSpec, c: &CostCounters) -> f64 {
    let cycles = c.ops.add as f64 * cpu.cyc_add
        + c.ops.mul as f64 * cpu.cyc_mul
        + c.ops.div as f64 * cpu.cyc_div
        + c.ops.pow as f64 * cpu.cyc_pow
        + c.ops.cmp as f64 * cpu.cyc_cmp
        + c.ops.bit as f64 * cpu.cyc_bit;
    let t_ops = cycles / (cpu.clock_ghz * 1e9 * cpu.ipc);
    let t_mem = c.global_bytes() as f64 / cpu.mem_bw;
    t_ops.max(t_mem)
}

/// Cost of a host-side memcpy of `bytes` (e.g. CPU-side padding, which the
/// paper calls out as expensive: "copy the original matrix line by line").
pub fn host_memcpy_time(cpu: &CpuSpec, bytes: u64) -> f64 {
    bytes as f64 / cpu.memcpy_bw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::firepro_w8000()
    }

    fn big_counters() -> CostCounters {
        let mut c = CostCounters::new();
        c.ops = OpCounts::ZERO.adds(10_000_000).muls(5_000_000);
        c.global_read_scalar = 64 << 20;
        c.global_write_scalar = 16 << 20;
        c.items = 1 << 22;
        c.groups = 1 << 14;
        c.group_lanes = 256;
        c
    }

    #[test]
    fn kernel_time_positive_and_decomposes() {
        let t = kernel_time(&dev(), &big_counters());
        assert!(t.total_s > 0.0);
        let body = t.alu_s.max(t.mem_s).max(t.lds_s) + t.sync_s;
        assert!((t.total_s - (t.launch_s + body)).abs() < 1e-12);
    }

    #[test]
    fn kernel_time_monotone_in_bytes() {
        let c1 = big_counters();
        let mut c2 = big_counters();
        c2.global_read_scalar *= 2;
        let t1 = kernel_time(&dev(), &c1);
        let t2 = kernel_time(&dev(), &c2);
        assert!(t2.total_s >= t1.total_s);
    }

    #[test]
    fn vector_loads_are_cheaper_than_scalar() {
        let mut scalar = CostCounters::new();
        scalar.global_read_scalar = 256 << 20;
        scalar.groups = 4096;
        scalar.group_lanes = 256;
        let mut vector = CostCounters::new();
        vector.global_read_vector = 256 << 20;
        vector.groups = 4096;
        vector.group_lanes = 256;
        let ts = kernel_time(&dev(), &scalar);
        let tv = kernel_time(&dev(), &vector);
        assert!(
            tv.total_s < ts.total_s,
            "vector {tv:?} should beat scalar {ts:?}"
        );
    }

    #[test]
    fn heavy_lds_allocation_caps_occupancy() {
        // A kernel whose groups each allocate half a CU's LDS can only
        // keep two groups resident per CU — well below the occupancy
        // target — so it runs slower than the identical kernel with a
        // small allocation.
        let mut light = big_counters();
        light.groups = 100_000;
        light.group_lanes = 64; // one wavefront per group
        light.local_alloc_bytes = 512;
        let mut heavy = light;
        heavy.local_alloc_bytes = 48 * 1024; // one group per CU fits
        let t_light = kernel_time(&dev(), &light);
        let t_heavy = kernel_time(&dev(), &heavy);
        assert!((t_light.utilisation - 1.0).abs() < 1e-12, "{t_light:?}");
        assert!(t_heavy.utilisation < 1.0, "{t_heavy:?}");
        assert!(t_heavy.total_s > t_light.total_s);
    }

    #[test]
    fn oversized_lds_allocation_clamps_to_one_group() {
        let mut c = big_counters();
        c.groups = 100_000;
        c.local_alloc_bytes = 1 << 20; // larger than a CU's LDS
        let t = kernel_time(&dev(), &c);
        assert!(t.utilisation > 0.0); // clamped, not zero/NaN
        assert!(t.total_s.is_finite());
    }

    #[test]
    fn small_dispatch_underutilises() {
        let mut small = big_counters();
        small.groups = 2; // far below the occupancy target
        let t = kernel_time(&dev(), &small);
        assert!(t.utilisation < 1.0);
        let t_big = kernel_time(&dev(), &big_counters());
        assert!((t_big.utilisation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn barriers_add_cost() {
        let base = big_counters();
        let mut with_barriers = big_counters();
        with_barriers.barriers = 100_000;
        let t0 = kernel_time(&dev(), &base);
        let t1 = kernel_time(&dev(), &with_barriers);
        assert!(t1.sync_s > t0.sync_s);
        assert!(t1.total_s > t0.total_s);
    }

    #[test]
    fn divergence_adds_cost() {
        let base = big_counters();
        let mut div = big_counters();
        div.divergent_branches = 10_000_000;
        assert!(kernel_time(&dev(), &div).total_s > kernel_time(&dev(), &base).total_s);
    }

    #[test]
    fn sync_visible_even_when_memory_bound() {
        // A memory-bound kernel still pays for extra barriers — this is
        // what separates the reduction unrolling strategies (Fig. 15).
        let mut a = CostCounters::new();
        a.global_read_scalar = 256 << 20;
        a.groups = 65_536;
        a.group_lanes = 128;
        let mut b = a;
        b.barriers = a.groups * 7; // barrier-per-tree-step variant
        let ta = kernel_time(&dev(), &a);
        let tb = kernel_time(&dev(), &b);
        assert!(tb.total_s > ta.total_s);
    }

    #[test]
    fn bulk_beats_map_for_large_discrete_transfers() {
        let t = TransferModel::pcie_discrete();
        let big = 64u64 << 20;
        assert!(bulk_transfer_time(&t, big) < map_transfer_time(&t, big));
        // ...but map wins for small transfers (lower fixed latency).
        let small = 4 << 10;
        assert!(map_transfer_time(&t, small) < bulk_transfer_time(&t, small));
    }

    #[test]
    fn map_beats_bulk_on_apu() {
        let t = TransferModel::apu_like();
        let big = 64u64 << 20;
        assert!(map_transfer_time(&t, big) < bulk_transfer_time(&t, big));
    }

    #[test]
    fn rect_charges_rows() {
        let t = TransferModel::pcie_discrete();
        let a = rect_transfer_time(&t, 100, 1 << 20);
        let b = rect_transfer_time(&t, 10_000, 1 << 20);
        assert!(b > a);
    }

    #[test]
    fn cpu_pow_dominates() {
        let cpu = CpuSpec::core_i5_3470();
        let mut adds = CostCounters::new();
        adds.ops = OpCounts::ZERO.adds(1_000_000);
        let mut pows = CostCounters::new();
        pows.ops = OpCounts::ZERO.pows(1_000_000);
        assert!(cpu_stage_time(&cpu, &pows) > 20.0 * cpu_stage_time(&cpu, &adds));
    }

    #[test]
    fn cpu_stage_roofline() {
        let cpu = CpuSpec::core_i5_3470();
        // Memory-bound stage: huge bytes, few ops.
        let mut c = CostCounters::new();
        c.global_read_scalar = 1 << 30;
        let t = cpu_stage_time(&cpu, &c);
        assert!((t - (1u64 << 30) as f64 / cpu.mem_bw).abs() < 1e-9);
    }
}
