//! Shared per-pixel math.
//!
//! Every pixel formula of the pipeline lives here, in exactly one place,
//! and is called by **both** the CPU reference implementation and the GPU
//! kernels. Because `f32` arithmetic is evaluation-order sensitive, sharing
//! the functions (and therefore the operation order) is what lets the test
//! suite require *bit-exact* agreement between CPU and GPU outputs for
//! every stage, for every optimization variant.

use crate::params::{SharpnessParams, INTERP};

/// Select-form minimum: `b < a ? b : a` — exactly one `minss`/`minps`
/// instruction, unlike `f32::min` whose NaN-propagation contract costs a
/// `ucomiss` + branch per call and blocks autovectorization of every
/// kernel loop using it (the Section V-F `select`-over-branch shape,
/// applied host-side). Identical to `f32::min` for the non-NaN pixel
/// domain; for NaN inputs it propagates `a` where `f32::min` would not,
/// consistently across the CPU reference and every GPU kernel.
#[inline]
pub fn fmin(a: f32, b: f32) -> f32 {
    if b < a {
        b
    } else {
        a
    }
}

/// Select-form maximum, counterpart of [`fmin`].
#[inline]
pub fn fmax(a: f32, b: f32) -> f32 {
    if b > a {
        b
    } else {
        a
    }
}

/// Select-form `clamp(x, lo, hi)` built from [`fmin`]/[`fmax`]: two
/// instructions, no NaN branches.
#[inline]
pub fn clampf(x: f32, lo: f32, hi: f32) -> f32 {
    fmin(fmax(x, lo), hi)
}

/// Mean of a 4×4 downscale block (row-major 16 values), paper Fig. 2.
#[inline]
pub fn downscale_pixel(block: &[f32; 16]) -> f32 {
    let mut s = 0.0f32;
    for &v in block {
        s += v;
    }
    s * (1.0 / 16.0)
}

/// One value of an upscaled 4×4 block (paper Fig. 5): row phase `r`,
/// column phase `c` in `0..4`, interpolating the 2×2 downscaled window
/// `(d00 d01; d10 d11)` — `P·D·Pᵀ` evaluated at `(r, c)`.
#[inline]
pub fn upscale_value(d00: f32, d01: f32, d10: f32, d11: f32, r: usize, c: usize) -> f32 {
    let top = INTERP[c][0] * d00 + INTERP[c][1] * d01;
    let bot = INTERP[c][0] * d10 + INTERP[c][1] * d11;
    INTERP[r][0] * top + INTERP[r][1] * bot
}

/// 1-D border interpolation between two downscaled samples at phase
/// `c in 0..4` (paper Fig. 3).
#[inline]
pub fn border_interp(a: f32, b: f32, c: usize) -> f32 {
    INTERP[c][0] * a + INTERP[c][1] * b
}

/// Sobel response from a 3×3 neighbourhood, row-major
/// `[tl, t, tr, l, c, r, bl, b, br]` (paper Fig. 7): `|Gx| + |Gy|`.
///
/// The centre value is unused — the paper's "fetching eight nodes".
#[inline]
pub fn sobel_pixel(n: &[f32; 9]) -> f32 {
    let gx = (n[2] + 2.0 * n[5] + n[8]) - (n[0] + 2.0 * n[3] + n[6]);
    let gy = (n[6] + 2.0 * n[7] + n[8]) - (n[0] + 2.0 * n[1] + n[2]);
    gx.abs() + gy.abs()
}

/// Brightness-strength curve: how strongly an edge of magnitude `edge`
/// is amplified, given the global pEdge mean. Contains the stage's
/// expensive `powf` (the paper: "many exponentiations resulting in big
/// overhead").
#[inline]
pub fn strength(edge: f32, mean: f32, p: &SharpnessParams) -> f32 {
    let x = edge / (mean + p.eps);
    // `powf` with a runtime exponent costs ~20 ns/pixel and dominates the
    // fused kernel's host time. The default gamma is 0.5, so special-case
    // it to the correctly-rounded `sqrt`. libm's `powf(x, 0.5)` may differ
    // from `sqrt` by 1 ULP (it is not correctly rounded everywhere —
    // pinned by `sqrt_tracks_powf_half`), which is safe *because* this
    // selection lives in the one shared function: the CPU reference and
    // every GPU kernel take the same branch, keeping them bit-equal.
    let pow = if p.gamma == 0.5 {
        x.sqrt()
    } else {
        x.powf(p.gamma)
    };
    clampf(p.gain * pow, 0.0, p.s_max)
}

/// Preliminary sharpened value: upscaled + strength(pEdge) · pError.
#[inline]
pub fn preliminary(up: f32, edge: f32, err: f32, mean: f32, p: &SharpnessParams) -> f32 {
    up + strength(edge, mean, p) * err
}

/// Min and max of a 3×3 neighbourhood (row-major 9 values).
#[inline]
pub fn minmax3x3(n: &[f32; 9]) -> (f32, f32) {
    let mut mn = n[0];
    let mut mx = n[0];
    for &v in &n[1..] {
        mn = fmin(mn, v);
        mx = fmax(mx, v);
    }
    (mn, mx)
}

/// Overshoot control for one body pixel (paper Fig. 8): clamps the
/// preliminary value `prelim` against the local `[mn, mx]` envelope of the
/// original image, keeping a tunable fraction `osc` of the excursion,
/// then clamps to the display range.
#[inline]
pub fn overshoot(prelim: f32, mn: f32, mx: f32, p: &SharpnessParams) -> f32 {
    // All three candidates are computed unconditionally and selected — the
    // `select`-over-branch shape of Section V-F. The branches depend on
    // per-pixel data, so on the host this also trades mispredictions for
    // two cmovs; the selected values are identical to the branched form.
    let above = fmin(mx + p.osc * (prelim - mx), 255.0);
    let below = fmax(mn - p.osc * (mn - prelim), 0.0);
    let inside = clampf(prelim, 0.0, 255.0);
    let low = if prelim < mn { below } else { inside };
    if prelim > mx {
        above
    } else {
        low
    }
}

/// Border handling of the final matrix: the preliminary value clamped to
/// the display range (the paper copies the preliminary border through).
#[inline]
pub fn final_border(prelim: f32) -> f32 {
    clampf(prelim, 0.0, 255.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SharpnessParams {
        SharpnessParams::default()
    }

    #[test]
    fn downscale_of_constant_block() {
        assert_eq!(downscale_pixel(&[8.0; 16]), 8.0);
        let mut block = [0.0f32; 16];
        block[0] = 16.0;
        assert_eq!(downscale_pixel(&block), 1.0);
    }

    #[test]
    fn upscale_phase_zero_is_identity() {
        // r = c = 0 picks d00 exactly.
        assert_eq!(upscale_value(7.0, 1.0, 2.0, 3.0, 0, 0), 7.0);
    }

    #[test]
    fn upscale_is_convex_combination() {
        // Output of every phase lies within [min, max] of the support.
        let (a, b, c, d) = (1.0, 9.0, 4.0, 6.5);
        for r in 0..4 {
            for cph in 0..4 {
                let v = upscale_value(a, b, c, d, r, cph);
                assert!((1.0..=9.0).contains(&v), "phase ({r},{cph}) -> {v}");
            }
        }
    }

    #[test]
    fn upscale_midpoint() {
        // Phase (2,2) is the average of all four corners for equal weights.
        let v = upscale_value(0.0, 4.0, 8.0, 12.0, 2, 2);
        assert_eq!(v, 6.0);
    }

    #[test]
    fn upscale_equals_bilinear_interpolation() {
        // P·D·Pᵀ with linear-phase rows is exactly bilinear interpolation
        // at offsets (r/4, c/4) — verify against the direct formula for
        // every phase pair.
        let (d00, d01, d10, d11) = (13.0f32, 7.0, 2.5, 40.0);
        for r in 0..4 {
            for c in 0..4 {
                let (a, b) = (r as f32 / 4.0, c as f32 / 4.0);
                let bilinear =
                    (1.0 - a) * ((1.0 - b) * d00 + b * d01) + a * ((1.0 - b) * d10 + b * d11);
                let got = upscale_value(d00, d01, d10, d11, r, c);
                assert!(
                    (got - bilinear).abs() < 1e-4,
                    "({r},{c}): {got} vs {bilinear}"
                );
            }
        }
    }

    #[test]
    fn downscale_is_linear() {
        let block: [f32; 16] = std::array::from_fn(|i| i as f32);
        let scaled: [f32; 16] = std::array::from_fn(|i| 3.0 * i as f32);
        assert!((downscale_pixel(&scaled) - 3.0 * downscale_pixel(&block)).abs() < 1e-4);
    }

    #[test]
    fn sobel_scales_with_contrast() {
        let n: [f32; 9] = [0.0, 5.0, 10.0, 0.0, 5.0, 10.0, 0.0, 5.0, 10.0];
        let doubled: [f32; 9] = std::array::from_fn(|i| 2.0 * n[i]);
        assert_eq!(sobel_pixel(&doubled), 2.0 * sobel_pixel(&n));
    }

    #[test]
    fn border_interp_endpoints() {
        assert_eq!(border_interp(3.0, 11.0, 0), 3.0);
        assert_eq!(border_interp(3.0, 11.0, 2), 7.0);
    }

    #[test]
    fn sobel_zero_on_constant() {
        assert_eq!(sobel_pixel(&[5.0; 9]), 0.0);
    }

    #[test]
    fn sobel_horizontal_step() {
        // Left column 0, right column 10: |Gx| = 40, |Gy| = 0.
        let n = [0.0, 5.0, 10.0, 0.0, 5.0, 10.0, 0.0, 5.0, 10.0];
        assert_eq!(sobel_pixel(&n), 40.0);
    }

    #[test]
    fn sobel_symmetric_under_flip() {
        let n = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let flipped = [3.0, 2.0, 1.0, 6.0, 5.0, 4.0, 9.0, 8.0, 7.0];
        assert_eq!(sobel_pixel(&n), sobel_pixel(&flipped));
    }

    #[test]
    fn strength_monotone_and_clamped() {
        let p = params();
        let s0 = strength(0.0, 10.0, &p);
        let s1 = strength(5.0, 10.0, &p);
        let s2 = strength(50.0, 10.0, &p);
        assert_eq!(s0, 0.0);
        assert!(s1 > s0 && s2 > s1);
        // Very large edge hits the clamp.
        assert_eq!(strength(1e12, 1.0, &p), p.s_max);
    }

    #[test]
    fn sqrt_tracks_powf_half() {
        // The gamma == 0.5 fast path replaces powf(·, 0.5) with sqrt inside
        // the *shared* `strength`, so CPU and GPU stay bit-equal by
        // construction. This pins the numerical premise: sqrt never strays
        // more than 1 ULP from powf (libm's powf is not correctly rounded
        // everywhere, e.g. x = 4.245497e-37 on glibc, so exact bit equality
        // is not guaranteed and not required).
        for i in (0..=u32::MAX).step_by(9973) {
            let x = f32::from_bits(i);
            if x.is_finite() && x >= 0.0 {
                let s = x.sqrt().to_bits();
                let p = x.powf(0.5).to_bits();
                assert!(s.abs_diff(p) <= 1, "x = {x}: sqrt {s:#x} vs powf {p:#x}");
            }
        }
    }

    #[test]
    fn strength_safe_on_zero_mean() {
        let p = params();
        let s = strength(4.0, 0.0, &p);
        assert!(s.is_finite());
    }

    #[test]
    fn preliminary_is_up_plus_scaled_error() {
        let p = params();
        let v = preliminary(100.0, 0.0, 50.0, 10.0, &p);
        assert_eq!(v, 100.0); // zero edge -> zero strength
        let v2 = preliminary(100.0, 20.0, 1.0, 10.0, &p);
        assert!(v2 > 100.0);
    }

    #[test]
    fn minmax_basics() {
        let n = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0];
        assert_eq!(minmax3x3(&n), (1.0, 9.0));
    }

    #[test]
    fn overshoot_branches() {
        let p = params();
        // Inside envelope: plain clamp.
        assert_eq!(overshoot(100.0, 50.0, 150.0, &p), 100.0);
        // Above the local max: partial excursion kept.
        let v = overshoot(200.0, 50.0, 150.0, &p);
        assert!((v - (150.0 + 0.35 * 50.0)).abs() < 1e-4);
        // Below the local min: mirrored.
        let v = overshoot(10.0, 50.0, 150.0, &p);
        assert!((v - (50.0 - 0.35 * 40.0)).abs() < 1e-4);
        // Display clamp dominates extreme overshoot.
        assert_eq!(overshoot(1e6, 50.0, 254.0, &p), 255.0);
        assert_eq!(overshoot(-1e6, 1.0, 150.0, &p), 0.0);
    }

    #[test]
    fn overshoot_output_always_in_display_range() {
        let p = params();
        for prelim in [-500.0f32, -1.0, 0.0, 42.0, 255.0, 256.0, 1000.0] {
            for (mn, mx) in [(0.0f32, 255.0f32), (10.0, 20.0), (200.0, 250.0)] {
                let v = overshoot(prelim, mn, mx, &p);
                assert!((0.0..=255.0).contains(&v), "{prelim} {mn} {mx} -> {v}");
            }
        }
    }

    #[test]
    fn final_border_clamps() {
        assert_eq!(final_border(-3.0), 0.0);
        assert_eq!(final_border(300.0), 255.0);
        assert_eq!(final_border(77.5), 77.5);
    }
}
