//! Run reports: simulated per-stage timings for one pipeline execution.
//!
//! The figure-reproduction harness consumes these to print the paper's
//! Fig. 12 (totals), Fig. 13 (per-stage fractions), and Figs. 14–17
//! (variant comparisons).

use std::sync::Arc;

use imagekit::ImageF32;

/// One timed stage (or command group) of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage name (pipeline-level, e.g. `"sobel"`, `"reduction"`).
    /// Shares the command queue's interned allocation: cloning a report's
    /// stages bumps refcounts instead of copying strings.
    pub name: Arc<str>,
    /// Simulated duration in seconds.
    pub seconds: f64,
}

/// The result of running a pipeline on one image: the sharpened output and
/// the simulated time breakdown.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The final sharpened image.
    pub output: ImageF32,
    /// Total simulated time, seconds.
    pub total_s: f64,
    /// Ordered stage records; their sum equals `total_s` (validated by
    /// tests).
    pub stages: Vec<StageRecord>,
}

impl RunReport {
    /// Sum of all stage durations.
    pub fn stages_total(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Total seconds charged to stages whose name equals `name`.
    pub fn stage_seconds(&self, name: &str) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.name.as_ref() == name)
            .map(|s| s.seconds)
            .sum()
    }

    /// Fraction of total time spent in `name` (0 if the run is empty).
    pub fn stage_fraction(&self, name: &str) -> f64 {
        if self.total_s <= 0.0 {
            0.0
        } else {
            self.stage_seconds(name) / self.total_s
        }
    }

    /// Aggregates stages into `(category, seconds)` pairs using a
    /// classifier function, preserving first-seen category order. Used to
    /// group fine-grained command records into the paper's Fig. 13 stage
    /// legend.
    pub fn by_category(&self, classify: impl Fn(&str) -> &'static str) -> Vec<(String, f64)> {
        let mut order: Vec<&'static str> = Vec::new();
        let mut totals: std::collections::HashMap<&'static str, f64> =
            std::collections::HashMap::new();
        for s in &self.stages {
            let cat = classify(&s.name);
            if !totals.contains_key(cat) {
                order.push(cat);
            }
            *totals.entry(cat).or_insert(0.0) += s.seconds;
        }
        order
            .into_iter()
            .map(|c| (c.to_string(), totals[c]))
            .collect()
    }
}

/// Which engine a command occupies in the double-buffered overlap model:
/// the upload DMA engine, the compute device (plus host stages and sync),
/// or the download DMA engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageLane {
    /// Host→device transfers (bulk, rect, and map writes).
    Upload,
    /// Kernels, host-side stages, synchronisation.
    Compute,
    /// Device→host transfers (bulk, rect, and map reads).
    Download,
}

/// Classifies a command/stage name into its overlap [`StageLane`] from the
/// queue's `"<kind>:<buffer>"` naming convention. The single source of
/// truth for lane splits — `gpu/batch.rs` and the throughput engine both
/// use it, so a renamed stage cannot silently land in the wrong lane.
pub fn classify_stage_lane(name: &str) -> StageLane {
    if name.starts_with("write:")
        || name.starts_with("rect-write:")
        || name.starts_with("map-write:")
    {
        StageLane::Upload
    } else if name.starts_with("read:")
        || name.starts_with("rect-read:")
        || name.starts_with("map-read:")
    {
        StageLane::Download
    } else {
        StageLane::Compute
    }
}

/// Maps a CPU-pipeline stage name to the paper's Fig. 13(a) legend
/// categories: sobel / pError / upscale / strength matrix / overshoot
/// control / downscale.
pub fn classify_cpu_stage(name: &str) -> &'static str {
    match name {
        "downscale" => "downscale",
        "upscale_border" | "upscale_body" => "upscale",
        "perror" => "pError",
        "sobel" => "sobel",
        "reduction" | "strength_preliminary" => "strength matrix",
        "overshoot" => "overshoot control",
        _ => "other",
    }
}

/// Maps a GPU-pipeline command name to the paper's Fig. 13(b)/(c) legend
/// categories: data init / downscale / border / center / padding / sobel /
/// reduction / sharpness.
pub fn classify_gpu_stage(name: &str) -> &'static str {
    // Command names are "<kind>:<buffer>" for transfers and kernel names
    // for dispatches; host work carries pipeline-chosen labels.
    if name.starts_with("write:original")
        || name.starts_with("map-write:original")
        || name.starts_with("rect-write:padded")
        || name.starts_with("map-write:padded")
        || name.starts_with("write:padded")
        || name.starts_with("read:final")
        || name.starts_with("map-read:final")
        || name == "finish"
    {
        return "data init";
    }
    if name == "host:padding" {
        return "padding";
    }
    if name.starts_with("downscale") {
        return "downscale";
    }
    if name.contains("border") || name.starts_with("read:down") || name.starts_with("map-read:down")
    {
        return "border";
    }
    if name.starts_with("upscale_center") {
        return "center";
    }
    if name.starts_with("sobel") {
        return "sobel";
    }
    if name.contains("reduction")
        || name.starts_with("read:pEdge")
        || name.starts_with("map-read:pEdge")
        || name.starts_with("read:partials")
        || name.starts_with("map-read:partials")
    {
        return "reduction";
    }
    if name.starts_with("perror")
        || name.starts_with("preliminary")
        || name.starts_with("overshoot")
        || name.starts_with("sharpness")
    {
        return "sharpness";
    }
    "other"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            output: ImageF32::zeros(4, 4),
            total_s: 1.0,
            stages: vec![
                StageRecord {
                    name: "sobel".into(),
                    seconds: 0.25,
                },
                StageRecord {
                    name: "reduction".into(),
                    seconds: 0.5,
                },
                StageRecord {
                    name: "strength_preliminary".into(),
                    seconds: 0.25,
                },
            ],
        }
    }

    #[test]
    fn totals_and_fractions() {
        let r = report();
        assert!((r.stages_total() - 1.0).abs() < 1e-12);
        assert!((r.stage_fraction("sobel") - 0.25).abs() < 1e-12);
        assert_eq!(r.stage_seconds("nope"), 0.0);
    }

    #[test]
    fn category_aggregation_merges_strength_matrix() {
        let r = report();
        let cats = r.by_category(classify_cpu_stage);
        let strength: f64 = cats
            .iter()
            .filter(|(c, _)| c == "strength matrix")
            .map(|(_, s)| *s)
            .sum();
        assert!((strength - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gpu_classifier_buckets() {
        assert_eq!(classify_gpu_stage("rect-write:padded"), "data init");
        assert_eq!(classify_gpu_stage("map-write:original"), "data init");
        assert_eq!(classify_gpu_stage("host:padding"), "padding");
        assert_eq!(classify_gpu_stage("downscale"), "downscale");
        assert_eq!(classify_gpu_stage("downscale_vec4"), "downscale");
        assert_eq!(classify_gpu_stage("upscale_border_top"), "border");
        assert_eq!(classify_gpu_stage("host:upscale_border_cpu"), "border");
        assert_eq!(classify_gpu_stage("read:down"), "border");
        assert_eq!(classify_gpu_stage("upscale_center_vec4"), "center");
        assert_eq!(classify_gpu_stage("sobel_vec4"), "sobel");
        assert_eq!(classify_gpu_stage("reduction_stage1"), "reduction");
        assert_eq!(classify_gpu_stage("host:reduction_stage2"), "reduction");
        assert_eq!(classify_gpu_stage("read:pEdge"), "reduction");
        assert_eq!(classify_gpu_stage("sharpness_fused"), "sharpness");
        assert_eq!(classify_gpu_stage("perror"), "sharpness");
        assert_eq!(classify_gpu_stage("overshoot"), "sharpness");
        assert_eq!(classify_gpu_stage("read:final"), "data init");
        assert_eq!(classify_gpu_stage("finish"), "data init");
    }

    #[test]
    fn lane_classifier_covers_every_transfer_kind() {
        assert_eq!(classify_stage_lane("write:original"), StageLane::Upload);
        assert_eq!(classify_stage_lane("rect-write:padded"), StageLane::Upload);
        assert_eq!(classify_stage_lane("map-write:padded"), StageLane::Upload);
        assert_eq!(classify_stage_lane("read:final"), StageLane::Download);
        assert_eq!(classify_stage_lane("rect-read:down"), StageLane::Download);
        assert_eq!(classify_stage_lane("map-read:pEdge"), StageLane::Download);
        assert_eq!(classify_stage_lane("sobel_vec4"), StageLane::Compute);
        assert_eq!(classify_stage_lane("host:padding"), StageLane::Compute);
        assert_eq!(classify_stage_lane("finish"), StageLane::Compute);
    }

    #[test]
    fn cpu_classifier_buckets() {
        assert_eq!(classify_cpu_stage("upscale_border"), "upscale");
        assert_eq!(classify_cpu_stage("upscale_body"), "upscale");
        assert_eq!(classify_cpu_stage("overshoot"), "overshoot control");
        assert_eq!(classify_cpu_stage("mystery"), "other");
    }
}
