//! The CPU reference implementation of every pipeline stage.
//!
//! Each function computes the real output *and* returns the
//! [`CostCounters`] describing the work it did, so the CPU timing model can
//! charge it. These functions are the golden reference: the GPU kernels are
//! tested for exact agreement against them (given the same pEdge mean).
//!
//! Stage geometry (see DESIGN.md §5): for a `w × h` input (any `w`, `h`
//! ≥ 3) the downscaled image is `⌈w/4⌉ × ⌈h/4⌉`, with ragged edge blocks
//! averaging only the pixels that exist; the upscale *body* covers
//! rows/columns `2 ..= h-3` via stride-4 blocks interpolated from stride-1
//! 2×2 windows (writes past the border band are clamped away), and the
//! *border* fills the first two and last two rows and columns. For
//! multiple-of-4 dimensions every clamp is a no-op and the geometry — and
//! the charged cost — is identical to the historical aligned-only scheme.

use imagekit::ImageF32;
use simgpu::cost::{CostCounters, OpCounts};

use crate::gpu::kernels::simd;
use crate::math;
use crate::params::{SharpnessParams, SCALE};

/// Downscale: each output is the mean of the corresponding 4×4 input block
/// (paper Fig. 2). Ragged right/bottom blocks (when `w` or `h` is not a
/// multiple of 4) average only the pixels that exist, summed in the same
/// dy-major order as the full-block path.
pub fn downscale(orig: &ImageF32) -> (ImageF32, CostCounters) {
    let (w, h) = (orig.width(), orig.height());
    let (wd, hd) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    let mut out = ImageF32::zeros(wd, hd);
    let mut sampled = 0u64;
    for j in 0..hd {
        for i in 0..wd {
            let bw = (w - SCALE * i).min(SCALE);
            let bh = (h - SCALE * j).min(SCALE);
            if bw == SCALE && bh == SCALE {
                let mut block = [0.0f32; 16];
                for dy in 0..SCALE {
                    for dx in 0..SCALE {
                        block[dy * SCALE + dx] = orig.get(SCALE * i + dx, SCALE * j + dy);
                    }
                }
                out.set(i, j, math::downscale_pixel(&block));
            } else {
                let mut sum = 0.0f32;
                for dy in 0..bh {
                    for dx in 0..bw {
                        sum += orig.get(SCALE * i + dx, SCALE * j + dy);
                    }
                }
                out.set(i, j, sum * (1.0 / (bw * bh) as f32));
            }
            sampled += (bw * bh) as u64;
        }
    }
    let blocks = (wd * hd) as u64;
    let mut c = CostCounters::new();
    // Per block: (samples − 1) adds + 1 mul; a full 4×4 block charges the
    // historical 15 adds + 1 mul exactly.
    c.charge_ops_n(&OpCounts::ZERO.adds(1), sampled - blocks);
    c.charge_ops_n(&OpCounts::ZERO.muls(1), blocks);
    c.global_read_scalar = sampled * 4;
    c.global_write_scalar = blocks * 4;
    (out, c)
}

/// Upscale border (paper Fig. 3): fills rows 0, 1, `h-2`, `h-1` across the
/// full width and columns 0, 1, `w-2`, `w-1` for the body rows, writing
/// into `up` (which must be `w × h`).
///
/// Scheme: the first/last rows of the downscaled matrix are interpolated
/// along x at phases 0..4 into the interior of row 0 / row `h-2`; the
/// outer two columns on each side copy the nearest computed value; row 1
/// copies row 0 and row `h-1` copies row `h-2`. Columns are handled
/// symmetrically along y.
pub fn upscale_border_into(down: &ImageF32, up: &mut ImageF32) -> CostCounters {
    let (w, h) = (up.width(), up.height());
    let (wd, hd) = (down.width(), down.height());
    assert_eq!(
        (w.div_ceil(SCALE), h.div_ceil(SCALE)),
        (wd, hd),
        "shape mismatch"
    );
    let mut c = CostCounters::new();
    let mut interp_vals = 0u64;
    let mut copied = 0u64;

    // Horizontal border rows: (source downscaled row, destination row).
    for (src_row, dst_row) in [(0usize, 0usize), (hd - 1, h - 2)] {
        if wd >= 2 {
            for bi in 0..wd - 1 {
                let a = down.get(bi, src_row);
                let b = down.get(bi + 1, src_row);
                for ph in 0..SCALE {
                    let x = SCALE * bi + 2 + ph;
                    // Ragged widths: the last window would run past the
                    // right border band; those phases are clamped away.
                    if x <= w - 3 {
                        up.set(x, dst_row, math::border_interp(a, b, ph));
                        interp_vals += 1;
                    }
                }
            }
            // Outer columns copy the nearest computed value.
            let first = up.get(2, dst_row);
            up.set(0, dst_row, first);
            up.set(1, dst_row, first);
            let last = up.get(w - 3, dst_row);
            up.set(w - 2, dst_row, last);
            up.set(w - 1, dst_row, last);
            copied += 4;
        } else {
            // w ≤ 4: a single downscaled column — replicate it across the
            // whole row (interpolation needs two supporting samples).
            let v = down.get(0, src_row);
            for x in 0..w {
                up.set(x, dst_row, v);
            }
            copied += w as u64;
        }
        // Copy to the companion row (row 1 / row h-1).
        let companion = if dst_row == 0 { 1 } else { h - 1 };
        for x in 0..w {
            let v = up.get(x, dst_row);
            up.set(x, companion, v);
        }
        copied += w as u64;
    }

    // Vertical border columns for the body rows 2 ..= h-3 (empty when
    // h ≤ 4, i.e. hd == 1: the four border rows already cover everything).
    for (src_col, dst_col) in [(0usize, 0usize), (wd - 1, w - 2)] {
        for bj in 0..hd.saturating_sub(1) {
            let a = down.get(src_col, bj);
            let b = down.get(src_col, bj + 1);
            for ph in 0..SCALE {
                let y = SCALE * bj + 2 + ph;
                if y >= 2 && y <= h - 3 {
                    up.set(dst_col, y, math::border_interp(a, b, ph));
                    interp_vals += 1;
                }
            }
        }
        let companion = if dst_col == 0 { 1 } else { w - 1 };
        for y in 2..h.saturating_sub(2) {
            let v = up.get(dst_col, y);
            up.set(companion, y, v);
            copied += 1;
        }
    }

    // Accounting: interpolated values (2 mul + 1 add each) + copies. For
    // multiple-of-4 shapes these counters reproduce the historical
    // closed-form charges exactly.
    c.charge_ops_n(&OpCounts::ZERO.muls(2).adds(1), interp_vals);
    c.global_read_scalar = interp_vals * 2 * 4;
    c.global_read_scalar += copied * 4;
    c.global_write_scalar = (interp_vals + copied + 8) * 4;
    c
}

/// Upscale body (paper Figs. 4–5): every stride-4 4×4 block of the output
/// interior is `P · D₂ₓ₂ · Pᵀ` for the stride-1 2×2 window of the
/// downscaled matrix.
pub fn upscale_body_into(down: &ImageF32, up: &mut ImageF32) -> CostCounters {
    let (w, h) = (up.width(), up.height());
    let (wd, hd) = (down.width(), down.height());
    let mut c = CostCounters::new();
    let mut written = 0u64;
    for bj in 0..hd.saturating_sub(1) {
        for bi in 0..wd - 1 {
            let d00 = down.get(bi, bj);
            let d01 = down.get(bi + 1, bj);
            let d10 = down.get(bi, bj + 1);
            let d11 = down.get(bi + 1, bj + 1);
            for r in 0..SCALE {
                for ph in 0..SCALE {
                    let x = SCALE * bi + 2 + ph;
                    let y = SCALE * bj + 2 + r;
                    // Ragged widths/heights: the last block column/row
                    // overlaps the border band; clamp those writes away.
                    if x <= w - 3 && y <= h - 3 {
                        up.set(x, y, math::upscale_value(d00, d01, d10, d11, r, ph));
                        written += 1;
                    }
                }
            }
        }
    }
    let blocks = (hd.saturating_sub(1) * wd.saturating_sub(1)) as u64;
    // Per block: 4 loads, then (6 mul + 3 add) + 1 store per value kept.
    // Aligned shapes keep all 16 values of every block — the historical
    // charge exactly.
    c.charge_ops_n(&OpCounts::ZERO.muls(6).adds(3), written);
    c.global_read_scalar = blocks * 4 * 4;
    c.global_write_scalar = written * 4;
    c
}

/// Full upscale: border + body. Returns the upscaled image and the two
/// stage counter sets `(border, body)`.
pub fn upscale(down: &ImageF32, w: usize, h: usize) -> (ImageF32, CostCounters, CostCounters) {
    let mut up = ImageF32::zeros(w, h);
    let cb = upscale_border_into(down, &mut up);
    let cc = upscale_body_into(down, &mut up);
    (up, cb, cc)
}

/// Difference matrix: `pError = original − upscaled`.
pub fn perror(orig: &ImageF32, up: &ImageF32) -> (ImageF32, CostCounters) {
    assert_eq!(
        (orig.width(), orig.height()),
        (up.width(), up.height()),
        "shape mismatch"
    );
    let mut out = ImageF32::zeros(orig.width(), orig.height());
    simd::sub_span(orig.pixels(), up.pixels(), out.pixels_mut());
    let n = orig.len() as u64;
    let mut c = CostCounters::new();
    c.charge_ops_n(&OpCounts::ZERO.adds(1), n);
    c.global_read_scalar = n * 8;
    c.global_write_scalar = n * 4;
    (out, c)
}

/// Sobel stage (paper Figs. 6–7): `pEdge = |Gx| + |Gy|` over the interior,
/// zero on the one-pixel border.
pub fn sobel(orig: &ImageF32) -> (ImageF32, CostCounters) {
    let (w, h) = (orig.width(), orig.height());
    let mut out = ImageF32::zeros(w, h);
    // Row-span form of `sobel_pixel` over the interior (bit-identical
    // operation order), shared with the GPU kernels via
    // [`simd::sobel_span`].
    if w >= 3 {
        let px = orig.pixels();
        let out_px = out.pixels_mut();
        for y in 1..h.saturating_sub(1) {
            let (r0, r1, r2) = (
                &px[(y - 1) * w..y * w],
                &px[y * w..(y + 1) * w],
                &px[(y + 1) * w..(y + 2) * w],
            );
            simd::sobel_span(r0, r1, r2, &mut out_px[y * w + 1..y * w + w - 1]);
        }
    }
    let n = ((w - 2) * (h - 2)) as u64;
    let mut c = CostCounters::new();
    // Per pixel: Gx/Gy each 5 adds + 2 muls, plus 2 abs (cmp) + 1 add.
    c.charge_ops_n(&OpCounts::ZERO.adds(11).muls(4).cmps(2), n);
    c.global_read_scalar = n * 8 * 4; // the paper's "fetching eight nodes"
    c.global_write_scalar = orig.len() as u64 * 4;
    (out, c)
}

/// Reduction: arithmetic mean of the pEdge matrix. Accumulates in `f64`
/// for accuracy (the serial CPU sum of up to 67 M `f32` values would lose
/// precision otherwise); the GPU's two-stage tree sum is compared against
/// this with a relative tolerance.
pub fn reduction(pedge: &ImageF32) -> (f32, CostCounters) {
    let sum: f64 = pedge.pixels().iter().map(|&v| f64::from(v)).sum();
    let mean = (sum / pedge.len() as f64) as f32;
    let n = pedge.len() as u64;
    let mut c = CostCounters::new();
    c.charge_ops_n(&OpCounts::ZERO.adds(1), n);
    c.ops.div += 1;
    c.global_read_scalar = n * 4;
    (mean, c)
}

/// Strength + preliminary sharpening: `prelim = up + strength(pEdge) ·
/// pError` (the paper's "calculation of the strength matrix" +
/// "preliminary sharpened matrix", its CPU bottleneck because of the
/// per-pixel `pow`).
pub fn strength_preliminary(
    up: &ImageF32,
    pedge: &ImageF32,
    perr: &ImageF32,
    mean: f32,
    p: &SharpnessParams,
) -> (ImageF32, CostCounters) {
    let (w, h) = (up.width(), up.height());
    let mut out = ImageF32::zeros(w, h);
    simd::preliminary_span(
        up.pixels(),
        pedge.pixels(),
        perr.pixels(),
        out.pixels_mut(),
        mean,
        p,
    );
    let n = up.len() as u64;
    let mut c = CostCounters::new();
    // strength: 1 div + 1 add + 1 pow + 1 mul + 2 cmp; preliminary: 1 mul + 1 add.
    c.charge_ops_n(&OpCounts::ZERO.divs(1).adds(2).pows(1).muls(2).cmps(2), n);
    c.global_read_scalar = n * 12;
    c.global_write_scalar = n * 4;
    (out, c)
}

/// Overshoot control with default parameters; see [`overshoot_with`].
pub fn overshoot(orig: &ImageF32, prelim: &ImageF32) -> (ImageF32, CostCounters) {
    overshoot_with(orig, prelim, &SharpnessParams::default())
}

/// Overshoot control (paper Fig. 8): clamps the preliminary matrix against
/// the local 3×3 envelope of the original, keeping an `osc` fraction of
/// the excursion; the border rows/columns copy the clamped preliminary
/// values.
pub fn overshoot_with(
    orig: &ImageF32,
    prelim: &ImageF32,
    p: &SharpnessParams,
) -> (ImageF32, CostCounters) {
    let (w, h) = (orig.width(), orig.height());
    assert_eq!((w, h), (prelim.width(), prelim.height()), "shape mismatch");
    let mut out = ImageF32::zeros(w, h);
    for x in 0..w {
        out.set(x, 0, math::final_border(prelim.get(x, 0)));
        out.set(x, h - 1, math::final_border(prelim.get(x, h - 1)));
    }
    for y in 1..h - 1 {
        out.set(0, y, math::final_border(prelim.get(0, y)));
        out.set(w - 1, y, math::final_border(prelim.get(w - 1, y)));
    }
    // Row-span form of the 3×3 envelope clamp (bit-identical min/max fold
    // and selects), shared with the GPU kernels via
    // [`simd::overshoot_span`].
    if w >= 3 {
        let opx = orig.pixels();
        let ppx = prelim.pixels();
        let fpx = out.pixels_mut();
        for y in 1..h.saturating_sub(1) {
            let (r0, r1, r2) = (
                &opx[(y - 1) * w..y * w],
                &opx[y * w..(y + 1) * w],
                &opx[(y + 1) * w..(y + 2) * w],
            );
            simd::overshoot_span(
                r0,
                r1,
                r2,
                &ppx[y * w + 1..y * w + w - 1],
                &mut fpx[y * w + 1..y * w + w - 1],
                p,
            );
        }
    }
    let n = ((w - 2) * (h - 2)) as u64;
    let mut c = CostCounters::new();
    c.charge_ops_n(&OpCounts::ZERO.cmps(20).muls(1).adds(1), n);
    c.global_read_scalar = n * 10 * 4 + (2 * (w + h) as u64 - 4) * 4;
    c.global_write_scalar = orig.len() as u64 * 4;
    (out, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagekit::generate;

    fn img() -> ImageF32 {
        generate::natural(32, 32, 11)
    }

    #[test]
    fn downscale_shape_and_constant() {
        let flat = ImageF32::filled(32, 16, 42.0);
        let (d, c) = downscale(&flat);
        assert_eq!((d.width(), d.height()), (8, 4));
        assert!(d.pixels().iter().all(|&v| (v - 42.0).abs() < 1e-4));
        assert_eq!(c.global_read_scalar, 8 * 4 * 16 * 4);
    }

    #[test]
    fn downscale_block_mean() {
        // First 4x4 block has known mean.
        let img = ImageF32::from_fn(16, 16, |x, y| if x < 4 && y < 4 { 16.0 } else { 0.0 });
        let (d, _) = downscale(&img);
        assert_eq!(d.get(0, 0), 16.0);
        assert_eq!(d.get(1, 0), 0.0);
    }

    #[test]
    fn upscale_covers_every_pixel_exactly_once() {
        // Fill with NaN sentinel; after upscale no NaN remains, proving
        // full coverage. (Double writes can't be seen here; the GPU race
        // detector covers that.)
        let (d, _) = downscale(&img());
        let mut up = ImageF32::from_fn(32, 32, |_, _| f32::NAN);
        upscale_border_into(&d, &mut up);
        upscale_body_into(&d, &mut up);
        assert!(
            up.pixels().iter().all(|v| v.is_finite()),
            "uncovered pixels remain"
        );
    }

    #[test]
    fn downscale_ragged_blocks_average_existing_pixels() {
        // 6x6: edge blocks are 2 wide / 2 tall; their means only use the
        // pixels that exist.
        let img = ImageF32::filled(6, 6, 3.0);
        let (d, c) = downscale(&img);
        assert_eq!((d.width(), d.height()), (2, 2));
        assert!(d.pixels().iter().all(|&v| (v - 3.0).abs() < 1e-5));
        // Samples: 16 + 8 + 8 + 4 = 36 (every input pixel exactly once).
        assert_eq!(c.global_read_scalar, 36 * 4);
        let grad = ImageF32::from_fn(5, 3, |x, _| x as f32);
        let (d, _) = downscale(&grad);
        assert_eq!((d.width(), d.height()), (2, 1));
        // Right block is the lone column x=4 over 3 rows.
        assert!((d.get(1, 0) - 4.0).abs() < 1e-5);
    }

    #[test]
    fn upscale_covers_every_pixel_on_odd_shapes() {
        for (w, h) in [
            (3, 3),
            (5, 7),
            (7, 5),
            (4, 4),
            (5, 4),
            (3, 1000),
            (13, 11),
            (33, 29),
        ] {
            let img = generate::natural(w, h, 7);
            let (d, _) = downscale(&img);
            let mut up = ImageF32::from_fn(w, h, |_, _| f32::NAN);
            upscale_border_into(&d, &mut up);
            upscale_body_into(&d, &mut up);
            assert!(
                up.pixels().iter().all(|v| v.is_finite()),
                "uncovered pixels at {w}x{h}"
            );
        }
    }

    #[test]
    fn upscale_of_constant_is_constant_on_odd_shapes() {
        for (w, h) in [(3, 3), (5, 7), (6, 6), (13, 11)] {
            let flat = ImageF32::filled(w, h, 7.0);
            let (d, _) = downscale(&flat);
            let (up, _, _) = upscale(&d, w, h);
            for &v in up.pixels() {
                assert!((v - 7.0).abs() < 1e-4, "{w}x{h}: {v}");
            }
        }
    }

    #[test]
    fn upscale_of_constant_is_constant() {
        let flat = ImageF32::filled(32, 32, 7.0);
        let (d, _) = downscale(&flat);
        let (up, _, _) = upscale(&d, 32, 32);
        for &v in up.pixels() {
            assert!((v - 7.0).abs() < 1e-4, "{v}");
        }
    }

    #[test]
    fn upscale_border_copies_rows() {
        let (d, _) = downscale(&img());
        let (up, _, _) = upscale(&d, 32, 32);
        for x in 0..32 {
            assert_eq!(up.get(x, 0), up.get(x, 1));
            assert_eq!(up.get(x, 30), up.get(x, 31));
        }
        for y in 2..30 {
            assert_eq!(up.get(0, y), up.get(1, y));
            assert_eq!(up.get(30, y), up.get(31, y));
        }
    }

    #[test]
    fn upscale_body_within_support_hull() {
        let (d, _) = downscale(&img());
        let (up, _, _) = upscale(&d, 32, 32);
        let dmin = d.pixels().iter().cloned().fold(f32::INFINITY, math::fmin);
        let dmax = d
            .pixels()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, math::fmax);
        for &v in up.pixels() {
            assert!(v >= dmin - 1e-3 && v <= dmax + 1e-3);
        }
    }

    #[test]
    fn perror_antisymmetric() {
        let a = img();
        let b = generate::gradient(32, 32);
        let (e1, _) = perror(&a, &b);
        let (e2, _) = perror(&b, &a);
        for i in 0..e1.len() {
            assert_eq!(e1.pixels()[i], -e2.pixels()[i]);
        }
    }

    #[test]
    fn sobel_border_zero_and_constant_zero() {
        let (s, _) = sobel(&ImageF32::filled(16, 16, 9.0));
        assert!(s.pixels().iter().all(|&v| v == 0.0));
        let (s, _) = sobel(&img());
        for x in 0..32 {
            assert_eq!(s.get(x, 0), 0.0);
            assert_eq!(s.get(x, 31), 0.0);
        }
        for y in 0..32 {
            assert_eq!(s.get(0, y), 0.0);
            assert_eq!(s.get(31, y), 0.0);
        }
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        let step = ImageF32::from_fn(16, 16, |x, _| if x < 8 { 0.0 } else { 100.0 });
        let (s, _) = sobel(&step);
        assert!(s.get(8, 8) > 0.0);
        assert_eq!(s.get(3, 8), 0.0);
    }

    #[test]
    fn reduction_mean_matches_naive() {
        let im = img();
        let (m, c) = reduction(&im);
        let naive: f64 = im.pixels().iter().map(|&v| f64::from(v)).sum::<f64>() / im.len() as f64;
        assert!((f64::from(m) - naive).abs() < 1e-3);
        assert_eq!(c.ops.add, im.len() as u64);
    }

    #[test]
    fn strength_preliminary_zero_edge_passthrough() {
        let up = ImageF32::filled(16, 16, 50.0);
        let zero = ImageF32::zeros(16, 16);
        let err = ImageF32::filled(16, 16, 10.0);
        let (pr, _) = strength_preliminary(&up, &zero, &err, 5.0, &SharpnessParams::default());
        assert!(pr.pixels().iter().all(|&v| v == 50.0));
    }

    #[test]
    fn overshoot_clamps_to_envelope_plus_fraction() {
        let orig = ImageF32::filled(16, 16, 100.0);
        let mut prelim = ImageF32::filled(16, 16, 100.0);
        prelim.set(8, 8, 180.0);
        let (f, _) = overshoot(&orig, &prelim);
        // Envelope is [100, 100]; 35% of the 80 excursion survives.
        assert!((f.get(8, 8) - 128.0).abs() < 1e-3);
        assert_eq!(f.get(4, 4), 100.0);
    }

    #[test]
    fn overshoot_output_in_range() {
        let orig = img();
        let mut prelim = orig.clone();
        for v in prelim.pixels_mut() {
            *v = *v * 3.0 - 100.0; // push well out of range
        }
        let (f, _) = overshoot(&orig, &prelim);
        assert!(f.pixels().iter().all(|&v| (0.0..=255.0).contains(&v)));
    }

    #[test]
    fn overshoot_with_matches_default() {
        let orig = img();
        let prelim = generate::gradient(32, 32);
        let (a, _) = overshoot(&orig, &prelim);
        let (b, _) = overshoot_with(&orig, &prelim, &SharpnessParams::default());
        assert_eq!(a, b);
    }
}
