//! CPU reference implementation: stages and the serial pipeline.

pub mod pipeline;
pub mod stages;

pub use pipeline::CpuPipeline;
