//! The full CPU pipeline: the paper's "well-optimized CPU version".
//!
//! Runs every stage serially on the modeled host CPU (Core i5-3470 by
//! default), producing the sharpened image and a per-stage simulated time
//! breakdown (the data behind Fig. 13(a) and the CPU side of Fig. 12).

use imagekit::ImageF32;
use simgpu::device::CpuSpec;
use simgpu::timing::cpu_stage_time;

use crate::cpu::stages;
use crate::params::{check_shape, SharpnessParams};
use crate::report::{RunReport, StageRecord};

/// Serial CPU implementation of the sharpness algorithm.
#[derive(Debug, Clone)]
pub struct CpuPipeline {
    cpu: CpuSpec,
    params: SharpnessParams,
}

impl CpuPipeline {
    /// Pipeline with the paper's host CPU and the given parameters.
    pub fn new(params: SharpnessParams) -> Self {
        CpuPipeline {
            cpu: CpuSpec::core_i5_3470(),
            params,
        }
    }

    /// Overrides the CPU model.
    pub fn with_cpu(mut self, cpu: CpuSpec) -> Self {
        self.cpu = cpu;
        self
    }

    /// The sharpening parameters in use.
    pub fn params(&self) -> &SharpnessParams {
        &self.params
    }

    /// Runs the pipeline on `orig`, returning the sharpened image and the
    /// simulated per-stage breakdown.
    ///
    /// # Errors
    /// If the image shape is unsupported or the parameters are invalid.
    pub fn run(&self, orig: &ImageF32) -> Result<RunReport, String> {
        check_shape(orig.width(), orig.height())?;
        self.params.validate()?;
        let (w, h) = (orig.width(), orig.height());
        let mut records = Vec::with_capacity(8);
        let push = |name: &str, c: &simgpu::cost::CostCounters, records: &mut Vec<StageRecord>| {
            records.push(StageRecord {
                name: name.into(),
                seconds: cpu_stage_time(&self.cpu, c),
            });
        };

        let (down, c) = stages::downscale(orig);
        push("downscale", &c, &mut records);

        let (up, cb, cc) = stages::upscale(&down, w, h);
        push("upscale_border", &cb, &mut records);
        push("upscale_body", &cc, &mut records);

        let (perr, c) = stages::perror(orig, &up);
        push("perror", &c, &mut records);

        let (pedge, c) = stages::sobel(orig);
        push("sobel", &c, &mut records);

        let (mean, c) = stages::reduction(&pedge);
        push("reduction", &c, &mut records);

        let (prelim, c) = stages::strength_preliminary(&up, &pedge, &perr, mean, &self.params);
        push("strength_preliminary", &c, &mut records);

        let (finalimg, c) = stages::overshoot_with(orig, &prelim, &self.params);
        push("overshoot", &c, &mut records);

        let total_s = records.iter().map(|r| r.seconds).sum();
        Ok(RunReport {
            output: finalimg,
            total_s,
            stages: records,
        })
    }

    /// Runs only up to the preliminary matrix (no overshoot) — used by the
    /// overshoot ablation.
    pub fn run_preliminary(&self, orig: &ImageF32) -> Result<ImageF32, String> {
        check_shape(orig.width(), orig.height())?;
        self.params.validate()?;
        let (w, h) = (orig.width(), orig.height());
        let (down, _) = stages::downscale(orig);
        let (up, _, _) = stages::upscale(&down, w, h);
        let (perr, _) = stages::perror(orig, &up);
        let (pedge, _) = stages::sobel(orig);
        let (mean, _) = stages::reduction(&pedge);
        let (prelim, _) = stages::strength_preliminary(&up, &pedge, &perr, mean, &self.params);
        Ok(prelim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::classify_cpu_stage;
    use imagekit::{generate, metrics};

    #[test]
    fn runs_and_output_in_range() {
        let img = generate::natural(64, 64, 3);
        let r = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        assert_eq!((r.output.width(), r.output.height()), (64, 64));
        assert_eq!(metrics::out_of_range_fraction(&r.output), 0.0);
        assert!(r.total_s > 0.0);
        assert!((r.stages_total() - r.total_s).abs() < 1e-15);
    }

    #[test]
    fn sharpening_increases_gradient_energy() {
        // Start from a slightly-soft image (blobs) and check the output has
        // more edge energy than the input.
        let img = generate::gaussian_blobs(96, 96, 6, 5);
        let r = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        assert!(
            metrics::gradient_energy(&r.output) > metrics::gradient_energy(&img),
            "sharpening should raise gradient energy"
        );
    }

    #[test]
    fn deterministic() {
        let img = generate::natural(32, 32, 9);
        let p = CpuPipeline::new(SharpnessParams::default());
        let a = p.run(&img).unwrap();
        let b = p.run(&img).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.total_s, b.total_s);
    }

    #[test]
    fn rejects_bad_shapes_and_params() {
        let img = generate::natural(2, 32, 1); // below the 3x3 minimum
        assert!(CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .is_err());
        let img = generate::natural(32, 32, 1);
        let p = SharpnessParams {
            gamma: -1.0,
            ..SharpnessParams::default()
        };
        assert!(CpuPipeline::new(p).run(&img).is_err());
    }

    #[test]
    fn strength_matrix_and_overshoot_dominate_cpu_time() {
        // The paper's Fig. 13(a): overshoot control and the strength matrix
        // are the CPU bottlenecks.
        let img = generate::natural(256, 256, 2);
        let r = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        let cats = r.by_category(classify_cpu_stage);
        let get = |name: &str| {
            cats.iter()
                .find(|(c, _)| c == name)
                .map(|(_, s)| *s)
                .unwrap_or(0.0)
        };
        let strength = get("strength matrix");
        let overshoot = get("overshoot control");
        assert!(
            strength + overshoot > 0.5 * r.total_s,
            "bottlenecks: {cats:?}"
        );
        assert!(strength > get("sobel"));
    }

    #[test]
    fn zero_gain_changes_only_via_resample() {
        // With gain = 0 the output is overshoot(upscale(downscale)) — no
        // edge amplification; on a constant image that is the identity.
        let img = imagekit::ImageF32::filled(32, 32, 120.0);
        let p = SharpnessParams {
            gain: 0.0,
            ..SharpnessParams::default()
        };
        let r = CpuPipeline::new(p).run(&img).unwrap();
        assert!(r.output.max_abs_diff(&img) < 1e-3);
    }

    #[test]
    fn preliminary_runner_matches_pipeline_stage() {
        let img = generate::natural(32, 32, 4);
        let p = CpuPipeline::new(SharpnessParams::default());
        let prelim = p.run_preliminary(&img).unwrap();
        assert_eq!((prelim.width(), prelim.height()), (32, 32));
        // Overshoot of that preliminary equals the pipeline output.
        let (f, _) = crate::cpu::stages::overshoot_with(&img, &prelim, p.params());
        let full = p.run(&img).unwrap();
        assert_eq!(f, full.output);
    }
}
