//! Multi-frame throughput engine: fans a frame stream over a host worker
//! pool, one prepared [`PipelinePlan`] per worker.
//!
//! The paper's motivating workloads (TV, camera, video — Section I) are
//! streams, and a stream's figure of merit is sustained frames/sec, not
//! one frame's latency. The engine measures both sides of that:
//!
//! * **wall-clock frames/sec** — how fast this host actually chews
//!   through the simulation, which is what plan reuse and buffer pooling
//!   accelerate; and
//! * **simulated steady-state time** — the double-buffered overlap model
//!   from [`crate::gpu::batch`], fed with each frame's measured lane
//!   components, which is what the modeled hardware would sustain.
//!
//! Each worker pins its kernel dispatches to one thread
//! (`with_dispatch_threads(1)`) so parallelism comes from frames, not from
//! oversubscribing every dispatch across all cores.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use imagekit::ImageF32;
use simgpu::metrics::Histogram;
use simgpu::span::SpanRecord;
use simgpu::trace::WorkerSpan;

use crate::gpu::batch::{pipelined_time, FrameComponents};
use crate::gpu::pipeline::GpuPipeline;

/// Result of a [`ThroughputEngine::process`] run.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Sharpened frames, in input order.
    pub outputs: Vec<ImageF32>,
    /// Per-frame simulated lane components, in input order.
    pub frames: Vec<FrameComponents>,
    /// Per-frame wall-clock spans (which worker ran each frame, when), in
    /// input order. Feeds the per-worker trace/Gantt exports and the
    /// wall-latency histogram.
    pub traces: Vec<WorkerSpan>,
    /// Per-frame hierarchical span trees, in input order (each entry empty
    /// unless the pipeline's context enabled spans). Workers record into
    /// their own queue's ring, so no cross-thread synchronisation exists on
    /// the span path.
    pub spans: Vec<Vec<SpanRecord>>,
    /// Total simulated time without overlap (sum of frame totals).
    pub serial_s: f64,
    /// Total simulated time with double-buffered overlap.
    pub pipelined_s: f64,
    /// Measured wall-clock duration of the whole run, seconds.
    pub wall_s: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl ThroughputReport {
    /// Measured wall-clock throughput in frames/second.
    pub fn wall_fps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.outputs.len() as f64 / self.wall_s
        }
    }

    /// Simulated steady-state throughput in frames/second (overlap model).
    pub fn simulated_fps(&self) -> f64 {
        if self.pipelined_s <= 0.0 {
            0.0
        } else {
            self.frames.len() as f64 / self.pipelined_s
        }
    }

    /// Histogram of per-frame **wall-clock** latency (seconds a frame
    /// spent on its worker, host measurement — varies run to run).
    pub fn wall_latency_histogram(&self) -> Histogram {
        let mut h = Histogram::latency_seconds();
        for t in &self.traces {
            h.observe((t.end_s - t.start_s).max(0.0));
        }
        h
    }

    /// Histogram of per-frame **simulated** latency (the cost model's
    /// upload+compute+download seconds — deterministic for a given config
    /// and workload).
    pub fn sim_latency_histogram(&self) -> Histogram {
        let mut h = Histogram::latency_seconds();
        for f in &self.frames {
            h.observe(f.total());
        }
        h
    }

    /// Two-line p50/p95/p99 latency summary (wall + simulated), the text
    /// the CLI prints to stderr after a multi-frame run.
    pub fn latency_summary(&self) -> String {
        format!(
            "frame latency (wall): {}\nframe latency (simulated): {}\n",
            self.wall_latency_histogram().summary(1e3, "ms"),
            self.sim_latency_histogram().summary(1e3, "ms"),
        )
    }
}

/// Locks a mutex, recovering the guard if a panicking worker poisoned it.
///
/// The engine's mutexes guard plain data (a failure slot, a frame slot);
/// a worker that panicked mid-critical-section leaves them in a readable
/// state, and refusing the lock would turn a recorded, typed failure into
/// a coordinator panic. `PoisonError::into_inner` hands back the guard.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a worker panic payload as the failure string the engine
/// propagates (panics carry `&str` or `String` messages in practice).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked with a non-string payload".to_string());
    format!("worker panic: {msg}")
}

/// Parallel multi-frame executor over a [`GpuPipeline`] configuration.
pub struct ThroughputEngine {
    pipe: GpuPipeline,
    threads: usize,
    /// Test-only fault injection: panic inside the worker body while
    /// processing this frame index, exercising the poison-recovery path.
    #[cfg(test)]
    panic_on_frame: Option<usize>,
}

impl ThroughputEngine {
    /// Creates an engine over `pipe` using `threads` workers
    /// (0 = available host parallelism).
    pub fn new(pipe: GpuPipeline, threads: usize) -> Self {
        ThroughputEngine {
            pipe,
            threads,
            #[cfg(test)]
            panic_on_frame: None,
        }
    }

    /// Worker count the engine will use for a run.
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            simgpu::par::default_threads()
        } else {
            self.threads
        }
    }

    /// The pipeline configuration frames are executed with.
    pub fn pipeline(&self) -> &GpuPipeline {
        &self.pipe
    }

    /// Processes every frame, fanning them over the worker pool. Frames
    /// may differ in shape; a worker re-prepares its plan when the shape
    /// changes (streams of one shape keep a plan for the worker's whole
    /// life).
    ///
    /// # Errors
    /// The first frame failure (shape/parameter errors, simulated faults)
    /// aborts the run.
    pub fn process(&self, frames: &[ImageF32]) -> Result<ThroughputReport, String> {
        let threads = self.threads().min(frames.len()).max(1);
        // Workers pin each dispatch to one host thread: with many frames in
        // flight, frame-level parallelism beats oversubscribed dispatches.
        let worker_pipe = if threads > 1 {
            self.pipe
                .with_context_tweak(|ctx| ctx.with_dispatch_threads(1))
        } else {
            self.pipe.clone()
        };

        // Finished frame: output pixels, simulated components, worker span,
        // and the frame's hierarchical spans (empty with spans disabled).
        type FrameSlot = Option<(ImageF32, FrameComponents, WorkerSpan, Vec<SpanRecord>)>;
        let started = Instant::now();
        let cursor = AtomicUsize::new(0);
        let failure: Mutex<Option<String>> = Mutex::new(None);
        let mut results: Vec<FrameSlot> = Vec::new();
        results.resize_with(frames.len(), || None);
        let slots: Vec<Mutex<&mut FrameSlot>> = results.iter_mut().map(Mutex::new).collect();

        #[cfg(test)]
        let panic_on_frame = self.panic_on_frame;
        #[cfg(not(test))]
        let panic_on_frame: Option<usize> = None;

        std::thread::scope(|scope| {
            for worker in 0..threads {
                let (cursor, failure, slots, worker_pipe) =
                    (&cursor, &failure, &slots, &worker_pipe);
                scope.spawn(move || {
                    let mut plan = None;
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= frames.len() || lock_unpoisoned(failure).is_some() {
                            return;
                        }
                        // The frame body runs under `catch_unwind`: a panic
                        // escaping a kernel (or the plumbing around it) is
                        // recorded as the run's failure instead of unwinding
                        // through `thread::scope`, which would re-panic the
                        // coordinator and drop the typed error on the floor.
                        let step = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
                            if panic_on_frame == Some(i) {
                                panic!("injected worker panic on frame {i}");
                            }
                            let frame = &frames[i];
                            let shape = (frame.width(), frame.height());
                            let keep = matches!(&plan, Some(p) if crate::gpu::pipeline::PipelinePlan::shape(p) == shape);
                            if !keep {
                                plan = Some(worker_pipe.prepared(shape.0, shape.1)?);
                            }
                            let plan = plan.as_mut().expect("plan prepared above");
                            out.resize(frame.len(), 0.0);
                            let frame_start = started.elapsed().as_secs_f64();
                            let comps = plan.run_into(frame, &mut out)?;
                            let span = WorkerSpan {
                                frame: i,
                                worker,
                                start_s: frame_start,
                                end_s: started.elapsed().as_secs_f64(),
                            };
                            let img = ImageF32::from_vec(shape.0, shape.1, out.clone());
                            let frame_spans = plan.spans();
                            **lock_unpoisoned(&slots[i]) = Some((img, comps, span, frame_spans));
                            Ok(())
                        }));
                        match step {
                            Ok(Ok(())) => {}
                            Ok(Err(e)) => {
                                lock_unpoisoned(failure).get_or_insert(e);
                                return;
                            }
                            Err(payload) => {
                                lock_unpoisoned(failure).get_or_insert(panic_message(payload));
                                return;
                            }
                        }
                    }
                });
            }
        });
        let wall_s = started.elapsed().as_secs_f64();

        if let Some(e) = failure.into_inner().unwrap_or_else(PoisonError::into_inner) {
            return Err(e);
        }
        drop(slots);
        let mut outputs = Vec::with_capacity(frames.len());
        let mut comps = Vec::with_capacity(frames.len());
        let mut traces = Vec::with_capacity(frames.len());
        let mut spans = Vec::with_capacity(frames.len());
        for r in results {
            let (img, c, span, fs) = r.expect("no failure recorded, so every frame completed");
            outputs.push(img);
            comps.push(c);
            traces.push(span);
            spans.push(fs);
        }
        let serial_s = comps.iter().map(FrameComponents::total).sum();
        let pipelined_s = pipelined_time(&comps);
        Ok(ThroughputReport {
            outputs,
            frames: comps,
            traces,
            spans,
            serial_s,
            pipelined_s,
            wall_s,
            threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::opts::OptConfig;
    use crate::params::SharpnessParams;
    use imagekit::generate;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn engine(threads: usize) -> ThroughputEngine {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        ThroughputEngine::new(
            GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all()),
            threads,
        )
    }

    fn frames(n: u64, w: usize) -> Vec<ImageF32> {
        (0..n).map(|i| generate::natural(w, w, 100 + i)).collect()
    }

    #[test]
    fn outputs_match_single_runs_in_order() {
        let fs = frames(6, 64);
        let eng = engine(3);
        let rep = eng.process(&fs).unwrap();
        assert_eq!(rep.outputs.len(), 6);
        for (f, out) in fs.iter().zip(&rep.outputs) {
            let single = eng.pipeline().run(f).unwrap();
            assert_eq!(&single.output, out);
        }
        assert!(rep.wall_s > 0.0 && rep.wall_fps() > 0.0);
        assert!(rep.pipelined_s > 0.0 && rep.pipelined_s <= rep.serial_s);
        assert!(rep.simulated_fps() > 0.0);
        assert_eq!(rep.threads, 3);
    }

    #[test]
    fn simulated_times_are_thread_count_invariant() {
        let fs = frames(4, 64);
        let serial = engine(1).process(&fs).unwrap();
        let parallel = engine(4).process(&fs).unwrap();
        assert_eq!(serial.frames, parallel.frames);
        assert!((serial.pipelined_s - parallel.pipelined_s).abs() < 1e-15);
        assert_eq!(serial.outputs, parallel.outputs);
    }

    #[test]
    fn mixed_shapes_reprepare_plans() {
        let mut fs = frames(2, 64);
        fs.extend(frames(2, 32));
        let rep = engine(2).process(&fs).unwrap();
        assert_eq!(rep.outputs[0].width(), 64);
        assert_eq!(rep.outputs[3].width(), 32);
    }

    #[test]
    fn first_error_aborts() {
        let mut fs = frames(2, 64);
        fs.push(generate::gradient(2, 18)); // unsupported shape
        assert!(engine(2).process(&fs).is_err());
    }

    #[test]
    fn worker_panic_is_surfaced_as_error_not_coordinator_panic() {
        // Regression: a panic escaping a worker's frame body (the engine's
        // analogue of a panicking kernel) used to poison the failure/slot
        // mutexes and unwind through `thread::scope`, so the coordinator
        // panicked on `.expect("failure lock")` instead of returning the
        // recorded failure. The panic must now come back as a typed error.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the worker's backtrace
        let mut eng = engine(2);
        eng.panic_on_frame = Some(1);
        let err = eng.process(&frames(4, 64)).unwrap_err();
        std::panic::set_hook(hook);
        assert!(
            err.contains("worker panic") && err.contains("frame 1"),
            "unexpected error: {err}"
        );
        // The engine (same pipeline, same context and buffer pool) stays
        // fully usable after the failed run.
        eng.panic_on_frame = None;
        let rep = eng.process(&frames(3, 64)).unwrap();
        assert_eq!(rep.outputs.len(), 3);
    }

    #[test]
    fn lock_unpoisoned_recovers_a_poisoned_mutex() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let m = Mutex::new(Some("recorded failure".to_string()));
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Poison the mutex: panic while holding the guard.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison");
        }));
        std::panic::set_hook(hook);
        assert!(m.is_poisoned());
        // The recorded value is still reachable through recovery…
        assert_eq!(lock_unpoisoned(&m).as_deref(), Some("recorded failure"));
        // …including by-value at the end of a run.
        let v = m.into_inner().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(v.as_deref(), Some("recorded failure"));
    }

    #[test]
    fn panic_message_renders_str_string_and_opaque_payloads() {
        assert_eq!(
            panic_message(Box::new("boom")),
            "worker panic: boom".to_string()
        );
        assert_eq!(
            panic_message(Box::new("boom owned".to_string())),
            "worker panic: boom owned".to_string()
        );
        assert!(panic_message(Box::new(17_u32)).contains("non-string payload"));
    }

    #[test]
    fn empty_stream_is_ok() {
        let rep = engine(2).process(&[]).unwrap();
        assert!(rep.outputs.is_empty());
        assert_eq!(rep.simulated_fps(), 0.0);
        assert!(rep.traces.is_empty());
        assert_eq!(rep.wall_latency_histogram().count(), 0);
    }

    fn zero_report(n: usize) -> ThroughputReport {
        ThroughputReport {
            outputs: vec![ImageF32::zeros(4, 4); n],
            frames: vec![
                FrameComponents {
                    upload_s: 0.0,
                    compute_s: 0.0,
                    download_s: 0.0,
                };
                n
            ],
            traces: Vec::new(),
            spans: Vec::new(),
            serial_s: 0.0,
            pipelined_s: 0.0,
            wall_s: 0.0,
            threads: 1,
        }
    }

    #[test]
    fn fps_zero_duration_edges_do_not_divide_by_zero() {
        // A run too fast for the clock (or empty) must report 0, not
        // inf/NaN, on both the wall and simulated sides.
        let rep = zero_report(3);
        assert_eq!(rep.wall_fps(), 0.0);
        assert_eq!(rep.simulated_fps(), 0.0);
        let rep = zero_report(0);
        assert_eq!(rep.wall_fps(), 0.0);
        assert_eq!(rep.simulated_fps(), 0.0);
        // Negative wall time (clock skew) is treated as zero duration.
        let mut rep = zero_report(2);
        rep.wall_s = -1.0;
        assert_eq!(rep.wall_fps(), 0.0);
    }

    #[test]
    fn pipelined_never_exceeds_serial() {
        use crate::gpu::opts::OptConfig;
        for cfg in [OptConfig::none(), OptConfig::all()] {
            let ctx = Context::new(DeviceSpec::firepro_w8000());
            let eng =
                ThroughputEngine::new(GpuPipeline::new(ctx, SharpnessParams::default(), cfg), 2);
            let rep = eng.process(&frames(5, 64)).unwrap();
            assert!(
                rep.pipelined_s <= rep.serial_s + 1e-15,
                "pipelined {} > serial {}",
                rep.pipelined_s,
                rep.serial_s
            );
            assert!(rep.pipelined_s > 0.0);
        }
    }

    #[test]
    fn outputs_stay_in_input_order_with_more_threads_than_frames() {
        let fs = frames(3, 64);
        let rep = engine(8).process(&fs).unwrap();
        // Worker count is clamped to the frame count…
        assert_eq!(rep.threads, 3);
        assert_eq!(rep.outputs.len(), 3);
        // …and outputs land at their input index regardless of which
        // worker got there first.
        for (f, out) in fs.iter().zip(&rep.outputs) {
            let single = engine(1).pipeline().run(f).unwrap();
            assert_eq!(&single.output, out);
        }
    }

    #[test]
    fn traces_cover_every_frame_with_valid_workers() {
        let fs = frames(6, 64);
        let rep = engine(3).process(&fs).unwrap();
        assert_eq!(rep.traces.len(), 6);
        for (i, t) in rep.traces.iter().enumerate() {
            assert_eq!(t.frame, i);
            assert!(
                t.worker < rep.threads,
                "worker {} of {}",
                t.worker,
                rep.threads
            );
            assert!(t.end_s >= t.start_s);
            assert!(t.end_s <= rep.wall_s + 1e-3);
        }
        // Per-worker spans never overlap: each worker runs one frame at a
        // time.
        for w in 0..rep.threads {
            let mut spans: Vec<_> = rep.traces.iter().filter(|t| t.worker == w).collect();
            spans.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
            for pair in spans.windows(2) {
                assert!(pair[1].start_s >= pair[0].end_s - 1e-9);
            }
        }
    }

    #[test]
    fn latency_histograms_and_summary() {
        let fs = frames(4, 64);
        let rep = engine(2).process(&fs).unwrap();
        let wall = rep.wall_latency_histogram();
        let sim = rep.sim_latency_histogram();
        assert_eq!(wall.count(), 4);
        assert_eq!(sim.count(), 4);
        assert!(wall.quantile(0.99) >= wall.quantile(0.50));
        // Simulated latencies are the frame component totals.
        let expect: f64 = rep.frames.iter().map(FrameComponents::total).sum();
        assert!((sim.sum() - expect).abs() < 1e-12);
        let s = rep.latency_summary();
        assert!(s.contains("frame latency (wall)"));
        assert!(s.contains("p99"));
    }
}
