//! Multi-frame throughput engine: fans a frame stream over a host worker
//! pool, one prepared [`PipelinePlan`] per worker.
//!
//! The paper's motivating workloads (TV, camera, video — Section I) are
//! streams, and a stream's figure of merit is sustained frames/sec, not
//! one frame's latency. The engine measures both sides of that:
//!
//! * **wall-clock frames/sec** — how fast this host actually chews
//!   through the simulation, which is what plan reuse and buffer pooling
//!   accelerate; and
//! * **simulated steady-state time** — the double-buffered overlap model
//!   from [`crate::gpu::batch`], fed with each frame's measured lane
//!   components, which is what the modeled hardware would sustain.
//!
//! Each worker pins its kernel dispatches to one thread
//! (`with_dispatch_threads(1)`) so parallelism comes from frames, not from
//! oversubscribing every dispatch across all cores.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use imagekit::ImageF32;

use crate::gpu::batch::{pipelined_time, FrameComponents};
use crate::gpu::pipeline::GpuPipeline;

/// Result of a [`ThroughputEngine::process`] run.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Sharpened frames, in input order.
    pub outputs: Vec<ImageF32>,
    /// Per-frame simulated lane components, in input order.
    pub frames: Vec<FrameComponents>,
    /// Total simulated time without overlap (sum of frame totals).
    pub serial_s: f64,
    /// Total simulated time with double-buffered overlap.
    pub pipelined_s: f64,
    /// Measured wall-clock duration of the whole run, seconds.
    pub wall_s: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl ThroughputReport {
    /// Measured wall-clock throughput in frames/second.
    pub fn wall_fps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.outputs.len() as f64 / self.wall_s
        }
    }

    /// Simulated steady-state throughput in frames/second (overlap model).
    pub fn simulated_fps(&self) -> f64 {
        if self.pipelined_s <= 0.0 {
            0.0
        } else {
            self.frames.len() as f64 / self.pipelined_s
        }
    }
}

/// Parallel multi-frame executor over a [`GpuPipeline`] configuration.
pub struct ThroughputEngine {
    pipe: GpuPipeline,
    threads: usize,
}

impl ThroughputEngine {
    /// Creates an engine over `pipe` using `threads` workers
    /// (0 = available host parallelism).
    pub fn new(pipe: GpuPipeline, threads: usize) -> Self {
        ThroughputEngine { pipe, threads }
    }

    /// Worker count the engine will use for a run.
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            simgpu::par::default_threads()
        } else {
            self.threads
        }
    }

    /// The pipeline configuration frames are executed with.
    pub fn pipeline(&self) -> &GpuPipeline {
        &self.pipe
    }

    /// Processes every frame, fanning them over the worker pool. Frames
    /// may differ in shape; a worker re-prepares its plan when the shape
    /// changes (streams of one shape keep a plan for the worker's whole
    /// life).
    ///
    /// # Errors
    /// The first frame failure (shape/parameter errors, simulated faults)
    /// aborts the run.
    pub fn process(&self, frames: &[ImageF32]) -> Result<ThroughputReport, String> {
        let threads = self.threads().min(frames.len()).max(1);
        // Workers pin each dispatch to one host thread: with many frames in
        // flight, frame-level parallelism beats oversubscribed dispatches.
        let worker_pipe = if threads > 1 {
            self.pipe
                .with_context_tweak(|ctx| ctx.with_dispatch_threads(1))
        } else {
            self.pipe.clone()
        };

        let started = Instant::now();
        let cursor = AtomicUsize::new(0);
        let failure: Mutex<Option<String>> = Mutex::new(None);
        let mut results: Vec<Option<(ImageF32, FrameComponents)>> = Vec::new();
        results.resize_with(frames.len(), || None);
        let slots: Vec<Mutex<&mut Option<(ImageF32, FrameComponents)>>> =
            results.iter_mut().map(Mutex::new).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut plan = None;
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= frames.len() || failure.lock().expect("failure lock").is_some() {
                            return;
                        }
                        let frame = &frames[i];
                        let shape = (frame.width(), frame.height());
                        let keep = matches!(&plan, Some(p) if crate::gpu::pipeline::PipelinePlan::shape(p) == shape);
                        if !keep {
                            match worker_pipe.prepared(shape.0, shape.1) {
                                Ok(p) => plan = Some(p),
                                Err(e) => {
                                    failure.lock().expect("failure lock").get_or_insert(e);
                                    return;
                                }
                            }
                        }
                        let plan = plan.as_mut().expect("plan prepared above");
                        out.resize(frame.len(), 0.0);
                        match plan.run_into(frame, &mut out) {
                            Ok(comps) => {
                                let img =
                                    ImageF32::from_vec(shape.0, shape.1, out.clone());
                                **slots[i].lock().expect("slot lock") = Some((img, comps));
                            }
                            Err(e) => {
                                failure.lock().expect("failure lock").get_or_insert(e);
                                return;
                            }
                        }
                    }
                });
            }
        });
        let wall_s = started.elapsed().as_secs_f64();

        if let Some(e) = failure.into_inner().expect("failure lock") {
            return Err(e);
        }
        drop(slots);
        let mut outputs = Vec::with_capacity(frames.len());
        let mut comps = Vec::with_capacity(frames.len());
        for r in results {
            let (img, c) = r.expect("no failure recorded, so every frame completed");
            outputs.push(img);
            comps.push(c);
        }
        let serial_s = comps.iter().map(FrameComponents::total).sum();
        let pipelined_s = pipelined_time(&comps);
        Ok(ThroughputReport {
            outputs,
            frames: comps,
            serial_s,
            pipelined_s,
            wall_s,
            threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::opts::OptConfig;
    use crate::params::SharpnessParams;
    use imagekit::generate;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn engine(threads: usize) -> ThroughputEngine {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        ThroughputEngine::new(
            GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all()),
            threads,
        )
    }

    fn frames(n: u64, w: usize) -> Vec<ImageF32> {
        (0..n).map(|i| generate::natural(w, w, 100 + i)).collect()
    }

    #[test]
    fn outputs_match_single_runs_in_order() {
        let fs = frames(6, 64);
        let eng = engine(3);
        let rep = eng.process(&fs).unwrap();
        assert_eq!(rep.outputs.len(), 6);
        for (f, out) in fs.iter().zip(&rep.outputs) {
            let single = eng.pipeline().run(f).unwrap();
            assert_eq!(&single.output, out);
        }
        assert!(rep.wall_s > 0.0 && rep.wall_fps() > 0.0);
        assert!(rep.pipelined_s > 0.0 && rep.pipelined_s <= rep.serial_s);
        assert!(rep.simulated_fps() > 0.0);
        assert_eq!(rep.threads, 3);
    }

    #[test]
    fn simulated_times_are_thread_count_invariant() {
        let fs = frames(4, 64);
        let serial = engine(1).process(&fs).unwrap();
        let parallel = engine(4).process(&fs).unwrap();
        assert_eq!(serial.frames, parallel.frames);
        assert!((serial.pipelined_s - parallel.pipelined_s).abs() < 1e-15);
        assert_eq!(serial.outputs, parallel.outputs);
    }

    #[test]
    fn mixed_shapes_reprepare_plans() {
        let mut fs = frames(2, 64);
        fs.extend(frames(2, 32));
        let rep = engine(2).process(&fs).unwrap();
        assert_eq!(rep.outputs[0].width(), 64);
        assert_eq!(rep.outputs[3].width(), 32);
    }

    #[test]
    fn first_error_aborts() {
        let mut fs = frames(2, 64);
        fs.push(generate::gradient(30, 18)); // unsupported shape
        assert!(engine(2).process(&fs).is_err());
    }

    #[test]
    fn empty_stream_is_ok() {
        let rep = engine(2).process(&[]).unwrap();
        assert!(rep.outputs.is_empty());
        assert_eq!(rep.simulated_fps(), 0.0);
    }
}
