//! Optimization flags and pipeline tuning, mirroring the paper's
//! step-wise evaluation (Section V, Fig. 14).

use crate::gpu::kernels::reduction::ReductionStrategy;

/// Which of the paper's five (plus "other") optimization techniques the
/// GPU pipeline applies. All-off is the base/naive port of Section IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptConfig {
    /// Section V-A: read/write bulk transfers instead of map/unmap, and a
    /// single rect-write of the original into the padded device buffer
    /// instead of uploading both matrices (padding happens in transit).
    pub data_transfer: bool,
    /// Section V-B: fuse pError + preliminary + overshoot into one
    /// `sharpness` kernel, keeping the difference matrix in registers.
    pub kernel_fusion: bool,
    /// Section V-C: run the reduction on the GPU as a two-stage tree.
    pub reduction_gpu: bool,
    /// Section V-D: four pixels per thread with `vload4`/`vstore4` in the
    /// Sobel, sharpness and upscale-center kernels.
    pub vectorization: bool,
    /// Section V-E: run the upscale border on the GPU for large images
    /// (below the tuned crossover it stays on the CPU either way).
    pub border_gpu: bool,
    /// Section V-F: no `clFinish` between kernels, built-in
    /// `clamp`/`min`/`max`/`select`, shift/mask instruction selection.
    pub others: bool,
}

impl OptConfig {
    /// The base (naive) GPU port: everything off.
    pub fn none() -> Self {
        Self::default()
    }

    /// The fully optimized pipeline: everything on.
    pub fn all() -> Self {
        OptConfig {
            data_transfer: true,
            kernel_fusion: true,
            reduction_gpu: true,
            vectorization: true,
            border_gpu: true,
            others: true,
        }
    }

    /// The cumulative optimization steps of Fig. 14, in the paper's order:
    /// base → +data transmission & kernel fusion → +reduction →
    /// +vectorization & border → +others.
    pub fn cumulative_steps() -> Vec<(&'static str, OptConfig)> {
        let base = OptConfig::none();
        let s1 = OptConfig {
            data_transfer: true,
            kernel_fusion: true,
            ..base
        };
        let s2 = OptConfig {
            reduction_gpu: true,
            ..s1
        };
        let s3 = OptConfig {
            vectorization: true,
            border_gpu: true,
            ..s2
        };
        let s4 = OptConfig { others: true, ..s3 };
        vec![
            ("base", base),
            ("data transmission and kernel fusion", s1),
            ("optimizing the reduction", s2),
            ("vectorization for data share and border optimization", s3),
            ("others", s4),
        ]
    }

    /// Decodes one of the 64 flag combinations from its bit index
    /// (bit 0 = `data_transfer` … bit 5 = `others`), the enumeration
    /// order the sweeps and the [`crate::tune`] search share.
    pub fn from_bits(bits: u32) -> Self {
        OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        }
    }

    /// The inverse of [`OptConfig::from_bits`].
    pub fn bits(&self) -> u32 {
        u32::from(self.data_transfer)
            | u32::from(self.kernel_fusion) << 1
            | u32::from(self.reduction_gpu) << 2
            | u32::from(self.vectorization) << 3
            | u32::from(self.border_gpu) << 4
            | u32::from(self.others) << 5
    }

    /// Number of enabled flags (for display).
    pub fn enabled_count(&self) -> usize {
        [
            self.data_transfer,
            self.kernel_fusion,
            self.reduction_gpu,
            self.vectorization,
            self.border_gpu,
            self.others,
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }
}

/// Hardware-dependent thresholds and strategy choices the paper "tests in
/// advance"; discoverable with [`crate::autotune`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuning {
    /// Reduction tail strategy (Fig. 15: unroll-one wins).
    pub reduction_strategy: ReductionStrategy,
    /// Partial-sum count above which reduction stage 2 runs on the GPU.
    pub stage2_gpu_threshold: usize,
    /// Image width (square images) at or above which the upscale border
    /// runs on the GPU (Fig. 17: 768).
    pub border_gpu_min_width: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            reduction_strategy: ReductionStrategy::UnrollOne,
            stage2_gpu_threshold: 4096,
            border_gpu_min_width: 768,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_steps_are_monotone() {
        let steps = OptConfig::cumulative_steps();
        assert_eq!(steps.len(), 5);
        assert_eq!(steps[0].1, OptConfig::none());
        assert_eq!(steps[4].1, OptConfig::all());
        for w in steps.windows(2) {
            assert!(
                w[1].1.enabled_count() > w[0].1.enabled_count(),
                "{} -> {} must add flags",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn bits_roundtrip_covers_all_64_configs() {
        for bits in 0u32..64 {
            let o = OptConfig::from_bits(bits);
            assert_eq!(o.bits(), bits);
            assert_eq!(o.enabled_count(), bits.count_ones() as usize);
        }
        assert_eq!(OptConfig::none().bits(), 0);
        assert_eq!(OptConfig::all().bits(), 63);
    }

    #[test]
    fn default_tuning_matches_paper() {
        let t = Tuning::default();
        assert_eq!(t.border_gpu_min_width, 768);
        assert_eq!(t.reduction_strategy, ReductionStrategy::UnrollOne);
    }
}
