//! The OpenCL-style device kernels of the sharpness pipeline.
//!
//! Every kernel exists in the variants the paper evaluates: scalar
//! one-pixel-per-thread (base) and vectorized four-pixels-per-thread with
//! `vload4`/`vstore4` (Section V-D); reading the raw original buffer (base)
//! or the padded buffer uploaded with one rect transfer (Section V-A);
//! separate pError/preliminary/overshoot kernels (base) or the fused
//! `sharpness` kernel (Section V-B); and the reduction strategies of
//! Section V-C (basic tree, unroll-last-one-wavefront,
//! unroll-last-two-wavefronts).
//!
//! All kernels are *functionally real* — they produce the same pixels as
//! the CPU reference, enforced bit-exactly by the test suite — while
//! charging the cost model for the access pattern they embody.

pub mod downscale;
pub mod perror;
pub mod reduction;
pub mod sharpen;
pub mod simd;
pub mod sobel;
pub mod upscale;

use simgpu::access::{AccessSummary, BufRef};
use simgpu::buffer::GlobalView;
use simgpu::cost::OpCounts;
use simgpu::error::Result;
use simgpu::kernel::{round_up, GroupCtx, KernelDesc};
use simgpu::queue::{CommandQueue, SlicedDispatch, WriteTracked};
use simgpu::timing::KernelTime;

/// A device image a kernel reads from: the view plus its geometry.
///
/// The base pipeline uploads the raw `w × h` original; the optimized
/// pipeline uploads only the `(w+2) × (h+2)` zero-padded matrix
/// (`pad = 1`). Kernels index through [`SrcImage::idx`] so the same kernel
/// body works against either.
#[derive(Clone)]
pub struct SrcImage {
    /// View of the device buffer.
    pub view: GlobalView<f32>,
    /// Row pitch of the buffer (image width + 2·pad).
    pub pitch: usize,
    /// Padding border width (0 = raw original, 1 = padded).
    pub pad: usize,
}

impl SrcImage {
    /// Flat index of logical image coordinate `(x, y)` — coordinates are in
    /// the *unpadded* image frame and may be `-pad ..= dim-1+pad` when the
    /// buffer is padded.
    #[inline]
    pub fn idx(&self, x: isize, y: isize) -> usize {
        let px = x + self.pad as isize;
        let py = y + self.pad as isize;
        debug_assert!(
            px >= 0 && py >= 0,
            "index ({x},{y}) outside source (pad {})",
            self.pad
        );
        py as usize * self.pitch + px as usize
    }
}

/// Kernel-level tuning derived from the optimization flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelTuning {
    /// Section V-F "other optimizations": built-in `select`/`clamp`
    /// (removing divergent branches) and shift/mask instruction selection
    /// (removing integer div/rem from index arithmetic).
    pub others: bool,
}

impl KernelTuning {
    /// Per-item index-arithmetic recipe: computing the global index and
    /// vector offsets costs an integer division/remainder in the naive
    /// kernels, replaced by shifts and masks when `others` is on
    /// (Section V-F "Instruction selection").
    pub fn idx_ops(&self) -> OpCounts {
        if self.others {
            OpCounts::ZERO.muls(1).adds(2).bits(2)
        } else {
            OpCounts::ZERO.muls(1).adds(2).divs(1)
        }
    }

    /// Extra divergent-branch events per item for branchy clamp/select
    /// logic: built-ins (`clamp`, `min`, `max`, `select`) remove them.
    pub fn clamp_divergence(&self) -> u64 {
        if self.others {
            0
        } else {
            1
        }
    }
}

/// The static half of [`SrcImage`]: buffer identity plus geometry, enough
/// for an access-summary constructor to compute indices without holding a
/// live view. The `core::gpu::verify` enumerator builds these from pure
/// arithmetic (no buffers allocated).
#[derive(Debug, Clone)]
pub struct SrcInfo {
    /// Buffer identity (label, length, element size).
    pub buf: BufRef,
    /// Row pitch of the buffer (image width + 2·pad).
    pub pitch: usize,
    /// Padding border width (0 = raw original, 1 = padded).
    pub pad: usize,
}

impl SrcInfo {
    /// The static description of a live [`SrcImage`].
    pub fn of(src: &SrcImage) -> Self {
        SrcInfo {
            buf: src.view.info(),
            pitch: src.pitch,
            pad: src.pad,
        }
    }

    /// Flat index of logical image coordinate `(x, y)`, identically to
    /// [`SrcImage::idx`].
    #[inline]
    pub fn idx(&self, x: isize, y: isize) -> usize {
        let px = x + self.pad as isize;
        let py = y + self.pad as isize;
        py as usize * self.pitch + px as usize
    }
}

/// How a kernel dispatch executes: as one whole-grid `run` (recording its
/// command immediately, the monolithic schedule) or as a contiguous
/// work-group-row slice of the grid merged into a megapass accumulator.
/// Sliced launches record nothing — the banded scheduler commits the
/// accumulator once per frame via
/// [`simgpu::queue::CommandQueue::commit_sliced`], producing the identical
/// single kernel record (same counters, same simulated time) the
/// monolithic dispatch would have.
pub enum Launch<'a> {
    /// Whole-grid dispatch.
    Full,
    /// Execute only this contiguous range of work-group *rows* (a group
    /// row is `num_groups()[0]` consecutive flat group indices; for 1-D
    /// grids it is one work-group).
    Slice(std::ops::Range<usize>, &'a mut SlicedDispatch),
}

impl Launch<'_> {
    /// The flat work-group range this launch covers.
    pub(crate) fn groups(&self, desc: &KernelDesc) -> std::ops::Range<usize> {
        match self {
            Launch::Full => 0..desc.total_groups(),
            Launch::Slice(rows, _) => {
                let [gx, _] = desc.num_groups();
                rows.start * gx..rows.end * gx
            }
        }
    }

    /// Dispatches `f` over `desc` per the launch mode, declaring `access`
    /// (its statically verified [`AccessSummary`]) to the queue first.
    /// Sliced launches return a zero [`KernelTime`]: the simulated cost is
    /// charged at commit, not here.
    pub(crate) fn dispatch<F>(
        self,
        q: &mut CommandQueue,
        desc: &KernelDesc,
        access: AccessSummary,
        outputs: &[&dyn WriteTracked],
        f: F,
    ) -> Result<KernelTime>
    where
        F: Fn(&mut GroupCtx) + Sync,
    {
        match self {
            Launch::Full => {
                q.declare_access(access)?;
                q.run(desc, outputs, f)
            }
            Launch::Slice(rows, acc) => {
                let [gx, _] = desc.num_groups();
                let range = rows.start * gx..rows.end * gx;
                if range.is_empty() {
                    return Ok(KernelTime::default());
                }
                q.declare_access(access)?;
                q.run_sliced(desc, outputs, range, acc, f)?;
                Ok(KernelTime::default())
            }
        }
    }
}

/// Builds the access summary for a launch via the kernel's closed-form
/// constructor `build`, carrying the *whole-dispatch* exact read-overcharge
/// ratio on every slice: the ratio bounds the dispatch totals (a
/// border-only slice may charge reads while declaring none), exactly as
/// the dynamic audit applies it at commit.
pub(crate) fn summarize(
    launch: &Launch<'_>,
    desc: &KernelDesc,
    build: impl Fn(std::ops::Range<usize>) -> AccessSummary,
) -> AccessSummary {
    let full = build(0..desc.total_groups());
    let ratio = full.exact_read_ratio();
    let groups = launch.groups(desc);
    let mut s = if groups == (0..desc.total_groups()) {
        full
    } else {
        build(groups)
    };
    s.read_ratio = ratio;
    s
}

/// Image rows covered by the flat group range `groups` of a 2-D dispatch
/// over `ny` logical rows (slices always cover whole work-group rows).
pub(crate) fn covered_rows(
    desc: &KernelDesc,
    groups: &std::ops::Range<usize>,
    ny: usize,
) -> std::ops::Range<usize> {
    let [gx, _] = desc.num_groups();
    let gy0 = groups.start / gx;
    let gy1 = groups.end.div_ceil(gx);
    (gy0 * GROUP_2D[1]).min(ny)..(gy1 * GROUP_2D[1]).min(ny)
}

/// Image rows of a covered row range that the 3×3-window kernels treat as
/// body rows (the strict interior of the image); empty when the image has
/// no interior (`w <= 2` or `h <= 2`).
pub(crate) fn interior_rows(
    rows: &std::ops::Range<usize>,
    w: usize,
    h: usize,
) -> std::ops::Range<usize> {
    if w <= 2 || h <= 2 {
        return 0..0;
    }
    let lo = rows.start.max(1);
    let hi = rows.end.min(h - 1).max(lo);
    lo..hi
}

/// Per-column-group body spans `(body_lo, blen)` of the scalar 3×3-window
/// kernels: each 16-wide column group clips its span to the image
/// interior; groups with no body columns are skipped (the kernels guard
/// `body_hi > body_lo`).
pub(crate) fn body_columns(w: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    if w <= 2 {
        return v;
    }
    let mut x_start = 0usize;
    while x_start < w {
        let x_end = (x_start + GROUP_2D[0]).min(w);
        let lo = x_start.max(1);
        let hi = x_end.min(w - 1);
        if hi > lo {
            v.push((lo, hi - lo));
        }
        x_start += GROUP_2D[0];
    }
    v
}

/// Per-column-group body spans of the vectorized 3×3-window kernels:
/// `4 × 16` pixels per group over the device stride `ws`, clipped to the
/// image interior *unconditionally* — `blen` may be zero, in which case the
/// kernels still issue the two-element halo loads.
pub(crate) fn vec4_body_columns(w: usize, ws: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    let mut x_start = 0usize;
    while x_start < ws {
        let x_end = (x_start + 4 * GROUP_2D[0]).min(ws);
        let lo = x_start.max(1);
        let hi = x_end.min(w.saturating_sub(1)).max(lo);
        v.push((lo, hi - lo));
        x_start += 4 * GROUP_2D[0];
    }
    v
}

/// The standard 2-D work-group shape used by the image kernels.
pub const GROUP_2D: [usize; 2] = [16, 16];

/// Builds a 2-D dispatch covering `nx × ny` items, rounded up to whole
/// 16×16 groups (kernels bounds-check the overhang, as real OpenCL kernels
/// do).
pub fn grid2d(name: &str, nx: usize, ny: usize) -> KernelDesc {
    KernelDesc::new(
        name,
        [round_up(nx, GROUP_2D[0]), round_up(ny, GROUP_2D[1])],
        GROUP_2D,
    )
}

/// Builds a 1-D dispatch of `n` items in groups of `group`, rounded up.
pub fn grid1d(name: &str, n: usize, group: usize) -> KernelDesc {
    KernelDesc::new_1d(name, round_up(n, group), group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    #[test]
    fn src_image_indexing_raw_and_padded() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let raw = SrcImage {
            view: ctx.buffer::<f32>("o", 64).view(),
            pitch: 8,
            pad: 0,
        };
        assert_eq!(raw.idx(3, 2), 2 * 8 + 3);
        let padded = SrcImage {
            view: ctx.buffer::<f32>("p", 100).view(),
            pitch: 10,
            pad: 1,
        };
        assert_eq!(padded.idx(0, 0), 11);
        assert_eq!(padded.idx(-1, -1), 0);
        assert_eq!(padded.idx(8, 8), 99);
    }

    #[test]
    fn grids_round_up() {
        let d = grid2d("k", 100, 50);
        assert_eq!(d.global, [112, 64]);
        assert!(d.check().is_ok());
        let d = grid1d("r", 1000, 128);
        assert_eq!(d.global, [1024, 1]);
    }

    #[test]
    fn idx_ops_swap_div_for_bits() {
        let base = KernelTuning { others: false };
        let opt = KernelTuning { others: true };
        assert_eq!(base.idx_ops().div, 1);
        assert_eq!(base.idx_ops().bit, 0);
        assert_eq!(opt.idx_ops().div, 0);
        assert_eq!(opt.idx_ops().bit, 2);
        assert_eq!(base.clamp_divergence(), 1);
        assert_eq!(opt.clamp_divergence(), 0);
    }
}
