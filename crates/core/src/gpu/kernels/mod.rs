//! The OpenCL-style device kernels of the sharpness pipeline.
//!
//! Every kernel exists in the variants the paper evaluates: scalar
//! one-pixel-per-thread (base) and vectorized four-pixels-per-thread with
//! `vload4`/`vstore4` (Section V-D); reading the raw original buffer (base)
//! or the padded buffer uploaded with one rect transfer (Section V-A);
//! separate pError/preliminary/overshoot kernels (base) or the fused
//! `sharpness` kernel (Section V-B); and the reduction strategies of
//! Section V-C (basic tree, unroll-last-one-wavefront,
//! unroll-last-two-wavefronts).
//!
//! All kernels are *functionally real* — they produce the same pixels as
//! the CPU reference, enforced bit-exactly by the test suite — while
//! charging the cost model for the access pattern they embody.

pub mod downscale;
pub mod perror;
pub mod reduction;
pub mod sharpen;
pub mod simd;
pub mod sobel;
pub mod upscale;

use simgpu::buffer::GlobalView;
use simgpu::cost::OpCounts;
use simgpu::error::Result;
use simgpu::kernel::{round_up, GroupCtx, KernelDesc};
use simgpu::queue::{CommandQueue, SlicedDispatch, WriteTracked};
use simgpu::timing::KernelTime;

/// A device image a kernel reads from: the view plus its geometry.
///
/// The base pipeline uploads the raw `w × h` original; the optimized
/// pipeline uploads only the `(w+2) × (h+2)` zero-padded matrix
/// (`pad = 1`). Kernels index through [`SrcImage::idx`] so the same kernel
/// body works against either.
#[derive(Clone)]
pub struct SrcImage {
    /// View of the device buffer.
    pub view: GlobalView<f32>,
    /// Row pitch of the buffer (image width + 2·pad).
    pub pitch: usize,
    /// Padding border width (0 = raw original, 1 = padded).
    pub pad: usize,
}

impl SrcImage {
    /// Flat index of logical image coordinate `(x, y)` — coordinates are in
    /// the *unpadded* image frame and may be `-pad ..= dim-1+pad` when the
    /// buffer is padded.
    #[inline]
    pub fn idx(&self, x: isize, y: isize) -> usize {
        let px = x + self.pad as isize;
        let py = y + self.pad as isize;
        debug_assert!(
            px >= 0 && py >= 0,
            "index ({x},{y}) outside source (pad {})",
            self.pad
        );
        py as usize * self.pitch + px as usize
    }
}

/// Kernel-level tuning derived from the optimization flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelTuning {
    /// Section V-F "other optimizations": built-in `select`/`clamp`
    /// (removing divergent branches) and shift/mask instruction selection
    /// (removing integer div/rem from index arithmetic).
    pub others: bool,
}

impl KernelTuning {
    /// Per-item index-arithmetic recipe: computing the global index and
    /// vector offsets costs an integer division/remainder in the naive
    /// kernels, replaced by shifts and masks when `others` is on
    /// (Section V-F "Instruction selection").
    pub fn idx_ops(&self) -> OpCounts {
        if self.others {
            OpCounts::ZERO.muls(1).adds(2).bits(2)
        } else {
            OpCounts::ZERO.muls(1).adds(2).divs(1)
        }
    }

    /// Extra divergent-branch events per item for branchy clamp/select
    /// logic: built-ins (`clamp`, `min`, `max`, `select`) remove them.
    pub fn clamp_divergence(&self) -> u64 {
        if self.others {
            0
        } else {
            1
        }
    }
}

/// Declared read-overcharge ratio for the span-form vectorized kernels.
///
/// `charged` is the kernel's total charged loads (elements, from the
/// per-thread overlapping-window pattern); `observed_floor` is a lower
/// bound on the distinct elements the row spans actually touch. The audit
/// only needs `charged <= observed * ratio`, so a conservative (large)
/// quotient is safe; the historical 4.0 floor keeps the declared value
/// unchanged for multiple-of-4 shapes, and the 1% headroom keeps float
/// rounding in the comparison from biting. Sanitizer metadata only — never
/// affects simulated time.
pub fn overcharge_ratio(charged: u64, observed_floor: u64) -> f64 {
    (charged as f64 / observed_floor.max(1) as f64 * 1.01).max(4.0)
}

/// How a kernel dispatch executes: as one whole-grid `run` (recording its
/// command immediately, the monolithic schedule) or as a contiguous
/// work-group-row slice of the grid merged into a megapass accumulator.
/// Sliced launches record nothing — the banded scheduler commits the
/// accumulator once per frame via
/// [`simgpu::queue::CommandQueue::commit_sliced`], producing the identical
/// single kernel record (same counters, same simulated time) the
/// monolithic dispatch would have.
pub enum Launch<'a> {
    /// Whole-grid dispatch.
    Full,
    /// Execute only this contiguous range of work-group *rows* (a group
    /// row is `num_groups()[0]` consecutive flat group indices; for 1-D
    /// grids it is one work-group).
    Slice(std::ops::Range<usize>, &'a mut SlicedDispatch),
}

impl Launch<'_> {
    /// Dispatches `f` over `desc` per the launch mode. Sliced launches
    /// return a zero [`KernelTime`]: the simulated cost is charged at
    /// commit, not here.
    pub(crate) fn dispatch<F>(
        self,
        q: &mut CommandQueue,
        desc: &KernelDesc,
        outputs: &[&dyn WriteTracked],
        f: F,
    ) -> Result<KernelTime>
    where
        F: Fn(&mut GroupCtx) + Sync,
    {
        match self {
            Launch::Full => q.run(desc, outputs, f),
            Launch::Slice(rows, acc) => {
                let [gx, _] = desc.num_groups();
                q.run_sliced(desc, outputs, rows.start * gx..rows.end * gx, acc, f)?;
                Ok(KernelTime::default())
            }
        }
    }
}

/// The standard 2-D work-group shape used by the image kernels.
pub const GROUP_2D: [usize; 2] = [16, 16];

/// Builds a 2-D dispatch covering `nx × ny` items, rounded up to whole
/// 16×16 groups (kernels bounds-check the overhang, as real OpenCL kernels
/// do).
pub fn grid2d(name: &str, nx: usize, ny: usize) -> KernelDesc {
    KernelDesc::new(
        name,
        [round_up(nx, GROUP_2D[0]), round_up(ny, GROUP_2D[1])],
        GROUP_2D,
    )
}

/// Builds a 1-D dispatch of `n` items in groups of `group`, rounded up.
pub fn grid1d(name: &str, n: usize, group: usize) -> KernelDesc {
    KernelDesc::new_1d(name, round_up(n, group), group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    #[test]
    fn src_image_indexing_raw_and_padded() {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let raw = SrcImage {
            view: ctx.buffer::<f32>("o", 64).view(),
            pitch: 8,
            pad: 0,
        };
        assert_eq!(raw.idx(3, 2), 2 * 8 + 3);
        let padded = SrcImage {
            view: ctx.buffer::<f32>("p", 100).view(),
            pitch: 10,
            pad: 1,
        };
        assert_eq!(padded.idx(0, 0), 11);
        assert_eq!(padded.idx(-1, -1), 0);
        assert_eq!(padded.idx(8, 8), 99);
    }

    #[test]
    fn grids_round_up() {
        let d = grid2d("k", 100, 50);
        assert_eq!(d.global, [112, 64]);
        assert!(d.check().is_ok());
        let d = grid1d("r", 1000, 128);
        assert_eq!(d.global, [1024, 1]);
    }

    #[test]
    fn idx_ops_swap_div_for_bits() {
        let base = KernelTuning { others: false };
        let opt = KernelTuning { others: true };
        assert_eq!(base.idx_ops().div, 1);
        assert_eq!(base.idx_ops().bit, 0);
        assert_eq!(opt.idx_ops().div, 0);
        assert_eq!(opt.idx_ops().bit, 2);
        assert_eq!(base.clamp_divergence(), 1);
        assert_eq!(opt.clamp_divergence(), 0);
    }
}
