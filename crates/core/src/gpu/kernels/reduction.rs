//! Two-stage GPU reduction (Section V-C, paper Figs. 9–10 and
//! Algorithms 1–2).
//!
//! Stage 1 splits the pEdge matrix across work-groups; each group
//! tree-reduces in local memory after an add-during-load pass (each
//! thread sums [`ELEMS_PER_THREAD`] strided elements — "first adding
//! during load" from Harris \[16\]) and writes one partial sum. The tail of
//! the tree runs in one of three strategies:
//!
//! * [`ReductionStrategy::NoUnroll`] — textbook tree, one barrier per step;
//! * [`ReductionStrategy::UnrollOne`] — Algorithm 1: one barrier, then the
//!   last wavefront finishes lock-step without barriers (the paper's
//!   winner);
//! * [`ReductionStrategy::UnrollTwo`] — Algorithm 2: both wavefronts
//!   reduce a half each, then one extra barrier and a final add (slightly
//!   slower: "unrolling the last two wavefronts increases the overhead of
//!   synchronization").
//!
//! Stage 2 sums the partials — on the host (small counts) or with a
//! second one-group kernel (large counts); the pipeline picks by a tuned
//! threshold, as the paper does ("the usage of GPU is determined by the
//! amount of data, and the critical value is tested in advance").

use simgpu::access::{AccessSummary, AccessWindow, BufRef};
use simgpu::buffer::{Buffer, GlobalView, GlobalWriteView};
use simgpu::cost::OpCounts;
use simgpu::error::{Error, Result};
use simgpu::kernel::{GroupCtx, KernelDesc};
use simgpu::queue::{CommandQueue, SlicedDispatch};
use simgpu::timing::KernelTime;

/// Work-group size of the reduction kernels (two 64-lane wavefronts).
pub const RED_GROUP: usize = 128;
/// Elements each thread accumulates during load.
pub const ELEMS_PER_THREAD: usize = 8;
/// Elements consumed per work-group in stage 1.
pub const ELEMS_PER_GROUP: usize = RED_GROUP * ELEMS_PER_THREAD;

/// Tail strategy for the in-group tree reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReductionStrategy {
    /// Full tree with a barrier after every step.
    NoUnroll,
    /// Unroll the last wavefront (paper Algorithm 1) — the default.
    #[default]
    UnrollOne,
    /// Unroll the last two wavefronts (paper Algorithm 2).
    UnrollTwo,
}

/// Number of stage-1 work-groups (= partial sums) for `n` input elements.
pub fn stage1_groups(n: usize) -> usize {
    n.div_ceil(ELEMS_PER_GROUP)
}

/// Stage 1: tree-reduce `src[0..n]` into one partial per work-group.
///
/// `partials` must hold at least [`stage1_groups`]`(n)` elements.
pub fn reduction_stage1_kernel(
    q: &mut CommandQueue,
    src: &GlobalView<f32>,
    n: usize,
    partials: &Buffer<f32>,
    strategy: ReductionStrategy,
) -> Result<(usize, KernelTime)> {
    reduction_stage1_range_kernel(q, src, 0, n, partials, strategy)
}

/// Stage 1 over a sub-range: tree-reduce `src[offset .. offset + n]`.
/// Used by the strip pipeline to reduce only a strip's owned rows.
pub fn reduction_stage1_range_kernel(
    q: &mut CommandQueue,
    src: &GlobalView<f32>,
    offset: usize,
    n: usize,
    partials: &Buffer<f32>,
    strategy: ReductionStrategy,
) -> Result<(usize, KernelTime)> {
    let groups = stage1_groups(n);
    if partials.len() < groups {
        return Err(Error::InvalidKernelArgs {
            kernel: "reduction_stage1".into(),
            detail: format!(
                "partials buffer holds {} elements, {groups} work-groups required",
                partials.len()
            ),
        });
    }
    let desc = stage1_desc(n, strategy);
    q.declare_access(stage1_access(
        &desc,
        0..desc.total_groups(),
        src.info(),
        partials.info(),
        offset,
        n,
    ))?;
    let body = stage1_body(src.clone(), partials.write_view(), offset, n, strategy);
    let t = q.run(&desc, &[partials], body)?;
    Ok((groups, t))
}

/// Closed-form access summary of a stage-1 dispatch over a flat group
/// range: full groups read their [`ELEMS_PER_GROUP`]-element span
/// contiguously (charged in bulk, 8 scalar loads per thread), the ragged
/// last group loads each of its existing elements exactly once, and every
/// group stores its one partial sum. The charge is exact, so the ratio
/// stays 1.
pub(crate) fn stage1_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    src: BufRef,
    partials: BufRef,
    offset: usize,
    n: usize,
) -> AccessSummary {
    let mut s = AccessSummary::new(&desc.name, groups.clone(), desc.total_groups());
    if groups.is_empty() {
        return s;
    }
    let full = n / ELEMS_PER_GROUP;
    let nf = groups.end.min(full).saturating_sub(groups.start);
    if nf > 0 {
        s.push(
            AccessWindow::read(
                src.clone(),
                offset + groups.start * ELEMS_PER_GROUP,
                ELEMS_PER_GROUP,
            )
            .by_x(nf, ELEMS_PER_GROUP),
        );
        s.charge_global_n(
            4 * ELEMS_PER_THREAD as u64,
            0,
            0,
            0,
            (nf * RED_GROUP) as u64,
        );
    }
    for g in groups.start.max(full)..groups.end {
        let base = g * ELEMS_PER_GROUP;
        let elems = n.saturating_sub(base);
        s.push(AccessWindow::read(src.clone(), offset + base, elems));
        s.charge_global_n(4, 0, 0, 0, elems as u64);
    }
    s.push(AccessWindow::write(partials, groups.start, groups.len()));
    s.charge_global_n(0, 0, 4, 0, groups.len() as u64);
    s
}

/// The stage-1 dispatch descriptor for `n` input elements — shared by the
/// monolithic kernel and the megapass commit (which must pin the identical
/// name and geometry).
pub(crate) fn stage1_desc(n: usize, strategy: ReductionStrategy) -> KernelDesc {
    let name = match strategy {
        ReductionStrategy::NoUnroll => "reduction_stage1",
        ReductionStrategy::UnrollOne => "reduction_stage1_unroll1",
        ReductionStrategy::UnrollTwo => "reduction_stage1_unroll2",
    };
    KernelDesc::new_1d(name, stage1_groups(n) * RED_GROUP, RED_GROUP)
}

/// The stage-2 dispatch descriptor (one `RED_GROUP`-wide work-group) —
/// shared by the kernel and the static verifier.
pub(crate) fn stage2_desc() -> KernelDesc {
    KernelDesc::new_1d("reduction_stage2", RED_GROUP, RED_GROUP)
}

/// Stage 1 over a flat work-group range, merged into a megapass
/// accumulator (stage 1 is a 1-D grid, so [`super::Launch`]'s group-row
/// slicing does not apply; the banded scheduler slices it by flat group
/// index directly and commits once with [`stage1_desc`]).
pub(crate) fn reduction_stage1_sliced(
    q: &mut CommandQueue,
    src: &GlobalView<f32>,
    n: usize,
    partials: &Buffer<f32>,
    strategy: ReductionStrategy,
    groups: std::ops::Range<usize>,
    acc: &mut SlicedDispatch,
) -> Result<()> {
    if partials.len() < stage1_groups(n) {
        return Err(Error::InvalidKernelArgs {
            kernel: "reduction_stage1".into(),
            detail: format!(
                "partials buffer holds {} elements, {} work-groups required",
                partials.len(),
                stage1_groups(n)
            ),
        });
    }
    let desc = stage1_desc(n, strategy);
    q.declare_access(stage1_access(
        &desc,
        groups.clone(),
        src.info(),
        partials.info(),
        0,
        n,
    ))?;
    let body = stage1_body(src.clone(), partials.write_view(), 0, n, strategy);
    q.run_sliced(&desc, &[partials], groups, acc, body)
}

/// The stage-1 kernel body, shared by the monolithic and sliced entries.
fn stage1_body(
    src: GlobalView<f32>,
    out: GlobalWriteView<f32>,
    offset: usize,
    n: usize,
    strategy: ReductionStrategy,
) -> impl Fn(&mut GroupCtx) + Sync {
    // Per thread: ELEMS-1 adds for the load pass plus ELEMS bounds compares.
    let per_thread = OpCounts::ZERO
        .adds(ELEMS_PER_THREAD as u64)
        .cmps(ELEMS_PER_THREAD as u64)
        .muls(1);
    move |g| {
        g.alloc_local(RED_GROUP);
        let base = g.group_id[0] * ELEMS_PER_GROUP;
        // Add-during-load: strided, coalesced accesses. For a full group
        // the pass runs k-major — stride `k` touches the contiguous span
        // `base + k*RED_GROUP ..+RED_GROUP` (one element per lid), so the
        // host loop is branch-free and autovectorizes. Each lid still
        // accumulates its 8 elements in identical k-order, so the partial
        // sums are bit-identical to the lid-major form; the charged
        // traffic (8 scalar loads per thread) is also unchanged.
        if base + ELEMS_PER_GROUP <= n {
            // The span loads are attributed to lane 0 — global reads never
            // conflict with each other, so one-lane attribution is safe.
            g.begin_item([0, 0]);
            let mut sums = [0.0f32; RED_GROUP];
            for k in 0..ELEMS_PER_THREAD {
                let row = src.slice_raw(offset + base + k * RED_GROUP, RED_GROUP);
                super::simd::add_assign_span(&mut sums, row);
            }
            for (lid, &s) in sums.iter().enumerate() {
                g.begin_item([lid, 0]);
                g.local_write(lid, s);
            }
            g.charge_global_n(4 * ELEMS_PER_THREAD as u64, 0, 0, 0, RED_GROUP as u64);
        } else {
            for lid in 0..RED_GROUP {
                g.begin_item([lid, 0]);
                let mut s = 0.0f32;
                for k in 0..ELEMS_PER_THREAD {
                    let idx = base + k * RED_GROUP + lid;
                    if idx < n {
                        s += g.load(&src, offset + idx);
                    }
                }
                g.local_write(lid, s);
            }
        }
        g.barrier();
        let tree_step = |g: &mut simgpu::kernel::GroupCtx, lo: usize, step: usize| {
            for lid in lo..lo + step {
                g.begin_item([lid, 0]);
                let a = g.local_read(lid);
                let b = g.local_read(lid + step);
                g.local_write(lid, a + b);
                g.counters.ops.add += 1;
            }
        };
        match strategy {
            ReductionStrategy::NoUnroll => {
                let mut step = RED_GROUP / 2;
                while step >= 1 {
                    tree_step(g, 0, step);
                    g.barrier();
                    step /= 2;
                }
                g.begin_item([0, 0]);
                let s = g.local_read(0);
                g.store(&out, g.group_id[0], s);
            }
            ReductionStrategy::UnrollOne => {
                // One synchronised step brings the live set into the last
                // wavefront; the rest runs lock-step, branches diverging.
                tree_step(g, 0, 64);
                let mut step = 32;
                while step >= 1 {
                    tree_step(g, 0, step);
                    g.divergent(1);
                    step /= 2;
                }
                g.begin_item([0, 0]);
                let s = g.local_read(0);
                g.store(&out, g.group_id[0], s);
            }
            ReductionStrategy::UnrollTwo => {
                // Each wavefront reduces its own half without barriers...
                for half in [0usize, 64] {
                    let mut step = 32;
                    while step >= 1 {
                        tree_step(g, half, step);
                        g.divergent(1);
                        step /= 2;
                    }
                }
                // ...then one extra barrier before combining the halves —
                // the overhead that makes this variant lose (Fig. 15).
                g.barrier();
                g.begin_item([0, 0]);
                let a = g.local_read(0);
                let b = g.local_read(64);
                g.counters.ops.add += 1;
                g.store(&out, g.group_id[0], a + b);
            }
        }
        g.charge_n(&per_thread, RED_GROUP as u64);
    }
}

/// Stage 2 on the device: a single work-group strided-sums the partials
/// and tree-reduces, writing the total into `result[0]`.
pub fn reduction_stage2_kernel(
    q: &mut CommandQueue,
    partials: &GlobalView<f32>,
    n_partials: usize,
    result: &Buffer<f32>,
) -> Result<KernelTime> {
    let desc = stage2_desc();
    q.declare_access(stage2_access(
        &desc,
        partials.info(),
        n_partials,
        result.info(),
    ))?;
    let partials = partials.clone();
    let out = result.write_view();
    let per_thread_loads = n_partials.div_ceil(RED_GROUP) as u64;
    let per_thread = OpCounts::ZERO
        .adds(per_thread_loads + 7)
        .cmps(per_thread_loads);
    let t = q.run(&desc, &[result], move |g| {
        g.alloc_local(RED_GROUP);
        for lid in 0..RED_GROUP {
            g.begin_item([lid, 0]);
            let mut s = 0.0f32;
            let mut i = lid;
            while i < n_partials {
                s += g.load(&partials, i);
                i += RED_GROUP;
            }
            g.local_write(lid, s);
        }
        g.barrier();
        let mut step = RED_GROUP / 2;
        while step >= 1 {
            for lid in 0..step {
                g.begin_item([lid, 0]);
                let a = g.local_read(lid);
                let b = g.local_read(lid + step);
                g.local_write(lid, a + b);
            }
            if step > 32 {
                g.barrier();
            } else {
                g.divergent(1);
            }
            step /= 2;
        }
        g.begin_item([0, 0]);
        let s = g.local_read(0);
        g.store(&out, 0, s);
        g.charge_n(&per_thread, RED_GROUP as u64);
    })?;
    Ok(t)
}

/// Closed-form access summary of the stage-2 dispatch: the single group
/// strided-loads every partial exactly once and stores the one total.
pub(crate) fn stage2_access(
    desc: &KernelDesc,
    partials: BufRef,
    n_partials: usize,
    result: BufRef,
) -> AccessSummary {
    let mut s = AccessSummary::new(&desc.name, 0..desc.total_groups(), desc.total_groups());
    s.push(AccessWindow::read(partials, 0, n_partials));
    s.push(AccessWindow::write(result, 0, 1));
    s.charge_global_n(4, 0, 0, 0, n_partials as u64);
    s.charge_global_n(0, 0, 4, 0, 1);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn sum_gpu(data: &[f32], strategy: ReductionStrategy) -> (f32, f64) {
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let src = ctx.buffer_from("pEdge", data);
        let partials = ctx.buffer::<f32>("partials", stage1_groups(data.len()).max(1));
        let (groups, _) =
            reduction_stage1_kernel(&mut q, &src.view(), data.len(), &partials, strategy).unwrap();
        let result = ctx.buffer::<f32>("mean", 1);
        reduction_stage2_kernel(&mut q, &partials.view(), groups, &result).unwrap();
        (result.snapshot()[0], q.elapsed())
    }

    #[test]
    fn all_strategies_compute_the_sum() {
        let data: Vec<f32> = (0..10_000).map(|i| (i % 97) as f32 * 0.25).collect();
        let expect: f64 = data.iter().map(|&v| f64::from(v)).sum();
        for s in [
            ReductionStrategy::NoUnroll,
            ReductionStrategy::UnrollOne,
            ReductionStrategy::UnrollTwo,
        ] {
            let (got, _) = sum_gpu(&data, s);
            let rel = (f64::from(got) - expect).abs() / expect;
            assert!(rel < 1e-5, "{s:?}: got {got}, want {expect}");
        }
    }

    #[test]
    fn handles_sizes_not_multiple_of_group_elems() {
        for n in [1usize, 5, 127, 128, 129, 1023, 1024, 1025, 4097] {
            let data: Vec<f32> = (0..n).map(|i| 1.0 + (i as f32) * 0.5).collect();
            let expect: f64 = data.iter().map(|&v| f64::from(v)).sum();
            let (got, _) = sum_gpu(&data, ReductionStrategy::UnrollOne);
            let rel = (f64::from(got) - expect).abs() / expect.max(1.0);
            assert!(rel < 1e-5, "n={n}: got {got}, want {expect}");
        }
    }

    #[test]
    fn unroll_one_beats_unroll_two_beats_none() {
        // Fig. 15: unrolling one wavefront is fastest; the basic tree is
        // slowest (barrier per step).
        let data = vec![1.0f32; 1 << 20];
        let (_, t_none) = sum_gpu(&data, ReductionStrategy::NoUnroll);
        let (_, t_one) = sum_gpu(&data, ReductionStrategy::UnrollOne);
        let (_, t_two) = sum_gpu(&data, ReductionStrategy::UnrollTwo);
        assert!(t_one < t_two, "unroll1 {t_one} should beat unroll2 {t_two}");
        assert!(
            t_two < t_none,
            "unroll2 {t_two} should beat no-unroll {t_none}"
        );
    }

    #[test]
    fn stage1_group_count() {
        assert_eq!(stage1_groups(1), 1);
        assert_eq!(stage1_groups(ELEMS_PER_GROUP), 1);
        assert_eq!(stage1_groups(ELEMS_PER_GROUP + 1), 2);
        assert_eq!(stage1_groups(10 * ELEMS_PER_GROUP), 10);
    }

    #[test]
    fn deterministic_sums() {
        let data: Vec<f32> = (0..50_000).map(|i| ((i * 31) % 255) as f32).collect();
        let (a, _) = sum_gpu(&data, ReductionStrategy::UnrollOne);
        let (b, _) = sum_gpu(&data, ReductionStrategy::UnrollOne);
        assert_eq!(a, b);
    }
}
