//! Explicit SSE2/AVX2 span implementations (`simd` feature,
//! `x86_64` only).
//!
//! Each function computes the *identical operation sequence* as the
//! scalar spans in [`super::scalar`], lane-parallel:
//!
//! * `add`/`sub`/`mul`/`div`/`sqrt` are IEEE correctly rounded per lane,
//!   so any lane width produces the scalar bits for elementwise code.
//! * `math::fmin(a, b)` = `if b < a { b } else { a }` is exactly
//!   `minps(b, a)` (the hardware op returns its *second* operand when
//!   either input is NaN or both are ±0 — operand-swapped, that is the
//!   select-form semantics). Same for `fmax`/`maxps`.
//! * `f32::abs` is the bitwise and with `0x7FFF_FFFF`.
//! * Scalar `if p < mn { a } else { b }` becomes an ordered-quiet
//!   compare (`cmplt`/`_CMP_LT_OQ`: NaN → false, matching the scalar
//!   branch) plus a bitwise select.
//! * FMA is **never** used: `#[target_feature(enable = "avx2")]` does not
//!   enable `fma`, and contraction would change the rounding.
//!
//! Remainder elements (span length not a multiple of the lane width) run
//! through the scalar span, which computes the same bits.

use super::scalar;

/// Generates one full span backend at a given lane width. The algorithm
/// bodies are written once; the SSE2/AVX2 modules differ only in the
/// intrinsic names, lane count and compare spelling supplied here.
macro_rules! span_backend {
    (
        $modname:ident, $feat:literal, $vec:ty, $lanes:expr,
        $loadu:ident, $storeu:ident, $set1:ident,
        $add:ident, $sub:ident, $mul:ident, $div:ident, $sqrt:ident,
        $min:ident, $max:ident, $and:ident, $or:ident, $andnot:ident,
        $set1i:ident, $casti:ident,
        { $($cmp_helpers:tt)* }
    ) => {
        pub(crate) mod $modname {
            use core::arch::x86_64::*;

            use super::scalar;

            $($cmp_helpers)*

            /// `f32::abs` per lane: clear the sign bit.
            #[target_feature(enable = $feat)]
            fn vabs(v: $vec) -> $vec {
                $and(v, $casti($set1i(0x7FFF_FFFF)))
            }

            /// Bitwise select: mask lanes of all-ones pick `a`, zeros `b`.
            #[target_feature(enable = $feat)]
            fn vselect(mask: $vec, a: $vec, b: $vec) -> $vec {
                $or($and(mask, a), $andnot(mask, b))
            }

            /// `math::fmin` per lane (operand-swapped `minps`).
            #[target_feature(enable = $feat)]
            fn vfmin(a: $vec, b: $vec) -> $vec {
                $min(b, a)
            }

            /// `math::fmax` per lane (operand-swapped `maxps`).
            #[target_feature(enable = $feat)]
            fn vfmax(a: $vec, b: $vec) -> $vec {
                $max(b, a)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn sobel_span(
                r0: &[f32],
                r1: &[f32],
                r2: &[f32],
                out: &mut [f32],
            ) {
                let n = out.len();
                let (r0, r1, r2) = (&r0[..n + 2], &r1[..n + 2], &r2[..n + 2]);
                let two = $set1(2.0);
                let mut i = 0;
                while i + $lanes <= n {
                    // SAFETY: i + $lanes + 2 <= n + 2 bounds every row
                    // load; `out` holds $lanes elements at `i`.
                    unsafe {
                        let a0 = $loadu(r0.as_ptr().add(i));
                        let a1 = $loadu(r1.as_ptr().add(i));
                        let a2 = $loadu(r2.as_ptr().add(i));
                        let b0 = $loadu(r0.as_ptr().add(i + 1));
                        let b2 = $loadu(r2.as_ptr().add(i + 1));
                        let c0 = $loadu(r0.as_ptr().add(i + 2));
                        let c1 = $loadu(r1.as_ptr().add(i + 2));
                        let c2 = $loadu(r2.as_ptr().add(i + 2));
                        let gx = $sub(
                            $add($add(c0, $mul(two, c1)), c2),
                            $add($add(a0, $mul(two, a1)), a2),
                        );
                        let gy = $sub(
                            $add($add(a2, $mul(two, b2)), c2),
                            $add($add(a0, $mul(two, b0)), c0),
                        );
                        $storeu(out.as_mut_ptr().add(i), $add(vabs(gx), vabs(gy)));
                    }
                    i += $lanes;
                }
                scalar::sobel_span(&r0[i..], &r1[i..], &r2[i..], &mut out[i..]);
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn sub_span(a: &[f32], b: &[f32], out: &mut [f32]) {
                let n = out.len();
                let (a, b) = (&a[..n], &b[..n]);
                let mut i = 0;
                while i + $lanes <= n {
                    // SAFETY: i + $lanes <= n bounds all three accesses.
                    unsafe {
                        let va = $loadu(a.as_ptr().add(i));
                        let vb = $loadu(b.as_ptr().add(i));
                        $storeu(out.as_mut_ptr().add(i), $sub(va, vb));
                    }
                    i += $lanes;
                }
                scalar::sub_span(&a[i..], &b[i..], &mut out[i..]);
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn add_assign_span(acc: &mut [f32], row: &[f32]) {
                let n = acc.len();
                let row = &row[..n];
                let mut i = 0;
                while i + $lanes <= n {
                    // SAFETY: i + $lanes <= n bounds both accesses.
                    unsafe {
                        let s = $loadu(acc.as_ptr().add(i));
                        let v = $loadu(row.as_ptr().add(i));
                        $storeu(acc.as_mut_ptr().add(i), $add(s, v));
                    }
                    i += $lanes;
                }
                scalar::add_assign_span(&mut acc[i..], &row[i..]);
            }

            #[target_feature(enable = $feat)]
            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn preliminary_half(
                up: &[f32],
                pe: &[f32],
                perr: &[f32],
                out: &mut [f32],
                denom: f32,
                gain: f32,
                s_max: f32,
            ) {
                let n = out.len();
                let (up, pe, perr) = (&up[..n], &pe[..n], &perr[..n]);
                let vdenom = $set1(denom);
                let vgain = $set1(gain);
                let vsmax = $set1(s_max);
                let vzero = $set1(0.0);
                let mut i = 0;
                while i + $lanes <= n {
                    // SAFETY: i + $lanes <= n bounds every access.
                    unsafe {
                        let u = $loadu(up.as_ptr().add(i));
                        let e = $loadu(pe.as_ptr().add(i));
                        let err = $loadu(perr.as_ptr().add(i));
                        let x = $div(e, vdenom);
                        let s = vfmin(vfmax($mul(vgain, $sqrt(x)), vzero), vsmax);
                        $storeu(out.as_mut_ptr().add(i), $add(u, $mul(s, err)));
                    }
                    i += $lanes;
                }
                scalar::preliminary_half(
                    &up[i..],
                    &pe[i..],
                    &perr[i..],
                    &mut out[i..],
                    denom,
                    gain,
                    s_max,
                );
            }

            /// Min/max fold of the 3×3 window columns `i..i+3`, same
            /// order as `math::minmax3x3`.
            #[target_feature(enable = $feat)]
            #[allow(clippy::too_many_arguments)]
            fn minmax9(
                a0: $vec, b0: $vec, c0: $vec,
                a1: $vec, b1: $vec, c1: $vec,
                a2: $vec, b2: $vec, c2: $vec,
            ) -> ($vec, $vec) {
                let mut mn = a0;
                let mut mx = a0;
                for v in [b0, c0, a1, b1, c1, a2, b2, c2] {
                    mn = vfmin(mn, v);
                    mx = vfmax(mx, v);
                }
                (mn, mx)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn overshoot_span(
                r0: &[f32],
                r1: &[f32],
                r2: &[f32],
                prelim: &[f32],
                out: &mut [f32],
                params: &crate::params::SharpnessParams,
            ) {
                let n = out.len();
                let (r0, r1, r2) = (&r0[..n + 2], &r1[..n + 2], &r2[..n + 2]);
                let prelim_s = &prelim[..n];
                let vosc = $set1(params.osc);
                let vzero = $set1(0.0);
                let v255 = $set1(255.0);
                let mut i = 0;
                while i + $lanes <= n {
                    // SAFETY: i + $lanes + 2 <= n + 2 bounds the row
                    // loads; prelim/out hold $lanes elements at `i`.
                    unsafe {
                        let a0 = $loadu(r0.as_ptr().add(i));
                        let b0 = $loadu(r0.as_ptr().add(i + 1));
                        let c0 = $loadu(r0.as_ptr().add(i + 2));
                        let a1 = $loadu(r1.as_ptr().add(i));
                        let b1 = $loadu(r1.as_ptr().add(i + 1));
                        let c1 = $loadu(r1.as_ptr().add(i + 2));
                        let a2 = $loadu(r2.as_ptr().add(i));
                        let b2 = $loadu(r2.as_ptr().add(i + 1));
                        let c2 = $loadu(r2.as_ptr().add(i + 2));
                        let (mn, mx) = minmax9(a0, b0, c0, a1, b1, c1, a2, b2, c2);
                        let p = $loadu(prelim_s.as_ptr().add(i));
                        let above = vfmin($add(mx, $mul(vosc, $sub(p, mx))), v255);
                        let below = vfmax($sub(mn, $mul(vosc, $sub(mn, p))), vzero);
                        let inside = vfmin(vfmax(p, vzero), v255);
                        let low = vselect(vlt(p, mn), below, inside);
                        $storeu(out.as_mut_ptr().add(i), vselect(vgt(p, mx), above, low));
                    }
                    i += $lanes;
                }
                scalar::overshoot_span(
                    &r0[i..],
                    &r1[i..],
                    &r2[i..],
                    &prelim_s[i..],
                    &mut out[i..],
                    params,
                );
            }

            #[target_feature(enable = $feat)]
            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn fused_half(
                r0: &[f32],
                r1: &[f32],
                r2: &[f32],
                up_row: &[f32],
                pe_row: &[f32],
                out_row: &mut [f32],
                denom: f32,
                gain: f32,
                s_max: f32,
                osc: f32,
            ) {
                let n = out_row.len();
                let (r0, r1, r2) = (&r0[..n + 2], &r1[..n + 2], &r2[..n + 2]);
                let (up_row, pe_row) = (&up_row[..n], &pe_row[..n]);
                let vdenom = $set1(denom);
                let vgain = $set1(gain);
                let vsmax = $set1(s_max);
                let vosc = $set1(osc);
                let vzero = $set1(0.0);
                let v255 = $set1(255.0);
                let mut i = 0;
                while i + $lanes <= n {
                    // SAFETY: i + $lanes + 2 <= n + 2 bounds the row
                    // loads; up/pe/out hold $lanes elements at `i`.
                    unsafe {
                        let a0 = $loadu(r0.as_ptr().add(i));
                        let b0 = $loadu(r0.as_ptr().add(i + 1));
                        let c0 = $loadu(r0.as_ptr().add(i + 2));
                        let a1 = $loadu(r1.as_ptr().add(i));
                        let b1 = $loadu(r1.as_ptr().add(i + 1));
                        let c1 = $loadu(r1.as_ptr().add(i + 2));
                        let a2 = $loadu(r2.as_ptr().add(i));
                        let b2 = $loadu(r2.as_ptr().add(i + 1));
                        let c2 = $loadu(r2.as_ptr().add(i + 2));
                        let (mn, mx) = minmax9(a0, b0, c0, a1, b1, c1, a2, b2, c2);
                        let u = $loadu(up_row.as_ptr().add(i));
                        let e = $loadu(pe_row.as_ptr().add(i));
                        let err = $sub(b1, u);
                        let x = $div(e, vdenom);
                        let s = vfmin(vfmax($mul(vgain, $sqrt(x)), vzero), vsmax);
                        let prelim = $add(u, $mul(s, err));
                        let above = vfmin($add(mx, $mul(vosc, $sub(prelim, mx))), v255);
                        let below = vfmax($sub(mn, $mul(vosc, $sub(mn, prelim))), vzero);
                        let inside = vfmin(vfmax(prelim, vzero), v255);
                        let low = vselect(vlt(prelim, mn), below, inside);
                        $storeu(
                            out_row.as_mut_ptr().add(i),
                            vselect(vgt(prelim, mx), above, low),
                        );
                    }
                    i += $lanes;
                }
                scalar::fused_half(
                    &r0[i..],
                    &r1[i..],
                    &r2[i..],
                    &up_row[i..],
                    &pe_row[i..],
                    &mut out_row[i..],
                    denom,
                    gain,
                    s_max,
                    osc,
                );
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn lerp_span(
                i0: f32,
                i1: f32,
                tops: &[f32],
                bots: &[f32],
                out: &mut [f32],
            ) {
                let n = out.len();
                let (tops, bots) = (&tops[..n], &bots[..n]);
                let v0 = $set1(i0);
                let v1 = $set1(i1);
                let mut i = 0;
                while i + $lanes <= n {
                    // SAFETY: i + $lanes <= n bounds all three accesses.
                    unsafe {
                        let t = $loadu(tops.as_ptr().add(i));
                        let b = $loadu(bots.as_ptr().add(i));
                        $storeu(
                            out.as_mut_ptr().add(i),
                            $add($mul(v0, t), $mul(v1, b)),
                        );
                    }
                    i += $lanes;
                }
                scalar::lerp_span(i0, i1, &tops[i..], &bots[i..], &mut out[i..]);
            }
        }
    };
}

span_backend!(
    sse2,
    "sse2",
    __m128,
    4,
    _mm_loadu_ps,
    _mm_storeu_ps,
    _mm_set1_ps,
    _mm_add_ps,
    _mm_sub_ps,
    _mm_mul_ps,
    _mm_div_ps,
    _mm_sqrt_ps,
    _mm_min_ps,
    _mm_max_ps,
    _mm_and_ps,
    _mm_or_ps,
    _mm_andnot_ps,
    _mm_set1_epi32,
    _mm_castsi128_ps,
    {
        /// Scalar `a < b` per lane (ordered, quiet: NaN → false).
        #[target_feature(enable = "sse2")]
        fn vlt(a: __m128, b: __m128) -> __m128 {
            _mm_cmplt_ps(a, b)
        }

        /// Scalar `a > b` per lane (ordered, quiet: NaN → false).
        #[target_feature(enable = "sse2")]
        fn vgt(a: __m128, b: __m128) -> __m128 {
            _mm_cmpgt_ps(a, b)
        }
    }
);

span_backend!(
    avx2,
    "avx2",
    __m256,
    8,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_set1_ps,
    _mm256_add_ps,
    _mm256_sub_ps,
    _mm256_mul_ps,
    _mm256_div_ps,
    _mm256_sqrt_ps,
    _mm256_min_ps,
    _mm256_max_ps,
    _mm256_and_ps,
    _mm256_or_ps,
    _mm256_andnot_ps,
    _mm256_set1_epi32,
    _mm256_castsi256_ps,
    {
        /// Scalar `a < b` per lane (`_CMP_LT_OQ`: NaN → false).
        #[target_feature(enable = "avx2")]
        fn vlt(a: __m256, b: __m256) -> __m256 {
            _mm256_cmp_ps::<_CMP_LT_OQ>(a, b)
        }

        /// Scalar `a > b` per lane (`_CMP_GT_OQ`: NaN → false).
        #[target_feature(enable = "avx2")]
        fn vgt(a: __m256, b: __m256) -> __m256 {
            _mm256_cmp_ps::<_CMP_GT_OQ>(a, b)
        }
    }
);
