//! Host-SIMD span backends for the hot kernel inner loops.
//!
//! The kernels (and the CPU reference stages) route their branch-free row
//! spans through the dispatchers in this module. Three backends compute
//! the *identical operation sequence*:
//!
//! * [`Backend::Autovec`] — the scalar spans in [`scalar`], written in
//!   layout-friendly form so rustc autovectorizes them. These are the
//!   source of truth; the default build ships only these.
//! * [`Backend::Sse2`] / [`Backend::Avx2`] — explicit `std::arch`
//!   intrinsics behind the `simd` cargo feature (see `x86.rs`), selected
//!   at runtime with `is_x86_feature_detected!`.
//!
//! **Bit-exactness contract.** Simulated seconds are commit-order
//! accounting and never observe the host execution strategy, but pixels
//! must also be bit-identical across backends (tests/simd.rs sweeps all
//! 64 opt configs). That holds because every span is elementwise
//! independent and uses only operations that IEEE 754 defines as
//! correctly rounded per lane (`add`/`sub`/`mul`/`div`/`sqrt`), plus
//! bitwise `abs` and the select-form `math::fmin`/`math::fmax`
//! (`if b < a { b } else { a }`), which map 1:1 onto `minps`/`maxps`
//! with swapped operands and ordered-quiet compares + bitwise selects.
//! FMA is never used — it would contract `a*b + c` into a differently
//! rounded result. `powf` (gamma ≠ 0.5) stays scalar; the gamma == 0.5
//! fast path uses `sqrt`, pinned against `powf(0.5)` by the math tests.
//!
//! This module never touches `GroupCtx` or the cost model: spans operate
//! on plain slices, and all charging stays in the kernels
//! (`scripts/lint_invariants.sh` rule 6).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::math;
use crate::params::{SharpnessParams, INTERP, SCALE};

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86;

/// Which span implementation executes on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Backend {
    /// Scalar spans compiled for the baseline target (autovectorized).
    Autovec = 0,
    /// Explicit 128-bit SSE2 intrinsics (`simd` feature only).
    Sse2 = 1,
    /// Explicit 256-bit AVX2 intrinsics (`simd` feature only).
    Avx2 = 2,
}

impl Backend {
    /// Short lowercase label for reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Autovec => "autovec",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    fn from_u8(v: u8) -> Option<Backend> {
        match v {
            0 => Some(Backend::Autovec),
            1 => Some(Backend::Sse2),
            2 => Some(Backend::Avx2),
            _ => None,
        }
    }
}

/// Sentinel meaning "no forced override".
const FORCE_UNSET: u8 = u8::MAX;

static FORCED: AtomicU8 = AtomicU8::new(FORCE_UNSET);

/// Forces a specific backend (`Some`) or restores runtime detection
/// (`None`). The CLI `--no-simd` flag and the equivalence tests use this;
/// a forced backend that the feature set cannot honour (e.g. `Avx2`
/// without the `simd` feature) silently degrades to [`Backend::Autovec`].
pub fn set_backend(b: Option<Backend>) {
    FORCED.store(b.map_or(FORCE_UNSET, |b| b as u8), Ordering::Relaxed);
}

/// The backend the span dispatchers will use right now: the forced
/// override if set, otherwise the detected-and-cached best backend.
pub fn active_backend() -> Backend {
    let forced = FORCED.load(Ordering::Relaxed);
    match Backend::from_u8(forced) {
        Some(b) => available(b),
        None => detected(),
    }
}

/// Clamps a requested backend to what this build/host can execute.
fn available(b: Backend) -> Backend {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        match b {
            Backend::Avx2 if is_x86_feature_detected!("avx2") => Backend::Avx2,
            Backend::Avx2 | Backend::Sse2 => Backend::Sse2,
            Backend::Autovec => Backend::Autovec,
        }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = b;
        Backend::Autovec
    }
}

/// Runtime-detected best backend, resolved once. The `SHARPEN_SIMD` env
/// var overrides detection: `scalar`/`autovec`/`off` force the scalar
/// spans, `sse2`/`avx2` request that tier (clamped to what the host
/// supports). Unknown values fall through to detection.
fn detected() -> Backend {
    static DETECTED: OnceLock<Backend> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if let Some(req) = backend_from_env(std::env::var("SHARPEN_SIMD").ok().as_deref()) {
            return available(req);
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            if is_x86_feature_detected!("avx2") {
                return Backend::Avx2;
            }
            // SSE2 is part of the x86_64 baseline.
            return Backend::Sse2;
        }
        #[allow(unreachable_code)]
        Backend::Autovec
    })
}

/// Parses the `SHARPEN_SIMD` env override (pure, for testability).
fn backend_from_env(v: Option<&str>) -> Option<Backend> {
    match v {
        Some("scalar") | Some("autovec") | Some("off") => Some(Backend::Autovec),
        Some("sse2") => Some(Backend::Sse2),
        Some("avx2") => Some(Backend::Avx2),
        _ => None,
    }
}

/// Whether the explicit-intrinsics backends were compiled in at all.
pub fn simd_compiled() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64"))
}

/// Detected host CPU SIMD features (always available, independent of the
/// `simd` feature), for bench baselines and `--profile` output.
pub fn host_features() -> &'static str {
    static FEATURES: OnceLock<String> = OnceLock::new();
    FEATURES.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let mut have = vec!["sse2"]; // x86_64 baseline
            for (name, on) in [
                ("sse4.2", is_x86_feature_detected!("sse4.2")),
                ("avx", is_x86_feature_detected!("avx")),
                ("avx2", is_x86_feature_detected!("avx2")),
                ("fma", is_x86_feature_detected!("fma")),
                ("avx512f", is_x86_feature_detected!("avx512f")),
            ] {
                if on {
                    have.push(name);
                }
            }
            have.join("+")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            format!("non-x86 ({})", std::env::consts::ARCH)
        }
    })
}

/// The scalar span implementations — the source of truth every other
/// backend must match bit-for-bit. Written branch-free over the span so
/// rustc's autovectorizer handles the default build.
pub(crate) mod scalar {
    use super::{math, SharpnessParams, INTERP, SCALE};

    /// Sobel over a row span: `r0`/`r1`/`r2` start one column left of the
    /// first output pixel and extend one past the last (pixel `i` reads
    /// columns `i..i+3`).
    pub fn sobel_span(r0: &[f32], r1: &[f32], r2: &[f32], out: &mut [f32]) {
        for i in 0..out.len() {
            let gx = (r0[i + 2] + 2.0 * r1[i + 2] + r2[i + 2]) - (r0[i] + 2.0 * r1[i] + r2[i]);
            let gy = (r2[i] + 2.0 * r2[i + 1] + r2[i + 2]) - (r0[i] + 2.0 * r0[i + 1] + r0[i + 2]);
            out[i] = gx.abs() + gy.abs();
        }
    }

    /// Elementwise `out[i] = a[i] - b[i]` (the pError stage).
    pub fn sub_span(a: &[f32], b: &[f32], out: &mut [f32]) {
        for i in 0..out.len() {
            out[i] = a[i] - b[i];
        }
    }

    /// Elementwise `acc[i] += row[i]` (the reduction add-during-load pass).
    pub fn add_assign_span(acc: &mut [f32], row: &[f32]) {
        for (s, &v) in acc.iter_mut().zip(row) {
            *s += v;
        }
    }

    /// `preliminary` for the default gamma == 0.5: the body of
    /// `math::strength`/`math::preliminary` inlined with `denom` hoisted
    /// (same value every pixel, so bit-identical).
    pub fn preliminary_half(
        up: &[f32],
        pe: &[f32],
        perr: &[f32],
        out: &mut [f32],
        denom: f32,
        gain: f32,
        s_max: f32,
    ) {
        for i in 0..out.len() {
            let x = pe[i] / denom;
            let s = math::fmin(math::fmax(gain * x.sqrt(), 0.0), s_max);
            out[i] = up[i] + s * perr[i];
        }
    }

    /// `preliminary` for arbitrary gamma: per-pixel shared math (`powf`
    /// has no lane-exact vector form, so this path never vectorizes).
    pub fn preliminary_general(
        up: &[f32],
        pe: &[f32],
        perr: &[f32],
        out: &mut [f32],
        mean: f32,
        params: &SharpnessParams,
    ) {
        for i in 0..out.len() {
            out[i] = math::preliminary(up[i], pe[i], perr[i], mean, params);
        }
    }

    /// Overshoot clamp over a row span of body pixels: the 9-element
    /// min/max fold runs in the same order as [`math::minmax3x3`] and the
    /// select chain matches [`math::overshoot`] exactly.
    pub fn overshoot_span(
        r0: &[f32],
        r1: &[f32],
        r2: &[f32],
        prelim: &[f32],
        out: &mut [f32],
        params: &SharpnessParams,
    ) {
        for i in 0..out.len() {
            let mut mn = r0[i];
            let mut mx = r0[i];
            for v in [
                r0[i + 1],
                r0[i + 2],
                r1[i],
                r1[i + 1],
                r1[i + 2],
                r2[i],
                r2[i + 1],
                r2[i + 2],
            ] {
                mn = math::fmin(mn, v);
                mx = math::fmax(mx, v);
            }
            let p = prelim[i];
            let above = math::fmin(mx + params.osc * (p - mx), 255.0);
            let below = math::fmax(mn - params.osc * (mn - p), 0.0);
            let inside = math::fmin(math::fmax(p, 0.0), 255.0);
            let low = if p < mn { below } else { inside };
            out[i] = if p > mx { above } else { low };
        }
    }

    /// Fused sharpness (gamma == 0.5) over a row span of body pixels.
    #[allow(clippy::too_many_arguments)]
    pub fn fused_half(
        r0: &[f32],
        r1: &[f32],
        r2: &[f32],
        up_row: &[f32],
        pe_row: &[f32],
        out_row: &mut [f32],
        denom: f32,
        gain: f32,
        s_max: f32,
        osc: f32,
    ) {
        for i in 0..out_row.len() {
            let mut mn = r0[i];
            let mut mx = r0[i];
            for v in [
                r0[i + 1],
                r0[i + 2],
                r1[i],
                r1[i + 1],
                r1[i + 2],
                r2[i],
                r2[i + 1],
                r2[i + 2],
            ] {
                mn = math::fmin(mn, v);
                mx = math::fmax(mx, v);
            }
            let err = r1[i + 1] - up_row[i];
            let x = pe_row[i] / denom;
            let s = math::fmin(math::fmax(gain * x.sqrt(), 0.0), s_max);
            let prelim = up_row[i] + s * err;
            let above = math::fmin(mx + osc * (prelim - mx), 255.0);
            let below = math::fmax(mn - osc * (mn - prelim), 0.0);
            let inside = math::fmin(math::fmax(prelim, 0.0), 255.0);
            let low = if prelim < mn { below } else { inside };
            out_row[i] = if prelim > mx { above } else { low };
        }
    }

    /// Fused sharpness for arbitrary gamma: per-pixel shared math.
    #[allow(clippy::too_many_arguments)]
    pub fn fused_general(
        r0: &[f32],
        r1: &[f32],
        r2: &[f32],
        up_row: &[f32],
        pe_row: &[f32],
        out_row: &mut [f32],
        mean: f32,
        params: &SharpnessParams,
    ) {
        for i in 0..out_row.len() {
            let mut mn = r0[i];
            let mut mx = r0[i];
            for v in [
                r0[i + 1],
                r0[i + 2],
                r1[i],
                r1[i + 1],
                r1[i + 2],
                r2[i],
                r2[i + 1],
                r2[i + 2],
            ] {
                mn = math::fmin(mn, v);
                mx = math::fmax(mx, v);
            }
            let err = r1[i + 1] - up_row[i];
            let prelim = math::preliminary(up_row[i], pe_row[i], err, mean, params);
            out_row[i] = math::overshoot(prelim, mn, mx, params);
        }
    }

    /// Upscale column interpolants: `out[4k + c] = INTERP[c][0] * src[k] +
    /// INTERP[c][1] * src[k+1]` for every downscaled window `k`
    /// (`out.len() == 4 * (src.len() - 1)`).
    pub fn interp4_span(src: &[f32], out: &mut [f32]) {
        for k in 0..src.len() - 1 {
            for c in 0..SCALE {
                out[SCALE * k + c] = INTERP[c][0] * src[k] + INTERP[c][1] * src[k + 1];
            }
        }
    }

    /// Row lerp: `out[j] = i0 * tops[j] + i1 * bots[j]` (the inner loop of
    /// the upscale-center fast path).
    pub fn lerp_span(i0: f32, i1: f32, tops: &[f32], bots: &[f32], out: &mut [f32]) {
        for j in 0..out.len() {
            out[j] = i0 * tops[j] + i1 * bots[j];
        }
    }
}

/// Dispatch macro: forced/detected backend → intrinsic or scalar span.
/// With the `simd` feature off the match collapses to the scalar call.
macro_rules! dispatch {
    ($name:ident ( $($arg:expr),* )) => {{
        match active_backend() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: `active_backend` only returns Sse2/Avx2 when the
            // feature is compiled in and the host supports it (SSE2 is
            // the x86_64 baseline; Avx2 is runtime-detected).
            Backend::Avx2 => unsafe { x86::avx2::$name($($arg),*) },
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Sse2 => unsafe { x86::sse2::$name($($arg),*) },
            _ => scalar::$name($($arg),*),
        }
    }};
}

/// Sobel over a row span of body pixels (see [`scalar::sobel_span`]).
#[inline]
pub fn sobel_span(r0: &[f32], r1: &[f32], r2: &[f32], out: &mut [f32]) {
    dispatch!(sobel_span(r0, r1, r2, out))
}

/// Elementwise subtraction span (the pError stage).
#[inline]
pub fn sub_span(a: &[f32], b: &[f32], out: &mut [f32]) {
    dispatch!(sub_span(a, b, out))
}

/// Elementwise accumulate span (the reduction add-during-load pass).
#[inline]
pub fn add_assign_span(acc: &mut [f32], row: &[f32]) {
    dispatch!(add_assign_span(acc, row))
}

/// Strength + preliminary over a row span. Dispatches to the vector
/// backends only for the default gamma == 0.5 (`sqrt` is lane-exact;
/// `powf` is not and stays scalar).
#[inline]
pub fn preliminary_span(
    up: &[f32],
    pe: &[f32],
    perr: &[f32],
    out: &mut [f32],
    mean: f32,
    params: &SharpnessParams,
) {
    if params.gamma == 0.5 {
        let denom = mean + params.eps;
        let (gain, s_max) = (params.gain, params.s_max);
        dispatch!(preliminary_half(up, pe, perr, out, denom, gain, s_max))
    } else {
        scalar::preliminary_general(up, pe, perr, out, mean, params)
    }
}

/// Overshoot clamp over a row span of body pixels.
#[inline]
pub fn overshoot_span(
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    prelim: &[f32],
    out: &mut [f32],
    params: &SharpnessParams,
) {
    dispatch!(overshoot_span(r0, r1, r2, prelim, out, params))
}

/// Fused sharpness over a row span of body pixels. As with
/// [`preliminary_span`], only gamma == 0.5 dispatches to the vector
/// backends.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn fused_span(
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    up_row: &[f32],
    pe_row: &[f32],
    out_row: &mut [f32],
    mean: f32,
    params: &SharpnessParams,
) {
    if params.gamma == 0.5 {
        let denom = mean + params.eps;
        let (gain, s_max, osc) = (params.gain, params.s_max, params.osc);
        dispatch!(fused_half(
            r0, r1, r2, up_row, pe_row, out_row, denom, gain, s_max, osc
        ))
    } else {
        scalar::fused_general(r0, r1, r2, up_row, pe_row, out_row, mean, params)
    }
}

/// Upscale column interpolants (see [`scalar::interp4_span`]). The
/// interleaved 4-phase store pattern is a shuffle, not a lane op, so this
/// stays on the scalar/autovec path for every backend.
#[inline]
pub fn interp4_span(src: &[f32], out: &mut [f32]) {
    scalar::interp4_span(src, out)
}

/// Row lerp for the upscale-center fast path.
#[inline]
pub fn lerp_span(i0: f32, i1: f32, tops: &[f32], bots: &[f32], out: &mut [f32]) {
    dispatch!(lerp_span(i0, i1, tops, bots, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_parses_known_values() {
        assert_eq!(backend_from_env(Some("scalar")), Some(Backend::Autovec));
        assert_eq!(backend_from_env(Some("autovec")), Some(Backend::Autovec));
        assert_eq!(backend_from_env(Some("off")), Some(Backend::Autovec));
        assert_eq!(backend_from_env(Some("sse2")), Some(Backend::Sse2));
        assert_eq!(backend_from_env(Some("avx2")), Some(Backend::Avx2));
        assert_eq!(backend_from_env(Some("bogus")), None);
        assert_eq!(backend_from_env(None), None);
    }

    #[test]
    fn forced_backend_wins_and_degrades_to_available() {
        set_backend(Some(Backend::Autovec));
        assert_eq!(active_backend(), Backend::Autovec);
        set_backend(Some(Backend::Avx2));
        let got = active_backend();
        if simd_compiled() {
            assert!(matches!(got, Backend::Avx2 | Backend::Sse2));
        } else {
            assert_eq!(got, Backend::Autovec);
        }
        set_backend(None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Backend::Autovec.label(), "autovec");
        assert_eq!(Backend::Sse2.label(), "sse2");
        assert_eq!(Backend::Avx2.label(), "avx2");
    }

    #[test]
    fn host_features_reports_baseline() {
        assert!(host_features().contains("sse2") || !cfg!(target_arch = "x86_64"));
    }

    /// Every dispatched span must agree bit-for-bit with the scalar
    /// reference on ragged lengths (vector main loop + scalar tail).
    #[test]
    fn spans_match_scalar_bitwise_on_ragged_lengths() {
        let params = SharpnessParams::default();
        let mean = 37.25f32;
        let denom = mean + params.eps;
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 100] {
            let r0: Vec<f32> = (0..n + 2)
                .map(|i| (i as f32 * 1.7).sin() * 120.0 + 90.0)
                .collect();
            let r1: Vec<f32> = (0..n + 2)
                .map(|i| (i as f32 * 0.9).cos() * 110.0 + 100.0)
                .collect();
            let r2: Vec<f32> = (0..n + 2)
                .map(|i| (i as f32 * 2.3).sin() * 80.0 + 70.0)
                .collect();
            let up: Vec<f32> = (0..n)
                .map(|i| (i as f32 * 1.1).cos() * 100.0 + 100.0)
                .collect();
            let pe: Vec<f32> = (0..n)
                .map(|i| (i as f32 * 0.7).sin().abs() * 60.0)
                .collect();
            let perr: Vec<f32> = (0..n).map(|i| (i as f32 * 1.9).sin() * 25.0).collect();

            let mut want = vec![0.0f32; n];
            let mut got = vec![0.0f32; n];

            scalar::sobel_span(&r0, &r1, &r2, &mut want);
            sobel_span(&r0, &r1, &r2, &mut got);
            assert_eq!(bits(&want), bits(&got), "sobel n={n}");

            scalar::sub_span(&r1[..n], &up, &mut want);
            sub_span(&r1[..n], &up, &mut got);
            assert_eq!(bits(&want), bits(&got), "sub n={n}");

            scalar::preliminary_half(&up, &pe, &perr, &mut want, denom, params.gain, params.s_max);
            preliminary_span(&up, &pe, &perr, &mut got, mean, &params);
            assert_eq!(bits(&want), bits(&got), "preliminary n={n}");

            scalar::overshoot_span(&r0, &r1, &r2, &up, &mut want, &params);
            overshoot_span(&r0, &r1, &r2, &up, &mut got, &params);
            assert_eq!(bits(&want), bits(&got), "overshoot n={n}");

            scalar::fused_half(
                &r0,
                &r1,
                &r2,
                &up,
                &pe,
                &mut want,
                denom,
                params.gain,
                params.s_max,
                params.osc,
            );
            fused_span(&r0, &r1, &r2, &up, &pe, &mut got, mean, &params);
            assert_eq!(bits(&want), bits(&got), "fused n={n}");

            let mut acc_a: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
            let mut acc_b = acc_a.clone();
            scalar::add_assign_span(&mut acc_a, &perr);
            add_assign_span(&mut acc_b, &perr);
            assert_eq!(bits(&acc_a), bits(&acc_b), "add_assign n={n}");

            scalar::lerp_span(0.75, 0.25, &r0[..n], &r1[..n], &mut want);
            lerp_span(0.75, 0.25, &r0[..n], &r1[..n], &mut got);
            assert_eq!(bits(&want), bits(&got), "lerp n={n}");
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}
