//! The downscale kernel: one thread per downscaled pixel, averaging its
//! 4×4 source block (paper Fig. 2).

use simgpu::buffer::Buffer;
use simgpu::cost::OpCounts;
use simgpu::error::Result;
use simgpu::kernel::items;
use simgpu::queue::CommandQueue;
use simgpu::timing::KernelTime;

use super::{grid2d, KernelTuning, SrcImage};
use crate::math;
use crate::params::SCALE;

/// Dispatches the downscale kernel: `down[j, i] = mean(src 4×4 block)`.
///
/// Works against either the raw original or the padded source (the
/// data-transfer optimization removes the raw upload entirely, so the
/// optimized pipeline points `src` at the padded buffer).
pub fn downscale_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    down: &Buffer<f32>,
    w4: usize,
    h4: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    let desc = grid2d("downscale", w4, h4);
    let dview = down.write_view();
    let src = src.clone();
    // Per item: 15 adds + 1 mul for the block mean, plus index arithmetic.
    let per_item = OpCounts::ZERO.adds(15).muls(1).plus(&tune.idx_ops());
    q.run(&desc, &[down], move |g| {
        let mut n_items = 0u64;
        for l in items(g.group_size) {
            let [i, j] = g.global_id(l);
            if i >= w4 || j >= h4 {
                continue;
            }
            n_items += 1;
            let mut block = [0.0f32; 16];
            for dy in 0..SCALE {
                for dx in 0..SCALE {
                    block[dy * SCALE + dx] = g.load(
                        &src.view,
                        src.idx((SCALE * i + dx) as isize, (SCALE * j + dy) as isize),
                    );
                }
            }
            g.store(&dview, j * w4 + i, math::downscale_pixel(&block));
        }
        g.charge_n(&per_item, n_items);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::stages;
    use imagekit::generate;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    #[test]
    fn matches_cpu_reference_exactly() {
        let img = generate::natural(64, 48, 5);
        let (cpu_down, _) = stages::downscale(&img);

        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", img.pixels());
        let down = ctx.buffer::<f32>("down", 16 * 12);
        let src = SrcImage { view: orig.view(), pitch: 64, pad: 0 };
        downscale_kernel(&mut q, &src, &down, 16, 12, KernelTuning::default()).unwrap();
        assert_eq!(down.snapshot(), cpu_down.pixels());
    }

    #[test]
    fn padded_source_gives_same_result() {
        let img = generate::natural(32, 32, 7);
        let (cpu_down, _) = stages::downscale(&img);

        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let padded = img.padded(1, false);
        let pbuf = ctx.buffer_from("padded", padded.pixels());
        let down = ctx.buffer::<f32>("down", 8 * 8);
        let src = SrcImage { view: pbuf.view(), pitch: 34, pad: 1 };
        downscale_kernel(&mut q, &src, &down, 8, 8, KernelTuning::default()).unwrap();
        assert_eq!(down.snapshot(), cpu_down.pixels());
    }

    #[test]
    fn charges_expected_traffic() {
        let img = generate::natural(64, 64, 1);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", img.pixels());
        let down = ctx.buffer::<f32>("down", 16 * 16);
        let src = SrcImage { view: orig.view(), pitch: 64, pad: 0 };
        downscale_kernel(&mut q, &src, &down, 16, 16, KernelTuning::default()).unwrap();
        let c = q.records()[0].counters.unwrap();
        assert_eq!(c.global_read_scalar, 16 * 16 * 16 * 4);
        assert_eq!(c.global_write_scalar, 16 * 16 * 4);
        assert_eq!(c.ops.add, 16 * 16 * (15 + 2));
    }
}
