//! The downscale kernel: one thread per downscaled pixel, averaging its
//! 4×4 source block (paper Fig. 2).

use simgpu::access::{AccessSummary, AccessWindow, BufRef};
use simgpu::buffer::Buffer;
use simgpu::cost::OpCounts;
use simgpu::error::{Error, Result};
use simgpu::kernel::KernelDesc;
use simgpu::queue::CommandQueue;
use simgpu::timing::KernelTime;

use super::{covered_rows, grid2d, summarize, KernelTuning, Launch, SrcImage, SrcInfo};
use crate::params::{MIN_DIM, SCALE};

/// Dispatches the downscale kernel: `down[j, i] = mean(src block)`, where
/// interior blocks are 4×4 and the ragged right/bottom blocks (widths not
/// a multiple of 4) average only the pixels that exist, exactly as the CPU
/// reference does. The downscaled grid is `⌈w/4⌉ × ⌈h/4⌉`.
///
/// Works against either the raw original or the padded source (the
/// data-transfer optimization removes the raw upload entirely, so the
/// optimized pipeline points `src` at the padded buffer).
pub fn downscale_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    down: &Buffer<f32>,
    w: usize,
    h: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    downscale_launch(q, src, down, w, h, tune, Launch::Full)
}

/// [`downscale_kernel`] with an explicit [`Launch`] mode (one work-group
/// row covers 16 downscaled rows = 64 source rows).
pub(crate) fn downscale_launch(
    q: &mut CommandQueue,
    src: &SrcImage,
    down: &Buffer<f32>,
    w: usize,
    h: usize,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    if w < MIN_DIM || h < MIN_DIM {
        return Err(Error::InvalidKernelArgs {
            kernel: "downscale".into(),
            detail: format!("shape {w}x{h} below the {MIN_DIM}x{MIN_DIM} minimum"),
        });
    }
    let (wd, hd) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    let desc = grid2d("downscale", wd, hd);
    let src = src.clone();
    let access = summarize(&launch, &desc, |groups| {
        downscale_access(&desc, groups, &SrcInfo::of(&src), down.info(), w, h)
    });
    let dview = down.write_view();
    // Per full block: 15 adds + 1 mul for the mean, plus index arithmetic.
    let per_item = OpCounts::ZERO.adds(15).muls(1).plus(&tune.idx_ops());
    let idx_ops = tune.idx_ops();
    launch.dispatch(q, &desc, access, &[down], move |g| {
        // Row-segment form: each output row of the group reads its four
        // source rows as contiguous slices and accumulates the 4×4 block
        // sums in the same dy-major/dx-minor order as
        // [`math::downscale_pixel`] (bit-identical results), with the
        // per-thread traffic — 16 scalar loads, 1 scalar store — charged
        // in bulk. Ragged blocks (right column with w % 4 != 0, bottom row
        // with h % 4 != 0) fall back to per-element loads of the pixels
        // that exist, in the same dy-major order as the CPU partial-block
        // path.
        let gw = g.group_size[0];
        let x_start = g.group_id[0] * gw;
        let mut n_full = 0u64;
        let mut tail_adds = 0u64;
        let mut n_tail = 0u64;
        let mut scratch = [0.0f32; super::GROUP_2D[0]];
        for ly in 0..g.group_size[1] {
            g.begin_item([0, ly]);
            let j = g.group_id[1] * g.group_size[1] + ly;
            if j >= hd || x_start >= wd {
                continue;
            }
            let x_end = (x_start + gw).min(wd);
            let bh = (h - SCALE * j).min(SCALE);
            // Columns whose 4-wide, 4-tall source block is complete; a
            // short bottom row makes every block in the segment partial.
            let full_end = if bh == SCALE {
                x_end.min(w / SCALE)
            } else {
                x_start
            };
            if full_end > x_start {
                let span = full_end - x_start;
                n_full += span as u64;
                let row_out = &mut scratch[..span];
                let rows: [&[f32]; SCALE] = std::array::from_fn(|dy| {
                    src.view.slice_raw(
                        src.idx((SCALE * x_start) as isize, (SCALE * j + dy) as isize),
                        SCALE * span,
                    )
                });
                for (i, o) in row_out.iter_mut().enumerate() {
                    let mut s = 0.0f32;
                    for row in &rows {
                        for dx in 0..SCALE {
                            s += row[SCALE * i + dx];
                        }
                    }
                    *o = s * (1.0 / 16.0);
                }
                dview.set_span_raw(j * wd + x_start, row_out);
            }
            for i in full_end..x_end {
                let bw = (w - SCALE * i).min(SCALE);
                n_tail += 1;
                tail_adds += (bw * bh) as u64 - 1;
                let mut s = 0.0f32;
                for dy in 0..bh {
                    for dx in 0..bw {
                        s += g.load(
                            &src.view,
                            src.idx((SCALE * i + dx) as isize, (SCALE * j + dy) as isize),
                        );
                    }
                }
                g.store(&dview, j * wd + i, s * (1.0 / (bw * bh) as f32));
            }
        }
        g.charge_global_n(64, 0, 4, 0, n_full);
        g.charge_n(&per_item, n_full);
        g.charge_n(&OpCounts::ZERO.adds(1), tail_adds);
        g.charge_n(&OpCounts::ZERO.muls(1).plus(&idx_ops), n_tail);
    })
}

/// Closed-form access summary of the downscale dispatch: full 4×4 blocks
/// read their source rows as slices (16 loads per block, exact); the
/// ragged right column and bottom row fall back to per-element loads of
/// the pixels that exist. Every covered downscaled row is written in full.
pub(crate) fn downscale_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    src: &SrcInfo,
    down: BufRef,
    w: usize,
    h: usize,
) -> AccessSummary {
    let (wd, hd) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    let rows = covered_rows(desc, &groups, hd);
    let nr = rows.len();
    let mut s = AccessSummary::new(&desc.name, groups, desc.total_groups());
    if nr == 0 {
        return s;
    }
    s.push(AccessWindow::write(down, rows.start * wd, wd).by_y(nr, wd));
    // Covered rows whose blocks are 4 tall (a short bottom row is the only
    // exception, and only when h is not a multiple of 4).
    let njf = rows.end.min(h / SCALE).saturating_sub(rows.start);
    let fc = w / SCALE;
    let bw_tail = w % SCALE;
    if njf > 0 {
        if fc > 0 {
            s.push(
                AccessWindow::read(
                    src.buf.clone(),
                    src.idx(0, (SCALE * rows.start) as isize),
                    SCALE * fc,
                )
                .by_x(SCALE, src.pitch)
                .by_y(njf, SCALE * src.pitch),
            );
        }
        if bw_tail > 0 {
            s.push(
                AccessWindow::read(
                    src.buf.clone(),
                    src.idx((SCALE * fc) as isize, (SCALE * rows.start) as isize),
                    bw_tail,
                )
                .by_x(SCALE, src.pitch)
                .by_y(njf, SCALE * src.pitch),
            );
        }
    }
    let bottom = !h.is_multiple_of(SCALE) && rows.contains(&(hd - 1));
    let bh = h % SCALE;
    if bottom {
        s.push(
            AccessWindow::read(src.buf.clone(), src.idx(0, (SCALE * (hd - 1)) as isize), w)
                .by_x(bh, src.pitch),
        );
    }
    let n_full = (njf * fc) as u64;
    let tail_cols = (wd - fc) as u64;
    let tail_reads = (njf as u64) * tail_cols * (bw_tail as u64) * SCALE as u64
        + if bottom { (w * bh) as u64 } else { 0 };
    let tail_stores = (njf as u64) * tail_cols + if bottom { wd as u64 } else { 0 };
    s.charge_global_n(64, 0, 4, 0, n_full);
    s.charge_global_n(4, 0, 0, 0, tail_reads);
    s.charge_global_n(0, 0, 4, 0, tail_stores);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::stages;
    use imagekit::generate;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    #[test]
    fn matches_cpu_reference_exactly() {
        let img = generate::natural(64, 48, 5);
        let (cpu_down, _) = stages::downscale(&img);

        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", img.pixels());
        let down = ctx.buffer::<f32>("down", 16 * 12);
        let src = SrcImage {
            view: orig.view(),
            pitch: 64,
            pad: 0,
        };
        downscale_kernel(&mut q, &src, &down, 64, 48, KernelTuning::default()).unwrap();
        assert_eq!(down.snapshot(), cpu_down.pixels());
    }

    #[test]
    fn ragged_shapes_match_cpu_reference_exactly() {
        for (w, h) in [
            (5, 7),
            (13, 11),
            (33, 29),
            (1001 / 7, 701 / 7),
            (3, 3),
            (66, 18),
        ] {
            let img = generate::natural(w, h, 11);
            let (cpu_down, _) = stages::downscale(&img);
            let (wd, hd) = (w.div_ceil(SCALE), h.div_ceil(SCALE));

            let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
            let mut q = ctx.queue();
            let orig = ctx.buffer_from("original", img.pixels());
            let down = ctx.buffer::<f32>("down", wd * hd);
            let src = SrcImage {
                view: orig.view(),
                pitch: w,
                pad: 0,
            };
            downscale_kernel(&mut q, &src, &down, w, h, KernelTuning::default()).unwrap();
            assert_eq!(down.snapshot(), cpu_down.pixels(), "{w}x{h}");
        }
    }

    #[test]
    fn padded_source_gives_same_result() {
        let img = generate::natural(32, 32, 7);
        let (cpu_down, _) = stages::downscale(&img);

        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let padded = img.padded(1, false);
        let pbuf = ctx.buffer_from("padded", padded.pixels());
        let down = ctx.buffer::<f32>("down", 8 * 8);
        let src = SrcImage {
            view: pbuf.view(),
            pitch: 34,
            pad: 1,
        };
        downscale_kernel(&mut q, &src, &down, 32, 32, KernelTuning::default()).unwrap();
        assert_eq!(down.snapshot(), cpu_down.pixels());
    }

    #[test]
    fn charges_expected_traffic() {
        let img = generate::natural(64, 64, 1);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", img.pixels());
        let down = ctx.buffer::<f32>("down", 16 * 16);
        let src = SrcImage {
            view: orig.view(),
            pitch: 64,
            pad: 0,
        };
        downscale_kernel(&mut q, &src, &down, 64, 64, KernelTuning::default()).unwrap();
        let c = q.records()[0].counters.unwrap();
        assert_eq!(c.global_read_scalar, 16 * 16 * 16 * 4);
        assert_eq!(c.global_write_scalar, 16 * 16 * 4);
        assert_eq!(c.ops.add, 16 * 16 * (15 + 2));
    }
}
