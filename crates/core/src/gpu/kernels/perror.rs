//! The unfused pError kernel: `pError = original − upscaled`.
//!
//! Only the base pipeline dispatches this; kernel fusion (Section V-B)
//! folds the subtraction into the fused sharpness kernel and keeps the
//! difference in registers.

use simgpu::access::{AccessSummary, AccessWindow, BufRef};
use simgpu::buffer::{Buffer, GlobalView};
use simgpu::cost::OpCounts;
use simgpu::error::Result;
use simgpu::kernel::KernelDesc;
use simgpu::queue::CommandQueue;
use simgpu::timing::KernelTime;

use super::{
    covered_rows, grid2d, simd, summarize, KernelTuning, Launch, SrcImage, SrcInfo, GROUP_2D,
};

/// Dispatches the pError kernel over the full image. `ws` is the device
/// row stride of the up/pError buffers (equal to `w` for multiple-of-4
/// widths).
#[allow(clippy::too_many_arguments)]
pub fn perror_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    up: &GlobalView<f32>,
    perr: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    perror_launch(q, src, up, perr, w, h, ws, tune, Launch::Full)
}

/// [`perror_kernel`] with an explicit [`Launch`] mode (one work-group row
/// covers 16 image rows).
#[allow(clippy::too_many_arguments)]
pub(crate) fn perror_launch(
    q: &mut CommandQueue,
    src: &SrcImage,
    up: &GlobalView<f32>,
    perr: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    let desc = grid2d("perror", w, h);
    let access = summarize(&launch, &desc, |groups| {
        perror_access(
            &desc,
            groups,
            &SrcInfo::of(src),
            up.info(),
            perr.info(),
            w,
            h,
            ws,
        )
    });
    let pview = perr.write_view();
    let src = src.clone();
    let up = up.clone();
    let per_item = OpCounts::ZERO.adds(1).plus(&tune.idx_ops());
    // Row-span form: the subtraction runs over contiguous row slices
    // (autovectorized or dispatched via [`simd::sub_span`]). Charges are
    // exact — two 4 B loads and one 4 B store per covered pixel, the same
    // bytes the per-item form charged through `load`/`store`.
    launch.dispatch(q, &desc, access, &[perr], move |g| {
        let gw = g.group_size[0];
        let x_start = g.group_id[0] * gw;
        let mut n_items = 0u64;
        let mut scratch = [0.0f32; GROUP_2D[0]];
        for ly in 0..g.group_size[1] {
            g.begin_item([0, ly]);
            let y = g.group_id[1] * g.group_size[1] + ly;
            if y >= h || x_start >= w {
                continue;
            }
            let span = (x_start + gw).min(w) - x_start;
            n_items += span as u64;
            let o = src
                .view
                .slice_raw(src.idx(x_start as isize, y as isize), span);
            let u = up.slice_raw(y * ws + x_start, span);
            let row_out = &mut scratch[..span];
            simd::sub_span(o, u, row_out);
            pview.set_span_raw(y * ws + x_start, row_out);
        }
        g.charge_global_n(8, 0, 4, 0, n_items);
        g.charge_n(&per_item, n_items);
    })
}

/// Closed-form access summary of the pError dispatch for the flat group
/// range `groups`: per covered row, one `w`-element read of the original
/// and upscaled rows plus one `w`-element write of the pError row. Charges
/// are exact (ratio 1).
#[allow(clippy::too_many_arguments)]
pub(crate) fn perror_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    src: &SrcInfo,
    up: BufRef,
    perr: BufRef,
    w: usize,
    h: usize,
    ws: usize,
) -> AccessSummary {
    let rows = covered_rows(desc, &groups, h);
    let mut s = AccessSummary::new(&desc.name, groups, desc.total_groups());
    let nr = rows.len();
    if nr > 0 {
        s.push(
            AccessWindow::read(src.buf.clone(), src.idx(0, rows.start as isize), w)
                .by_y(nr, src.pitch),
        );
        s.push(AccessWindow::read(up, rows.start * ws, w).by_y(nr, ws));
        s.push(AccessWindow::write(perr, rows.start * ws, w).by_y(nr, ws));
        s.charge_global_n(8, 0, 4, 0, (w * nr) as u64);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::stages;
    use imagekit::generate;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    #[test]
    fn matches_cpu_reference_exactly() {
        let img = generate::natural(32, 32, 3);
        let (down, _) = stages::downscale(&img);
        let (up, _, _) = stages::upscale(&down, 32, 32);
        let (cpu_err, _) = stages::perror(&img, &up);

        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", img.pixels());
        let upbuf = ctx.buffer_from("up", up.pixels());
        let perr = ctx.buffer::<f32>("pError", 32 * 32);
        let src = SrcImage {
            view: orig.view(),
            pitch: 32,
            pad: 0,
        };
        perror_kernel(
            &mut q,
            &src,
            &upbuf.view(),
            &perr,
            32,
            32,
            32,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(perr.snapshot(), cpu_err.pixels());
    }
}
