//! The unfused pError kernel: `pError = original − upscaled`.
//!
//! Only the base pipeline dispatches this; kernel fusion (Section V-B)
//! folds the subtraction into the fused sharpness kernel and keeps the
//! difference in registers.

use simgpu::buffer::{Buffer, GlobalView};
use simgpu::cost::OpCounts;
use simgpu::error::Result;
use simgpu::kernel::items;
use simgpu::queue::CommandQueue;
use simgpu::timing::KernelTime;

use super::{grid2d, KernelTuning, Launch, SrcImage};

/// Dispatches the pError kernel over the full image. `ws` is the device
/// row stride of the up/pError buffers (equal to `w` for multiple-of-4
/// widths).
#[allow(clippy::too_many_arguments)]
pub fn perror_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    up: &GlobalView<f32>,
    perr: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    perror_launch(q, src, up, perr, w, h, ws, tune, Launch::Full)
}

/// [`perror_kernel`] with an explicit [`Launch`] mode (one work-group row
/// covers 16 image rows).
#[allow(clippy::too_many_arguments)]
pub(crate) fn perror_launch(
    q: &mut CommandQueue,
    src: &SrcImage,
    up: &GlobalView<f32>,
    perr: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    let desc = grid2d("perror", w, h);
    let pview = perr.write_view();
    let src = src.clone();
    let up = up.clone();
    let per_item = OpCounts::ZERO.adds(1).plus(&tune.idx_ops());
    launch.dispatch(q, &desc, &[perr], move |g| {
        let mut n_items = 0u64;
        for l in items(g.group_size) {
            g.begin_item(l);
            let [x, y] = g.global_id(l);
            if x >= w || y >= h {
                continue;
            }
            n_items += 1;
            let o = g.load(&src.view, src.idx(x as isize, y as isize));
            let u = g.load(&up, y * ws + x);
            g.store(&pview, y * ws + x, o - u);
        }
        g.charge_n(&per_item, n_items);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::stages;
    use imagekit::generate;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    #[test]
    fn matches_cpu_reference_exactly() {
        let img = generate::natural(32, 32, 3);
        let (down, _) = stages::downscale(&img);
        let (up, _, _) = stages::upscale(&down, 32, 32);
        let (cpu_err, _) = stages::perror(&img, &up);

        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", img.pixels());
        let upbuf = ctx.buffer_from("up", up.pixels());
        let perr = ctx.buffer::<f32>("pError", 32 * 32);
        let src = SrcImage {
            view: orig.view(),
            pitch: 32,
            pad: 0,
        };
        perror_kernel(
            &mut q,
            &src,
            &upbuf.view(),
            &perr,
            32,
            32,
            32,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(perr.snapshot(), cpu_err.pixels());
    }
}
