//! Sharpening kernels: the unfused pipeline tail (preliminary, overshoot)
//! and the fused `sharpness` kernel of Section V-B, in scalar and
//! vectorized (Section V-D) variants.
//!
//! Fusion folds pError + preliminary + overshoot into one kernel: the
//! difference value lives in a register ("the difference matrix is stored
//! in threads' registers dispersedly"), eliminating the pError and
//! preliminary global matrices and their traffic, plus two kernel
//! launches.

use simgpu::buffer::{Buffer, GlobalView};
use simgpu::cost::OpCounts;
use simgpu::error::Result;
use simgpu::kernel::items;
use simgpu::queue::CommandQueue;
use simgpu::timing::KernelTime;

use super::{grid2d, KernelTuning, SrcImage};
use crate::math;
use crate::params::SharpnessParams;

/// Unfused preliminary kernel: `prelim = up + strength(pEdge) · pError`.
#[allow(clippy::too_many_arguments)]
pub fn preliminary_kernel(
    q: &mut CommandQueue,
    up: &GlobalView<f32>,
    pedge: &GlobalView<f32>,
    perr: &GlobalView<f32>,
    prelim: &Buffer<f32>,
    mean: f32,
    params: SharpnessParams,
    w: usize,
    h: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    let desc = grid2d("preliminary", w, h);
    let out = prelim.write_view();
    let (up, pedge, perr) = (up.clone(), pedge.clone(), perr.clone());
    // strength: div + add + pow + mul + 2 cmp; preliminary: mul + add.
    let per_item = OpCounts::ZERO.divs(1).adds(2).pows(1).muls(2).cmps(2).plus(&tune.idx_ops());
    let clamp_div = tune.clamp_divergence();
    q.run(&desc, &[prelim], move |g| {
        let mut n = 0u64;
        for l in items(g.group_size) {
            let [x, y] = g.global_id(l);
            if x >= w || y >= h {
                continue;
            }
            n += 1;
            let i = y * w + x;
            let u = g.load(&up, i);
            let e = g.load(&pedge, i);
            let err = g.load(&perr, i);
            g.store(&out, i, math::preliminary(u, e, err, mean, &params));
        }
        g.charge_n(&per_item, n);
        g.divergent(n * clamp_div);
    })
}

/// Unfused overshoot kernel (paper Fig. 8): clamps the preliminary matrix
/// against the 3×3 envelope of the original.
#[allow(clippy::too_many_arguments)]
pub fn overshoot_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    prelim: &GlobalView<f32>,
    finalbuf: &Buffer<f32>,
    w: usize,
    h: usize,
    params: SharpnessParams,
    tune: KernelTuning,
) -> Result<KernelTime> {
    let desc = grid2d("overshoot", w, h);
    let out = finalbuf.write_view();
    let src = src.clone();
    let prelim = prelim.clone();
    let per_body = OpCounts::ZERO.cmps(20).muls(1).adds(1).plus(&tune.idx_ops());
    let clamp_div = tune.clamp_divergence();
    q.run(&desc, &[finalbuf], move |g| {
        let mut n_body = 0u64;
        let mut n_border = 0u64;
        for l in items(g.group_size) {
            let [x, y] = g.global_id(l);
            if x >= w || y >= h {
                continue;
            }
            let i = y * w + x;
            let p = g.load(&prelim, i);
            if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
                n_border += 1;
                g.store(&out, i, math::final_border(p));
                continue;
            }
            n_body += 1;
            let (xi, yi) = (x as isize, y as isize);
            let n9 = [
                g.load(&src.view, src.idx(xi - 1, yi - 1)),
                g.load(&src.view, src.idx(xi, yi - 1)),
                g.load(&src.view, src.idx(xi + 1, yi - 1)),
                g.load(&src.view, src.idx(xi - 1, yi)),
                g.load(&src.view, src.idx(xi, yi)),
                g.load(&src.view, src.idx(xi + 1, yi)),
                g.load(&src.view, src.idx(xi - 1, yi + 1)),
                g.load(&src.view, src.idx(xi, yi + 1)),
                g.load(&src.view, src.idx(xi + 1, yi + 1)),
            ];
            let (mn, mx) = math::minmax3x3(&n9);
            g.store(&out, i, math::overshoot(p, mn, mx, &params));
        }
        g.charge_n(&per_body, n_body);
        g.charge_n(&OpCounts::ZERO.cmps(4), n_border);
        g.divergent((n_body * 2 + n_border) * clamp_div);
    })
}

/// Computes one fused-sharpness pixel: pError, strength, preliminary and
/// overshoot in registers. `n9` is the 3×3 original neighbourhood
/// (centre at index 4); border pixels pass `body = false` and skip the
/// envelope clamp.
#[inline]
fn fused_pixel(
    n9: &[f32; 9],
    u: f32,
    e: f32,
    mean: f32,
    params: &SharpnessParams,
    body: bool,
) -> f32 {
    let err = n9[4] - u;
    let p = math::preliminary(u, e, err, mean, params);
    if body {
        let (mn, mx) = math::minmax3x3(n9);
        math::overshoot(p, mn, mx, params)
    } else {
        math::final_border(p)
    }
}

/// The fused sharpness kernel (scalar): per pixel, loads the 3×3 original
/// window, the upscaled value and the pEdge value, and produces the final
/// sharpened pixel directly.
#[allow(clippy::too_many_arguments)]
pub fn sharpness_fused_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    up: &GlobalView<f32>,
    pedge: &GlobalView<f32>,
    finalbuf: &Buffer<f32>,
    mean: f32,
    params: SharpnessParams,
    w: usize,
    h: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    let desc = grid2d("sharpness", w, h);
    let out = finalbuf.write_view();
    let src = src.clone();
    let (up, pedge) = (up.clone(), pedge.clone());
    // pError(1 add) + strength/preliminary + minmax(16 cmp) + overshoot
    // branches and clamps (6 cmp) + excursion (mul + add).
    let per_body =
        OpCounts::ZERO.adds(4).divs(1).pows(1).muls(3).cmps(24).plus(&tune.idx_ops());
    let clamp_div = tune.clamp_divergence();
    q.run(&desc, &[finalbuf], move |g| {
        let mut n_body = 0u64;
        let mut n_border = 0u64;
        for l in items(g.group_size) {
            let [x, y] = g.global_id(l);
            if x >= w || y >= h {
                continue;
            }
            let i = y * w + x;
            let u = g.load(&up, i);
            let e = g.load(&pedge, i);
            let (xi, yi) = (x as isize, y as isize);
            let body = x > 0 && y > 0 && x < w - 1 && y < h - 1;
            let n9 = if body {
                [
                    g.load(&src.view, src.idx(xi - 1, yi - 1)),
                    g.load(&src.view, src.idx(xi, yi - 1)),
                    g.load(&src.view, src.idx(xi + 1, yi - 1)),
                    g.load(&src.view, src.idx(xi - 1, yi)),
                    g.load(&src.view, src.idx(xi, yi)),
                    g.load(&src.view, src.idx(xi + 1, yi)),
                    g.load(&src.view, src.idx(xi - 1, yi + 1)),
                    g.load(&src.view, src.idx(xi, yi + 1)),
                    g.load(&src.view, src.idx(xi + 1, yi + 1)),
                ]
            } else {
                let centre = g.load(&src.view, src.idx(xi, yi));
                let mut a = [0.0f32; 9];
                a[4] = centre;
                a
            };
            if body {
                n_body += 1;
            } else {
                n_border += 1;
            }
            g.store(&out, i, fused_pixel(&n9, u, e, mean, &params, body));
        }
        g.charge_n(&per_body, n_body);
        g.charge_n(&OpCounts::ZERO.adds(3).divs(1).pows(1).muls(2).cmps(6), n_border);
        g.divergent((n_body * 2 + n_border) * clamp_div);
    })
}

/// The fused sharpness kernel, vectorized: four adjacent pixels per
/// thread; the 3×6 original window, upscaled and pEdge quads are loaded
/// with `vload4` and the result written with one `vstore4`. Requires the
/// padded source.
#[allow(clippy::too_many_arguments)]
pub fn sharpness_fused_vec4_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    up: &GlobalView<f32>,
    pedge: &GlobalView<f32>,
    finalbuf: &Buffer<f32>,
    mean: f32,
    params: SharpnessParams,
    w: usize,
    h: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    assert_eq!(src.pad, 1, "vectorized sharpness requires the padded source");
    assert_eq!(w % 4, 0, "width must be a multiple of 4");
    let desc = grid2d("sharpness_vec4", w / 4, h);
    let out = finalbuf.write_view();
    let src = src.clone();
    let (up, pedge) = (up.clone(), pedge.clone());
    let per_thread = OpCounts::ZERO
        .adds(16)
        .divs(4)
        .pows(4)
        .muls(12)
        .cmps(96 + 8)
        .plus(&tune.idx_ops());
    let clamp_div = tune.clamp_divergence();
    q.run(&desc, &[finalbuf], move |g| {
        let mut n_threads = 0u64;
        for l in items(g.group_size) {
            let [xg, y] = g.global_id(l);
            let x0 = 4 * xg;
            if x0 >= w || y >= h {
                continue;
            }
            n_threads += 1;
            let yi = y as isize;
            let mut win = [[0.0f32; 6]; 3];
            for (dy, row) in win.iter_mut().enumerate() {
                let ry = yi + dy as isize - 1;
                let v = g.vload4(&src.view, src.idx(x0 as isize - 1, ry));
                row[..4].copy_from_slice(&v);
                row[4] = g.load(&src.view, src.idx(x0 as isize + 3, ry));
                row[5] = g.load(&src.view, src.idx(x0 as isize + 4, ry));
            }
            let uq = g.vload4(&up, y * w + x0);
            let eq = g.vload4(&pedge, y * w + x0);
            let mut res = [0.0f32; 4];
            for k in 0..4 {
                let x = x0 + k;
                let body = x > 0 && y > 0 && x < w - 1 && y < h - 1;
                let n9 = [
                    win[0][k], win[0][k + 1], win[0][k + 2],
                    win[1][k], win[1][k + 1], win[1][k + 2],
                    win[2][k], win[2][k + 1], win[2][k + 2],
                ];
                res[k] = fused_pixel(&n9, uq[k], eq[k], mean, &params, body);
            }
            g.vstore4(&out, y * w + x0, res);
        }
        g.charge_n(&per_thread, n_threads);
        g.divergent(n_threads * clamp_div);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::stages;
    use imagekit::{generate, ImageF32};
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    struct Fixture {
        img: ImageF32,
        up: ImageF32,
        pedge: ImageF32,
        perr: ImageF32,
        mean: f32,
        prelim: ImageF32,
        finalimg: ImageF32,
    }

    fn fixture(w: usize, h: usize, seed: u64) -> Fixture {
        let img = generate::natural(w, h, seed);
        let (down, _) = stages::downscale(&img);
        let (up, _, _) = stages::upscale(&down, w, h);
        let (perr, _) = stages::perror(&img, &up);
        let (pedge, _) = stages::sobel(&img);
        let (mean, _) = stages::reduction(&pedge);
        let p = SharpnessParams::default();
        let (prelim, _) = stages::strength_preliminary(&up, &pedge, &perr, mean, &p);
        let (finalimg, _) = stages::overshoot_with(&img, &prelim, &p);
        Fixture { img, up, pedge, perr, mean, prelim, finalimg }
    }

    #[test]
    fn preliminary_matches_cpu_exactly() {
        let f = fixture(32, 32, 6);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let up = ctx.buffer_from("up", f.up.pixels());
        let pedge = ctx.buffer_from("pEdge", f.pedge.pixels());
        let perr = ctx.buffer_from("pError", f.perr.pixels());
        let prelim = ctx.buffer::<f32>("prelim", 32 * 32);
        preliminary_kernel(
            &mut q,
            &up.view(),
            &pedge.view(),
            &perr.view(),
            &prelim,
            f.mean,
            SharpnessParams::default(),
            32,
            32,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(prelim.snapshot(), f.prelim.pixels());
    }

    #[test]
    fn overshoot_matches_cpu_exactly() {
        let f = fixture(32, 32, 7);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", f.img.pixels());
        let prelim = ctx.buffer_from("prelim", f.prelim.pixels());
        let fin = ctx.buffer::<f32>("final", 32 * 32);
        let src = SrcImage { view: orig.view(), pitch: 32, pad: 0 };
        overshoot_kernel(
            &mut q,
            &src,
            &prelim.view(),
            &fin,
            32,
            32,
            SharpnessParams::default(),
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(fin.snapshot(), f.finalimg.pixels());
    }

    #[test]
    fn fused_scalar_matches_cpu_exactly() {
        let f = fixture(48, 32, 8);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", f.img.pixels());
        let up = ctx.buffer_from("up", f.up.pixels());
        let pedge = ctx.buffer_from("pEdge", f.pedge.pixels());
        let fin = ctx.buffer::<f32>("final", 48 * 32);
        let src = SrcImage { view: orig.view(), pitch: 48, pad: 0 };
        sharpness_fused_kernel(
            &mut q,
            &src,
            &up.view(),
            &pedge.view(),
            &fin,
            f.mean,
            SharpnessParams::default(),
            48,
            32,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(fin.snapshot(), f.finalimg.pixels());
    }

    #[test]
    fn fused_vec4_matches_cpu_exactly() {
        let f = fixture(64, 48, 9);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let padded = f.img.padded(1, false);
        let pbuf = ctx.buffer_from("padded", padded.pixels());
        let up = ctx.buffer_from("up", f.up.pixels());
        let pedge = ctx.buffer_from("pEdge", f.pedge.pixels());
        let fin = ctx.buffer::<f32>("final", 64 * 48);
        let src = SrcImage { view: pbuf.view(), pitch: 66, pad: 1 };
        sharpness_fused_vec4_kernel(
            &mut q,
            &src,
            &up.view(),
            &pedge.view(),
            &fin,
            f.mean,
            SharpnessParams::default(),
            64,
            48,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(fin.snapshot(), f.finalimg.pixels());
    }

    #[test]
    fn fusion_moves_less_global_traffic_than_unfused_tail() {
        let f = fixture(64, 64, 10);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let p = SharpnessParams::default();
        // Unfused: perror + preliminary + overshoot.
        let mut q1 = ctx.queue();
        let orig = ctx.buffer_from("original", f.img.pixels());
        let up = ctx.buffer_from("up", f.up.pixels());
        let pedge = ctx.buffer_from("pEdge", f.pedge.pixels());
        let src = SrcImage { view: orig.view(), pitch: 64, pad: 0 };
        let perr = ctx.buffer::<f32>("pError", 64 * 64);
        let prelim = ctx.buffer::<f32>("prelim", 64 * 64);
        let fin1 = ctx.buffer::<f32>("final", 64 * 64);
        super::super::perror::perror_kernel(
            &mut q1, &src, &up.view(), &perr, 64, 64, KernelTuning::default(),
        )
        .unwrap();
        preliminary_kernel(
            &mut q1, &up.view(), &pedge.view(), &perr.view(), &prelim, f.mean, p, 64, 64,
            KernelTuning::default(),
        )
        .unwrap();
        overshoot_kernel(
            &mut q1, &src, &prelim.view(), &fin1, 64, 64, p, KernelTuning::default(),
        )
        .unwrap();
        let unfused_bytes: u64 =
            q1.records().iter().filter_map(|r| r.counters).map(|c| c.global_bytes()).sum();

        // Fused.
        let mut q2 = ctx.queue();
        let fin2 = ctx.buffer::<f32>("final", 64 * 64);
        sharpness_fused_kernel(
            &mut q2, &src, &up.view(), &pedge.view(), &fin2, f.mean, p, 64, 64,
            KernelTuning::default(),
        )
        .unwrap();
        let fused_bytes: u64 =
            q2.records().iter().filter_map(|r| r.counters).map(|c| c.global_bytes()).sum();

        assert_eq!(fin1.snapshot(), fin2.snapshot());
        assert!(
            fused_bytes * 3 < unfused_bytes * 2,
            "fused {fused_bytes} should be well below unfused {unfused_bytes}"
        );
        assert!(q2.elapsed() < q1.elapsed());
    }
}
