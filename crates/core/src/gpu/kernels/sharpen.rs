//! Sharpening kernels: the unfused pipeline tail (preliminary, overshoot)
//! and the fused `sharpness` kernel of Section V-B, in scalar and
//! vectorized (Section V-D) variants.
//!
//! Fusion folds pError + preliminary + overshoot into one kernel: the
//! difference value lives in a register ("the difference matrix is stored
//! in threads' registers dispersedly"), eliminating the pError and
//! preliminary global matrices and their traffic, plus two kernel
//! launches.

use simgpu::access::{AccessSummary, AccessWindow, BufRef};
use simgpu::buffer::{Buffer, GlobalView};
use simgpu::cost::OpCounts;
use simgpu::error::{Error, Result};
use simgpu::kernel::KernelDesc;
use simgpu::queue::CommandQueue;
use simgpu::timing::KernelTime;

use super::{
    body_columns, covered_rows, grid2d, interior_rows, simd, summarize, vec4_body_columns,
    KernelTuning, Launch, SrcImage, SrcInfo, GROUP_2D,
};
use crate::math;
use crate::params::{SharpnessParams, MIN_DIM};

/// Unfused preliminary kernel: `prelim = up + strength(pEdge) · pError`.
/// `ws` is the device row stride of the up/pEdge/pError/prelim buffers.
#[allow(clippy::too_many_arguments)]
pub fn preliminary_kernel(
    q: &mut CommandQueue,
    up: &GlobalView<f32>,
    pedge: &GlobalView<f32>,
    perr: &GlobalView<f32>,
    prelim: &Buffer<f32>,
    mean: f32,
    params: SharpnessParams,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    preliminary_launch(
        q,
        up,
        pedge,
        perr,
        prelim,
        mean,
        params,
        w,
        h,
        ws,
        tune,
        Launch::Full,
    )
}

/// [`preliminary_kernel`] with an explicit [`Launch`] mode (one work-group
/// row covers 16 image rows).
#[allow(clippy::too_many_arguments)]
pub(crate) fn preliminary_launch(
    q: &mut CommandQueue,
    up: &GlobalView<f32>,
    pedge: &GlobalView<f32>,
    perr: &GlobalView<f32>,
    prelim: &Buffer<f32>,
    mean: f32,
    params: SharpnessParams,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    let desc = grid2d("preliminary", w, h);
    let access = summarize(&launch, &desc, |groups| {
        preliminary_access(
            &desc,
            groups,
            up.info(),
            pedge.info(),
            perr.info(),
            prelim.info(),
            w,
            h,
            ws,
        )
    });
    let out = prelim.write_view();
    let (up, pedge, perr) = (up.clone(), pedge.clone(), perr.clone());
    // strength: div + add + pow + mul + 2 cmp; preliminary: mul + add.
    let per_item = OpCounts::ZERO
        .divs(1)
        .adds(2)
        .pows(1)
        .muls(2)
        .cmps(2)
        .plus(&tune.idx_ops());
    let clamp_div = tune.clamp_divergence();
    // Row-span form: three contiguous loads and one store per pixel, run
    // span-at-a-time through [`simd::preliminary_span`]. Charges are exact
    // (12 B read + 4 B write per pixel), identical to the per-item form.
    launch.dispatch(q, &desc, access, &[prelim], move |g| {
        let gw = g.group_size[0];
        let x_start = g.group_id[0] * gw;
        let mut n = 0u64;
        let mut scratch = [0.0f32; GROUP_2D[0]];
        for ly in 0..g.group_size[1] {
            g.begin_item([0, ly]);
            let y = g.group_id[1] * g.group_size[1] + ly;
            if y >= h || x_start >= w {
                continue;
            }
            let span = (x_start + gw).min(w) - x_start;
            n += span as u64;
            let i = y * ws + x_start;
            let row_out = &mut scratch[..span];
            simd::preliminary_span(
                up.slice_raw(i, span),
                pedge.slice_raw(i, span),
                perr.slice_raw(i, span),
                row_out,
                mean,
                &params,
            );
            out.set_span_raw(i, row_out);
        }
        g.charge_global_n(12, 0, 4, 0, n);
        g.charge_n(&per_item, n);
        g.divergent(n * clamp_div);
    })
}

/// Closed-form access summary of the preliminary dispatch: per covered
/// row, `w`-element reads of the up/pEdge/pError rows and a `w`-element
/// write of the prelim row. Charges are exact (ratio 1).
#[allow(clippy::too_many_arguments)]
pub(crate) fn preliminary_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    up: BufRef,
    pedge: BufRef,
    perr: BufRef,
    prelim: BufRef,
    w: usize,
    h: usize,
    ws: usize,
) -> AccessSummary {
    let rows = covered_rows(desc, &groups, h);
    let nr = rows.len();
    let mut s = AccessSummary::new(&desc.name, groups, desc.total_groups());
    if nr > 0 {
        s.push(AccessWindow::read(up, rows.start * ws, w).by_y(nr, ws));
        s.push(AccessWindow::read(pedge, rows.start * ws, w).by_y(nr, ws));
        s.push(AccessWindow::read(perr, rows.start * ws, w).by_y(nr, ws));
        s.push(AccessWindow::write(prelim, rows.start * ws, w).by_y(nr, ws));
        s.charge_global_n(12, 0, 4, 0, (w * nr) as u64);
    }
    s
}

/// Unfused overshoot kernel (paper Fig. 8): clamps the preliminary matrix
/// against the 3×3 envelope of the original. `ws` is the device row
/// stride of the prelim/final buffers.
#[allow(clippy::too_many_arguments)]
pub fn overshoot_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    prelim: &GlobalView<f32>,
    finalbuf: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    params: SharpnessParams,
    tune: KernelTuning,
) -> Result<KernelTime> {
    overshoot_launch(
        q,
        src,
        prelim,
        finalbuf,
        w,
        h,
        ws,
        params,
        tune,
        Launch::Full,
    )
}

/// [`overshoot_kernel`] with an explicit [`Launch`] mode (one work-group
/// row covers 16 image rows; the 3×3 window reads the fully-resident
/// original, and `prelim` only at the pixel itself).
#[allow(clippy::too_many_arguments)]
pub(crate) fn overshoot_launch(
    q: &mut CommandQueue,
    src: &SrcImage,
    prelim: &GlobalView<f32>,
    finalbuf: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    params: SharpnessParams,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    let desc = grid2d("overshoot", w, h);
    let out = finalbuf.write_view();
    let src = src.clone();
    let prelim = prelim.clone();
    let per_body = OpCounts::ZERO
        .cmps(20)
        .muls(1)
        .adds(1)
        .plus(&tune.idx_ops());
    let clamp_div = tune.clamp_divergence();
    // Row-span form: the body clamp runs over contiguous spans through
    // [`simd::overshoot_span`]. Charged traffic stays the per-pixel
    // pattern (prelim + nine window loads + store per body pixel; prelim +
    // store per border pixel); the observed raw reads per body tile row
    // are one prelim span plus three `(blen+2)`-wide source slices, below
    // the charged windows for every `blen >= 1`, covered by the exact
    // overlapping-window ratio of the access summary.
    let access = summarize(&launch, &desc, |groups| {
        overshoot_access(
            &desc,
            groups,
            &SrcInfo::of(&src),
            prelim.info(),
            finalbuf.info(),
            w,
            h,
            ws,
        )
    });
    let ratio = access.read_ratio;
    launch.dispatch(q, &desc, access, &[finalbuf], move |g| {
        g.declare_read_overcharge(ratio);
        let gw = g.group_size[0];
        let x_start = g.group_id[0] * gw;
        let mut n_body = 0u64;
        let mut n_border = 0u64;
        let mut scratch = [0.0f32; GROUP_2D[0]];
        for ly in 0..g.group_size[1] {
            g.begin_item([0, ly]);
            let y = g.group_id[1] * g.group_size[1] + ly;
            if y >= h || x_start >= w {
                continue;
            }
            let x_end = (x_start + gw).min(w);
            let span = x_end - x_start;
            let i = y * ws + x_start;
            let prow = prelim.slice_raw(i, span);
            let row_out = &mut scratch[..span];
            if y == 0 || y == h - 1 || w <= 2 {
                for (o, &p) in row_out.iter_mut().zip(prow) {
                    *o = math::final_border(p);
                }
                n_border += span as u64;
            } else {
                let body_lo = x_start.max(1);
                let body_hi = x_end.min(w - 1);
                let mut row_body = 0u64;
                if body_hi > body_lo {
                    let blen = body_hi - body_lo;
                    let yi = y as isize;
                    let r0 = src
                        .view
                        .slice_raw(src.idx(body_lo as isize - 1, yi - 1), blen + 2);
                    let r1 = src
                        .view
                        .slice_raw(src.idx(body_lo as isize - 1, yi), blen + 2);
                    let r2 = src
                        .view
                        .slice_raw(src.idx(body_lo as isize - 1, yi + 1), blen + 2);
                    simd::overshoot_span(
                        r0,
                        r1,
                        r2,
                        &prow[body_lo - x_start..body_hi - x_start],
                        &mut row_out[body_lo - x_start..body_hi - x_start],
                        &params,
                    );
                    row_body = blen as u64;
                }
                // `w >= 3` here, so the two border columns are distinct.
                for x in [0, w - 1] {
                    if x >= x_start && x < x_end {
                        row_out[x - x_start] = math::final_border(prow[x - x_start]);
                    }
                }
                n_body += row_body;
                n_border += span as u64 - row_body;
            }
            out.set_span_raw(i, row_out);
        }
        // Body pixel: prelim + nine window loads (40 B) + store; border
        // pixel: prelim load + store — identical to the per-item charges.
        g.charge_global_n(40, 0, 4, 0, n_body);
        g.charge_global_n(4, 0, 4, 0, n_border);
        g.charge_n(&per_body, n_body);
        g.charge_n(&OpCounts::ZERO.cmps(4), n_border);
        g.divergent((n_body * 2 + n_border) * clamp_div);
    })
}

/// Closed-form access summary of the overshoot dispatch: per covered row,
/// a `w`-element prelim read and final write; per interior row, three
/// `(blen+2)`-wide source slices per body column group (the 3×3 halo).
#[allow(clippy::too_many_arguments)]
pub(crate) fn overshoot_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    src: &SrcInfo,
    prelim: BufRef,
    out: BufRef,
    w: usize,
    h: usize,
    ws: usize,
) -> AccessSummary {
    let rows = covered_rows(desc, &groups, h);
    let nr = rows.len();
    let mut s = AccessSummary::new(&desc.name, groups, desc.total_groups());
    if nr == 0 {
        return s;
    }
    s.push(AccessWindow::read(prelim, rows.start * ws, w).by_y(nr, ws));
    s.push(AccessWindow::write(out, rows.start * ws, w).by_y(nr, ws));
    let ir = interior_rows(&rows, w, h);
    let nir = ir.len();
    if nir > 0 {
        for (lo, blen) in body_columns(w) {
            s.push(
                AccessWindow::read(
                    src.buf.clone(),
                    src.idx(lo as isize - 1, ir.start as isize - 1),
                    blen + 2,
                )
                .by_x(3, src.pitch)
                .by_y(nir, src.pitch),
            );
        }
    }
    let n_body = (nir as u64) * (w.saturating_sub(2) as u64);
    let n_border = (w * nr) as u64 - n_body;
    s.charge_global_n(40, 0, 4, 0, n_body);
    s.charge_global_n(4, 0, 4, 0, n_border);
    s
}

/// Computes one fused-sharpness pixel: pError, strength, preliminary and
/// overshoot in registers. `n9` is the 3×3 original neighbourhood
/// (centre at index 4); border pixels pass `body = false` and skip the
/// envelope clamp.
#[inline]
fn fused_pixel(
    n9: &[f32; 9],
    u: f32,
    e: f32,
    mean: f32,
    params: &SharpnessParams,
    body: bool,
) -> f32 {
    let err = n9[4] - u;
    let p = math::preliminary(u, e, err, mean, params);
    if body {
        let (mn, mx) = math::minmax3x3(n9);
        math::overshoot(p, mn, mx, params)
    } else {
        math::final_border(p)
    }
}

/// The fused sharpness kernel (scalar): per pixel, loads the 3×3 original
/// window, the upscaled value and the pEdge value, and produces the final
/// sharpened pixel directly.
#[allow(clippy::too_many_arguments)]
pub fn sharpness_fused_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    up: &GlobalView<f32>,
    pedge: &GlobalView<f32>,
    finalbuf: &Buffer<f32>,
    mean: f32,
    params: SharpnessParams,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    sharpness_fused_launch(
        q,
        src,
        up,
        pedge,
        finalbuf,
        mean,
        params,
        w,
        h,
        ws,
        tune,
        Launch::Full,
    )
}

/// [`sharpness_fused_kernel`] with an explicit [`Launch`] mode (one
/// work-group row covers 16 image rows; the 3×3 window reads the
/// fully-resident original, and up/pEdge only at the pixel itself).
#[allow(clippy::too_many_arguments)]
pub(crate) fn sharpness_fused_launch(
    q: &mut CommandQueue,
    src: &SrcImage,
    up: &GlobalView<f32>,
    pedge: &GlobalView<f32>,
    finalbuf: &Buffer<f32>,
    mean: f32,
    params: SharpnessParams,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    let desc = grid2d("sharpness", w, h);
    let out = finalbuf.write_view();
    let src = src.clone();
    let (up, pedge) = (up.clone(), pedge.clone());
    // pError(1 add) + strength/preliminary + minmax(16 cmp) + overshoot
    // branches and clamps (6 cmp) + excursion (mul + add).
    let per_body = OpCounts::ZERO
        .adds(4)
        .divs(1)
        .pows(1)
        .muls(3)
        .cmps(24)
        .plus(&tune.idx_ops());
    let clamp_div = tune.clamp_divergence();
    // Row-span form, same shape as the vectorized variant below: body
    // pixels run span-at-a-time through [`simd::fused_span`], border
    // pixels through the exact `fused_pixel(body = false)` path. Charged
    // traffic stays the per-pixel pattern (up + pEdge + nine window loads
    // + store per body pixel; up + pEdge + centre + store per border
    // pixel); the observed raw reads per body tile row are the up/pEdge
    // spans plus three `(blen+2)`-wide source slices, below the charged
    // windows for every `blen >= 1`, covered by the summary's exact ratio.
    let access = summarize(&launch, &desc, |groups| {
        sharpness_fused_access(
            &desc,
            groups,
            &SrcInfo::of(&src),
            up.info(),
            pedge.info(),
            finalbuf.info(),
            w,
            h,
            ws,
        )
    });
    let ratio = access.read_ratio;
    launch.dispatch(q, &desc, access, &[finalbuf], move |g| {
        // One border pixel, computed exactly as `fused_pixel` with
        // `body = false` would (only the window centre matters).
        let border_pixel =
            |x: usize, y: usize, src: &SrcImage, up: &GlobalView<f32>, pe: &GlobalView<f32>| {
                let mut n9 = [0.0f32; 9];
                n9[4] = src.view.get_raw(src.idx(x as isize, y as isize));
                let i = y * ws + x;
                fused_pixel(&n9, up.get_raw(i), pe.get_raw(i), mean, &params, false)
            };
        g.declare_read_overcharge(ratio);
        let gw = g.group_size[0];
        let x_start = g.group_id[0] * gw;
        let mut n_body = 0u64;
        let mut n_border = 0u64;
        let mut scratch = [0.0f32; GROUP_2D[0]];
        for ly in 0..g.group_size[1] {
            g.begin_item([0, ly]);
            let y = g.group_id[1] * g.group_size[1] + ly;
            if y >= h || x_start >= w {
                continue;
            }
            let x_end = (x_start + gw).min(w);
            let span = x_end - x_start;
            let row_out = &mut scratch[..span];
            if y == 0 || y == h - 1 || w <= 2 {
                for (j, x) in (x_start..x_end).enumerate() {
                    row_out[j] = border_pixel(x, y, &src, &up, &pedge);
                }
                n_border += span as u64;
            } else {
                let body_lo = x_start.max(1);
                let body_hi = x_end.min(w - 1);
                let mut row_body = 0u64;
                if body_hi > body_lo {
                    let blen = body_hi - body_lo;
                    let yi = y as isize;
                    let r0 = src
                        .view
                        .slice_raw(src.idx(body_lo as isize - 1, yi - 1), blen + 2);
                    let r1 = src
                        .view
                        .slice_raw(src.idx(body_lo as isize - 1, yi), blen + 2);
                    let r2 = src
                        .view
                        .slice_raw(src.idx(body_lo as isize - 1, yi + 1), blen + 2);
                    let up_row = up.slice_raw(y * ws + body_lo, blen);
                    let pe_row = pedge.slice_raw(y * ws + body_lo, blen);
                    simd::fused_span(
                        r0,
                        r1,
                        r2,
                        up_row,
                        pe_row,
                        &mut row_out[body_lo - x_start..body_hi - x_start],
                        mean,
                        &params,
                    );
                    row_body = blen as u64;
                }
                // `w >= 3` here, so the two border columns are distinct.
                for x in [0, w - 1] {
                    if x >= x_start && x < x_end {
                        row_out[x - x_start] = border_pixel(x, y, &src, &up, &pedge);
                    }
                }
                n_body += row_body;
                n_border += span as u64 - row_body;
            }
            out.set_span_raw(y * ws + x_start, row_out);
        }
        // Body pixel: up + pEdge + nine window loads (44 B) + store;
        // border pixel: up + pEdge + centre (12 B) + store — identical to
        // the per-item charges.
        g.charge_global_n(44, 0, 4, 0, n_body);
        g.charge_global_n(12, 0, 4, 0, n_border);
        g.charge_n(&per_body, n_body);
        g.charge_n(
            &OpCounts::ZERO.adds(3).divs(1).pows(1).muls(2).cmps(6),
            n_border,
        );
        g.divergent((n_body * 2 + n_border) * clamp_div);
    })
}

/// Closed-form access summary of the fused sharpness dispatch: per covered
/// row, full up/pEdge reads and a full final write (body spans plus the
/// two border columns union to the whole row); source reads are the 3×3
/// halo slices over interior rows, single-pixel centre reads on the border
/// columns, and full centre rows on the border rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sharpness_fused_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    src: &SrcInfo,
    up: BufRef,
    pedge: BufRef,
    out: BufRef,
    w: usize,
    h: usize,
    ws: usize,
) -> AccessSummary {
    let rows = covered_rows(desc, &groups, h);
    let nr = rows.len();
    let mut s = AccessSummary::new(&desc.name, groups, desc.total_groups());
    if nr == 0 {
        return s;
    }
    s.push(AccessWindow::read(up, rows.start * ws, w).by_y(nr, ws));
    s.push(AccessWindow::read(pedge, rows.start * ws, w).by_y(nr, ws));
    s.push(AccessWindow::write(out, rows.start * ws, w).by_y(nr, ws));
    if w <= 2 {
        // Every covered row runs the border path: one centre read per pixel.
        s.push(
            AccessWindow::read(src.buf.clone(), src.idx(0, rows.start as isize), w)
                .by_y(nr, src.pitch),
        );
    } else {
        if rows.contains(&0) {
            s.push(AccessWindow::read(src.buf.clone(), src.idx(0, 0), w));
        }
        if h >= 2 && rows.contains(&(h - 1)) {
            s.push(AccessWindow::read(
                src.buf.clone(),
                src.idx(0, h as isize - 1),
                w,
            ));
        }
        let ir = interior_rows(&rows, w, h);
        let nir = ir.len();
        if nir > 0 {
            for (lo, blen) in body_columns(w) {
                s.push(
                    AccessWindow::read(
                        src.buf.clone(),
                        src.idx(lo as isize - 1, ir.start as isize - 1),
                        blen + 2,
                    )
                    .by_x(3, src.pitch)
                    .by_y(nir, src.pitch),
                );
            }
            // Border-column centre reads at x = 0 and x = w-1.
            s.push(
                AccessWindow::read(src.buf.clone(), src.idx(0, ir.start as isize), 1)
                    .by_y(nir, src.pitch),
            );
            s.push(
                AccessWindow::read(
                    src.buf.clone(),
                    src.idx(w as isize - 1, ir.start as isize),
                    1,
                )
                .by_y(nir, src.pitch),
            );
        }
    }
    let nir = interior_rows(&rows, w, h).len();
    let n_body = (nir as u64) * (w.saturating_sub(2) as u64);
    let n_border = (w * nr) as u64 - n_body;
    s.charge_global_n(44, 0, 4, 0, n_body);
    s.charge_global_n(12, 0, 4, 0, n_border);
    s
}

/// The fused sharpness kernel, vectorized: four adjacent pixels per
/// thread; the 3×6 original window, upscaled and pEdge quads are loaded
/// with `vload4` and the result written with one `vstore4`. Requires the
/// padded source.
#[allow(clippy::too_many_arguments)]
pub fn sharpness_fused_vec4_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    up: &GlobalView<f32>,
    pedge: &GlobalView<f32>,
    finalbuf: &Buffer<f32>,
    mean: f32,
    params: SharpnessParams,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    sharpness_fused_vec4_launch(
        q,
        src,
        up,
        pedge,
        finalbuf,
        mean,
        params,
        w,
        h,
        ws,
        tune,
        Launch::Full,
    )
}

/// [`sharpness_fused_vec4_kernel`] with an explicit [`Launch`] mode (one
/// work-group row covers 16 image rows).
#[allow(clippy::too_many_arguments)]
pub(crate) fn sharpness_fused_vec4_launch(
    q: &mut CommandQueue,
    src: &SrcImage,
    up: &GlobalView<f32>,
    pedge: &GlobalView<f32>,
    finalbuf: &Buffer<f32>,
    mean: f32,
    params: SharpnessParams,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    if src.pad != 1 {
        return Err(Error::InvalidKernelArgs {
            kernel: "sharpness_vec4".into(),
            detail: "requires the padded source (pad == 1)".into(),
        });
    }
    if w < MIN_DIM || h < MIN_DIM || !ws.is_multiple_of(4) || ws < w || src.pitch != ws + 2 {
        return Err(Error::InvalidKernelArgs {
            kernel: "sharpness_vec4".into(),
            detail: format!(
                "shape {w}x{h} with stride {ws} (pitch {}): stride must be a \
                 multiple of 4 covering the width, pitch = stride + 2, and the \
                 shape at least {MIN_DIM}x{MIN_DIM}",
                src.pitch
            ),
        });
    }
    let desc = grid2d("sharpness_vec4", ws / 4, h);
    let out = finalbuf.write_view();
    let src = src.clone();
    let (up, pedge) = (up.clone(), pedge.clone());
    let per_thread = OpCounts::ZERO
        .adds(16)
        .divs(4)
        .pows(4)
        .muls(12)
        .cmps(96 + 8)
        .plus(&tune.idx_ops());
    let clamp_div = tune.clamp_divergence();
    // Charged loads are 26 per thread over (ws/4)·h threads; the summary
    // declares the distinct-window events actually observed (3 source
    // halo slices + up/pEdge rows), and carries the exact ratio between
    // the two.
    let access = summarize(&launch, &desc, |groups| {
        sharpness_fused_vec4_access(
            &desc,
            groups,
            &SrcInfo::of(&src),
            up.info(),
            pedge.info(),
            finalbuf.info(),
            w,
            h,
            ws,
        )
    });
    let ratio = access.read_ratio;
    launch.dispatch(q, &desc, access, &[finalbuf], move |g| {
        // One border pixel, computed exactly as `fused_pixel` with
        // `body = false` would (only the window centre matters).
        let border_pixel =
            |x: usize, y: usize, src: &SrcImage, up: &GlobalView<f32>, pe: &GlobalView<f32>| {
                let mut n9 = [0.0f32; 9];
                n9[4] = src.view.get_raw(src.idx(x as isize, y as isize));
                let i = y * ws + x;
                fused_pixel(&n9, up.get_raw(i), pe.get_raw(i), mean, &params, false)
            };
        // The group's threads cover `4 * group_size[0]` consecutive pixels
        // per row; the work is done row-segment at a time so the body loop
        // is branch-free, while the charged traffic below stays exactly
        // what the per-thread vload4/vstore4 pattern accounts.
        // As in the vectorized Sobel, the charged overlapping-window
        // traffic exceeds the distinct elements the row spans touch.
        g.declare_read_overcharge(ratio);
        let gw = g.group_size[0];
        let x_start = 4 * g.group_id[0] * gw;
        let mut n_threads = 0u64;
        let mut scratch = [0.0f32; 4 * GROUP_2D[0]];
        for ly in 0..g.group_size[1] {
            g.begin_item([0, ly]);
            let y = g.group_id[1] * g.group_size[1] + ly;
            if y >= h || x_start >= ws {
                continue;
            }
            let x_end = (x_start + 4 * gw).min(ws);
            let span = x_end - x_start;
            n_threads += (span / 4) as u64;
            let yi = y as isize;
            let row_out = &mut scratch[..span];
            // Stride-padding columns beyond `w` stay zero on every row,
            // matching the scalar kernels (which never write them).
            row_out.fill(0.0);
            if y == 0 || y == h - 1 {
                for (j, x) in (x_start..x_end.min(w)).enumerate() {
                    row_out[j] = border_pixel(x, y, &src, &up, &pedge);
                }
            } else {
                let body_lo = x_start.max(1);
                let body_hi = x_end.min(w - 1);
                let blen = body_hi - body_lo;
                let r0 = src
                    .view
                    .slice_raw(src.idx(body_lo as isize - 1, yi - 1), blen + 2);
                let r1 = src
                    .view
                    .slice_raw(src.idx(body_lo as isize - 1, yi), blen + 2);
                let r2 = src
                    .view
                    .slice_raw(src.idx(body_lo as isize - 1, yi + 1), blen + 2);
                let up_row = up.slice_raw(y * ws + body_lo, blen);
                let pe_row = pedge.slice_raw(y * ws + body_lo, blen);
                simd::fused_span(
                    r0,
                    r1,
                    r2,
                    up_row,
                    pe_row,
                    &mut row_out[body_lo - x_start..body_hi - x_start],
                    mean,
                    &params,
                );
                for x in [0, w - 1] {
                    if x >= x_start && x < x_end {
                        row_out[x - x_start] = border_pixel(x, y, &src, &up, &pedge);
                    }
                }
            }
            out.set_span_raw(y * ws + x_start, row_out);
        }
        // Per thread: 3 src vload4 (48 B) + up/pEdge vload4 (32 B) vector
        // reads, 6 src scalar loads (24 B), one vstore4 (16 B).
        g.charge_global_n(24, 80, 0, 16, n_threads);
        g.charge_n(&per_thread, n_threads);
        g.divergent(n_threads * clamp_div);
    })
}

/// Closed-form access summary of the vectorized fused sharpness dispatch:
/// like [`sharpness_fused_access`] but over the `ws/4 × h` thread grid —
/// writes cover the full `ws`-wide stride rows (padding columns are
/// zeroed), and the interior body spans are unconditional per column group
/// (`blen` may be zero, still issuing the two-element halo loads).
#[allow(clippy::too_many_arguments)]
pub(crate) fn sharpness_fused_vec4_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    src: &SrcInfo,
    up: BufRef,
    pedge: BufRef,
    out: BufRef,
    w: usize,
    h: usize,
    ws: usize,
) -> AccessSummary {
    let rows = covered_rows(desc, &groups, h);
    let nr = rows.len();
    let mut s = AccessSummary::new(&desc.name, groups, desc.total_groups());
    if nr == 0 {
        return s;
    }
    s.push(AccessWindow::read(up, rows.start * ws, w).by_y(nr, ws));
    s.push(AccessWindow::read(pedge, rows.start * ws, w).by_y(nr, ws));
    s.push(AccessWindow::write(out, rows.start * ws, ws).by_y(nr, ws));
    if rows.contains(&0) {
        s.push(AccessWindow::read(src.buf.clone(), src.idx(0, 0), w));
    }
    if h >= 2 && rows.contains(&(h - 1)) {
        s.push(AccessWindow::read(
            src.buf.clone(),
            src.idx(0, h as isize - 1),
            w,
        ));
    }
    let ir = interior_rows(&rows, w, h);
    let nir = ir.len();
    if nir > 0 {
        for (lo, blen) in vec4_body_columns(w, ws) {
            s.push(
                AccessWindow::read(
                    src.buf.clone(),
                    src.idx(lo as isize - 1, ir.start as isize - 1),
                    blen + 2,
                )
                .by_x(3, src.pitch)
                .by_y(nir, src.pitch),
            );
        }
        s.push(
            AccessWindow::read(src.buf.clone(), src.idx(0, ir.start as isize), 1)
                .by_y(nir, src.pitch),
        );
        s.push(
            AccessWindow::read(
                src.buf.clone(),
                src.idx(w as isize - 1, ir.start as isize),
                1,
            )
            .by_y(nir, src.pitch),
        );
    }
    s.charge_global_n(24, 80, 0, 16, ((ws / 4) * nr) as u64);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::stages;
    use imagekit::{generate, ImageF32};
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    struct Fixture {
        img: ImageF32,
        up: ImageF32,
        pedge: ImageF32,
        perr: ImageF32,
        mean: f32,
        prelim: ImageF32,
        finalimg: ImageF32,
    }

    fn fixture(w: usize, h: usize, seed: u64) -> Fixture {
        let img = generate::natural(w, h, seed);
        let (down, _) = stages::downscale(&img);
        let (up, _, _) = stages::upscale(&down, w, h);
        let (perr, _) = stages::perror(&img, &up);
        let (pedge, _) = stages::sobel(&img);
        let (mean, _) = stages::reduction(&pedge);
        let p = SharpnessParams::default();
        let (prelim, _) = stages::strength_preliminary(&up, &pedge, &perr, mean, &p);
        let (finalimg, _) = stages::overshoot_with(&img, &prelim, &p);
        Fixture {
            img,
            up,
            pedge,
            perr,
            mean,
            prelim,
            finalimg,
        }
    }

    #[test]
    fn preliminary_matches_cpu_exactly() {
        let f = fixture(32, 32, 6);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let up = ctx.buffer_from("up", f.up.pixels());
        let pedge = ctx.buffer_from("pEdge", f.pedge.pixels());
        let perr = ctx.buffer_from("pError", f.perr.pixels());
        let prelim = ctx.buffer::<f32>("prelim", 32 * 32);
        preliminary_kernel(
            &mut q,
            &up.view(),
            &pedge.view(),
            &perr.view(),
            &prelim,
            f.mean,
            SharpnessParams::default(),
            32,
            32,
            32,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(prelim.snapshot(), f.prelim.pixels());
    }

    #[test]
    fn overshoot_matches_cpu_exactly() {
        let f = fixture(32, 32, 7);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", f.img.pixels());
        let prelim = ctx.buffer_from("prelim", f.prelim.pixels());
        let fin = ctx.buffer::<f32>("final", 32 * 32);
        let src = SrcImage {
            view: orig.view(),
            pitch: 32,
            pad: 0,
        };
        overshoot_kernel(
            &mut q,
            &src,
            &prelim.view(),
            &fin,
            32,
            32,
            32,
            SharpnessParams::default(),
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(fin.snapshot(), f.finalimg.pixels());
    }

    #[test]
    fn fused_scalar_matches_cpu_exactly() {
        let f = fixture(48, 32, 8);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", f.img.pixels());
        let up = ctx.buffer_from("up", f.up.pixels());
        let pedge = ctx.buffer_from("pEdge", f.pedge.pixels());
        let fin = ctx.buffer::<f32>("final", 48 * 32);
        let src = SrcImage {
            view: orig.view(),
            pitch: 48,
            pad: 0,
        };
        sharpness_fused_kernel(
            &mut q,
            &src,
            &up.view(),
            &pedge.view(),
            &fin,
            f.mean,
            SharpnessParams::default(),
            48,
            32,
            48,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(fin.snapshot(), f.finalimg.pixels());
    }

    #[test]
    fn fused_vec4_matches_cpu_exactly() {
        let f = fixture(64, 48, 9);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let padded = f.img.padded(1, false);
        let pbuf = ctx.buffer_from("padded", padded.pixels());
        let up = ctx.buffer_from("up", f.up.pixels());
        let pedge = ctx.buffer_from("pEdge", f.pedge.pixels());
        let fin = ctx.buffer::<f32>("final", 64 * 48);
        let src = SrcImage {
            view: pbuf.view(),
            pitch: 66,
            pad: 1,
        };
        sharpness_fused_vec4_kernel(
            &mut q,
            &src,
            &up.view(),
            &pedge.view(),
            &fin,
            f.mean,
            SharpnessParams::default(),
            64,
            48,
            64,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(fin.snapshot(), f.finalimg.pixels());
    }

    #[test]
    fn fusion_moves_less_global_traffic_than_unfused_tail() {
        let f = fixture(64, 64, 10);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let p = SharpnessParams::default();
        // Unfused: perror + preliminary + overshoot.
        let mut q1 = ctx.queue();
        let orig = ctx.buffer_from("original", f.img.pixels());
        let up = ctx.buffer_from("up", f.up.pixels());
        let pedge = ctx.buffer_from("pEdge", f.pedge.pixels());
        let src = SrcImage {
            view: orig.view(),
            pitch: 64,
            pad: 0,
        };
        let perr = ctx.buffer::<f32>("pError", 64 * 64);
        let prelim = ctx.buffer::<f32>("prelim", 64 * 64);
        let fin1 = ctx.buffer::<f32>("final", 64 * 64);
        super::super::perror::perror_kernel(
            &mut q1,
            &src,
            &up.view(),
            &perr,
            64,
            64,
            64,
            KernelTuning::default(),
        )
        .unwrap();
        preliminary_kernel(
            &mut q1,
            &up.view(),
            &pedge.view(),
            &perr.view(),
            &prelim,
            f.mean,
            p,
            64,
            64,
            64,
            KernelTuning::default(),
        )
        .unwrap();
        overshoot_kernel(
            &mut q1,
            &src,
            &prelim.view(),
            &fin1,
            64,
            64,
            64,
            p,
            KernelTuning::default(),
        )
        .unwrap();
        let unfused_bytes: u64 = q1
            .records()
            .iter()
            .filter_map(|r| r.counters)
            .map(|c| c.global_bytes())
            .sum();

        // Fused.
        let mut q2 = ctx.queue();
        let fin2 = ctx.buffer::<f32>("final", 64 * 64);
        sharpness_fused_kernel(
            &mut q2,
            &src,
            &up.view(),
            &pedge.view(),
            &fin2,
            f.mean,
            p,
            64,
            64,
            64,
            KernelTuning::default(),
        )
        .unwrap();
        let fused_bytes: u64 = q2
            .records()
            .iter()
            .filter_map(|r| r.counters)
            .map(|c| c.global_bytes())
            .sum();

        assert_eq!(fin1.snapshot(), fin2.snapshot());
        assert!(
            fused_bytes * 3 < unfused_bytes * 2,
            "fused {fused_bytes} should be well below unfused {unfused_bytes}"
        );
        assert!(q2.elapsed() < q1.elapsed());
    }
}
