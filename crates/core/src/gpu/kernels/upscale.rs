//! Upscale kernels: the body ("center") in scalar and vectorized variants,
//! and the four border kernels used when the border runs on the GPU
//! (Section V-E).
//!
//! The border work is branch-heavy and tiny (O(w + h) items), which is
//! exactly why the paper runs it on the CPU for small images; the GPU
//! variant here pays four kernel launches plus divergence, reproducing
//! the crossover of Fig. 17.

use simgpu::buffer::{Buffer, GlobalView};
use simgpu::cost::OpCounts;
use simgpu::error::Result;
use simgpu::kernel::items;
use simgpu::queue::CommandQueue;
use simgpu::timing::KernelTime;

use super::{grid1d, grid2d, KernelTuning};
use crate::math;
use crate::params::{INTERP, SCALE};

/// Scalar upscale-center kernel: one thread per 4×4 output block,
/// interpolating its 2×2 downscaled window (paper Figs. 4–5).
pub fn upscale_center_scalar_kernel(
    q: &mut CommandQueue,
    down: &GlobalView<f32>,
    up: &Buffer<f32>,
    w: usize,
    h: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    let (w4, h4) = (w / SCALE, h / SCALE);
    let (nx, ny) = (w4 - 1, h4 - 1);
    let desc = grid2d("upscale_center", nx, ny);
    let down = down.clone();
    let upv = up.write_view();
    // Per block: 16 values × (6 mul + 3 add) + index arithmetic.
    let per_block = OpCounts::ZERO.muls(96).adds(48).plus(&tune.idx_ops());
    q.run(&desc, &[up], move |g| {
        let mut n_blocks = 0u64;
        for l in items(g.group_size) {
            g.begin_item(l);
            let [bi, bj] = g.global_id(l);
            if bi >= nx || bj >= ny {
                continue;
            }
            n_blocks += 1;
            let d00 = g.load(&down, bj * w4 + bi);
            let d01 = g.load(&down, bj * w4 + bi + 1);
            let d10 = g.load(&down, (bj + 1) * w4 + bi);
            let d11 = g.load(&down, (bj + 1) * w4 + bi + 1);
            for r in 0..SCALE {
                for c in 0..SCALE {
                    g.store(
                        &upv,
                        (SCALE * bj + 2 + r) * w + SCALE * bi + 2 + c,
                        math::upscale_value(d00, d01, d10, d11, r, c),
                    );
                }
            }
        }
        g.charge_n(&per_block, n_blocks);
    })
}

/// Vectorized upscale-center kernel: one thread per *four horizontally
/// adjacent* blocks, sharing the downscaled row segments (`vload4`) and
/// writing each output row with `vstore4` (Section V-D applied to the
/// center stage).
pub fn upscale_center_vec4_kernel(
    q: &mut CommandQueue,
    down: &GlobalView<f32>,
    up: &Buffer<f32>,
    w: usize,
    h: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    let (w4, h4) = (w / SCALE, h / SCALE);
    let (nx, ny) = (w4 - 1, h4 - 1);
    let nx_threads = nx.div_ceil(4);
    let desc = grid2d("upscale_center_vec4", nx_threads, ny);
    let down = down.clone();
    let upv = up.write_view();
    // Per thread: up to 4 blocks × 16 values × (6 mul + 3 add); window
    // loads are 2 vload4 + 2 scalar; bounds selects cost 4 cmp.
    let per_block = OpCounts::ZERO.muls(96).adds(48);
    q.run(&desc, &[up], move |g| {
        let mut n_blocks = 0u64;
        let mut n_threads = 0u64;
        let mut n_fast = 0u64;
        for l in items(g.group_size) {
            g.begin_item(l);
            let [t, bj] = g.global_id(l);
            let bi0 = 4 * t;
            if bi0 >= nx || bj >= ny {
                continue;
            }
            n_threads += 1;
            if bi0 + 3 < nx {
                // Fast path: all four blocks exist and the 5-wide row
                // segments are in bounds. `upscale_value` is evaluated
                // with the column interpolants hoisted out of the row
                // loop — the identical multiplies/adds in the identical
                // order, each computed once instead of four times — and
                // the four vstore4s of one output row written as a 16-wide
                // span so the host loop autovectorizes. The thread's
                // charged traffic (2 vload4 + 2 scalar loads, 16 vstore4)
                // is accounted in bulk below, unchanged.
                n_fast += 1;
                n_blocks += 4;
                let r0 = down.slice_raw(bj * w4 + bi0, 5);
                let r1 = down.slice_raw((bj + 1) * w4 + bi0, 5);
                let mut tops = [0.0f32; 16];
                let mut bots = [0.0f32; 16];
                for k in 0..4 {
                    for c in 0..SCALE {
                        tops[4 * k + c] = INTERP[c][0] * r0[k] + INTERP[c][1] * r0[k + 1];
                        bots[4 * k + c] = INTERP[c][0] * r1[k] + INTERP[c][1] * r1[k + 1];
                    }
                }
                let mut out16 = [0.0f32; 16];
                for (r, [i0, i1]) in INTERP.iter().enumerate() {
                    for j in 0..16 {
                        out16[j] = i0 * tops[j] + i1 * bots[j];
                    }
                    upv.set_span_raw((SCALE * bj + 2 + r) * w + SCALE * bi0 + 2, &out16);
                }
                continue;
            }
            // Load the two downscaled row segments covering blocks
            // bi0 .. bi0+3: columns bi0 .. bi0+4 (the 5th column is only
            // needed — and only in bounds — when block bi0+3 exists).
            let mut rows = [[0.0f32; 5]; 2];
            for (dr, row) in rows.iter_mut().enumerate() {
                let base = (bj + dr) * w4;
                if bi0 + 3 < w4 {
                    // Fast path: aligned interior, one vload4 + one scalar.
                    let v = g.vload4(&down, base + bi0);
                    row[..4].copy_from_slice(&v);
                    if bi0 + 4 < w4 {
                        row[4] = g.load(&down, base + bi0 + 4);
                    }
                } else {
                    // Row tail (w4 not a multiple of 4): scalar loads of
                    // whatever columns exist.
                    for (k, slot) in row.iter_mut().enumerate() {
                        if bi0 + k < w4 {
                            *slot = g.load(&down, base + bi0 + k);
                        }
                    }
                }
            }
            for k in 0..4 {
                let bi = bi0 + k;
                if bi >= nx {
                    break;
                }
                n_blocks += 1;
                let d00 = rows[0][k];
                let d01 = rows[0][k + 1];
                let d10 = rows[1][k];
                let d11 = rows[1][k + 1];
                for r in 0..SCALE {
                    let mut out = [0.0f32; 4];
                    for (c, slot) in out.iter_mut().enumerate() {
                        *slot = math::upscale_value(d00, d01, d10, d11, r, c);
                    }
                    g.vstore4(&upv, (SCALE * bj + 2 + r) * w + SCALE * bi + 2, out);
                }
            }
        }
        g.charge_n(&per_block, n_blocks);
        g.charge_n(&OpCounts::ZERO.cmps(4).plus(&tune.idx_ops()), n_threads);
        // Fast-path threads: 2 vload4 (32 B) + 2 scalar loads (8 B) in,
        // 16 vstore4 (256 B) out.
        g.charge_global_n(8, 32, 0, 256, n_fast);
    })
}

/// Dispatches the four GPU border kernels (top/bottom rows, left/right
/// columns), matching the CPU border bit-exactly.
pub fn upscale_border_gpu(
    q: &mut CommandQueue,
    down: &GlobalView<f32>,
    up: &Buffer<f32>,
    w: usize,
    h: usize,
    tune: KernelTuning,
) -> Result<Vec<KernelTime>> {
    let (w4, h4) = (w / SCALE, h / SCALE);
    let mut times = Vec::with_capacity(4);

    // Horizontal border rows: (name, source downscaled row, dest row).
    for (name, src_row, dst_row) in [
        ("upscale_border_top", 0usize, 0usize),
        ("upscale_border_bottom", h4 - 1, h - 2),
    ] {
        let desc = grid1d(name, w4 - 1, 64);
        let down = down.clone();
        let upv = up.write_view();
        let companion = if dst_row == 0 { 1 } else { h - 1 };
        let per_item = OpCounts::ZERO.muls(8).adds(4).cmps(2).plus(&tune.idx_ops());
        let t = q.run(&desc, &[up], move |g| {
            let mut n = 0u64;
            let mut corner_events = 0u64;
            for l in items(g.group_size) {
                g.begin_item(l);
                let [bi, _] = g.global_id(l);
                if bi >= w4 - 1 {
                    continue;
                }
                n += 1;
                let a = g.load(&down, src_row * w4 + bi);
                let b = g.load(&down, src_row * w4 + bi + 1);
                let mut vals = [0.0f32; SCALE];
                for (ph, v) in vals.iter_mut().enumerate() {
                    *v = math::border_interp(a, b, ph);
                }
                for (ph, &v) in vals.iter().enumerate() {
                    let x = SCALE * bi + 2 + ph;
                    g.store(&upv, dst_row * w + x, v);
                    g.store(&upv, companion * w + x, v);
                }
                if bi == 0 {
                    // Outer-left columns copy the phase-0 value.
                    corner_events += 1;
                    for x in 0..2 {
                        g.store(&upv, dst_row * w + x, vals[0]);
                        g.store(&upv, companion * w + x, vals[0]);
                    }
                }
                if bi == w4 - 2 {
                    // Outer-right columns copy the last computed value.
                    corner_events += 1;
                    let v = vals[3];
                    for x in [w - 2, w - 1] {
                        g.store(&upv, dst_row * w + x, v);
                        g.store(&upv, companion * w + x, v);
                    }
                }
            }
            g.charge_n(&per_item, n);
            g.divergent(corner_events);
        })?;
        times.push(t);
    }

    // Vertical border columns for rows 2 ..= h-3.
    for (name, src_col, dst_col) in [
        ("upscale_border_left", 0usize, 0usize),
        ("upscale_border_right", w4 - 1, w - 2),
    ] {
        let desc = grid1d(name, h4 - 1, 64);
        let down = down.clone();
        let upv = up.write_view();
        let companion = if dst_col == 0 { 1 } else { w - 1 };
        let per_item = OpCounts::ZERO.muls(8).adds(4).cmps(2).plus(&tune.idx_ops());
        let t = q.run(&desc, &[up], move |g| {
            let mut n = 0u64;
            for l in items(g.group_size) {
                g.begin_item(l);
                let [bj, _] = g.global_id(l);
                if bj >= h4 - 1 {
                    continue;
                }
                n += 1;
                let a = g.load(&down, bj * w4 + src_col);
                let b = g.load(&down, (bj + 1) * w4 + src_col);
                for ph in 0..SCALE {
                    let y = SCALE * bj + 2 + ph;
                    let v = math::border_interp(a, b, ph);
                    g.store(&upv, y * w + dst_col, v);
                    g.store(&upv, y * w + companion, v);
                }
            }
            g.charge_n(&per_item, n);
        })?;
        times.push(t);
    }
    Ok(times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::stages;
    use imagekit::{generate, ImageF32};
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn setup(wi: usize, hi: usize, seed: u64) -> (ImageF32, ImageF32) {
        let img = generate::natural(wi, hi, seed);
        let (down, _) = stages::downscale(&img);
        let (up, _, _) = stages::upscale(&down, wi, hi);
        (down, up)
    }

    #[test]
    fn center_scalar_matches_cpu_exactly() {
        let (down, cpu_up) = setup(64, 48, 3);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let dbuf = ctx.buffer_from("down", down.pixels());
        let up = ctx.buffer::<f32>("up", 64 * 48);
        upscale_center_scalar_kernel(&mut q, &dbuf.view(), &up, 64, 48, KernelTuning::default())
            .unwrap();
        // Compare interior only (border kernel not dispatched here).
        let got = ImageF32::from_vec(64, 48, up.snapshot());
        for y in 2..=48 - 3 {
            for x in 2..=64 - 3 {
                assert_eq!(got.get(x, y), cpu_up.get(x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn center_vec4_matches_scalar_exactly() {
        let (down, _) = setup(96, 64, 8);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let dbuf = ctx.buffer_from("down", down.pixels());
        let up_a = ctx.buffer::<f32>("upA", 96 * 64);
        let up_b = ctx.buffer::<f32>("upB", 96 * 64);
        upscale_center_scalar_kernel(&mut q, &dbuf.view(), &up_a, 96, 64, KernelTuning::default())
            .unwrap();
        upscale_center_vec4_kernel(&mut q, &dbuf.view(), &up_b, 96, 64, KernelTuning::default())
            .unwrap();
        assert_eq!(up_a.snapshot(), up_b.snapshot());
    }

    #[test]
    fn border_gpu_matches_cpu_exactly() {
        let (down, cpu_up) = setup(64, 64, 4);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let dbuf = ctx.buffer_from("down", down.pixels());
        let up = ctx.buffer::<f32>("up", 64 * 64);
        let times =
            upscale_border_gpu(&mut q, &dbuf.view(), &up, 64, 64, KernelTuning::default()).unwrap();
        assert_eq!(times.len(), 4);
        let got = ImageF32::from_vec(64, 64, up.snapshot());
        // Border rows (full width).
        for x in 0..64 {
            for y in [0usize, 1, 62, 63] {
                assert_eq!(got.get(x, y), cpu_up.get(x, y), "row border ({x},{y})");
            }
        }
        // Border columns for body rows.
        for y in 2..62 {
            for x in [0usize, 1, 62, 63] {
                assert_eq!(got.get(x, y), cpu_up.get(x, y), "col border ({x},{y})");
            }
        }
    }

    #[test]
    fn border_plus_center_covers_everything() {
        let (down, cpu_up) = setup(64, 48, 12);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let dbuf = ctx.buffer_from("down", down.pixels());
        let up = ctx.buffer::<f32>("up", 64 * 48);
        upscale_border_gpu(&mut q, &dbuf.view(), &up, 64, 48, KernelTuning::default()).unwrap();
        upscale_center_vec4_kernel(&mut q, &dbuf.view(), &up, 64, 48, KernelTuning::default())
            .unwrap();
        assert_eq!(up.snapshot(), cpu_up.pixels());
    }

    #[test]
    fn border_kernels_launch_four_times() {
        let (down, _) = setup(64, 64, 1);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let dbuf = ctx.buffer_from("down", down.pixels());
        let up = ctx.buffer::<f32>("up", 64 * 64);
        upscale_border_gpu(&mut q, &dbuf.view(), &up, 64, 64, KernelTuning::default()).unwrap();
        assert_eq!(q.records().len(), 4);
        assert!(q
            .records()
            .iter()
            .all(|r| r.name.starts_with("upscale_border")));
    }
}
