//! Upscale kernels: the body ("center") in scalar and vectorized variants,
//! and the four border kernels used when the border runs on the GPU
//! (Section V-E).
//!
//! The border work is branch-heavy and tiny (O(w + h) items), which is
//! exactly why the paper runs it on the CPU for small images; the GPU
//! variant here pays four kernel launches plus divergence, reproducing
//! the crossover of Fig. 17.

use simgpu::access::{AccessSummary, AccessWindow, BufRef};
use simgpu::buffer::{Buffer, GlobalView};
use simgpu::cost::OpCounts;
use simgpu::error::{Error, Result};
use simgpu::kernel::{items, KernelDesc};
use simgpu::queue::CommandQueue;
use simgpu::timing::KernelTime;

use super::{covered_rows, grid1d, grid2d, simd, summarize, KernelTuning, Launch, GROUP_2D};
use crate::math;
use crate::params::{INTERP, MIN_DIM, SCALE};

/// Validates the shared center-kernel geometry: the downscaled grid must
/// have at least a 2×2 window somewhere (otherwise there is no interior
/// and the caller must skip the center dispatch — the border kernels cover
/// the whole image then).
fn check_center_args(kernel: &str, w: usize, h: usize, ws: usize) -> Result<(usize, usize)> {
    let (wd, hd) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    if w < MIN_DIM || h < MIN_DIM || ws < w || wd < 2 || hd < 2 {
        return Err(Error::InvalidKernelArgs {
            kernel: kernel.into(),
            detail: format!(
                "shape {w}x{h} (stride {ws}) has no interior 4x4 blocks; \
                 the border kernels cover images below 5 pixels per axis"
            ),
        });
    }
    Ok((wd, hd))
}

/// Scalar upscale-center kernel: one thread per 4×4 output block,
/// interpolating its 2×2 downscaled window (paper Figs. 4–5). `ws` is the
/// device row stride of `up`; writes are clamped to the interior
/// (`x ≤ w-3`, `y ≤ h-3`), which for multiple-of-4 shapes never fires.
pub fn upscale_center_scalar_kernel(
    q: &mut CommandQueue,
    down: &GlobalView<f32>,
    up: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    upscale_center_scalar_launch(q, down, up, w, h, ws, tune, Launch::Full)
}

/// [`upscale_center_scalar_kernel`] with an explicit [`Launch`] mode (one
/// work-group row covers 16 block rows = 64 output rows).
#[allow(clippy::too_many_arguments)]
pub(crate) fn upscale_center_scalar_launch(
    q: &mut CommandQueue,
    down: &GlobalView<f32>,
    up: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    let (wd, hd) = check_center_args("upscale_center", w, h, ws)?;
    let (nx, ny) = (wd - 1, hd - 1);
    let desc = grid2d("upscale_center", nx, ny);
    let down = down.clone();
    let upv = up.write_view();
    // Per interpolated value: 6 mul + 3 add; index arithmetic per block.
    let per_value = OpCounts::ZERO.muls(6).adds(3);
    let idx_ops = tune.idx_ops();
    // Segment form: blocks whose whole 4×4 output tile is interior
    // (clamp-free) share their downscaled row segments and run through the
    // interpolation spans ([`simd::interp4_span`] + [`simd::lerp_span`]),
    // hoisting the column interpolants exactly like the vectorized
    // variant — the identical multiplies/adds in the identical order, so
    // identical bits. Clamped edge blocks keep the exact per-block path.
    // Charged traffic stays the per-block pattern (four scalar loads,
    // sixteen scalar stores); the fast segment observes `2·(seg+1)` raw
    // reads against `4·seg` charged, covered by the declared ratio.
    let access = summarize(&launch, &desc, |groups| {
        upscale_center_scalar_access(&desc, groups, down.info(), up.info(), w, h, ws)
    });
    let ratio = access.read_ratio;
    launch.dispatch(q, &desc, access, &[up], move |g| {
        g.declare_read_overcharge(ratio);
        let gw = g.group_size[0];
        let b_start = g.group_id[0] * gw;
        let mut n_blocks = 0u64;
        let mut n_vals = 0u64;
        let mut n_fast = 0u64;
        let mut tops = [0.0f32; 4 * GROUP_2D[0]];
        let mut bots = [0.0f32; 4 * GROUP_2D[0]];
        let mut out_row = [0.0f32; 4 * GROUP_2D[0]];
        for ly in 0..g.group_size[1] {
            g.begin_item([0, ly]);
            let bj = g.group_id[1] * g.group_size[1] + ly;
            if bj >= ny || b_start >= nx {
                continue;
            }
            let b_end = (b_start + gw).min(nx);
            // Fully-interior blocks: all four rows (`SCALE*bj + 5 <= h-3`)
            // and all four columns (`SCALE*bi + 5 <= w-3`) clamp-free.
            let fast_cols = if w >= 8 { (w - 8) / SCALE + 1 } else { 0 };
            let fast_end = if SCALE * bj + 5 <= h - 3 {
                b_end.min(fast_cols)
            } else {
                b_start
            };
            if fast_end > b_start {
                let seg = fast_end - b_start;
                n_blocks += seg as u64;
                n_fast += seg as u64;
                n_vals += 16 * seg as u64;
                let r0 = down.slice_raw(bj * wd + b_start, seg + 1);
                let r1 = down.slice_raw((bj + 1) * wd + b_start, seg + 1);
                simd::interp4_span(r0, &mut tops[..4 * seg]);
                simd::interp4_span(r1, &mut bots[..4 * seg]);
                for (r, [i0, i1]) in INTERP.iter().enumerate() {
                    let out = &mut out_row[..4 * seg];
                    simd::lerp_span(*i0, *i1, &tops[..4 * seg], &bots[..4 * seg], out);
                    upv.set_span_raw((SCALE * bj + 2 + r) * ws + SCALE * b_start + 2, out);
                }
            }
            for bi in fast_end.max(b_start)..b_end {
                n_blocks += 1;
                let d00 = g.load(&down, bj * wd + bi);
                let d01 = g.load(&down, bj * wd + bi + 1);
                let d10 = g.load(&down, (bj + 1) * wd + bi);
                let d11 = g.load(&down, (bj + 1) * wd + bi + 1);
                for r in 0..SCALE {
                    let y = SCALE * bj + 2 + r;
                    if y > h - 3 {
                        break;
                    }
                    for c in 0..SCALE {
                        let x = SCALE * bi + 2 + c;
                        if x > w - 3 {
                            break;
                        }
                        n_vals += 1;
                        g.store(
                            &upv,
                            y * ws + x,
                            math::upscale_value(d00, d01, d10, d11, r, c),
                        );
                    }
                }
            }
        }
        // Fast blocks: the per-block four scalar loads (16 B) and sixteen
        // scalar stores (64 B), charged in bulk.
        g.charge_global_n(16, 0, 64, 0, n_fast);
        g.charge_n(&per_value, n_vals);
        g.charge_n(&idx_ops, n_blocks);
    })
}

/// Closed-form access summary of the scalar upscale-center dispatch.
///
/// Fully-interior ("fast") block rows are the prefix `4·bj + 5 ≤ h - 3`;
/// within them the fast column segments read two `(seg+1)`-wide downscaled
/// row slices per work-group column and write one 4-row strided tile,
/// while the ragged right-edge blocks keep per-element loads and clamped
/// stores. The clamped bottom block row (at most one) is fully
/// per-element.
pub(crate) fn upscale_center_scalar_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    down: BufRef,
    up: BufRef,
    w: usize,
    h: usize,
    ws: usize,
) -> AccessSummary {
    let (wd, hd) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    let (nx, ny) = (wd - 1, hd - 1);
    let rows = covered_rows(desc, &groups, ny);
    let mut s = AccessSummary::new(&desc.name, groups, desc.total_groups());
    if rows.is_empty() {
        return s;
    }
    // Fast block rows are the prefix [0, fr); fast block columns [0, fc).
    let fr = if h >= 8 { (h - 8) / SCALE + 1 } else { 0 };
    let nfr = rows.end.min(fr).saturating_sub(rows.start);
    let fc = if w >= 8 { (w - 8) / SCALE + 1 } else { 0 };
    // Clamped store width of block column bi: x = 4·bi + 2 + c, c while
    // x ≤ w - 3 (4 for fast columns, shorter at the ragged right edge).
    let cw = |bi: usize| (w - 4).saturating_sub(SCALE * bi).min(SCALE);
    let cw_all: usize = (0..nx).map(cw).sum();
    let mut slow_loads = 0u64;
    let mut slow_stores = 0u64;
    if nfr > 0 {
        // Fast segments: two (seg+1)-wide row slices per work-group column
        // per block row, one 4-row output tile over all fast columns.
        let mut b_start = 0;
        while b_start < fc {
            let seg = (b_start + GROUP_2D[0]).min(fc) - b_start;
            s.push(
                AccessWindow::read(down.clone(), rows.start * wd + b_start, seg + 1)
                    .by_x(2, wd)
                    .by_y(nfr, wd),
            );
            b_start += GROUP_2D[0];
        }
        if fc > 0 {
            s.push(
                AccessWindow::write(up.clone(), (SCALE * rows.start + 2) * ws + 2, SCALE * fc)
                    .by_x(SCALE, ws)
                    .by_y(nfr, SCALE * ws),
            );
        }
        // Ragged right-edge blocks on fast rows: per-block 2×2 loads and
        // clamped stores.
        let nsx = nx - fc;
        if nsx > 0 {
            for j in 0..2 {
                s.push(
                    AccessWindow::read(down.clone(), (rows.start + j) * wd + fc, 2)
                        .by_x(nsx, 1)
                        .by_y(nfr, wd),
                );
            }
            slow_loads += 4 * (nsx * nfr) as u64;
            for bi in fc..nx {
                let c = cw(bi);
                if c > 0 {
                    s.push(
                        AccessWindow::write(
                            up.clone(),
                            (SCALE * rows.start + 2) * ws + SCALE * bi + 2,
                            c,
                        )
                        .by_x(SCALE, ws)
                        .by_y(nfr, SCALE * ws),
                    );
                    slow_stores += (SCALE * c * nfr) as u64;
                }
            }
        }
    }
    // Clamped bottom block rows (at most one): every block per-element.
    for bj in rows.start.max(fr)..rows.end {
        let rh = (h - 4).saturating_sub(SCALE * bj).min(SCALE);
        for j in 0..2 {
            s.push(AccessWindow::read(down.clone(), (bj + j) * wd, 2).by_x(nx, 1));
        }
        slow_loads += 4 * nx as u64;
        if fc > 0 {
            s.push(
                AccessWindow::write(up.clone(), (SCALE * bj + 2) * ws + 2, SCALE * fc).by_x(rh, ws),
            );
        }
        for bi in fc..nx {
            let c = cw(bi);
            if c > 0 {
                s.push(
                    AccessWindow::write(up.clone(), (SCALE * bj + 2) * ws + SCALE * bi + 2, c)
                        .by_x(rh, ws),
                );
            }
        }
        slow_stores += (rh * cw_all) as u64;
    }
    s.charge_global_n(16, 0, 64, 0, (nfr * fc) as u64);
    s.charge_global_n(4, 0, 0, 0, slow_loads);
    s.charge_global_n(0, 0, 4, 0, slow_stores);
    s
}

/// Vectorized upscale-center kernel: one thread per *four horizontally
/// adjacent* blocks, sharing the downscaled row segments (`vload4`) and
/// writing each output row with `vstore4` (Section V-D applied to the
/// center stage).
pub fn upscale_center_vec4_kernel(
    q: &mut CommandQueue,
    down: &GlobalView<f32>,
    up: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    upscale_center_vec4_launch(q, down, up, w, h, ws, tune, Launch::Full)
}

/// [`upscale_center_vec4_kernel`] with an explicit [`Launch`] mode (one
/// work-group row covers 16 block rows = 64 output rows).
#[allow(clippy::too_many_arguments)]
pub(crate) fn upscale_center_vec4_launch(
    q: &mut CommandQueue,
    down: &GlobalView<f32>,
    up: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    let (wd, hd) = check_center_args("upscale_center_vec4", w, h, ws)?;
    let (nx, ny) = (wd - 1, hd - 1);
    let nx_threads = nx.div_ceil(4);
    let desc = grid2d("upscale_center_vec4", nx_threads, ny);
    let down = down.clone();
    let upv = up.write_view();
    // Per interpolated value: 6 mul + 3 add (the fast path hoists shared
    // factors but charges the same per-value recipe).
    let per_value = OpCounts::ZERO.muls(6).adds(3);
    let access = summarize(&launch, &desc, |groups| {
        upscale_center_vec4_access(&desc, groups, down.info(), up.info(), w, h, ws)
    });
    launch.dispatch(q, &desc, access, &[up], move |g| {
        let mut n_vals = 0u64;
        let mut n_threads = 0u64;
        let mut n_fast = 0u64;
        for l in items(g.group_size) {
            g.begin_item(l);
            let [t, bj] = g.global_id(l);
            let bi0 = 4 * t;
            if bi0 >= nx || bj >= ny {
                continue;
            }
            n_threads += 1;
            // Fast path: all four blocks exist, the 5-wide row segments
            // are in bounds, and the whole 16×4 output tile is interior
            // (the two clamp conditions are automatically true for
            // multiple-of-4 shapes).
            if bi0 + 3 < nx && SCALE * bi0 + 17 <= w - 3 && SCALE * bj + 5 <= h - 3 {
                // `upscale_value` is evaluated with the column
                // interpolants hoisted out of the row loop — the identical
                // multiplies/adds in the identical order, each computed
                // once instead of four times — and the four vstore4s of
                // one output row written as a 16-wide span so the host
                // loop autovectorizes. The thread's charged traffic
                // (2 vload4 + 2 scalar loads, 16 vstore4) is accounted in
                // bulk below, unchanged.
                n_fast += 1;
                n_vals += 64;
                let r0 = down.slice_raw(bj * wd + bi0, 5);
                let r1 = down.slice_raw((bj + 1) * wd + bi0, 5);
                let mut tops = [0.0f32; 16];
                let mut bots = [0.0f32; 16];
                simd::interp4_span(r0, &mut tops);
                simd::interp4_span(r1, &mut bots);
                let mut out16 = [0.0f32; 16];
                for (r, [i0, i1]) in INTERP.iter().enumerate() {
                    simd::lerp_span(*i0, *i1, &tops, &bots, &mut out16);
                    upv.set_span_raw((SCALE * bj + 2 + r) * ws + SCALE * bi0 + 2, &out16);
                }
                continue;
            }
            // Load the two downscaled row segments covering blocks
            // bi0 .. bi0+3: columns bi0 .. bi0+4 (the 5th column is only
            // needed — and only in bounds — when block bi0+3 exists).
            let mut rows = [[0.0f32; 5]; 2];
            for (dr, row) in rows.iter_mut().enumerate() {
                let base = (bj + dr) * wd;
                if bi0 + 3 < wd {
                    // Aligned interior: one vload4 + one scalar.
                    let v = g.vload4(&down, base + bi0);
                    row[..4].copy_from_slice(&v);
                    if bi0 + 4 < wd {
                        row[4] = g.load(&down, base + bi0 + 4);
                    }
                } else {
                    // Row tail (wd not a multiple of 4): scalar loads of
                    // whatever columns exist.
                    for (k, slot) in row.iter_mut().enumerate() {
                        if bi0 + k < wd {
                            *slot = g.load(&down, base + bi0 + k);
                        }
                    }
                }
            }
            for k in 0..4 {
                let bi = bi0 + k;
                if bi >= nx {
                    break;
                }
                let d00 = rows[0][k];
                let d01 = rows[0][k + 1];
                let d10 = rows[1][k];
                let d11 = rows[1][k + 1];
                for r in 0..SCALE {
                    let y = SCALE * bj + 2 + r;
                    if y > h - 3 {
                        break;
                    }
                    let x0 = SCALE * bi + 2;
                    if x0 + 3 <= w - 3 {
                        // Whole 4-wide output row is interior: one vstore4
                        // (the only case for multiple-of-4 shapes).
                        let mut out = [0.0f32; 4];
                        for (c, slot) in out.iter_mut().enumerate() {
                            *slot = math::upscale_value(d00, d01, d10, d11, r, c);
                        }
                        g.vstore4(&upv, y * ws + x0, out);
                        n_vals += 4;
                    } else {
                        // Ragged right edge: clamped scalar stores.
                        for c in 0..SCALE {
                            let x = x0 + c;
                            if x > w - 3 {
                                break;
                            }
                            n_vals += 1;
                            g.store(
                                &upv,
                                y * ws + x,
                                math::upscale_value(d00, d01, d10, d11, r, c),
                            );
                        }
                    }
                }
            }
        }
        g.charge_n(&per_value, n_vals);
        g.charge_n(&OpCounts::ZERO.cmps(4).plus(&tune.idx_ops()), n_threads);
        // Fast-path threads: 2 vload4 (32 B) + 2 scalar loads (8 B) in,
        // 16 vstore4 (256 B) out.
        g.charge_global_n(8, 32, 0, 256, n_fast);
    })
}

/// Closed-form access summary of the vectorized upscale-center dispatch.
///
/// Fast threads (all four blocks present, segments and tiles interior)
/// read two 5-wide strided slices and write one 16-wide 4-row tile each;
/// slow threads mirror the kernel's per-thread fallback (vload4 + scalar
/// tail loads, vstore4 or clamped scalar stores per block), with charges
/// split by scalar/vector class exactly as `g.load`/`g.vload4`/`g.store`/
/// `g.vstore4` charge them. The charge is exact, so the ratio stays 1.
pub(crate) fn upscale_center_vec4_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    down: BufRef,
    up: BufRef,
    w: usize,
    h: usize,
    ws: usize,
) -> AccessSummary {
    let (wd, hd) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    let (nx, ny) = (wd - 1, hd - 1);
    let nt = nx.div_ceil(4);
    let rows = covered_rows(desc, &groups, ny);
    let mut s = AccessSummary::new(&desc.name, groups, desc.total_groups());
    if rows.is_empty() {
        return s;
    }
    let fr = if h >= 8 { (h - 8) / SCALE + 1 } else { 0 };
    let nfr = rows.end.min(fr).saturating_sub(rows.start);
    // Fast thread columns are a prefix: all four blocks exist
    // (4t + 3 < nx) and the 16-wide tile is interior (16t + 17 ≤ w - 3).
    let c1 = if nx >= 4 { (nx - 4) / 4 + 1 } else { 0 };
    let c2 = if w >= 20 { (w - 20) / 16 + 1 } else { 0 };
    let ftc = c1.min(c2);
    let cw = |bi: usize| (w - 4).saturating_sub(SCALE * bi).min(SCALE);
    let (mut sload, mut vload, mut sstore, mut vstore) = (0u64, 0u64, 0u64, 0u64);
    if nfr > 0 && ftc > 0 {
        for j in 0..2 {
            s.push(
                AccessWindow::read(down.clone(), (rows.start + j) * wd, 5)
                    .by_x(ftc, 4)
                    .by_y(nfr, wd),
            );
        }
        s.push(
            AccessWindow::write(up.clone(), (SCALE * rows.start + 2) * ws + 2, 16 * ftc)
                .by_x(SCALE, ws)
                .by_y(nfr, SCALE * ws),
        );
    }
    // One slow thread: two row segments in (vector body + scalar tail),
    // per-block vstore4 or clamped scalar stores out, repeated down `nyc`
    // block rows with `rh` live output rows each.
    let mut slow_thread = |s: &mut AccessSummary, t: usize, bj0: usize, nyc: usize, rh: usize| {
        let bi0 = 4 * t;
        for j in 0..2 {
            let base = (bj0 + j) * wd + bi0;
            if bi0 + 3 < wd {
                s.push(AccessWindow::read(down.clone(), base, 4).by_y(nyc, wd));
                vload += nyc as u64;
                if bi0 + 4 < wd {
                    s.push(AccessWindow::read(down.clone(), base + 4, 1).by_y(nyc, wd));
                    sload += nyc as u64;
                }
            } else {
                let cnt = wd - bi0;
                s.push(AccessWindow::read(down.clone(), base, cnt).by_y(nyc, wd));
                sload += (cnt * nyc) as u64;
            }
        }
        for k in 0..4 {
            let bi = bi0 + k;
            if bi >= nx {
                break;
            }
            let x0 = SCALE * bi + 2;
            if x0 + 3 <= w - 3 {
                s.push(
                    AccessWindow::write(up.clone(), (SCALE * bj0 + 2) * ws + x0, 4)
                        .by_x(rh, ws)
                        .by_y(nyc, SCALE * ws),
                );
                vstore += (rh * nyc) as u64;
            } else {
                let c = cw(bi);
                if c > 0 {
                    s.push(
                        AccessWindow::write(up.clone(), (SCALE * bj0 + 2) * ws + x0, c)
                            .by_x(rh, ws)
                            .by_y(nyc, SCALE * ws),
                    );
                    sstore += (c * rh * nyc) as u64;
                }
            }
        }
    };
    if nfr > 0 {
        for t in ftc..nt {
            slow_thread(&mut s, t, rows.start, nfr, SCALE);
        }
    }
    for bj in rows.start.max(fr)..rows.end {
        let rh = (h - 4).saturating_sub(SCALE * bj).min(SCALE);
        for t in 0..nt {
            slow_thread(&mut s, t, bj, 1, rh);
        }
    }
    s.charge_global_n(8, 32, 0, 256, (nfr * ftc) as u64);
    s.charge_global_n(4, 0, 0, 0, sload);
    s.charge_global_n(0, 16, 0, 0, vload);
    s.charge_global_n(0, 0, 4, 0, sstore);
    s.charge_global_n(0, 0, 0, 16, vstore);
    s
}

/// Dispatches the four GPU border kernels (top/bottom rows, left/right
/// columns), matching the CPU border bit-exactly. `ws` is the device row
/// stride of `up`. Always four dispatches, for any shape ≥ 3×3: a
/// single-column downscaled grid replicates its one value across the
/// border rows, and a single-row grid leaves the vertical column kernels
/// with no items (the rows cover everything).
pub fn upscale_border_gpu(
    q: &mut CommandQueue,
    down: &GlobalView<f32>,
    up: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
) -> Result<Vec<KernelTime>> {
    if w < MIN_DIM || h < MIN_DIM || ws < w {
        return Err(Error::InvalidKernelArgs {
            kernel: "upscale_border".into(),
            detail: format!("shape {w}x{h} (stride {ws}) below the {MIN_DIM}x{MIN_DIM} minimum"),
        });
    }
    let (wd, hd) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    let mut times = Vec::with_capacity(4);

    // Horizontal border rows: (name, source downscaled row, dest row).
    for (name, src_row, dst_row) in [
        ("upscale_border_top", 0usize, 0usize),
        ("upscale_border_bottom", hd - 1, h - 2),
    ] {
        let n_items = (wd - 1).max(1);
        let desc = grid1d(name, n_items, 64);
        let down = down.clone();
        let upv = up.write_view();
        let companion = if dst_row == 0 { 1 } else { h - 1 };
        let per_item = OpCounts::ZERO.muls(8).adds(4).cmps(2).plus(&tune.idx_ops());
        let replicate_item = OpCounts::ZERO.cmps(2).plus(&tune.idx_ops());
        let access = upscale_border_row_access(
            &desc,
            down.info(),
            up.info(),
            w,
            ws,
            src_row,
            dst_row,
            companion,
        );
        let t = Launch::Full.dispatch(q, &desc, access, &[up], move |g| {
            let mut n = 0u64;
            let mut n_repl = 0u64;
            let mut corner_events = 0u64;
            for l in items(g.group_size) {
                g.begin_item(l);
                let [bi, _] = g.global_id(l);
                if bi >= n_items {
                    continue;
                }
                if wd == 1 {
                    // Single downscaled column: no pair to interpolate —
                    // replicate the one value across both rows, exactly as
                    // the CPU reference does.
                    n_repl += 1;
                    let v = g.load(&down, src_row);
                    for x in 0..w {
                        g.store(&upv, dst_row * ws + x, v);
                        g.store(&upv, companion * ws + x, v);
                    }
                    continue;
                }
                n += 1;
                let a = g.load(&down, src_row * wd + bi);
                let b = g.load(&down, src_row * wd + bi + 1);
                let mut vals = [0.0f32; SCALE];
                for (ph, v) in vals.iter_mut().enumerate() {
                    *v = math::border_interp(a, b, ph);
                }
                for (ph, &v) in vals.iter().enumerate() {
                    let x = SCALE * bi + 2 + ph;
                    if x <= w - 3 {
                        g.store(&upv, dst_row * ws + x, v);
                        g.store(&upv, companion * ws + x, v);
                    }
                }
                if bi == 0 {
                    // Outer-left columns copy the phase-0 value.
                    corner_events += 1;
                    for x in 0..2 {
                        g.store(&upv, dst_row * ws + x, vals[0]);
                        g.store(&upv, companion * ws + x, vals[0]);
                    }
                }
                if bi == wd - 2 {
                    // Outer-right columns copy the value at x = w-3 (the
                    // tail phase; 3 for multiple-of-4 widths).
                    corner_events += 1;
                    let v = vals[w + 3 - SCALE * wd];
                    for x in [w - 2, w - 1] {
                        g.store(&upv, dst_row * ws + x, v);
                        g.store(&upv, companion * ws + x, v);
                    }
                }
            }
            g.charge_n(&per_item, n);
            g.charge_n(&replicate_item, n_repl);
            g.divergent(corner_events);
        })?;
        times.push(t);
    }

    // Vertical border columns for rows 2 ..= h-3 (empty when the
    // downscaled grid has a single row: the border rows covered them).
    for (name, src_col, dst_col) in [
        ("upscale_border_left", 0usize, 0usize),
        ("upscale_border_right", wd - 1, w - 2),
    ] {
        let n_items = (hd - 1).max(1);
        let desc = grid1d(name, n_items, 64);
        let down = down.clone();
        let upv = up.write_view();
        let companion = if dst_col == 0 { 1 } else { w - 1 };
        let per_item = OpCounts::ZERO.muls(8).adds(4).cmps(2).plus(&tune.idx_ops());
        let access = upscale_border_col_access(
            &desc,
            down.info(),
            up.info(),
            wd,
            h,
            ws,
            src_col,
            dst_col,
            companion,
        );
        let t = Launch::Full.dispatch(q, &desc, access, &[up], move |g| {
            let mut n = 0u64;
            for l in items(g.group_size) {
                g.begin_item(l);
                let [bj, _] = g.global_id(l);
                if bj >= hd - 1 {
                    continue;
                }
                n += 1;
                let a = g.load(&down, bj * wd + src_col);
                let b = g.load(&down, (bj + 1) * wd + src_col);
                for ph in 0..SCALE {
                    let y = SCALE * bj + 2 + ph;
                    if y > h - 3 {
                        break;
                    }
                    let v = math::border_interp(a, b, ph);
                    g.store(&upv, y * ws + dst_col, v);
                    g.store(&upv, y * ws + companion, v);
                }
            }
            g.charge_n(&per_item, n);
        })?;
        times.push(t);
    }
    Ok(times)
}

/// Closed-form access summary of one horizontal border-row dispatch: item
/// `bi` loads the downscaled pair `(bi, bi+1)` of `src_row` (interior
/// columns are read twice, declared as a 2-wide sliding window) and each
/// of `x ∈ [2, w-3]` is stored exactly once per output row, with the
/// corner items adding the two outermost columns on each side. A
/// single-column downscaled grid replicates its one value across both
/// rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn upscale_border_row_access(
    desc: &KernelDesc,
    down: BufRef,
    up: BufRef,
    w: usize,
    ws: usize,
    src_row: usize,
    dst_row: usize,
    companion: usize,
) -> AccessSummary {
    let wd = w.div_ceil(SCALE);
    let mut s = AccessSummary::new(&desc.name, 0..desc.total_groups(), desc.total_groups());
    if wd == 1 {
        s.push(AccessWindow::read(down, src_row, 1));
        s.push(AccessWindow::write(up.clone(), dst_row * ws, w));
        s.push(AccessWindow::write(up, companion * ws, w));
        s.charge_global_n(4, 0, 0, 0, 1);
        s.charge_global_n(0, 0, 4, 0, 2 * w as u64);
        return s;
    }
    s.push(AccessWindow::read(down, src_row * wd, 2).by_x(wd - 1, 1));
    for row in [dst_row, companion] {
        s.push(AccessWindow::write(up.clone(), row * ws, 2));
        s.push(AccessWindow::write(up.clone(), row * ws + 2, w - 4));
        s.push(AccessWindow::write(up.clone(), row * ws + w - 2, 2));
    }
    s.charge_global_n(4, 0, 0, 0, 2 * (wd as u64 - 1));
    s.charge_global_n(0, 0, 4, 0, 2 * w as u64);
    s
}

/// Closed-form access summary of one vertical border-column dispatch: item
/// `bj` loads the downscaled pair of rows `(bj, bj+1)` at `src_col`
/// (interior rows read twice) and each `y ∈ [2, h-3]` is stored exactly
/// once to both output columns. A single-row downscaled grid leaves the
/// dispatch with no live items (the border rows already covered
/// everything).
#[allow(clippy::too_many_arguments)]
pub(crate) fn upscale_border_col_access(
    desc: &KernelDesc,
    down: BufRef,
    up: BufRef,
    wd: usize,
    h: usize,
    ws: usize,
    src_col: usize,
    dst_col: usize,
    companion: usize,
) -> AccessSummary {
    let hd = h.div_ceil(SCALE);
    let mut s = AccessSummary::new(&desc.name, 0..desc.total_groups(), desc.total_groups());
    if hd < 2 {
        return s;
    }
    s.push(
        AccessWindow::read(down, src_col, 1)
            .by_x(2, wd)
            .by_y(hd - 1, wd),
    );
    s.push(AccessWindow::write(up.clone(), 2 * ws + dst_col, 1).by_y(h - 4, ws));
    s.push(AccessWindow::write(up, 2 * ws + companion, 1).by_y(h - 4, ws));
    s.charge_global_n(4, 0, 0, 0, 2 * (hd as u64 - 1));
    s.charge_global_n(0, 0, 4, 0, 2 * (h as u64 - 4));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::stages;
    use imagekit::{generate, ImageF32};
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn setup(wi: usize, hi: usize, seed: u64) -> (ImageF32, ImageF32) {
        let img = generate::natural(wi, hi, seed);
        let (down, _) = stages::downscale(&img);
        let (up, _, _) = stages::upscale(&down, wi, hi);
        (down, up)
    }

    #[test]
    fn center_scalar_matches_cpu_exactly() {
        let (down, cpu_up) = setup(64, 48, 3);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let dbuf = ctx.buffer_from("down", down.pixels());
        let up = ctx.buffer::<f32>("up", 64 * 48);
        upscale_center_scalar_kernel(
            &mut q,
            &dbuf.view(),
            &up,
            64,
            48,
            64,
            KernelTuning::default(),
        )
        .unwrap();
        // Compare interior only (border kernel not dispatched here).
        let got = ImageF32::from_vec(64, 48, up.snapshot());
        for y in 2..=48 - 3 {
            for x in 2..=64 - 3 {
                assert_eq!(got.get(x, y), cpu_up.get(x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn center_vec4_matches_scalar_exactly() {
        let (down, _) = setup(96, 64, 8);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let dbuf = ctx.buffer_from("down", down.pixels());
        let up_a = ctx.buffer::<f32>("upA", 96 * 64);
        let up_b = ctx.buffer::<f32>("upB", 96 * 64);
        upscale_center_scalar_kernel(
            &mut q,
            &dbuf.view(),
            &up_a,
            96,
            64,
            96,
            KernelTuning::default(),
        )
        .unwrap();
        upscale_center_vec4_kernel(
            &mut q,
            &dbuf.view(),
            &up_b,
            96,
            64,
            96,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(up_a.snapshot(), up_b.snapshot());
    }

    #[test]
    fn center_vec4_matches_scalar_on_odd_shapes() {
        for (w, h) in [(5, 7), (13, 11), (33, 29), (97, 64), (21, 5)] {
            let ws = crate::params::device_stride(w);
            let img = generate::natural(w, h, 8);
            let (down, _) = stages::downscale(&img);
            let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
            let mut q = ctx.queue();
            let dbuf = ctx.buffer_from("down", down.pixels());
            let up_a = ctx.buffer::<f32>("upA", ws * h);
            let up_b = ctx.buffer::<f32>("upB", ws * h);
            upscale_center_scalar_kernel(
                &mut q,
                &dbuf.view(),
                &up_a,
                w,
                h,
                ws,
                KernelTuning::default(),
            )
            .unwrap();
            upscale_center_vec4_kernel(
                &mut q,
                &dbuf.view(),
                &up_b,
                w,
                h,
                ws,
                KernelTuning::default(),
            )
            .unwrap();
            assert_eq!(up_a.snapshot(), up_b.snapshot(), "{w}x{h}");
        }
    }

    #[test]
    fn border_plus_center_covers_everything_on_odd_shapes() {
        for (w, h) in [
            (5, 7),
            (7, 5),
            (13, 11),
            (33, 29),
            (3, 3),
            (3, 9),
            (9, 3),
            (4, 4),
        ] {
            let ws = crate::params::device_stride(w);
            let img = generate::natural(w, h, 5);
            let (down, _) = stages::downscale(&img);
            let (cpu_up, _, _) = stages::upscale(&down, w, h);
            let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
            let mut q = ctx.queue();
            let dbuf = ctx.buffer_from("down", down.pixels());
            let up = ctx.buffer::<f32>("up", ws * h);
            upscale_border_gpu(&mut q, &dbuf.view(), &up, w, h, ws, KernelTuning::default())
                .unwrap();
            if w.div_ceil(SCALE) > 1 && h.div_ceil(SCALE) > 1 {
                upscale_center_vec4_kernel(
                    &mut q,
                    &dbuf.view(),
                    &up,
                    w,
                    h,
                    ws,
                    KernelTuning::default(),
                )
                .unwrap();
            }
            let snap = up.snapshot();
            for y in 0..h {
                for x in 0..w {
                    assert_eq!(snap[y * ws + x], cpu_up.get(x, y), "({x},{y}) of {w}x{h}");
                }
            }
        }
    }

    #[test]
    fn border_gpu_matches_cpu_exactly() {
        let (down, cpu_up) = setup(64, 64, 4);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let dbuf = ctx.buffer_from("down", down.pixels());
        let up = ctx.buffer::<f32>("up", 64 * 64);
        let times = upscale_border_gpu(
            &mut q,
            &dbuf.view(),
            &up,
            64,
            64,
            64,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(times.len(), 4);
        let got = ImageF32::from_vec(64, 64, up.snapshot());
        // Border rows (full width).
        for x in 0..64 {
            for y in [0usize, 1, 62, 63] {
                assert_eq!(got.get(x, y), cpu_up.get(x, y), "row border ({x},{y})");
            }
        }
        // Border columns for body rows.
        for y in 2..62 {
            for x in [0usize, 1, 62, 63] {
                assert_eq!(got.get(x, y), cpu_up.get(x, y), "col border ({x},{y})");
            }
        }
    }

    #[test]
    fn border_plus_center_covers_everything() {
        let (down, cpu_up) = setup(64, 48, 12);
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let dbuf = ctx.buffer_from("down", down.pixels());
        let up = ctx.buffer::<f32>("up", 64 * 48);
        upscale_border_gpu(
            &mut q,
            &dbuf.view(),
            &up,
            64,
            48,
            64,
            KernelTuning::default(),
        )
        .unwrap();
        upscale_center_vec4_kernel(
            &mut q,
            &dbuf.view(),
            &up,
            64,
            48,
            64,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(up.snapshot(), cpu_up.pixels());
    }

    #[test]
    fn border_kernels_launch_four_times() {
        let (down, _) = setup(64, 64, 1);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let dbuf = ctx.buffer_from("down", down.pixels());
        let up = ctx.buffer::<f32>("up", 64 * 64);
        upscale_border_gpu(
            &mut q,
            &dbuf.view(),
            &up,
            64,
            64,
            64,
            KernelTuning::default(),
        )
        .unwrap();
        assert_eq!(q.records().len(), 4);
        assert!(q
            .records()
            .iter()
            .all(|r| r.name.starts_with("upscale_border")));
    }
}
