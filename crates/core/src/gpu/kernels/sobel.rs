//! Sobel kernels: scalar (one pixel per thread) and the vectorized variant
//! of Section V-D (four adjacent pixels per thread, 18 loads shared among
//! them — "the accessing for every node in original matrix is repeated for
//! about only 4.5 times" instead of 8).

use simgpu::access::{AccessSummary, AccessWindow, BufRef};
use simgpu::buffer::Buffer;
use simgpu::cost::OpCounts;
use simgpu::error::{Error, Result};
use simgpu::kernel::{items, KernelDesc};
use simgpu::queue::CommandQueue;
use simgpu::timing::KernelTime;

use super::{
    body_columns, covered_rows, grid2d, interior_rows, simd, summarize, vec4_body_columns,
    KernelTuning, Launch, SrcImage, SrcInfo, GROUP_2D,
};
use crate::math;
use crate::params::MIN_DIM;

/// Scalar Sobel: each thread computes one pEdge value from eight
/// neighbour loads; border threads store zero. `ws` is the device row
/// stride of `pedge` (equal to `w` for multiple-of-4 widths).
pub fn sobel_scalar_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    pedge: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    sobel_scalar_launch(q, src, pedge, w, h, ws, tune, Launch::Full)
}

/// [`sobel_scalar_kernel`] with an explicit [`Launch`] mode (the banded
/// scheduler slices the grid by work-group rows of 16 image rows).
#[allow(clippy::too_many_arguments)]
pub(crate) fn sobel_scalar_launch(
    q: &mut CommandQueue,
    src: &SrcImage,
    pedge: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    if w < MIN_DIM || h < MIN_DIM || ws < w {
        return Err(Error::InvalidKernelArgs {
            kernel: "sobel".into(),
            detail: format!(
                "shape {w}x{h} (stride {ws}) below the {MIN_DIM}x{MIN_DIM} stencil minimum"
            ),
        });
    }
    let desc = grid2d("sobel", w, h);
    let out = pedge.write_view();
    let src = src.clone();
    let per_item = OpCounts::ZERO
        .adds(11)
        .muls(4)
        .cmps(2)
        .plus(&tune.idx_ops());
    let border_div = tune.clamp_divergence();
    // Row-span form: each group walks its 16-column tile row by row, so
    // the stencil runs over contiguous slices (autovectorized by rustc or
    // dispatched to the explicit backends via [`simd::sobel_span`]).
    // Charged traffic stays exactly the per-pixel pattern of the one-item-
    // per-pixel form: eight window loads + one store per body pixel, one
    // zero store per border pixel. The observed raw reads are the three
    // `(blen+2)`-wide row slices per tile row, which stay below the
    // charged windows for every width except `w == 3` (one-pixel body
    // spans), so narrow images keep the exact per-item path.
    let access = summarize(&launch, &desc, |groups| {
        sobel_scalar_access(&desc, groups, &SrcInfo::of(&src), pedge.info(), w, h, ws)
    });
    let ratio = access.read_ratio;
    launch.dispatch(q, &desc, access, &[pedge], move |g| {
        if w < 4 {
            let mut n_body = 0u64;
            let mut n_border = 0u64;
            for l in items(g.group_size) {
                g.begin_item(l);
                let [x, y] = g.global_id(l);
                if x >= w || y >= h {
                    continue;
                }
                if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
                    n_border += 1;
                    g.store(&out, y * ws + x, 0.0);
                    continue;
                }
                n_body += 1;
                let (xi, yi) = (x as isize, y as isize);
                let n = [
                    g.load(&src.view, src.idx(xi - 1, yi - 1)),
                    g.load(&src.view, src.idx(xi, yi - 1)),
                    g.load(&src.view, src.idx(xi + 1, yi - 1)),
                    g.load(&src.view, src.idx(xi - 1, yi)),
                    0.0, // centre value is unused by the operator
                    g.load(&src.view, src.idx(xi + 1, yi)),
                    g.load(&src.view, src.idx(xi - 1, yi + 1)),
                    g.load(&src.view, src.idx(xi, yi + 1)),
                    g.load(&src.view, src.idx(xi + 1, yi + 1)),
                ];
                g.store(&out, y * ws + x, math::sobel_pixel(&n));
            }
            g.charge_n(&per_item, n_body);
            g.charge_n(&OpCounts::ZERO.cmps(4), n_border + n_body);
            g.divergent(n_border * border_div);
            return;
        }
        g.declare_read_overcharge(ratio);
        let gw = g.group_size[0];
        let x_start = g.group_id[0] * gw;
        let mut n_body = 0u64;
        let mut n_border = 0u64;
        let mut scratch = [0.0f32; GROUP_2D[0]];
        for ly in 0..g.group_size[1] {
            g.begin_item([0, ly]);
            let y = g.group_id[1] * g.group_size[1] + ly;
            if y >= h || x_start >= w {
                continue;
            }
            let x_end = (x_start + gw).min(w);
            let span = x_end - x_start;
            let row_out = &mut scratch[..span];
            // Zero first: the border columns/rows the body span below does
            // not overwrite store zero, as in the per-pixel form.
            row_out.fill(0.0);
            let mut row_body = 0u64;
            if y > 0 && y < h - 1 {
                let body_lo = x_start.max(1);
                let body_hi = x_end.min(w - 1);
                if body_hi > body_lo {
                    let blen = body_hi - body_lo;
                    let yi = y as isize;
                    let r0 = src
                        .view
                        .slice_raw(src.idx(body_lo as isize - 1, yi - 1), blen + 2);
                    let r1 = src
                        .view
                        .slice_raw(src.idx(body_lo as isize - 1, yi), blen + 2);
                    let r2 = src
                        .view
                        .slice_raw(src.idx(body_lo as isize - 1, yi + 1), blen + 2);
                    simd::sobel_span(
                        r0,
                        r1,
                        r2,
                        &mut row_out[body_lo - x_start..body_hi - x_start],
                    );
                    row_body = blen as u64;
                }
            }
            n_body += row_body;
            n_border += span as u64 - row_body;
            out.set_span_raw(y * ws + x_start, row_out);
        }
        // Eight window loads (32 B) + one store (4 B) per body pixel; one
        // zero store (4 B) per border pixel — identical to the per-item
        // charges above.
        g.charge_global_n(32, 0, 4, 0, n_body);
        g.charge_global_n(0, 0, 4, 0, n_border);
        g.charge_n(&per_item, n_body);
        g.charge_n(&OpCounts::ZERO.cmps(4), n_border + n_body);
        g.divergent(n_border * border_div);
    })
}

/// Closed-form access summary of the scalar Sobel dispatch: per covered
/// row, a full `w`-element pEdge write; source reads are the eight
/// per-pixel neighbour windows for narrow images (`w < 4`, the exact
/// per-item path) or three `(blen+2)`-wide halo slices per body column
/// group otherwise.
pub(crate) fn sobel_scalar_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    src: &SrcInfo,
    pedge: BufRef,
    w: usize,
    h: usize,
    ws: usize,
) -> AccessSummary {
    let rows = covered_rows(desc, &groups, h);
    let nr = rows.len();
    let mut s = AccessSummary::new(&desc.name, groups, desc.total_groups());
    if nr == 0 {
        return s;
    }
    s.push(AccessWindow::write(pedge, rows.start * ws, w).by_y(nr, ws));
    let ir = interior_rows(&rows, w, h);
    let nir = ir.len();
    if nir > 0 {
        if w < 4 {
            // Per-item form: eight neighbour loads per body pixel.
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    s.push(
                        AccessWindow::read(
                            src.buf.clone(),
                            src.idx(1 + dx, ir.start as isize + dy),
                            w - 2,
                        )
                        .by_y(nir, src.pitch),
                    );
                }
            }
        } else {
            for (lo, blen) in body_columns(w) {
                s.push(
                    AccessWindow::read(
                        src.buf.clone(),
                        src.idx(lo as isize - 1, ir.start as isize - 1),
                        blen + 2,
                    )
                    .by_x(3, src.pitch)
                    .by_y(nir, src.pitch),
                );
            }
        }
    }
    let n_body = (nir as u64) * (w.saturating_sub(2) as u64);
    let n_border = (w * nr) as u64 - n_body;
    s.charge_global_n(32, 0, 4, 0, n_body);
    s.charge_global_n(0, 0, 4, 0, n_border);
    s
}

/// Vectorized Sobel (paper Fig. 11): each thread produces four adjacent
/// pEdge values. Loads the 3×6 source window as three `vload4`s plus six
/// scalar loads (18 values) and writes with one `vstore4`. Requires the
/// padded source so that the window loads need no bounds checks. `ws` is
/// the vec4-aligned device row stride of `pedge`; threads cover the full
/// stride, writing zero into the padding columns beyond `w`.
pub fn sobel_vec4_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    pedge: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    sobel_vec4_launch(q, src, pedge, w, h, ws, tune, Launch::Full)
}

/// [`sobel_vec4_kernel`] with an explicit [`Launch`] mode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sobel_vec4_launch(
    q: &mut CommandQueue,
    src: &SrcImage,
    pedge: &Buffer<f32>,
    w: usize,
    h: usize,
    ws: usize,
    tune: KernelTuning,
    launch: Launch<'_>,
) -> Result<KernelTime> {
    if src.pad != 1 {
        return Err(Error::InvalidKernelArgs {
            kernel: "sobel_vec4".into(),
            detail: "requires the padded source (pad == 1)".into(),
        });
    }
    if w < MIN_DIM || h < MIN_DIM || !ws.is_multiple_of(4) || ws < w || src.pitch != ws + 2 {
        return Err(Error::InvalidKernelArgs {
            kernel: "sobel_vec4".into(),
            detail: format!(
                "shape {w}x{h} with stride {ws} (pitch {}): stride must be a \
                 multiple of 4 covering the width, pitch = stride + 2, and the \
                 shape at least {MIN_DIM}x{MIN_DIM}",
                src.pitch
            ),
        });
    }
    let desc = grid2d("sobel_vec4", ws / 4, h);
    let out = pedge.write_view();
    let src = src.clone();
    // Per thread: 4 pixels × (11 add + 4 mul + 2 cmp) + border selects.
    let per_thread = OpCounts::ZERO
        .adds(44)
        .muls(16)
        .cmps(8 + 4)
        .plus(&tune.idx_ops());
    // Charged loads are 18 per thread over (ws/4)·h threads; the summary
    // declares the halo-slice events actually observed and carries the
    // exact ratio between the two.
    let access = summarize(&launch, &desc, |groups| {
        sobel_vec4_access(&desc, groups, &SrcInfo::of(&src), pedge.info(), w, h, ws)
    });
    let ratio = access.read_ratio;
    launch.dispatch(q, &desc, access, &[pedge], move |g| {
        // Row-segment form: the group's threads cover `4 * group_size[0]`
        // consecutive pixels per row, computed as one branch-free span so
        // the host autovectorizes it, while the charged traffic stays
        // exactly the per-thread 3×vload4 + 6 loads + vstore4 pattern
        // (border-row threads load their windows too before zeroing, so
        // every covered thread charges the full window).
        // The charged traffic (18 loads per thread, windows overlapping by
        // design) exceeds the distinct elements the row-span form touches;
        // declare the worst-case ratio so the drift audit stays exact-or-
        // declared.
        g.declare_read_overcharge(ratio);
        let gw = g.group_size[0];
        let x_start = 4 * g.group_id[0] * gw;
        let mut n_threads = 0u64;
        let mut scratch = [0.0f32; 4 * GROUP_2D[0]];
        for ly in 0..g.group_size[1] {
            g.begin_item([0, ly]);
            let y = g.group_id[1] * g.group_size[1] + ly;
            if y >= h || x_start >= ws {
                continue;
            }
            let x_end = (x_start + 4 * gw).min(ws);
            let span = x_end - x_start;
            n_threads += (span / 4) as u64;
            let row_out = &mut scratch[..span];
            // Zero everything the body loop below does not overwrite: the
            // image border columns and the stride-padding tail beyond `w`
            // stay zero, matching the scalar kernel (which never writes
            // the padding at all — it is zero from allocation).
            row_out.fill(0.0);
            if y > 0 && y < h - 1 {
                let yi = y as isize;
                let body_lo = x_start.max(1);
                let body_hi = x_end.min(w - 1);
                let blen = body_hi - body_lo;
                let r0 = src
                    .view
                    .slice_raw(src.idx(body_lo as isize - 1, yi - 1), blen + 2);
                let r1 = src
                    .view
                    .slice_raw(src.idx(body_lo as isize - 1, yi), blen + 2);
                let r2 = src
                    .view
                    .slice_raw(src.idx(body_lo as isize - 1, yi + 1), blen + 2);
                // `sobel_pixel` with the window columns i..i+3 in the
                // identical operation order (left-to-right sums), so the
                // span is bit-identical to the per-pixel form — pinned by
                // `vec4_matches_scalar_exactly`.
                simd::sobel_span(
                    r0,
                    r1,
                    r2,
                    &mut row_out[body_lo - x_start..body_hi - x_start],
                );
            }
            out.set_span_raw(y * ws + x_start, row_out);
        }
        // Per thread: one 3-row window = 3 vload4 (48 B) + 6 scalar loads
        // (24 B), one vstore4 (16 B).
        g.charge_global_n(24, 48, 0, 16, n_threads);
        g.charge_n(&per_thread, n_threads);
    })
}

/// Closed-form access summary of the vectorized Sobel dispatch: per
/// covered row, a full `ws`-element pEdge write (padding columns are
/// zeroed); source reads are the unconditional halo slices per column
/// group over interior rows (border rows load nothing).
pub(crate) fn sobel_vec4_access(
    desc: &KernelDesc,
    groups: std::ops::Range<usize>,
    src: &SrcInfo,
    pedge: BufRef,
    w: usize,
    h: usize,
    ws: usize,
) -> AccessSummary {
    let rows = covered_rows(desc, &groups, h);
    let nr = rows.len();
    let mut s = AccessSummary::new(&desc.name, groups, desc.total_groups());
    if nr == 0 {
        return s;
    }
    s.push(AccessWindow::write(pedge, rows.start * ws, ws).by_y(nr, ws));
    let ir = interior_rows(&rows, w, h);
    let nir = ir.len();
    if nir > 0 {
        for (lo, blen) in vec4_body_columns(w, ws) {
            s.push(
                AccessWindow::read(
                    src.buf.clone(),
                    src.idx(lo as isize - 1, ir.start as isize - 1),
                    blen + 2,
                )
                .by_x(3, src.pitch)
                .by_y(nir, src.pitch),
            );
        }
    }
    s.charge_global_n(24, 48, 0, 16, ((ws / 4) * nr) as u64);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::stages;
    use imagekit::generate;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn gpu_ctx() -> Context {
        Context::with_validation(DeviceSpec::firepro_w8000())
    }

    #[test]
    fn scalar_matches_cpu_exactly() {
        let img = generate::natural(48, 32, 5);
        let (cpu, _) = stages::sobel(&img);
        let ctx = gpu_ctx();
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", img.pixels());
        let pedge = ctx.buffer::<f32>("pEdge", 48 * 32);
        let src = SrcImage {
            view: orig.view(),
            pitch: 48,
            pad: 0,
        };
        sobel_scalar_kernel(&mut q, &src, &pedge, 48, 32, 48, KernelTuning::default()).unwrap();
        assert_eq!(pedge.snapshot(), cpu.pixels());
    }

    #[test]
    fn vec4_matches_scalar_exactly() {
        let img = generate::natural(64, 48, 9);
        let (cpu, _) = stages::sobel(&img);
        let ctx = gpu_ctx();
        let mut q = ctx.queue();
        let padded = img.padded(1, false);
        let pbuf = ctx.buffer_from("padded", padded.pixels());
        let pedge = ctx.buffer::<f32>("pEdge", 64 * 48);
        let src = SrcImage {
            view: pbuf.view(),
            pitch: 66,
            pad: 1,
        };
        sobel_vec4_kernel(&mut q, &src, &pedge, 64, 48, 64, KernelTuning::default()).unwrap();
        assert_eq!(pedge.snapshot(), cpu.pixels());
    }

    #[test]
    fn vec4_matches_scalar_on_odd_widths() {
        // Ragged widths: the vec4 kernel runs over the padded stride and
        // must produce the scalar kernel's pixels in the `w` image columns
        // and zeros in the padding tail.
        for (w, h) in [(5, 7), (13, 11), (33, 29), (3, 3), (61, 16)] {
            let ws = crate::params::device_stride(w);
            let img = generate::natural(w, h, 3);
            let ctx = gpu_ctx();
            let mut q = ctx.queue();

            let orig = ctx.buffer_from("original", img.pixels());
            let scalar_out = ctx.buffer::<f32>("pEdgeS", ws * h);
            let raw = SrcImage {
                view: orig.view(),
                pitch: w,
                pad: 0,
            };
            sobel_scalar_kernel(&mut q, &raw, &scalar_out, w, h, ws, KernelTuning::default())
                .unwrap();

            // Padded source at the device stride, image rect at (1,1).
            let pw = ws + 2;
            let mut padded = vec![0.0f32; pw * (h + 2)];
            for y in 0..h {
                for x in 0..w {
                    padded[(y + 1) * pw + x + 1] = img.get(x, y);
                }
            }
            let pbuf = ctx.buffer_from("padded", &padded);
            let vec_out = ctx.buffer::<f32>("pEdgeV", ws * h);
            let psrc = SrcImage {
                view: pbuf.view(),
                pitch: pw,
                pad: 1,
            };
            sobel_vec4_kernel(&mut q, &psrc, &vec_out, w, h, ws, KernelTuning::default()).unwrap();

            assert_eq!(vec_out.snapshot(), scalar_out.snapshot(), "{w}x{h}");
            let snap = vec_out.snapshot();
            for y in 0..h {
                for x in w..ws {
                    assert_eq!(snap[y * ws + x], 0.0, "padding ({x},{y}) of {w}x{h}");
                }
            }
        }
    }

    #[test]
    fn vec4_rejects_bad_arguments_with_typed_error() {
        let ctx = gpu_ctx();
        let mut q = ctx.queue();
        let pbuf = ctx.buffer::<f32>("padded", 10 * 10);
        let pedge = ctx.buffer::<f32>("pEdge", 64);
        let unpadded = SrcImage {
            view: pbuf.view(),
            pitch: 8,
            pad: 0,
        };
        let err = sobel_vec4_kernel(&mut q, &unpadded, &pedge, 8, 8, 8, KernelTuning::default())
            .unwrap_err();
        assert!(matches!(err, Error::InvalidKernelArgs { .. }), "{err}");
        let padded = SrcImage {
            view: pbuf.view(),
            pitch: 10,
            pad: 1,
        };
        // Stride not covering the width.
        let err = sobel_vec4_kernel(&mut q, &padded, &pedge, 8, 8, 4, KernelTuning::default())
            .unwrap_err();
        assert!(matches!(err, Error::InvalidKernelArgs { .. }), "{err}");
    }

    #[test]
    fn vec4_moves_traffic_to_vector_class() {
        let img = generate::natural(64, 64, 2);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let padded = img.padded(1, false);
        let pbuf = ctx.buffer_from("padded", padded.pixels());
        let pedge = ctx.buffer::<f32>("pEdge", 64 * 64);
        let src = SrcImage {
            view: pbuf.view(),
            pitch: 66,
            pad: 1,
        };
        sobel_vec4_kernel(&mut q, &src, &pedge, 64, 64, 64, KernelTuning::default()).unwrap();
        let c = q.records()[0].counters.unwrap();
        assert!(c.global_read_vector > 0);
        assert!(c.global_write_vector > 0);
        assert_eq!(c.global_write_scalar, 0);
        // 18 loads per thread for 4 pixels = 4.5 per pixel, vs 8 scalar.
        let per_pixel = (c.global_read_vector + c.global_read_scalar) as f64 / (64.0 * 64.0 * 4.0);
        assert!((per_pixel - 4.5).abs() < 0.01, "loads/pixel = {per_pixel}");
    }

    #[test]
    fn scalar_reads_eight_per_body_pixel() {
        let img = generate::natural(32, 32, 2);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", img.pixels());
        let pedge = ctx.buffer::<f32>("pEdge", 32 * 32);
        let src = SrcImage {
            view: orig.view(),
            pitch: 32,
            pad: 0,
        };
        sobel_scalar_kernel(&mut q, &src, &pedge, 32, 32, 32, KernelTuning::default()).unwrap();
        let c = q.records()[0].counters.unwrap();
        assert_eq!(c.global_read_scalar, 30 * 30 * 8 * 4);
    }
}
