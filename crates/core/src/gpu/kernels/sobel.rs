//! Sobel kernels: scalar (one pixel per thread) and the vectorized variant
//! of Section V-D (four adjacent pixels per thread, 18 loads shared among
//! them — "the accessing for every node in original matrix is repeated for
//! about only 4.5 times" instead of 8).

use simgpu::buffer::Buffer;
use simgpu::cost::OpCounts;
use simgpu::error::Result;
use simgpu::kernel::items;
use simgpu::queue::CommandQueue;
use simgpu::timing::KernelTime;

use super::{grid2d, KernelTuning, SrcImage};
use crate::math;

/// Scalar Sobel: each thread computes one pEdge value from eight
/// neighbour loads; border threads store zero.
pub fn sobel_scalar_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    pedge: &Buffer<f32>,
    w: usize,
    h: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    let desc = grid2d("sobel", w, h);
    let out = pedge.write_view();
    let src = src.clone();
    let per_item = OpCounts::ZERO
        .adds(11)
        .muls(4)
        .cmps(2)
        .plus(&tune.idx_ops());
    let border_div = tune.clamp_divergence();
    q.run(&desc, &[pedge], move |g| {
        let mut n_body = 0u64;
        let mut n_border = 0u64;
        for l in items(g.group_size) {
            g.begin_item(l);
            let [x, y] = g.global_id(l);
            if x >= w || y >= h {
                continue;
            }
            if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
                n_border += 1;
                g.store(&out, y * w + x, 0.0);
                continue;
            }
            n_body += 1;
            let (xi, yi) = (x as isize, y as isize);
            let n = [
                g.load(&src.view, src.idx(xi - 1, yi - 1)),
                g.load(&src.view, src.idx(xi, yi - 1)),
                g.load(&src.view, src.idx(xi + 1, yi - 1)),
                g.load(&src.view, src.idx(xi - 1, yi)),
                0.0, // centre value is unused by the operator
                g.load(&src.view, src.idx(xi + 1, yi)),
                g.load(&src.view, src.idx(xi - 1, yi + 1)),
                g.load(&src.view, src.idx(xi, yi + 1)),
                g.load(&src.view, src.idx(xi + 1, yi + 1)),
            ];
            g.store(&out, y * w + x, math::sobel_pixel(&n));
        }
        g.charge_n(&per_item, n_body);
        g.charge_n(&OpCounts::ZERO.cmps(4), n_border + n_body);
        g.divergent(n_border * border_div);
    })
}

/// Vectorized Sobel (paper Fig. 11): each thread produces four adjacent
/// pEdge values. Loads the 3×6 source window as three `vload4`s plus six
/// scalar loads (18 values) and writes with one `vstore4`. Requires the
/// padded source so that the window loads need no bounds checks.
pub fn sobel_vec4_kernel(
    q: &mut CommandQueue,
    src: &SrcImage,
    pedge: &Buffer<f32>,
    w: usize,
    h: usize,
    tune: KernelTuning,
) -> Result<KernelTime> {
    assert_eq!(src.pad, 1, "vectorized Sobel requires the padded source");
    assert_eq!(w % 4, 0, "width must be a multiple of 4");
    let desc = grid2d("sobel_vec4", w / 4, h);
    let out = pedge.write_view();
    let src = src.clone();
    // Per thread: 4 pixels × (11 add + 4 mul + 2 cmp) + border selects.
    let per_thread = OpCounts::ZERO
        .adds(44)
        .muls(16)
        .cmps(8 + 4)
        .plus(&tune.idx_ops());
    q.run(&desc, &[pedge], move |g| {
        // Row-segment form: the group's threads cover `4 * group_size[0]`
        // consecutive pixels per row, computed as one branch-free span so
        // the host autovectorizes it, while the charged traffic stays
        // exactly the per-thread 3×vload4 + 6 loads + vstore4 pattern
        // (border-row threads load their windows too before zeroing, so
        // every covered thread charges the full window).
        // The charged traffic (18 loads per thread, windows overlapping by
        // design) exceeds the distinct elements the row-span form touches;
        // declare the worst-case ratio so the drift audit stays exact-or-
        // declared.
        g.declare_read_overcharge(4.0);
        let gw = g.group_size[0];
        let x_start = 4 * g.group_id[0] * gw;
        let mut n_threads = 0u64;
        let mut scratch = vec![0.0f32; 4 * gw];
        for ly in 0..g.group_size[1] {
            g.begin_item([0, ly]);
            let y = g.group_id[1] * g.group_size[1] + ly;
            if y >= h || x_start >= w {
                continue;
            }
            let x_end = (x_start + 4 * gw).min(w);
            let span = x_end - x_start;
            n_threads += (span / 4) as u64;
            let row_out = &mut scratch[..span];
            if y == 0 || y == h - 1 {
                row_out.fill(0.0);
            } else {
                let yi = y as isize;
                let body_lo = x_start.max(1);
                let body_hi = x_end.min(w - 1);
                let blen = body_hi - body_lo;
                let r0 = src
                    .view
                    .slice_raw(src.idx(body_lo as isize - 1, yi - 1), blen + 2);
                let r1 = src
                    .view
                    .slice_raw(src.idx(body_lo as isize - 1, yi), blen + 2);
                let r2 = src
                    .view
                    .slice_raw(src.idx(body_lo as isize - 1, yi + 1), blen + 2);
                let body = &mut row_out[body_lo - x_start..body_hi - x_start];
                // `sobel_pixel` with the window columns i..i+3, written out
                // in the identical operation order (left-to-right sums) so
                // the span is bit-identical to the per-pixel form — pinned
                // by `vec4_matches_scalar_exactly`.
                for i in 0..body.len() {
                    let gx =
                        (r0[i + 2] + 2.0 * r1[i + 2] + r2[i + 2]) - (r0[i] + 2.0 * r1[i] + r2[i]);
                    let gy = (r2[i] + 2.0 * r2[i + 1] + r2[i + 2])
                        - (r0[i] + 2.0 * r0[i + 1] + r0[i + 2]);
                    body[i] = gx.abs() + gy.abs();
                }
                for x in [0, w - 1] {
                    if x >= x_start && x < x_end {
                        row_out[x - x_start] = 0.0;
                    }
                }
            }
            out.set_span_raw(y * w + x_start, row_out);
        }
        // Per thread: one 3-row window = 3 vload4 (48 B) + 6 scalar loads
        // (24 B), one vstore4 (16 B).
        g.charge_global_n(24, 48, 0, 16, n_threads);
        g.charge_n(&per_thread, n_threads);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::stages;
    use imagekit::generate;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn gpu_ctx() -> Context {
        Context::with_validation(DeviceSpec::firepro_w8000())
    }

    #[test]
    fn scalar_matches_cpu_exactly() {
        let img = generate::natural(48, 32, 5);
        let (cpu, _) = stages::sobel(&img);
        let ctx = gpu_ctx();
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", img.pixels());
        let pedge = ctx.buffer::<f32>("pEdge", 48 * 32);
        let src = SrcImage {
            view: orig.view(),
            pitch: 48,
            pad: 0,
        };
        sobel_scalar_kernel(&mut q, &src, &pedge, 48, 32, KernelTuning::default()).unwrap();
        assert_eq!(pedge.snapshot(), cpu.pixels());
    }

    #[test]
    fn vec4_matches_scalar_exactly() {
        let img = generate::natural(64, 48, 9);
        let (cpu, _) = stages::sobel(&img);
        let ctx = gpu_ctx();
        let mut q = ctx.queue();
        let padded = img.padded(1, false);
        let pbuf = ctx.buffer_from("padded", padded.pixels());
        let pedge = ctx.buffer::<f32>("pEdge", 64 * 48);
        let src = SrcImage {
            view: pbuf.view(),
            pitch: 66,
            pad: 1,
        };
        sobel_vec4_kernel(&mut q, &src, &pedge, 64, 48, KernelTuning::default()).unwrap();
        assert_eq!(pedge.snapshot(), cpu.pixels());
    }

    #[test]
    fn vec4_moves_traffic_to_vector_class() {
        let img = generate::natural(64, 64, 2);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let padded = img.padded(1, false);
        let pbuf = ctx.buffer_from("padded", padded.pixels());
        let pedge = ctx.buffer::<f32>("pEdge", 64 * 64);
        let src = SrcImage {
            view: pbuf.view(),
            pitch: 66,
            pad: 1,
        };
        sobel_vec4_kernel(&mut q, &src, &pedge, 64, 64, KernelTuning::default()).unwrap();
        let c = q.records()[0].counters.unwrap();
        assert!(c.global_read_vector > 0);
        assert!(c.global_write_vector > 0);
        assert_eq!(c.global_write_scalar, 0);
        // 18 loads per thread for 4 pixels = 4.5 per pixel, vs 8 scalar.
        let per_pixel = (c.global_read_vector + c.global_read_scalar) as f64 / (64.0 * 64.0 * 4.0);
        assert!((per_pixel - 4.5).abs() < 0.01, "loads/pixel = {per_pixel}");
    }

    #[test]
    fn scalar_reads_eight_per_body_pixel() {
        let img = generate::natural(32, 32, 2);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let orig = ctx.buffer_from("original", img.pixels());
        let pedge = ctx.buffer::<f32>("pEdge", 32 * 32);
        let src = SrcImage {
            view: orig.view(),
            pitch: 32,
            pad: 0,
        };
        sobel_scalar_kernel(&mut q, &src, &pedge, 32, 32, KernelTuning::default()).unwrap();
        let c = q.records()[0].counters.unwrap();
        assert_eq!(c.global_read_scalar, 30 * 30 * 8 * 4);
    }
}
