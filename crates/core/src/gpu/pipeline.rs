//! The GPU pipeline: host program orchestrating transfers, kernels and
//! CPU-side stages according to an [`OptConfig`].
//!
//! With all flags off this is the naive port of Section IV: map/unmap
//! transfers of both the original and the padded matrix (padding done by
//! the host), scalar one-pixel-per-thread kernels, the upscale border and
//! the reduction on the CPU, separate pError/preliminary/overshoot
//! kernels, and a `finish()` after every command. Each flag applies one of
//! the paper's optimizations (Section V); see [`OptConfig`].
//!
//! The pipeline is *functionally real*: it produces the same pixels as
//! [`crate::cpu::CpuPipeline`] (bit-exactly when the reduction runs on the
//! CPU; within float-summation tolerance when the tree reduction runs on
//! the device), while the queue's virtual clock produces the simulated
//! time the figures report.

use imagekit::ImageF32;
use simgpu::buffer::Buffer;
use simgpu::context::Context;
use simgpu::cost::CostCounters;
use simgpu::queue::{CommandKind, CommandQueue};
use simgpu::timing::host_memcpy_time;

use crate::cpu::stages as cpu_stages;
use crate::gpu::kernels::downscale::downscale_kernel;
use crate::gpu::kernels::perror::perror_kernel;
use crate::gpu::kernels::reduction::{
    reduction_stage1_kernel, reduction_stage2_kernel, stage1_groups,
};
use crate::gpu::kernels::sharpen::{
    overshoot_kernel, preliminary_kernel, sharpness_fused_kernel, sharpness_fused_vec4_kernel,
};
use crate::gpu::kernels::sobel::{sobel_scalar_kernel, sobel_vec4_kernel};
use crate::gpu::kernels::upscale::{
    upscale_border_gpu, upscale_center_scalar_kernel, upscale_center_vec4_kernel,
};
use crate::gpu::kernels::{KernelTuning, SrcImage};
use crate::gpu::opts::{OptConfig, Tuning};
use crate::params::{check_shape, SharpnessParams, SCALE};
use crate::report::{RunReport, StageRecord};

/// The OpenCL-style sharpness pipeline on the simulated GPU.
#[derive(Clone)]
pub struct GpuPipeline {
    ctx: Context,
    params: SharpnessParams,
    opts: OptConfig,
    tuning: Tuning,
}

impl GpuPipeline {
    /// Creates a pipeline on `ctx` with the given parameters and
    /// optimization flags, using default tuning.
    pub fn new(ctx: Context, params: SharpnessParams, opts: OptConfig) -> Self {
        GpuPipeline { ctx, params, opts, tuning: Tuning::default() }
    }

    /// Overrides the tuning thresholds/strategies.
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The optimization flags in effect.
    pub fn opts(&self) -> &OptConfig {
        &self.opts
    }

    /// The tuning in effect.
    pub fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// The context this pipeline dispatches to.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    fn sync(&self, q: &mut CommandQueue) {
        if !self.opts.others {
            q.finish();
        }
    }

    /// Device→host read of a whole buffer in the transfer mode the config
    /// selects (bulk when `data_transfer` is on, map/unmap otherwise).
    fn read_back(
        &self,
        q: &mut CommandQueue,
        buf: &Buffer<f32>,
        dst: &mut [f32],
    ) -> Result<(), String> {
        if self.opts.data_transfer {
            q.enqueue_read(buf, dst).map_err(|e| e.to_string())?;
        } else {
            let guard = q.map_read(buf).map_err(|e| e.to_string())?;
            dst.copy_from_slice(&guard.as_slice()[..dst.len()]);
        }
        Ok(())
    }

    /// Runs the pipeline on `orig`, returning the sharpened image and the
    /// simulated command-level time breakdown.
    ///
    /// # Errors
    /// On unsupported shapes, invalid parameters, or simulated-runtime
    /// faults (write races under a validating context).
    pub fn run(&self, orig: &ImageF32) -> Result<RunReport, String> {
        self.run_with_mean(orig, None)
    }

    /// Like [`GpuPipeline::run`], but when `mean_override` is `Some` the
    /// reduction stage is skipped and the given pEdge mean drives the
    /// strength curve. Used by the strip pipeline, whose mean is computed
    /// globally in a separate pass.
    pub fn run_with_mean(
        &self,
        orig: &ImageF32,
        mean_override: Option<f32>,
    ) -> Result<RunReport, String> {
        let (w, h) = (orig.width(), orig.height());
        check_shape(w, h)?;
        self.params.validate()?;
        let (w4, h4) = (w / SCALE, h / SCALE);
        let n = w * h;
        let pw = w + 2;
        let tune = KernelTuning { others: self.opts.others };
        let mut q = self.ctx.queue();

        // ---- uploads (Section V-A) ------------------------------------
        let padded_buf = self.ctx.buffer::<f32>("padded", pw * (h + 2));
        let orig_buf: Option<Buffer<f32>> = if self.opts.data_transfer {
            // One rect-write places the original inside the pre-zeroed
            // padded buffer: padding happens during the transfer.
            q.enqueue_write_rect(&padded_buf, pw, 1, 1, orig.pixels(), w, h)
                .map_err(|e| e.to_string())?;
            None
        } else {
            // Base: the host pads (line-by-line copy), then both matrices
            // go up through map/unmap.
            let padded_host = orig.padded(1, false);
            q.charge_host_seconds(
                "host:padding",
                host_memcpy_time(q.cpu(), padded_buf.byte_len()),
            );
            {
                let mut g = q.map_write(&padded_buf).map_err(|e| e.to_string())?;
                g.as_mut_slice().copy_from_slice(padded_host.pixels());
            }
            let ob = self.ctx.buffer::<f32>("original", n);
            {
                let mut g = q.map_write(&ob).map_err(|e| e.to_string())?;
                g.as_mut_slice().copy_from_slice(orig.pixels());
            }
            Some(ob)
        };
        self.sync(&mut q);

        let padded_src = SrcImage { view: padded_buf.view(), pitch: pw, pad: 1 };
        // What downscale/Sobel/pError read: the raw original in the base
        // pipeline, the padded matrix once the upload is unified.
        let main_src = match &orig_buf {
            Some(b) => SrcImage { view: b.view(), pitch: w, pad: 0 },
            None => padded_src.clone(),
        };

        // ---- downscale --------------------------------------------------
        let down = self.ctx.buffer::<f32>("down", w4 * h4);
        downscale_kernel(&mut q, &main_src, &down, w4, h4, tune).map_err(|e| e.to_string())?;
        self.sync(&mut q);

        // ---- upscale: border (Section V-E) ------------------------------
        let up = self.ctx.buffer::<f32>("up", n);
        let gpu_border = self.opts.border_gpu && w >= self.tuning.border_gpu_min_width;
        if gpu_border {
            upscale_border_gpu(&mut q, &down.view(), &up, w, h, tune)
                .map_err(|e| e.to_string())?;
            self.sync(&mut q);
        } else {
            self.cpu_border(&mut q, &down, &up, w, h, w4, h4)?;
        }

        // ---- upscale: center --------------------------------------------
        if self.opts.vectorization {
            upscale_center_vec4_kernel(&mut q, &down.view(), &up, w, h, tune)
        } else {
            upscale_center_scalar_kernel(&mut q, &down.view(), &up, w, h, tune)
        }
        .map_err(|e| e.to_string())?;
        self.sync(&mut q);

        // ---- Sobel --------------------------------------------------------
        let pedge = self.ctx.buffer::<f32>("pEdge", n);
        if self.opts.vectorization {
            sobel_vec4_kernel(&mut q, &padded_src, &pedge, w, h, tune)
        } else {
            sobel_scalar_kernel(&mut q, &main_src, &pedge, w, h, tune)
        }
        .map_err(|e| e.to_string())?;
        self.sync(&mut q);

        // ---- reduction (Section V-C) -------------------------------------
        let mean = match mean_override {
            Some(m) => m,
            None => self.reduction(&mut q, &pedge, n)?,
        };

        // ---- sharpening tail (Section V-B) --------------------------------
        let finalbuf = self.ctx.buffer::<f32>("final", n);
        if self.opts.kernel_fusion {
            if self.opts.vectorization {
                sharpness_fused_vec4_kernel(
                    &mut q, &padded_src, &up.view(), &pedge.view(), &finalbuf, mean,
                    self.params, w, h, tune,
                )
            } else {
                sharpness_fused_kernel(
                    &mut q, &padded_src, &up.view(), &pedge.view(), &finalbuf, mean,
                    self.params, w, h, tune,
                )
            }
            .map_err(|e| e.to_string())?;
            self.sync(&mut q);
        } else {
            let perr = self.ctx.buffer::<f32>("pError", n);
            perror_kernel(&mut q, &main_src, &up.view(), &perr, w, h, tune)
                .map_err(|e| e.to_string())?;
            self.sync(&mut q);
            let prelim = self.ctx.buffer::<f32>("prelim", n);
            preliminary_kernel(
                &mut q, &up.view(), &pedge.view(), &perr.view(), &prelim, mean, self.params,
                w, h, tune,
            )
            .map_err(|e| e.to_string())?;
            self.sync(&mut q);
            overshoot_kernel(
                &mut q, &padded_src, &prelim.view(), &finalbuf, w, h, self.params, tune,
            )
            .map_err(|e| e.to_string())?;
            self.sync(&mut q);
        }

        // ---- readback -------------------------------------------------------
        q.finish();
        let mut out = vec![0.0f32; n];
        self.read_back(&mut q, &finalbuf, &mut out)?;

        let stages = q
            .records()
            .iter()
            .map(|r| StageRecord { name: r.name.clone(), seconds: r.duration_s })
            .collect();
        Ok(RunReport {
            output: ImageF32::from_vec(w, h, out),
            total_s: q.elapsed(),
            stages,
        })
    }

    /// CPU-side upscale border: read the downscaled matrix back, compute
    /// the border on the host, and write the border region to the device.
    #[allow(clippy::too_many_arguments)]
    fn cpu_border(
        &self,
        q: &mut CommandQueue,
        down: &Buffer<f32>,
        up: &Buffer<f32>,
        w: usize,
        h: usize,
        w4: usize,
        h4: usize,
    ) -> Result<(), String> {
        let mut down_host = vec![0.0f32; w4 * h4];
        self.read_back(q, down, &mut down_host)?;
        let down_img = ImageF32::from_vec(w4, h4, down_host);
        let mut up_host = ImageF32::zeros(w, h);
        let counters = cpu_stages::upscale_border_into(&down_img, &mut up_host);
        q.charge_host("host:upscale_border", &counters);
        // Write exactly the border region into the device buffer.
        let upv = up.write_view();
        let mut border_elems = 0u64;
        for y in [0, 1, h - 2, h - 1] {
            for x in 0..w {
                upv.set_raw(y * w + x, up_host.get(x, y));
                border_elems += 1;
            }
        }
        for y in 2..=h - 3 {
            for x in [0, 1, w - 2, w - 1] {
                upv.set_raw(y * w + x, up_host.get(x, y));
                border_elems += 1;
            }
        }
        let bytes = border_elems * 4;
        if self.opts.data_transfer {
            q.charge_bulk("write:up_border", CommandKind::WriteBuffer, bytes);
        } else {
            q.charge_map("map-write:up_border", bytes);
        }
        Ok(())
    }

    /// Reduction of the pEdge matrix to its mean, on CPU or GPU per the
    /// config; returns the mean used by the strength curve.
    fn reduction(
        &self,
        q: &mut CommandQueue,
        pedge: &Buffer<f32>,
        n: usize,
    ) -> Result<f32, String> {
        if !self.opts.reduction_gpu {
            // Whole pEdge matrix crosses the bus, then a serial host sum —
            // Fig. 16's CPU side.
            let mut host = vec![0.0f32; n];
            self.read_back(q, pedge, &mut host)?;
            // f64 accumulation, identical to the CPU reference stage, so
            // the base GPU pipeline reproduces the CPU output bit-exactly.
            let sum: f64 = host.iter().map(|&v| f64::from(v)).sum();
            let mut c = CostCounters::new();
            c.charge_ops_n(&simgpu::cost::OpCounts::ZERO.adds(1), n as u64);
            c.global_read_scalar = n as u64 * 4;
            q.charge_host("host:reduction", &c);
            return Ok((sum / n as f64) as f32);
        }
        let groups = stage1_groups(n);
        let partials = self.ctx.buffer::<f32>("partials", groups);
        reduction_stage1_kernel(
            q,
            &pedge.view(),
            n,
            &partials,
            self.tuning.reduction_strategy,
        )
        .map_err(|e| e.to_string())?;
        self.sync(q);
        if groups > self.tuning.stage2_gpu_threshold {
            // Stage 2 on the device, then a single-value readback.
            let result = self.ctx.buffer::<f32>("reduction_out", 1);
            reduction_stage2_kernel(q, &partials.view(), groups, &result)
                .map_err(|e| e.to_string())?;
            self.sync(q);
            let mut one = [0.0f32];
            self.read_back(q, &result, &mut one)?;
            Ok(one[0] / n as f32)
        } else {
            // Stage 2 on the host: small partial array crosses the bus.
            let mut part = vec![0.0f32; groups];
            self.read_back(q, &partials, &mut part)?;
            let mut c = CostCounters::new();
            c.charge_ops_n(&simgpu::cost::OpCounts::ZERO.adds(1), groups as u64);
            c.global_read_scalar = groups as u64 * 4;
            q.charge_host("host:reduction_stage2", &c);
            let mut sum = 0.0f32;
            for v in part {
                sum += v;
            }
            Ok(sum / n as f32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPipeline;
    use imagekit::generate;
    use simgpu::device::DeviceSpec;

    fn vctx() -> Context {
        Context::with_validation(DeviceSpec::firepro_w8000())
    }

    fn img64() -> ImageF32 {
        generate::natural(64, 64, 21)
    }

    #[test]
    fn base_pipeline_matches_cpu_bit_exactly() {
        // With the reduction on the CPU (base config) the mean is computed
        // identically, so outputs must be bit-exact.
        let img = img64();
        let cpu = CpuPipeline::new(SharpnessParams::default()).run(&img).unwrap();
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::none())
            .run(&img)
            .unwrap();
        assert_eq!(gpu.output, cpu.output);
    }

    #[test]
    fn all_optimizations_match_cpu_within_tolerance() {
        let img = img64();
        let cpu = CpuPipeline::new(SharpnessParams::default()).run(&img).unwrap();
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all())
            .run(&img)
            .unwrap();
        let diff = gpu.output.max_abs_diff(&cpu.output);
        assert!(diff < 0.05, "max diff {diff}");
    }

    #[test]
    fn every_cumulative_step_is_correct() {
        let img = img64();
        let cpu = CpuPipeline::new(SharpnessParams::default()).run(&img).unwrap();
        for (name, opts) in OptConfig::cumulative_steps() {
            let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
                .run(&img)
                .unwrap();
            let diff = gpu.output.max_abs_diff(&cpu.output);
            assert!(diff < 0.05, "step `{name}`: max diff {diff}");
        }
    }

    #[test]
    fn optimized_is_faster_than_base_at_scale() {
        let img = generate::natural(512, 512, 3);
        let base = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::none())
            .run(&img)
            .unwrap();
        let opt = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all())
            .run(&img)
            .unwrap();
        assert!(
            opt.total_s < base.total_s,
            "optimized {} should beat base {}",
            opt.total_s,
            base.total_s
        );
    }

    #[test]
    fn stage_times_sum_to_total() {
        let img = img64();
        for opts in [OptConfig::none(), OptConfig::all()] {
            let r = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
                .run(&img)
                .unwrap();
            assert!((r.stages_total() - r.total_s).abs() < 1e-12);
        }
    }

    #[test]
    fn border_crossover_switches_device() {
        let img = img64();
        let mut tuning = Tuning { border_gpu_min_width: 64, ..Tuning::default() };
        let opts = OptConfig { border_gpu: true, ..OptConfig::none() };
        let r = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
            .with_tuning(tuning)
            .run(&img)
            .unwrap();
        assert!(r.stages.iter().any(|s| s.name.starts_with("upscale_border_top")));
        // Below the crossover the border runs on the host.
        tuning.border_gpu_min_width = 128;
        let r = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
            .with_tuning(tuning)
            .run(&img)
            .unwrap();
        assert!(r.stages.iter().any(|s| s.name == "host:upscale_border"));
    }

    #[test]
    fn others_flag_removes_intermediate_finishes() {
        let img = img64();
        let base = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::none())
            .run(&img)
            .unwrap();
        let others =
            GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig { others: true, ..OptConfig::none() })
                .run(&img)
                .unwrap();
        let count = |r: &RunReport| r.stages.iter().filter(|s| s.name == "finish").count();
        assert!(count(&base) > 1);
        assert_eq!(count(&others), 1);
    }

    #[test]
    fn gpu_reduction_mean_close_to_cpu() {
        let img = generate::natural(128, 128, 5);
        let p = SharpnessParams::default();
        let base = GpuPipeline::new(vctx(), p, OptConfig::none()).run(&img).unwrap();
        let red = GpuPipeline::new(
            vctx(),
            p,
            OptConfig { reduction_gpu: true, ..OptConfig::none() },
        )
        .run(&img)
        .unwrap();
        let diff = red.output.max_abs_diff(&base.output);
        assert!(diff < 0.05, "max diff {diff}");
    }

    #[test]
    fn rejects_bad_shapes() {
        let img = generate::gradient(24, 18); // 18 not a multiple of 4
        let r = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::none()).run(&img);
        assert!(r.is_err());
    }
}
