//! The GPU pipeline: host program orchestrating transfers, kernels and
//! CPU-side stages according to an [`OptConfig`].
//!
//! With all flags off this is the naive port of Section IV: map/unmap
//! transfers of both the original and the padded matrix (padding done by
//! the host), scalar one-pixel-per-thread kernels, the upscale border and
//! the reduction on the CPU, separate pError/preliminary/overshoot
//! kernels, and a `finish()` after every command. Each flag applies one of
//! the paper's optimizations (Section V); see [`OptConfig`].
//!
//! The pipeline is *functionally real*: it produces the same pixels as
//! [`crate::cpu::CpuPipeline`] (bit-exactly when the reduction runs on the
//! CPU; within float-summation tolerance when the tree reduction runs on
//! the device), while the queue's virtual clock produces the simulated
//! time the figures report.

use imagekit::ImageF32;
use simgpu::buffer::Buffer;
use simgpu::context::Context;
use simgpu::cost::CostCounters;
use simgpu::queue::{CommandKind, CommandQueue};
use simgpu::span::SpanKind;
use simgpu::timing::host_memcpy_time;

use crate::cpu::stages as cpu_stages;
use crate::gpu::kernels::downscale::downscale_kernel;
use crate::gpu::kernels::perror::perror_kernel;
use crate::gpu::kernels::reduction::{
    reduction_stage1_kernel, reduction_stage2_kernel, stage1_groups,
};
use crate::gpu::kernels::sharpen::{
    overshoot_kernel, preliminary_kernel, sharpness_fused_kernel, sharpness_fused_vec4_kernel,
};
use crate::gpu::kernels::sobel::{sobel_scalar_kernel, sobel_vec4_kernel};
use crate::gpu::kernels::upscale::{
    upscale_border_gpu, upscale_center_scalar_kernel, upscale_center_vec4_kernel,
};
use crate::gpu::kernels::{KernelTuning, SrcImage};
use crate::gpu::opts::{OptConfig, Tuning};
use crate::params::{check_shape, device_stride, SharpnessParams, SCALE};
use crate::report::{RunReport, StageRecord};

use crate::gpu::megapass::Schedule;

/// The OpenCL-style sharpness pipeline on the simulated GPU.
#[derive(Clone)]
pub struct GpuPipeline {
    ctx: Context,
    params: SharpnessParams,
    opts: OptConfig,
    tuning: Tuning,
    schedule: Schedule,
}

impl GpuPipeline {
    /// Creates a pipeline on `ctx` with the given parameters and
    /// optimization flags, using default tuning.
    pub fn new(ctx: Context, params: SharpnessParams, opts: OptConfig) -> Self {
        GpuPipeline {
            ctx,
            params,
            opts,
            tuning: Tuning::default(),
            schedule: Schedule::Monolithic,
        }
    }

    /// Overrides the tuning thresholds/strategies.
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Selects the execution schedule (whole-frame kernel passes or the
    /// cache-blocked banded megapass). Orthogonal to every [`OptConfig`]
    /// flag: pixels, simulated seconds and sanitizer verdicts are identical
    /// under either schedule — only host wall-clock changes.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The execution schedule in effect.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Banding counters for a `w`×`h` frame under this pipeline's
    /// schedule; `None` when monolithic.
    pub fn banded_stats(&self, w: usize, h: usize) -> Option<crate::gpu::BandedStats> {
        match self.schedule {
            Schedule::Monolithic => None,
            Schedule::Banded(rows) => {
                Some(crate::gpu::BandedStats::for_frame(w, h, &self.opts, rows))
            }
        }
    }

    /// The optimization flags in effect.
    pub fn opts(&self) -> &OptConfig {
        &self.opts
    }

    /// The sharpening parameters in effect.
    pub fn params(&self) -> &SharpnessParams {
        &self.params
    }

    /// The tuning in effect.
    pub fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// The context this pipeline dispatches to.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Returns a clone of this pipeline whose context has been rebuilt by
    /// `f` (e.g. to pin dispatch threads for per-frame workers). The clone
    /// shares the original's buffer pool.
    pub fn with_context_tweak(&self, f: impl FnOnce(Context) -> Context) -> Self {
        let mut clone = self.clone();
        clone.ctx = f(clone.ctx);
        clone
    }

    pub(crate) fn sync(&self, q: &mut CommandQueue) {
        if !self.opts.others {
            q.finish();
        }
    }

    /// Device→host read of a whole buffer in the transfer mode the config
    /// selects (bulk when `data_transfer` is on, map/unmap otherwise).
    pub(crate) fn read_back(
        &self,
        q: &mut CommandQueue,
        buf: &Buffer<f32>,
        dst: &mut [f32],
    ) -> Result<(), String> {
        if self.opts.data_transfer {
            q.enqueue_read(buf, dst).map_err(|e| e.to_string())?;
        } else {
            let guard = q.map_read(buf).map_err(|e| e.to_string())?;
            dst.copy_from_slice(&guard.as_slice()[..dst.len()]);
        }
        Ok(())
    }

    /// Runs the pipeline on `orig`, returning the sharpened image and the
    /// simulated command-level time breakdown.
    ///
    /// Each call allocates a fresh set of device buffers; for repeated
    /// frames of one shape, [`GpuPipeline::prepared`] amortises that setup.
    ///
    /// # Errors
    /// On unsupported shapes, invalid parameters, or simulated-runtime
    /// faults (write races under a validating context).
    pub fn run(&self, orig: &ImageF32) -> Result<RunReport, String> {
        self.run_with_mean(orig, None)
    }

    /// Like [`GpuPipeline::run`], but when `mean_override` is `Some` the
    /// reduction stage is skipped and the given pEdge mean drives the
    /// strength curve. Used by the strip pipeline, whose mean is computed
    /// globally in a separate pass.
    pub fn run_with_mean(
        &self,
        orig: &ImageF32,
        mean_override: Option<f32>,
    ) -> Result<RunReport, String> {
        let mut res = FrameResources::new(self, orig.width(), orig.height())?;
        let mut q = self.ctx.queue();
        let mut out = vec![0.0f32; res.n];
        self.run_frame(&mut q, &mut res, orig, mean_override, &mut out)?;
        Ok(report_from_queue(&q, orig.width(), orig.height(), out))
    }

    /// Like [`GpuPipeline::run`], additionally deriving per-kernel
    /// efficiency telemetry from the frame's command records.
    ///
    /// The execution path is *identical* to [`GpuPipeline::run`] — the
    /// telemetry is read off the finished queue afterwards, so pixels and
    /// simulated seconds are bit-identical with telemetry on or off (the
    /// observation-only invariant, test-enforced across all 64 configs).
    ///
    /// # Errors
    /// As for [`GpuPipeline::run`].
    pub fn run_with_telemetry(
        &self,
        orig: &ImageF32,
    ) -> Result<(RunReport, crate::telemetry::FrameTelemetry), String> {
        let mut res = FrameResources::new(self, orig.width(), orig.height())?;
        let mut q = self.ctx.queue();
        let mut out = vec![0.0f32; res.n];
        self.run_frame(&mut q, &mut res, orig, None, &mut out)?;
        let mut tel = crate::telemetry::FrameTelemetry::collect(
            q.records(),
            q.device(),
            orig.width(),
            orig.height(),
        );
        tel.banded = self.banded_stats(orig.width(), orig.height());
        Ok((report_from_queue(&q, orig.width(), orig.height(), out), tel))
    }

    /// Prepares a reusable execution plan for `width`×`height` frames: all
    /// device buffers are allocated once and reused across
    /// [`PipelinePlan::run`] calls.
    ///
    /// # Errors
    /// On unsupported shapes or invalid parameters.
    pub fn prepared(&self, width: usize, height: usize) -> Result<PipelinePlan, String> {
        let res = FrameResources::new(self, width, height)?;
        let q = self.ctx.queue();
        Ok(PipelinePlan {
            pipe: self.clone(),
            q,
            res,
        })
    }

    /// Executes one frame against pre-allocated resources, recording
    /// commands on `q` (which the caller has reset) and writing the
    /// sharpened pixels into `out`, under the configured [`Schedule`].
    fn run_frame(
        &self,
        q: &mut CommandQueue,
        res: &mut FrameResources,
        orig: &ImageF32,
        mean_override: Option<f32>,
        out: &mut [f32],
    ) -> Result<(), String> {
        if (orig.width(), orig.height()) != (res.w, res.h) {
            return Err(format!(
                "frame is {}x{}, plan prepared for {}x{}",
                orig.width(),
                orig.height(),
                res.w,
                res.h
            ));
        }
        // The frame scope roots every schedule's span tree; disabled spans
        // make open/close no-ops, so the execution path is shared.
        let frame_span = q.span_open(SpanKind::Frame, "frame");
        let result = match self.schedule {
            Schedule::Monolithic => self.run_frame_monolithic(q, res, orig, mean_override, out),
            Schedule::Banded(rows) => {
                crate::gpu::megapass::run_frame_banded(self, q, res, orig, mean_override, out, rows)
            }
        };
        q.span_close(frame_span);
        result
    }

    /// Uploads the frame in the transfer mode the config selects and
    /// synchronises, exactly as every schedule must (the upload records are
    /// schedule-invariant).
    pub(crate) fn upload_frame(
        &self,
        q: &mut CommandQueue,
        res: &mut FrameResources,
        orig: &ImageF32,
    ) -> Result<(), String> {
        let (w, h, pw) = (res.w, res.h, res.pw);
        // The padded buffer's one-pixel border is zeroed at allocation and
        // never written afterwards (both upload paths touch only the
        // interior), so reuse across frames preserves the zero padding.
        if self.opts.data_transfer {
            // One rect-write places the original inside the pre-zeroed
            // padded buffer: padding happens during the transfer.
            q.enqueue_write_rect(&res.padded, pw, 1, 1, orig.pixels(), w, h)
                .map_err(|e| e.to_string())?;
        } else {
            // Base: the host pads (line-by-line copy), then both matrices
            // go up through map/unmap.
            q.charge_host_seconds(
                "host:padding",
                host_memcpy_time(q.cpu(), res.padded.byte_len()),
            );
            {
                let mut g = q.map_write(&res.padded).map_err(|e| e.to_string())?;
                let dst = g.as_mut_slice();
                for y in 0..h {
                    dst[(y + 1) * pw + 1..(y + 1) * pw + 1 + w]
                        .copy_from_slice(&orig.pixels()[y * w..(y + 1) * w]);
                }
            }
            let ob = res.original.as_ref().expect("base path allocates original");
            {
                let mut g = q.map_write(ob).map_err(|e| e.to_string())?;
                g.as_mut_slice().copy_from_slice(orig.pixels());
            }
        }
        self.sync(q);
        Ok(())
    }

    /// Whether the upscale border runs on the device for width `w`
    /// (Section V-E crossover).
    pub(crate) fn gpu_border_enabled(&self, w: usize) -> bool {
        self.opts.border_gpu && w >= self.tuning.border_gpu_min_width
    }

    /// The whole-frame schedule: each kernel dispatched once over its full
    /// grid, in the order of Section IV.
    fn run_frame_monolithic(
        &self,
        q: &mut CommandQueue,
        res: &mut FrameResources,
        orig: &ImageF32,
        mean_override: Option<f32>,
        out: &mut [f32],
    ) -> Result<(), String> {
        let (w, h) = (res.w, res.h);
        let ws = res.ws;
        let tune = KernelTuning {
            others: self.opts.others,
        };

        // ---- uploads (Section V-A) ------------------------------------
        let ph = q.span_open(SpanKind::Phase, "upload");
        self.upload_frame(q, res, orig)?;
        q.span_close(ph);
        let (padded_src, main_src) = res.sources();

        // ---- downscale --------------------------------------------------
        let ph = q.span_open(SpanKind::Phase, "downscale");
        downscale_kernel(q, &main_src, &res.down, w, h, tune).map_err(|e| e.to_string())?;
        self.sync(q);
        q.span_close(ph);

        // ---- upscale: border (Section V-E) ------------------------------
        let ph = q.span_open(SpanKind::Phase, "upscale");
        if self.gpu_border_enabled(w) {
            upscale_border_gpu(q, &res.down.view(), &res.up, w, h, ws, tune)
                .map_err(|e| e.to_string())?;
            self.sync(q);
        } else {
            self.cpu_border(q, res)?;
        }

        // ---- upscale: center --------------------------------------------
        // Images below 5 pixels on an axis have no interior 4×4 blocks —
        // the border pass above already covered every pixel.
        if res.w4 > 1 && res.h4 > 1 {
            if self.opts.vectorization {
                upscale_center_vec4_kernel(q, &res.down.view(), &res.up, w, h, ws, tune)
            } else {
                upscale_center_scalar_kernel(q, &res.down.view(), &res.up, w, h, ws, tune)
            }
            .map_err(|e| e.to_string())?;
            self.sync(q);
        }
        q.span_close(ph);

        // ---- Sobel --------------------------------------------------------
        let ph = q.span_open(SpanKind::Phase, "sobel");
        if self.opts.vectorization {
            sobel_vec4_kernel(q, &padded_src, &res.pedge, w, h, ws, tune)
        } else {
            sobel_scalar_kernel(q, &main_src, &res.pedge, w, h, ws, tune)
        }
        .map_err(|e| e.to_string())?;
        self.sync(q);
        q.span_close(ph);

        // ---- reduction (Section V-C) -------------------------------------
        let ph = q.span_open(SpanKind::Phase, "reduction");
        let mean = match mean_override {
            Some(m) => m,
            None => self.reduction(q, res)?,
        };
        q.span_close(ph);

        // ---- sharpening tail (Section V-B) --------------------------------
        let ph = q.span_open(SpanKind::Phase, "sharpen");
        if self.opts.kernel_fusion {
            if self.opts.vectorization {
                sharpness_fused_vec4_kernel(
                    q,
                    &padded_src,
                    &res.up.view(),
                    &res.pedge.view(),
                    &res.finalbuf,
                    mean,
                    self.params,
                    w,
                    h,
                    ws,
                    tune,
                )
            } else {
                sharpness_fused_kernel(
                    q,
                    &padded_src,
                    &res.up.view(),
                    &res.pedge.view(),
                    &res.finalbuf,
                    mean,
                    self.params,
                    w,
                    h,
                    ws,
                    tune,
                )
            }
            .map_err(|e| e.to_string())?;
            self.sync(q);
        } else {
            let perr = res.perror.as_ref().expect("unfused path allocates pError");
            perror_kernel(q, &main_src, &res.up.view(), perr, w, h, ws, tune)
                .map_err(|e| e.to_string())?;
            self.sync(q);
            let prelim = res.prelim.as_ref().expect("unfused path allocates prelim");
            preliminary_kernel(
                q,
                &res.up.view(),
                &res.pedge.view(),
                &perr.view(),
                prelim,
                mean,
                self.params,
                w,
                h,
                ws,
                tune,
            )
            .map_err(|e| e.to_string())?;
            self.sync(q);
            overshoot_kernel(
                q,
                &padded_src,
                &prelim.view(),
                &res.finalbuf,
                w,
                h,
                ws,
                self.params,
                tune,
            )
            .map_err(|e| e.to_string())?;
            self.sync(q);
        }
        q.span_close(ph);

        // ---- readback -------------------------------------------------------
        let ph = q.span_open(SpanKind::Phase, "readback");
        let r = self.readback_final(q, res, out);
        q.span_close(ph);
        r
    }

    /// The end-of-frame `finish` plus the final-image readback in the
    /// transfer mode the config selects (schedule-invariant records).
    pub(crate) fn readback_final(
        &self,
        q: &mut CommandQueue,
        res: &FrameResources,
        out: &mut [f32],
    ) -> Result<(), String> {
        let (w, h, ws, n) = (res.w, res.h, res.ws, res.n);
        q.finish();
        if ws == w {
            self.read_back(q, &res.finalbuf, &mut out[..n])?;
        } else if self.opts.data_transfer {
            // Rect read crops the stride padding during the transfer, the
            // mirror of the rect-write upload.
            q.enqueue_read_rect(&res.finalbuf, ws, 0, 0, &mut out[..n], w, h)
                .map_err(|e| e.to_string())?;
        } else {
            let guard = q.map_read(&res.finalbuf).map_err(|e| e.to_string())?;
            let s = guard.as_slice();
            for y in 0..h {
                out[y * w..(y + 1) * w].copy_from_slice(&s[y * ws..y * ws + w]);
            }
        }
        Ok(())
    }

    /// CPU-side upscale border: read the downscaled matrix back, compute
    /// the border on the host (in the plan's reusable scratch), and write
    /// the border region to the device.
    pub(crate) fn cpu_border(
        &self,
        q: &mut CommandQueue,
        res: &mut FrameResources,
    ) -> Result<(), String> {
        let (w, h, ws) = (res.w, res.h, res.ws);
        self.read_back(q, &res.down, res.down_host.pixels_mut())?;
        // Only the border cells of the scratch are written here and only
        // they are read below, so stale interior values from a previous
        // frame are harmless.
        let counters = cpu_stages::upscale_border_into(&res.down_host, &mut res.up_host);
        q.charge_host("host:upscale_border", &counters);
        // Write exactly the border region into the device buffer. The
        // row/column lists are deduplicated for tiny shapes (h = 3 makes
        // row 1 both "second" and "second-to-last").
        let upv = res.up.write_view();
        let mut border_elems = 0u64;
        // Fixed, sorted lists — adjacent duplicates (h = 3 makes row 1
        // both "second" and "second-to-last") are skipped in place, so the
        // per-frame path stays allocation-free.
        let rows = [0, 1, h - 2, h - 1];
        let mut prev = usize::MAX;
        for &y in &rows {
            if y == prev {
                continue;
            }
            prev = y;
            for x in 0..w {
                upv.set_raw(y * ws + x, res.up_host.get(x, y));
                border_elems += 1;
            }
        }
        let cols = [0, 1, w - 2, w - 1];
        for y in 2..=h.saturating_sub(3) {
            let mut prev = usize::MAX;
            for &x in &cols {
                if x == prev {
                    continue;
                }
                prev = x;
                upv.set_raw(y * ws + x, res.up_host.get(x, y));
                border_elems += 1;
            }
        }
        let bytes = border_elems * 4;
        if self.opts.data_transfer {
            q.charge_bulk("write:up_border", CommandKind::WriteBuffer, bytes);
        } else {
            q.charge_map("map-write:up_border", bytes);
        }
        Ok(())
    }

    /// Reduction of the pEdge matrix to its mean, on CPU or GPU per the
    /// config; returns the mean used by the strength curve.
    fn reduction(&self, q: &mut CommandQueue, res: &mut FrameResources) -> Result<f32, String> {
        if !self.opts.reduction_gpu {
            return self.reduction_cpu(q, res);
        }
        let partials = res
            .partials
            .as_ref()
            .expect("gpu reduction allocates partials");
        reduction_stage1_kernel(
            q,
            &res.pedge.view(),
            res.ns,
            partials,
            self.tuning.reduction_strategy,
        )
        .map_err(|e| e.to_string())?;
        self.sync(q);
        self.reduction_stage2_phase(q, res)
    }

    /// CPU-side reduction: the whole pEdge matrix crosses the bus, then a
    /// serial host sum — Fig. 16's CPU side.
    pub(crate) fn reduction_cpu(
        &self,
        q: &mut CommandQueue,
        res: &mut FrameResources,
    ) -> Result<f32, String> {
        let n = res.n;
        let ns = res.ns;
        // The strided buffer's padding columns are exact zeros in every
        // config, so summing all `ns` elements and dividing by the true
        // pixel count `n` is bit-identical to a sum over the cropped image.
        let host = &mut res.reduction_host;
        self.read_back(q, &res.pedge, host)?;
        // f64 accumulation, identical to the CPU reference stage, so
        // the base GPU pipeline reproduces the CPU output bit-exactly.
        let sum: f64 = host.iter().map(|&v| f64::from(v)).sum();
        let mut c = CostCounters::new();
        c.charge_ops_n(&simgpu::cost::OpCounts::ZERO.adds(1), ns as u64);
        c.global_read_scalar = ns as u64 * 4;
        q.charge_host("host:reduction", &c);
        Ok((sum / n as f64) as f32)
    }

    /// Everything after the stage-1 record of the GPU reduction: stage 2 on
    /// host or device per the tuned threshold. Shared by both schedules (the
    /// banded executor commits its sliced stage 1, then calls this).
    pub(crate) fn reduction_stage2_phase(
        &self,
        q: &mut CommandQueue,
        res: &mut FrameResources,
    ) -> Result<f32, String> {
        let n = res.n;
        let groups = stage1_groups(res.ns);
        let partials = res
            .partials
            .as_ref()
            .expect("gpu reduction allocates partials");
        if groups > self.tuning.stage2_gpu_threshold {
            // Stage 2 on the device, then a single-value readback.
            let result = res
                .reduction_out
                .as_ref()
                .expect("gpu stage2 allocates reduction_out");
            reduction_stage2_kernel(q, &partials.view(), groups, result)
                .map_err(|e| e.to_string())?;
            self.sync(q);
            let mut one = [0.0f32];
            self.read_back(q, result, &mut one)?;
            Ok(one[0] / n as f32)
        } else {
            // Stage 2 on the host: small partial array crosses the bus.
            let part = &mut res.reduction_host[..groups];
            self.read_back(q, partials, part)?;
            let mut c = CostCounters::new();
            c.charge_ops_n(&simgpu::cost::OpCounts::ZERO.adds(1), groups as u64);
            c.global_read_scalar = groups as u64 * 4;
            q.charge_host("host:reduction_stage2", &c);
            let mut sum = 0.0f32;
            for &v in part.iter() {
                sum += v;
            }
            Ok(sum / n as f32)
        }
    }
}

/// Builds a [`RunReport`] from the queue's recorded commands.
fn report_from_queue(q: &CommandQueue, w: usize, h: usize, out: Vec<f32>) -> RunReport {
    let stages = q
        .records()
        .iter()
        .map(|r| StageRecord {
            name: r.name.clone(),
            seconds: r.duration_s,
        })
        .collect();
    RunReport {
        output: ImageF32::from_vec(w, h, out),
        total_s: q.elapsed(),
        stages,
    }
}

/// Every device buffer and host scratch area one frame of the pipeline
/// needs, allocated once for a fixed shape and optimization config.
///
/// Reuse across frames is bit-safe by construction: every buffer is fully
/// overwritten each frame except `padded`, whose border is zeroed at
/// allocation and never written afterwards (only the interior is
/// uploaded), and the host scratch areas, whose stale cells are never read.
pub(crate) struct FrameResources {
    pub(crate) w: usize,
    pub(crate) h: usize,
    pub(crate) w4: usize,
    pub(crate) h4: usize,
    pub(crate) n: usize,
    /// Vec4-aligned device row stride (`device_stride(w)`; equals `w` for
    /// multiple-of-4 widths).
    pub(crate) ws: usize,
    /// Elements of one strided device image (`ws * h`).
    pub(crate) ns: usize,
    pub(crate) pw: usize,
    pub(crate) padded: Buffer<f32>,
    /// Base (non-`data_transfer`) path only: the unpadded original.
    pub(crate) original: Option<Buffer<f32>>,
    pub(crate) down: Buffer<f32>,
    pub(crate) up: Buffer<f32>,
    pub(crate) pedge: Buffer<f32>,
    pub(crate) finalbuf: Buffer<f32>,
    /// GPU reduction only: per-group partial sums.
    pub(crate) partials: Option<Buffer<f32>>,
    /// GPU reduction with device-side stage 2 only: the single-value sum.
    pub(crate) reduction_out: Option<Buffer<f32>>,
    /// Unfused sharpening tail only.
    pub(crate) perror: Option<Buffer<f32>>,
    pub(crate) prelim: Option<Buffer<f32>>,
    /// Host scratch for the CPU border stage (downscaled frame readback).
    pub(crate) down_host: ImageF32,
    /// Host scratch the CPU border stage writes its border pixels into.
    pub(crate) up_host: ImageF32,
    /// Host scratch for CPU-side reduction readbacks (pEdge or partials).
    pub(crate) reduction_host: Vec<f32>,
}

impl FrameResources {
    /// The two kernel-facing views of the uploaded frame: the padded
    /// source, and what downscale/Sobel/pError read — the raw original in
    /// the base pipeline, the padded matrix once the upload is unified.
    pub(crate) fn sources(&self) -> (SrcImage, SrcImage) {
        let padded_src = SrcImage {
            view: self.padded.view(),
            pitch: self.pw,
            pad: 1,
        };
        let main_src = match &self.original {
            Some(b) => SrcImage {
                view: b.view(),
                pitch: self.w,
                pad: 0,
            },
            None => padded_src.clone(),
        };
        (padded_src, main_src)
    }

    fn new(pipe: &GpuPipeline, w: usize, h: usize) -> Result<Self, String> {
        check_shape(w, h)?;
        pipe.params.validate()?;
        // Downscaled grid is the ceiling: ragged edge blocks average the
        // pixels that exist. Intermediates live at the vec4-aligned device
        // stride `ws` so the vectorized kernels never need a misaligned
        // span; for multiple-of-4 widths every size below equals the
        // historical unpadded one.
        let (w4, h4) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
        let n = w * h;
        let ws = device_stride(w);
        let ns = ws * h;
        let pw = ws + 2;
        let ctx = &pipe.ctx;
        let groups = stage1_groups(ns);
        Ok(FrameResources {
            w,
            h,
            w4,
            h4,
            n,
            ws,
            ns,
            pw,
            padded: ctx.buffer("padded", pw * (h + 2)),
            original: (!pipe.opts.data_transfer).then(|| ctx.buffer("original", n)),
            down: ctx.buffer("down", w4 * h4),
            up: ctx.buffer("up", ns),
            pedge: ctx.buffer("pEdge", ns),
            finalbuf: ctx.buffer("final", ns),
            partials: pipe
                .opts
                .reduction_gpu
                .then(|| ctx.buffer("partials", groups)),
            reduction_out: (pipe.opts.reduction_gpu && groups > pipe.tuning.stage2_gpu_threshold)
                .then(|| ctx.buffer("reduction_out", 1)),
            perror: (!pipe.opts.kernel_fusion).then(|| ctx.buffer("pError", ns)),
            prelim: (!pipe.opts.kernel_fusion).then(|| ctx.buffer("prelim", ns)),
            down_host: ImageF32::zeros(w4, h4),
            up_host: ImageF32::zeros(w, h),
            reduction_host: vec![0.0f32; ns],
        })
    }
}

/// A prepared, reusable execution plan: one queue and one set of
/// [`FrameResources`] serving frame after frame of a fixed shape.
///
/// Created by [`GpuPipeline::prepared`]. Compared to calling
/// [`GpuPipeline::run`] in a loop, a plan allocates no device buffers on
/// the hot path, interns stage names (the queue survives across frames),
/// and reuses host scratch; the simulated times and output pixels are
/// identical (asserted by the equivalence test suite).
pub struct PipelinePlan {
    pipe: GpuPipeline,
    q: CommandQueue,
    res: FrameResources,
}

impl PipelinePlan {
    /// The frame shape this plan was prepared for.
    pub fn shape(&self) -> (usize, usize) {
        (self.res.w, self.res.h)
    }

    /// The pipeline configuration this plan executes.
    pub fn pipeline(&self) -> &GpuPipeline {
        &self.pipe
    }

    /// Runs one frame, returning the same [`RunReport`] a fresh
    /// [`GpuPipeline::run`] would produce.
    ///
    /// # Errors
    /// If the frame's shape differs from the prepared shape, or on
    /// simulated-runtime faults.
    pub fn run(&mut self, orig: &ImageF32) -> Result<RunReport, String> {
        let mut out = vec![0.0f32; self.res.n];
        self.run_into(orig, &mut out)?;
        Ok(report_from_queue(&self.q, self.res.w, self.res.h, out))
    }

    /// Hot-path variant of [`PipelinePlan::run`]: writes the sharpened
    /// pixels into `out` (length `w*h`) and returns the frame's simulated
    /// lane components, performing no per-frame allocation at all.
    ///
    /// # Errors
    /// As for [`PipelinePlan::run`]; additionally if `out` has the wrong
    /// length.
    pub fn run_into(
        &mut self,
        orig: &ImageF32,
        out: &mut [f32],
    ) -> Result<crate::gpu::batch::FrameComponents, String> {
        self.run_into_with_mean(orig, None, out)
    }

    /// [`PipelinePlan::run_into`] with an externally supplied pEdge mean
    /// (skipping the reduction), mirroring [`GpuPipeline::run_with_mean`].
    /// The strip pipeline's pass 2 runs on this: reusable plan, reusable
    /// output scratch, injected global mean.
    ///
    /// # Errors
    /// As for [`PipelinePlan::run_into`].
    pub fn run_into_with_mean(
        &mut self,
        orig: &ImageF32,
        mean: Option<f32>,
        out: &mut [f32],
    ) -> Result<crate::gpu::batch::FrameComponents, String> {
        if out.len() != self.res.n {
            return Err(format!(
                "output slice is {}, frame needs {}",
                out.len(),
                self.res.n
            ));
        }
        self.q.reset();
        self.pipe
            .run_frame(&mut self.q, &mut self.res, orig, mean, out)?;
        let mut c = crate::gpu::batch::FrameComponents {
            upload_s: 0.0,
            compute_s: 0.0,
            download_s: 0.0,
        };
        for r in self.q.records() {
            match crate::report::classify_stage_lane(&r.name) {
                crate::report::StageLane::Upload => c.upload_s += r.duration_s,
                crate::report::StageLane::Compute => c.compute_s += r.duration_s,
                crate::report::StageLane::Download => c.download_s += r.duration_s,
            }
        }
        Ok(c)
    }

    /// The command records of the most recently executed frame (empty
    /// before the first run). Unlike [`RunReport::stages`], these keep
    /// their [`CostCounters`], so efficiency telemetry can be derived.
    pub fn records(&self) -> &[simgpu::queue::CommandRecord] {
        self.q.records()
    }

    /// Drains the access-summary log of the most recently executed frame,
    /// in commit order. Populated only when the context was built with
    /// [`Context::with_access_required`]; the static/dynamic agreement
    /// tests compare this against
    /// [`crate::gpu::verify::enumerate_access`].
    pub fn take_access_log(&mut self) -> Vec<simgpu::access::AccessSummary> {
        self.q.take_access_log()
    }

    /// The hierarchical spans of the most recently executed frame (empty
    /// unless the plan's context enabled spans via
    /// [`Context::with_spans`]). Observation-only, like
    /// [`PipelinePlan::records`].
    pub fn spans(&self) -> Vec<simgpu::span::SpanRecord> {
        self.q.span_snapshot()
    }

    /// Derives per-kernel efficiency telemetry from the most recently
    /// executed frame (observation-only: reads the retained records).
    pub fn telemetry(&self) -> crate::telemetry::FrameTelemetry {
        let mut tel = crate::telemetry::FrameTelemetry::collect(
            self.q.records(),
            self.q.device(),
            self.res.w,
            self.res.h,
        );
        tel.banded = self.pipe.banded_stats(self.res.w, self.res.h);
        tel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPipeline;
    use imagekit::generate;
    use simgpu::device::DeviceSpec;

    fn vctx() -> Context {
        Context::with_validation(DeviceSpec::firepro_w8000())
    }

    fn img64() -> ImageF32 {
        generate::natural(64, 64, 21)
    }

    #[test]
    fn base_pipeline_matches_cpu_bit_exactly() {
        // With the reduction on the CPU (base config) the mean is computed
        // identically, so outputs must be bit-exact.
        let img = img64();
        let cpu = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::none())
            .run(&img)
            .unwrap();
        assert_eq!(gpu.output, cpu.output);
    }

    #[test]
    fn all_optimizations_match_cpu_within_tolerance() {
        let img = img64();
        let cpu = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all())
            .run(&img)
            .unwrap();
        let diff = gpu.output.max_abs_diff(&cpu.output);
        assert!(diff < 0.05, "max diff {diff}");
    }

    #[test]
    fn every_cumulative_step_is_correct() {
        let img = img64();
        let cpu = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        for (name, opts) in OptConfig::cumulative_steps() {
            let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
                .run(&img)
                .unwrap();
            let diff = gpu.output.max_abs_diff(&cpu.output);
            assert!(diff < 0.05, "step `{name}`: max diff {diff}");
        }
    }

    #[test]
    fn optimized_is_faster_than_base_at_scale() {
        let img = generate::natural(512, 512, 3);
        let base = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::none())
            .run(&img)
            .unwrap();
        let opt = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all())
            .run(&img)
            .unwrap();
        assert!(
            opt.total_s < base.total_s,
            "optimized {} should beat base {}",
            opt.total_s,
            base.total_s
        );
    }

    #[test]
    fn stage_times_sum_to_total() {
        let img = img64();
        for opts in [OptConfig::none(), OptConfig::all()] {
            let r = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
                .run(&img)
                .unwrap();
            assert!((r.stages_total() - r.total_s).abs() < 1e-12);
        }
    }

    #[test]
    fn border_crossover_switches_device() {
        let img = img64();
        let mut tuning = Tuning {
            border_gpu_min_width: 64,
            ..Tuning::default()
        };
        let opts = OptConfig {
            border_gpu: true,
            ..OptConfig::none()
        };
        let r = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
            .with_tuning(tuning)
            .run(&img)
            .unwrap();
        assert!(r
            .stages
            .iter()
            .any(|s| s.name.starts_with("upscale_border_top")));
        // Below the crossover the border runs on the host.
        tuning.border_gpu_min_width = 128;
        let r = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
            .with_tuning(tuning)
            .run(&img)
            .unwrap();
        assert!(r
            .stages
            .iter()
            .any(|s| s.name.as_ref() == "host:upscale_border"));
    }

    #[test]
    fn others_flag_removes_intermediate_finishes() {
        let img = img64();
        let base = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::none())
            .run(&img)
            .unwrap();
        let others = GpuPipeline::new(
            vctx(),
            SharpnessParams::default(),
            OptConfig {
                others: true,
                ..OptConfig::none()
            },
        )
        .run(&img)
        .unwrap();
        let count = |r: &RunReport| {
            r.stages
                .iter()
                .filter(|s| s.name.as_ref() == "finish")
                .count()
        };
        assert!(count(&base) > 1);
        assert_eq!(count(&others), 1);
    }

    #[test]
    fn gpu_reduction_mean_close_to_cpu() {
        let img = generate::natural(128, 128, 5);
        let p = SharpnessParams::default();
        let base = GpuPipeline::new(vctx(), p, OptConfig::none())
            .run(&img)
            .unwrap();
        let red = GpuPipeline::new(
            vctx(),
            p,
            OptConfig {
                reduction_gpu: true,
                ..OptConfig::none()
            },
        )
        .run(&img)
        .unwrap();
        let diff = red.output.max_abs_diff(&base.output);
        assert!(diff < 0.05, "max diff {diff}");
    }

    #[test]
    fn rejects_bad_shapes() {
        let img = generate::gradient(24, 2); // below the 3x3 minimum
        let r = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::none()).run(&img);
        assert!(r.is_err());
    }

    #[test]
    fn odd_shapes_run_end_to_end() {
        for (w, h) in [(5, 7), (13, 11), (33, 29), (3, 3)] {
            let img = generate::natural(w, h, 9);
            let base = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::none())
                .run(&img)
                .unwrap();
            let vec = GpuPipeline::new(
                vctx(),
                SharpnessParams::default(),
                OptConfig {
                    vectorization: true,
                    data_transfer: true,
                    kernel_fusion: true,
                    ..OptConfig::none()
                },
            )
            .run(&img)
            .unwrap();
            assert_eq!(
                base.output.pixels(),
                vec.output.pixels(),
                "base vs vectorized mismatch at {w}x{h}"
            );
            let all = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all())
                .run(&img)
                .unwrap();
            let diff = all.output.max_abs_diff(&base.output);
            assert!(diff < 0.05, "all-opts diff {diff} at {w}x{h}");
        }
    }
}
