//! GPU implementation: kernels, optimization flags, ablation measurements
//! and the pipeline.

pub mod ablate;
pub mod batch;
pub mod engine;
pub mod kernels;
pub mod megapass;
pub mod opts;
pub mod pipeline;
pub mod strips;
pub mod verify;

pub use engine::{ThroughputEngine, ThroughputReport};
pub use megapass::{BandedStats, Schedule};
pub use opts::{OptConfig, Tuning};
pub use pipeline::{GpuPipeline, PipelinePlan};
pub use verify::{enumerate_access, verify_static, StaticDispatch, StaticReport};
