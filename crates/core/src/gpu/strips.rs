//! Memory-bounded strip processing: sharpen images larger than the device
//! memory budget by streaming horizontal strips through the pipeline.
//!
//! The paper assumes the whole frame fits on the card (4 GiB on the
//! W8000). Embedded targets — the TVs and cameras of its introduction —
//! often cannot; this module processes the image in strips with an
//! *overlap-and-discard* scheme:
//!
//! * the image is cut into strips of `strip_rows` rows; each strip is
//!   extended by a [`MARGIN`]-row halo on both sides (clamped at the image
//!   edges) into a standalone sub-image;
//! * **pass 1** runs Sobel per sub-image and tree-reduces only the strip's
//!   *owned* rows, accumulating the exact global pEdge sum (owned rows are
//!   far enough from sub-image edges that their Sobel values equal the
//!   full-image values);
//! * **pass 2** re-runs the full pipeline per sub-image with the *global*
//!   mean injected ([`GpuPipeline::run_with_mean`]) and keeps only the
//!   owned rows.
//!
//! The margin is sized so every per-pixel formula sees exactly the data it
//! would see in a full-image run: the upscale body anchors blocks at
//! `4·bj+2` (±6 rows of support), Sobel and overshoot need ±1, and the
//! sub-image's own border treatment touches only its outer two rows —
//! all inside an 8-row halo. Strip alignment to multiples of 4 keeps the
//! downscale grid identical. The result therefore matches the whole-image
//! pipeline to within the reduction's float-summation tolerance, which
//! the tests assert.
//!
//! Cost: each halo row is uploaded twice and the source is uploaded in
//! both passes, trading ~2× transfer volume for an O(strip) device
//! footprint ([`StripReport::peak_device_bytes`]).

use imagekit::ImageF32;
use simgpu::span::SpanKind;

use crate::gpu::kernels::reduction::{reduction_stage1_range_kernel, stage1_groups};
use crate::gpu::kernels::sobel::sobel_vec4_kernel;
use crate::gpu::kernels::{KernelTuning, SrcImage};
use crate::gpu::opts::OptConfig;
use crate::gpu::pipeline::{GpuPipeline, PipelinePlan};
use crate::memory::device_bytes_required;
use crate::params::{check_shape, device_stride, SCALE};

/// Reusable per-sub-image-height scratch: at most a handful of distinct
/// sub-image heights occur per run (interior strips share one, the first
/// and last may differ), so strips recycle these instead of allocating on
/// every iteration.
struct SubScratch {
    sub_h: usize,
    sub: ImageF32,
}

/// Finds or creates the scratch image for sub-images of `sub_h` rows.
fn scratch_for(list: &mut Vec<SubScratch>, w: usize, sub_h: usize) -> &mut ImageF32 {
    if let Some(i) = list.iter().position(|s| s.sub_h == sub_h) {
        return &mut list[i].sub;
    }
    list.push(SubScratch {
        sub_h,
        sub: ImageF32::zeros(w, sub_h),
    });
    &mut list.last_mut().expect("just pushed").sub
}

/// Halo rows added above and below each strip (multiple of 4, ≥ 8).
pub const MARGIN: usize = 8;

/// Result of a strip run.
#[derive(Debug, Clone)]
pub struct StripReport {
    /// The sharpened image (same shape as the input).
    pub output: ImageF32,
    /// Total simulated time across both passes and all strips.
    pub total_s: f64,
    /// Number of strips processed.
    pub strips: usize,
    /// Largest per-strip device footprint, bytes.
    pub peak_device_bytes: u64,
    /// The global pEdge mean computed in pass 1.
    pub mean: f32,
}

/// Strip-streaming wrapper around a [`GpuPipeline`].
#[derive(Clone)]
pub struct StripPipeline {
    inner: GpuPipeline,
    strip_rows: usize,
}

impl StripPipeline {
    /// Wraps a pipeline; `strip_rows` must be a positive multiple of 4
    /// and at least 16.
    ///
    /// # Errors
    /// If `strip_rows` is invalid.
    pub fn new(inner: GpuPipeline, strip_rows: usize) -> Result<Self, String> {
        if strip_rows < 16 || !strip_rows.is_multiple_of(SCALE) {
            return Err(format!(
                "strip_rows must be a multiple of {SCALE} and >= 16, got {strip_rows}"
            ));
        }
        Ok(StripPipeline { inner, strip_rows })
    }

    /// The wrapped pipeline.
    pub fn pipeline(&self) -> &GpuPipeline {
        &self.inner
    }

    /// Strip boundaries `(owned_start, owned_end, sub_start, sub_end)` for
    /// an image of `h` rows.
    fn strips_for(&self, h: usize) -> Vec<(usize, usize, usize, usize)> {
        let mut out = Vec::new();
        let mut r0 = 0;
        while r0 < h {
            let r1 = (r0 + self.strip_rows).min(h);
            let mut sub0 = r0.saturating_sub(MARGIN);
            let sub1 = (r1 + MARGIN).min(h);
            // A short tail strip would leave its owned rows close to the
            // sub-image's top cut; widen the halo upward to at least 16
            // rows when the image allows it. `sub0` must stay a multiple
            // of 4 so the sub-image's downscale grid aligns with the
            // whole-image grid (arbitrary heights make `sub1` ragged).
            if sub1 - sub0 < 16 {
                sub0 = (sub1.saturating_sub(16) / SCALE) * SCALE;
            }
            out.push((r0, r1, sub0, sub1));
            r0 = r1;
        }
        out
    }

    /// Copies rows `[a, b)` of `img` into the reusable scratch image
    /// `dst` (which must be `img.width()` × `b - a`).
    fn crop_rows_into(img: &ImageF32, a: usize, b: usize, dst: &mut ImageF32) {
        let w = img.width();
        debug_assert_eq!((dst.width(), dst.height()), (w, b - a));
        dst.pixels_mut()
            .copy_from_slice(&img.pixels()[a * w..b * w]);
    }

    /// Pass 1: global pEdge mean from per-strip Sobel + ranged reduction.
    fn global_mean(&self, orig: &ImageF32) -> Result<(f32, f64), String> {
        let ctx = self.inner.context();
        let (w, h) = (orig.width(), orig.height());
        let tune = KernelTuning {
            others: self.inner.opts().others,
        };
        let mut sum = 0.0f64;
        let mut elapsed = 0.0f64;
        let ws = device_stride(w);
        let strips = self.strips_for(h);
        // One queue for all strips (reset between them) and host scratch
        // sized once: the per-strip loop allocates nothing on the host,
        // and the pooled context recycles the device buffers.
        let mut q = ctx.queue();
        let max_own_rows = strips
            .iter()
            .map(|&(r0, r1, _, _)| r1 - r0)
            .max()
            .unwrap_or(0);
        let mut part = vec![0.0f32; stage1_groups(max_own_rows * ws)];
        let mut scratch: Vec<SubScratch> = Vec::new();
        for (r0, r1, sub0, sub1) in strips {
            let sub = scratch_for(&mut scratch, w, sub1 - sub0);
            Self::crop_rows_into(orig, sub0, sub1, sub);
            let sub_h = sub.height();
            q.reset();
            // Pass 1 of each strip roots its own span tree (the queue is
            // reset per strip); pass 2 spans come from the prepared plan.
            let strip_span = q.span_open(SpanKind::Frame, "strip:pass1");
            // Upload the zero-padded sub-image with one rect write; rows
            // live at the vec4-aligned stride `ws`, with the stride
            // padding zeroed at allocation.
            let padded = ctx.buffer::<f32>("padded", (ws + 2) * (sub_h + 2));
            q.enqueue_write_rect(&padded, ws + 2, 1, 1, sub.pixels(), w, sub_h)
                .map_err(|e| e.to_string())?;
            let src = SrcImage {
                view: padded.view(),
                pitch: ws + 2,
                pad: 1,
            };
            let pedge = ctx.buffer::<f32>("pEdge", ws * sub_h);
            sobel_vec4_kernel(&mut q, &src, &pedge, w, sub_h, ws, tune)
                .map_err(|e| e.to_string())?;
            // Reduce only the owned rows: their Sobel values are exact.
            // Global edge rows (0 and h-1) are zero in the full image too,
            // and the sub-image reproduces that because sub0/sub1 clamp.
            // Stride-padding columns are exact zeros in every row, so
            // including them in the ranged sum changes nothing.
            let own_start = (r0 - sub0) * ws;
            let own_len = (r1 - r0) * ws;
            let partials = ctx.buffer::<f32>("partials", stage1_groups(own_len));
            let (groups, _) = reduction_stage1_range_kernel(
                &mut q,
                &pedge.view(),
                own_start,
                own_len,
                &partials,
                self.inner.tuning().reduction_strategy,
            )
            .map_err(|e| e.to_string())?;
            let part = &mut part[..groups];
            q.enqueue_read(&partials, part).map_err(|e| e.to_string())?;
            sum += part.iter().map(|&v| f64::from(v)).sum::<f64>();
            q.finish();
            q.span_close(strip_span);
            elapsed += q.elapsed();
        }
        Ok(((sum / (w * h) as f64) as f32, elapsed))
    }

    /// Runs the strip pipeline.
    ///
    /// # Errors
    /// On unsupported shapes/parameters, or if a strip's sub-image falls
    /// below the 16-row minimum (image too short for the configuration).
    pub fn run(&self, orig: &ImageF32) -> Result<StripReport, String> {
        let (w, h) = (orig.width(), orig.height());
        check_shape(w, h)?;
        let (mean, mut total_s) = self.global_mean(orig)?;
        let mut output = ImageF32::zeros(w, h);
        let mut peak = 0u64;
        let strips = self.strips_for(h);
        // One prepared plan, sub-image scratch and readback scratch per
        // distinct sub-image height: the per-strip loop reuses them, so no
        // device buffers, queues or host Vecs are allocated per strip
        // (pixels and simulated time are identical to the fresh-run path,
        // by the plan equivalence invariant).
        let mut plans: Vec<(usize, PipelinePlan, Vec<f32>)> = Vec::new();
        let mut scratch: Vec<SubScratch> = Vec::new();
        for &(r0, r1, sub0, sub1) in &strips {
            let sub_h = sub1 - sub0;
            if !plans.iter().any(|&(ph, ..)| ph == sub_h) {
                plans.push((
                    sub_h,
                    self.inner.prepared(w, sub_h)?,
                    vec![0.0f32; w * sub_h],
                ));
            }
            let (_, plan, out) = plans
                .iter_mut()
                .find(|&&mut (ph, ..)| ph == sub_h)
                .expect("just inserted");
            let sub = scratch_for(&mut scratch, w, sub_h);
            Self::crop_rows_into(orig, sub0, sub1, sub);
            let c = plan.run_into_with_mean(sub, Some(mean), out)?;
            total_s += c.upload_s + c.compute_s + c.download_s;
            peak = peak.max(device_bytes_required(w, sub_h, self.inner.opts()));
            // Keep only the owned rows.
            let keep0 = r0 - sub0;
            let opix = output.pixels_mut();
            for y in 0..(r1 - r0) {
                opix[(r0 + y) * w..(r0 + y + 1) * w]
                    .copy_from_slice(&out[(keep0 + y) * w..(keep0 + y + 1) * w]);
            }
        }
        Ok(StripReport {
            output,
            total_s,
            strips: strips.len(),
            peak_device_bytes: peak,
            mean,
        })
    }
}

/// Suggests the largest strip row count (multiple of 4) whose per-strip
/// footprint under `opts` fits `device_budget_bytes`, for an image of
/// width `w`. Returns `None` if even 16 rows (plus halos) do not fit.
pub fn strip_rows_for_budget(
    device_budget_bytes: u64,
    w: usize,
    opts: &OptConfig,
) -> Option<usize> {
    let mut best = None;
    let mut rows = 16usize;
    while device_bytes_required(w, rows + 2 * MARGIN, opts) <= device_budget_bytes {
        best = Some(rows);
        rows += 4;
        if rows > 1 << 20 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPipeline;
    use crate::params::SharpnessParams;
    use imagekit::generate;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn inner() -> GpuPipeline {
        GpuPipeline::new(
            Context::with_validation(DeviceSpec::firepro_w8000()),
            SharpnessParams::default(),
            OptConfig::all(),
        )
    }

    #[test]
    fn strip_output_matches_cpu_reference() {
        let img = generate::natural(64, 160, 21);
        let cpu = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        for strip_rows in [16usize, 32, 48, 64] {
            let sp = StripPipeline::new(inner(), strip_rows).unwrap();
            let run = sp.run(&img).unwrap();
            let diff = run.output.max_abs_diff(&cpu.output);
            assert!(diff < 0.05, "strip_rows {strip_rows}: diff {diff}");
            assert_eq!(run.strips, 160usize.div_ceil(strip_rows));
        }
    }

    #[test]
    fn strip_output_matches_whole_image_gpu_run() {
        let img = generate::natural(64, 128, 4);
        let full = inner().run(&img).unwrap();
        let run = StripPipeline::new(inner(), 32).unwrap().run(&img).unwrap();
        let diff = run.output.max_abs_diff(&full.output);
        assert!(diff < 0.05, "diff {diff}");
    }

    #[test]
    fn single_strip_degenerates_to_full_image() {
        let img = generate::natural(64, 64, 7);
        let run = StripPipeline::new(inner(), 64).unwrap().run(&img).unwrap();
        assert_eq!(run.strips, 1);
        let full = inner().run(&img).unwrap();
        assert!(run.output.max_abs_diff(&full.output) < 0.05);
    }

    #[test]
    fn peak_memory_is_bounded_by_strip_size() {
        let img = generate::natural(64, 256, 9);
        let run = StripPipeline::new(inner(), 32).unwrap().run(&img).unwrap();
        let full_footprint = device_bytes_required(64, 256, &OptConfig::all());
        assert!(
            run.peak_device_bytes < full_footprint,
            "{} should be below the full footprint {}",
            run.peak_device_bytes,
            full_footprint
        );
        // ...but strips cost extra transfer time.
        let full = inner().run(&img).unwrap();
        assert!(run.total_s > full.total_s);
    }

    #[test]
    fn mean_matches_global_reduction() {
        let img = generate::natural(64, 128, 11);
        let run = StripPipeline::new(inner(), 32).unwrap().run(&img).unwrap();
        let (pedge, _) = crate::cpu::stages::sobel(&img);
        let (mean, _) = crate::cpu::stages::reduction(&pedge);
        let rel = (f64::from(run.mean) - f64::from(mean)).abs() / f64::from(mean).max(1e-9);
        assert!(rel < 1e-4, "strip mean {} vs global {}", run.mean, mean);
    }

    #[test]
    fn short_tail_strips_are_widened_to_the_minimum() {
        // h = 68 with 64-row strips leaves a 4-row tail whose natural
        // sub-image (4 + 8 halo) would be too short; the widened halo
        // keeps it legal and the output still matches the reference.
        for h in [68usize, 72, 84] {
            let img = generate::natural(32, h, 5);
            let cpu = CpuPipeline::new(SharpnessParams::default())
                .run(&img)
                .unwrap();
            let run = StripPipeline::new(inner(), 64).unwrap().run(&img).unwrap();
            let diff = run.output.max_abs_diff(&cpu.output);
            assert!(diff < 0.05, "h={h}: diff {diff}");
        }
    }

    #[test]
    fn odd_shapes_match_cpu_reference() {
        // Widths not a multiple of 4 exercise the strided pass-1 Sobel;
        // heights not a multiple of the strip size exercise ragged tails
        // and the align-down-4 halo widening.
        for (w, h) in [(33, 100), (64, 101), (37, 53), (61, 68)] {
            let img = generate::natural(w, h, 13);
            let cpu = CpuPipeline::new(SharpnessParams::default())
                .run(&img)
                .unwrap();
            let run = StripPipeline::new(inner(), 16).unwrap().run(&img).unwrap();
            let diff = run.output.max_abs_diff(&cpu.output);
            assert!(diff < 0.05, "{w}x{h}: diff {diff}");
        }
    }

    #[test]
    fn strip_runs_recycle_pooled_buffers() {
        let img = generate::natural(64, 160, 3);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), OptConfig::all());
        let sp = StripPipeline::new(pipe, 32).unwrap();
        sp.run(&img).unwrap(); // warm the pool
        let warm = ctx.pool_stats();
        sp.run(&img).unwrap();
        let after = ctx.pool_stats();
        // Both passes route through pooled buffers, reusable plans and
        // host scratch: a warm run allocates no fresh device storage and
        // leaves nothing live.
        assert_eq!(after.misses, warm.misses, "warm strip run still allocated");
        assert_eq!(after.live, warm.live, "buffers leaked across strip runs");
        assert!(after.hits > warm.hits, "strips should recycle the pool");
    }

    #[test]
    fn rejects_bad_strip_rows() {
        assert!(StripPipeline::new(inner(), 0).is_err());
        assert!(StripPipeline::new(inner(), 12).is_err());
        assert!(StripPipeline::new(inner(), 18).is_err());
        assert!(StripPipeline::new(inner(), 16).is_ok());
    }

    #[test]
    fn budget_planner_is_consistent() {
        let opts = OptConfig::all();
        let budget = 8 << 20;
        let rows = strip_rows_for_budget(budget, 256, &opts).unwrap();
        assert!(device_bytes_required(256, rows + 2 * MARGIN, &opts) <= budget);
        assert!(device_bytes_required(256, rows + 4 + 2 * MARGIN, &opts) > budget);
        // Tiny budget: nothing fits.
        assert_eq!(strip_rows_for_budget(1024, 256, &opts), None);
    }
}
