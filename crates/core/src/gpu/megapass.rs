//! Cache-blocked megapass scheduling: the banded frame executor.
//!
//! The monolithic schedule runs each kernel over the whole frame, so every
//! intermediate matrix (down, up, pEdge, prelim, final) streams through
//! host caches once per kernel — at 4096² each strided matrix is 64 MiB,
//! far beyond L3, and every pass pays full memory bandwidth. The megapass
//! executor runs the *same kernels* band-by-band over horizontal row bands
//! sized to the host's last-level cache, so a band's intermediates stay
//! cache-resident from downscale through the sharpening tail.
//!
//! The schedule is two-phase around the one global data dependency, the
//! pEdge mean (Section V-C):
//!
//! * **Phase A** per band: downscale, Sobel and (when the reduction runs
//!   on the device) reduction stage-1 slices — everything that only reads
//!   the uploaded source. The stage-1 cursor trails the Sobel cursor so
//!   every pEdge element a stage-1 group sums already exists.
//! * The upscale border and center then run off the (tiny, cache-resident)
//!   downscaled matrix, and the mean is resolved exactly as the monolithic
//!   schedule does (CPU sum, or committed stage 1 + stage 2).
//! * **Phase B** per band: the sharpening tail slices, which read the
//!   now-complete source, `up` and pEdge matrices plus the mean. With
//!   fusion off, the pError → preliminary → overshoot chain runs
//!   band-by-band so each band's intermediates stay cache-resident.
//!
//! **Charge equivalence.** Sliced dispatches merge their [`CostCounters`]
//! into a [`SlicedDispatch`] accumulator and record *nothing*; the
//! executor commits each kernel once per frame via
//! [`CommandQueue::commit_sliced`], which audits and charges the merged
//! totals. Counter merging is a sum (plus max for the occupancy fields),
//! so any partition of a grid folds to bit-identical counters, and
//! simulated kernel time is a pure function of those counters — the
//! committed record is bit-identical to the monolithic one. Host, transfer
//! and sync commands are emitted by the same shared [`GpuPipeline`]
//! helpers at call sites with the same pending-work status, and commits
//! are ordered to reproduce the monolithic record stream exactly (the
//! virtual clock sums record durations in order, and floating-point
//! addition is not associative — a reordered stream could drift by an
//! ulp). This module therefore never calls any `charge_*` API itself
//! (lint-enforced): all cost flows through the kernels' own per-group
//! accounting.
//!
//! [`CostCounters`]: simgpu::cost::CostCounters
//! [`CommandQueue::commit_sliced`]: simgpu::queue::CommandQueue::commit_sliced

use imagekit::ImageF32;
use simgpu::error::Result as SimResult;
use simgpu::queue::{CommandQueue, SlicedDispatch};
use simgpu::span::SpanKind;
use simgpu::timing::KernelTime;

use crate::gpu::kernels::downscale::downscale_launch;
use crate::gpu::kernels::perror::perror_launch;
use crate::gpu::kernels::reduction::{
    reduction_stage1_sliced, stage1_desc, stage1_groups, ELEMS_PER_GROUP,
};
use crate::gpu::kernels::sharpen::{
    overshoot_launch, preliminary_launch, sharpness_fused_launch, sharpness_fused_vec4_launch,
};
use crate::gpu::kernels::sobel::{sobel_scalar_launch, sobel_vec4_launch};
use crate::gpu::kernels::upscale::{
    upscale_border_gpu, upscale_center_scalar_launch, upscale_center_vec4_launch,
};
use crate::gpu::kernels::{grid2d, KernelTuning, Launch, GROUP_2D};
use crate::gpu::opts::OptConfig;
use crate::gpu::pipeline::{FrameResources, GpuPipeline};
use crate::params::{device_stride, SCALE};

/// Image rows covered by one work-group row of the 2-D kernels.
const GROUP_ROWS: usize = GROUP_2D[1];

/// How a frame's kernels are scheduled over the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One whole-grid dispatch per kernel (the paper's schedule).
    #[default]
    Monolithic,
    /// Cache-blocked row bands of approximately this many image rows
    /// (rounded up to whole 16-row work-group rows; `0` picks the height
    /// from the detected cache size via
    /// [`crate::autotune::band_rows_for`]).
    Banded(usize),
}

/// Analytic per-frame banding counters, derived purely from the shape and
/// schedule (observation-only; used by telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandedStats {
    /// Number of row bands the frame was split into.
    pub bands: usize,
    /// Effective rows per band (requested rows rounded up to whole
    /// work-group rows; the last band may be shorter).
    pub rows_per_band: usize,
    /// Peak bytes of device-buffer working set one band touches (the
    /// cache-residency target), maximised over the two phases.
    pub peak_resident_bytes: u64,
}

impl BandedStats {
    /// Computes the stats for a `w`×`h` frame under `opts` with the given
    /// requested band rows (`0` = autotuned).
    pub fn for_frame(w: usize, h: usize, opts: &OptConfig, band_rows: usize) -> BandedStats {
        let ws = device_stride(w);
        let bg = effective_group_rows(band_rows, ws, h);
        let rows = (bg * GROUP_ROWS).min(h);
        let gtot = h.div_ceil(GROUP_ROWS);
        let wd = w.div_ceil(SCALE);
        let pw = ws + 2;
        // Elements one band touches, per phase. Phase A streams the source
        // band into the down and pEdge bands; phase B streams the source,
        // up and pEdge bands into the final band (plus the unfused
        // intermediates when fusion is off).
        let src_band = (rows + 2) * pw + if opts.data_transfer { 0 } else { rows * w };
        let down_band = rows.div_ceil(SCALE) * wd;
        let phase_a = src_band + down_band + rows * ws;
        let mut phase_b = src_band + down_band + 3 * rows * ws;
        if !opts.kernel_fusion {
            phase_b += 2 * rows * ws;
        }
        BandedStats {
            bands: gtot.div_ceil(bg),
            rows_per_band: rows,
            peak_resident_bytes: 4 * phase_a.max(phase_b) as u64,
        }
    }
}

/// Downscale cursor: the highest downscale group row ready once the source
/// band ending at group row `g1` (of `gtot`) has been uploaded. One
/// downscale group row covers 64 source rows (4 source group rows); the
/// last band forces full coverage of the `d_groups`-row downscale grid.
/// Shared by the banded executor and the static verifier, which must agree
/// on the slice partition exactly.
pub(crate) fn downscale_cursor(g1: usize, gtot: usize, d_groups: usize) -> usize {
    if g1 == gtot {
        d_groups
    } else {
        (g1 / 4).min(d_groups)
    }
}

/// Reduction stage-1 cursor: the highest flat stage-1 group whose
/// 1024-element pEdge span is complete once Sobel has written `r1` image
/// rows of stride `ws` (band ending at group row `g1` of `gtot`; the last
/// band forces full coverage of the `s1_total` groups). Shared by the
/// banded executor and the static verifier.
pub(crate) fn stage1_cursor(
    g1: usize,
    gtot: usize,
    r1: usize,
    ws: usize,
    s1_total: usize,
) -> usize {
    if g1 == gtot {
        s1_total
    } else {
        (r1 * ws / ELEMS_PER_GROUP).min(s1_total)
    }
}

/// The requested band height in work-group rows (≥ 1): `0` resolves via
/// the cache-size autotuner, and anything else rounds up to whole 16-row
/// group rows (so `Banded(1)` and `Banded(7)` clamp up to one group row).
pub(crate) fn effective_group_rows(band_rows: usize, ws: usize, h: usize) -> usize {
    let rows = if band_rows == 0 {
        crate::autotune::band_rows_for(ws)
    } else {
        band_rows
    };
    rows.min(h.next_multiple_of(GROUP_ROWS))
        .div_ceil(GROUP_ROWS)
        .max(1)
}

/// Commits a sliced kernel, tolerating the no-op case of an accumulator
/// that never dispatched anything because the kernel was skipped entirely.
fn commit(
    q: &mut CommandQueue,
    desc: &simgpu::kernel::KernelDesc,
    acc: SlicedDispatch,
) -> SimResult<KernelTime> {
    q.commit_sliced(desc, acc)
}

/// Executes one frame band-by-band. Pixels, simulated seconds and
/// sanitizer verdicts are identical to the monolithic schedule for every
/// `OptConfig` (test-enforced across all 64); only host wall-clock
/// changes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_frame_banded(
    pipe: &GpuPipeline,
    q: &mut CommandQueue,
    res: &mut FrameResources,
    orig: &ImageF32,
    mean_override: Option<f32>,
    out: &mut [f32],
    band_rows: usize,
) -> Result<(), String> {
    let (w, h, ws) = (res.w, res.h, res.ws);
    let opts = *pipe.opts();
    let tune = KernelTuning {
        others: opts.others,
    };
    let bg = effective_group_rows(band_rows, ws, h);
    // Work-group-row extents of each grid.
    let gtot = h.div_ceil(GROUP_ROWS);
    let d_groups = res.h4.div_ceil(GROUP_ROWS);
    let has_center = res.w4 > 1 && res.h4 > 1;
    let u_groups = if has_center {
        (res.h4 - 1).div_ceil(GROUP_ROWS)
    } else {
        0
    };
    let s1_total = stage1_groups(res.ns);
    let slice_stage1 = mean_override.is_none() && opts.reduction_gpu;

    // ---- uploads (Section V-A), identical records -----------------------
    let ph = q.span_open(SpanKind::Phase, "upload");
    pipe.upload_frame(q, res, orig)?;
    q.span_close(ph);
    let (padded_src, main_src) = res.sources();

    // ---- phase A: downscale + Sobel (+ reduction stage 1) per band ------
    // All three read only the fully-uploaded source (stage 1 reads the
    // pEdge rows Sobel produced earlier in the same band), so slicing here
    // is purely a cache-residency choice.
    let ph = q.span_open(SpanKind::Phase, "megapass:A");
    let mut acc_down = SlicedDispatch::new();
    let mut acc_sobel = SlicedDispatch::new();
    let mut acc_stage1 = SlicedDispatch::new();
    let (mut cur_d, mut cur_s, mut cur_r) = (0usize, 0usize, 0usize);
    let mut g0 = 0usize;
    while g0 < gtot {
        let band = q.span_open(SpanKind::Band, "band");
        let g1 = (g0 + bg).min(gtot);
        let r1 = (GROUP_ROWS * g1).min(h);
        // Downscale group rows tracking the source band (one covers 64
        // source rows); forced to full coverage on the last band.
        let td = downscale_cursor(g1, gtot, d_groups);
        if td > cur_d {
            downscale_launch(
                q,
                &main_src,
                &res.down,
                w,
                h,
                tune,
                Launch::Slice(cur_d..td, &mut acc_down),
            )
            .map_err(|e| e.to_string())?;
            cur_d = td;
        }
        if g1 > cur_s {
            let launch = Launch::Slice(cur_s..g1, &mut acc_sobel);
            if opts.vectorization {
                sobel_vec4_launch(q, &padded_src, &res.pedge, w, h, ws, tune, launch)
            } else {
                sobel_scalar_launch(q, &main_src, &res.pedge, w, h, ws, tune, launch)
            }
            .map_err(|e| e.to_string())?;
            cur_s = g1;
        }
        if slice_stage1 {
            // Stage-1 group g reads pEdge elements [1024g, 1024(g+1)):
            // valid once Sobel has written the rows covering them.
            let tr = stage1_cursor(g1, gtot, r1, ws, s1_total);
            if tr > cur_r {
                let partials = res
                    .partials
                    .as_ref()
                    .expect("gpu reduction allocates partials");
                reduction_stage1_sliced(
                    q,
                    &res.pedge.view(),
                    res.ns,
                    partials,
                    pipe.tuning().reduction_strategy,
                    cur_r..tr,
                    &mut acc_stage1,
                )
                .map_err(|e| e.to_string())?;
                cur_r = tr;
            }
        }
        q.span_close(band);
        g0 = g1;
    }
    q.span_close(ph);

    // ---- commit downscale, then the border (Section V-E) ----------------
    let ph = q.span_open(SpanKind::Phase, "downscale");
    commit(q, &grid2d("downscale", res.w4, res.h4), acc_down).map_err(|e| e.to_string())?;
    pipe.sync(q);
    q.span_close(ph);
    let ph = q.span_open(SpanKind::Phase, "upscale");
    if pipe.gpu_border_enabled(w) {
        upscale_border_gpu(q, &res.down.view(), &res.up, w, h, ws, tune)
            .map_err(|e| e.to_string())?;
        pipe.sync(q);
    } else {
        pipe.cpu_border(q, res)?;
    }

    // ---- upscale center: sliced off the complete (and tiny) down matrix.
    // Committed *before* Sobel so the record stream — and hence the
    // order-sensitive virtual-clock sum — matches the monolithic layout.
    if has_center {
        let mut acc_up = SlicedDispatch::new();
        let mut g0 = 0usize;
        while g0 < u_groups {
            let g1 = (g0 + bg).min(u_groups);
            let launch = Launch::Slice(g0..g1, &mut acc_up);
            if opts.vectorization {
                upscale_center_vec4_launch(q, &res.down.view(), &res.up, w, h, ws, tune, launch)
            } else {
                upscale_center_scalar_launch(q, &res.down.view(), &res.up, w, h, ws, tune, launch)
            }
            .map_err(|e| e.to_string())?;
            g0 = g1;
        }
        let center_desc = if opts.vectorization {
            grid2d("upscale_center_vec4", (res.w4 - 1).div_ceil(4), res.h4 - 1)
        } else {
            grid2d("upscale_center", res.w4 - 1, res.h4 - 1)
        };
        commit(q, &center_desc, acc_up).map_err(|e| e.to_string())?;
        pipe.sync(q);
    }
    q.span_close(ph);

    // ---- commit Sobel ----------------------------------------------------
    let ph = q.span_open(SpanKind::Phase, "sobel");
    let sobel_desc = if opts.vectorization {
        grid2d("sobel_vec4", ws / 4, h)
    } else {
        grid2d("sobel", w, h)
    };
    commit(q, &sobel_desc, acc_sobel).map_err(|e| e.to_string())?;
    pipe.sync(q);
    q.span_close(ph);

    // ---- the mean (Section V-C), resolved as the monolithic schedule ----
    let ph = q.span_open(SpanKind::Phase, "reduction");
    let mean = match mean_override {
        Some(m) => m,
        None if !opts.reduction_gpu => pipe.reduction_cpu(q, res)?,
        None => {
            commit(
                q,
                &stage1_desc(res.ns, pipe.tuning().reduction_strategy),
                acc_stage1,
            )
            .map_err(|e| e.to_string())?;
            pipe.sync(q);
            pipe.reduction_stage2_phase(q, res)?
        }
    };
    q.span_close(ph);

    // ---- phase B: the sharpening tail per band --------------------------
    // Everything the tail reads (source, up, pEdge, the mean) is complete,
    // so the slices are a plain partition; interleaving the unfused
    // pError → preliminary → overshoot chain per band keeps each band's
    // intermediates cache-resident.
    let ph = q.span_open(SpanKind::Phase, "megapass:B");
    let mut acc_tail = SlicedDispatch::new();
    let mut acc_perr = SlicedDispatch::new();
    let mut acc_prelim = SlicedDispatch::new();
    let mut g0 = 0usize;
    while g0 < gtot {
        let band = q.span_open(SpanKind::Band, "band");
        let g1 = (g0 + bg).min(gtot);
        if opts.kernel_fusion {
            let launch = Launch::Slice(g0..g1, &mut acc_tail);
            if opts.vectorization {
                sharpness_fused_vec4_launch(
                    q,
                    &padded_src,
                    &res.up.view(),
                    &res.pedge.view(),
                    &res.finalbuf,
                    mean,
                    *pipe.params(),
                    w,
                    h,
                    ws,
                    tune,
                    launch,
                )
            } else {
                sharpness_fused_launch(
                    q,
                    &padded_src,
                    &res.up.view(),
                    &res.pedge.view(),
                    &res.finalbuf,
                    mean,
                    *pipe.params(),
                    w,
                    h,
                    ws,
                    tune,
                    launch,
                )
            }
            .map_err(|e| e.to_string())?;
        } else {
            let perr = res.perror.as_ref().expect("unfused path allocates pError");
            let prelim = res.prelim.as_ref().expect("unfused path allocates prelim");
            perror_launch(
                q,
                &main_src,
                &res.up.view(),
                perr,
                w,
                h,
                ws,
                tune,
                Launch::Slice(g0..g1, &mut acc_perr),
            )
            .map_err(|e| e.to_string())?;
            preliminary_launch(
                q,
                &res.up.view(),
                &res.pedge.view(),
                &perr.view(),
                prelim,
                mean,
                *pipe.params(),
                w,
                h,
                ws,
                tune,
                Launch::Slice(g0..g1, &mut acc_prelim),
            )
            .map_err(|e| e.to_string())?;
            overshoot_launch(
                q,
                &padded_src,
                &prelim.view(),
                &res.finalbuf,
                w,
                h,
                ws,
                *pipe.params(),
                tune,
                Launch::Slice(g0..g1, &mut acc_tail),
            )
            .map_err(|e| e.to_string())?;
        }
        q.span_close(band);
        g0 = g1;
    }
    q.span_close(ph);

    // ---- commit the tail, in the monolithic record layout ---------------
    let ph = q.span_open(SpanKind::Phase, "sharpen");
    if opts.kernel_fusion {
        let tail_desc = if opts.vectorization {
            grid2d("sharpness_vec4", ws / 4, h)
        } else {
            grid2d("sharpness", w, h)
        };
        commit(q, &tail_desc, acc_tail).map_err(|e| e.to_string())?;
        pipe.sync(q);
    } else {
        commit(q, &grid2d("perror", w, h), acc_perr).map_err(|e| e.to_string())?;
        pipe.sync(q);
        commit(q, &grid2d("preliminary", w, h), acc_prelim).map_err(|e| e.to_string())?;
        pipe.sync(q);
        commit(q, &grid2d("overshoot", w, h), acc_tail).map_err(|e| e.to_string())?;
        pipe.sync(q);
    }
    q.span_close(ph);

    // ---- readback, identical records ------------------------------------
    let ph = q.span_open(SpanKind::Phase, "readback");
    let r = pipe.readback_final(q, res, out);
    q.span_close(ph);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_group_rows_clamps_and_rounds() {
        // Tiny requests clamp up to one 16-row group row.
        assert_eq!(effective_group_rows(1, 64, 640), 1);
        assert_eq!(effective_group_rows(7, 64, 640), 1);
        assert_eq!(effective_group_rows(16, 64, 640), 1);
        assert_eq!(effective_group_rows(17, 64, 640), 2);
        assert_eq!(effective_group_rows(100, 64, 640), 7);
        // Requests beyond the image collapse to one band.
        assert_eq!(effective_group_rows(10_000, 64, 640), 40);
        // Auto (0) resolves to something positive and 16-aligned-ish.
        assert!(effective_group_rows(0, 4096, 4096) >= 1);
    }

    #[test]
    fn banded_stats_shrink_with_band_height() {
        let opts = OptConfig::all();
        let small = BandedStats::for_frame(1024, 1024, &opts, 64);
        let large = BandedStats::for_frame(1024, 1024, &opts, 512);
        assert!(small.peak_resident_bytes < large.peak_resident_bytes);
        assert!(small.bands > large.bands);
        assert_eq!(small.rows_per_band, 64);
        // One giant band is the whole frame.
        let mono = BandedStats::for_frame(1024, 1024, &opts, usize::MAX);
        assert_eq!(mono.bands, 1);
    }
}
