//! Streaming (multi-frame) execution with double-buffered transfers.
//!
//! The paper processes one image per host round-trip; its motivating
//! applications (TV, camera, video) process *streams*. With two device
//! buffers per matrix and separate upload/download DMA engines — standard
//! on the W8000's generation — frame `i+1`'s upload and frame `i-1`'s
//! download overlap frame `i`'s kernels. This module models that overlap
//! on top of [`GpuPipeline`]: per frame it splits the simulated command
//! timeline into the upload, compute (kernels + host stages + sync) and
//! download components, then runs the classic three-stage pipeline
//! recurrence to obtain the steady-state frame time.
//!
//! This is an extension beyond the paper (its Section VII generalisation
//! claim applied to "other image processing algorithms with multiple
//! steps"); the serial time it is compared against is exactly the paper's
//! model.

use imagekit::ImageF32;

use crate::gpu::pipeline::GpuPipeline;
use crate::report::{classify_stage_lane, RunReport, StageLane};

/// Per-frame time decomposition used by the overlap model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameComponents {
    /// Host→device transfer time (uploads: bulk, rect, map-writes).
    pub upload_s: f64,
    /// Device kernels + host-side stages + synchronisation.
    pub compute_s: f64,
    /// Device→host transfer time (reads, map-reads).
    pub download_s: f64,
}

impl FrameComponents {
    /// Splits a pipeline run's stage records into the three lanes using
    /// the shared [`classify_stage_lane`] classifier.
    pub fn from_report(report: &RunReport) -> Self {
        let mut c = FrameComponents {
            upload_s: 0.0,
            compute_s: 0.0,
            download_s: 0.0,
        };
        for s in &report.stages {
            match classify_stage_lane(&s.name) {
                StageLane::Upload => c.upload_s += s.seconds,
                StageLane::Compute => c.compute_s += s.seconds,
                StageLane::Download => c.download_s += s.seconds,
            }
        }
        c
    }

    /// Serial (non-overlapped) frame time.
    pub fn total(&self) -> f64 {
        self.upload_s + self.compute_s + self.download_s
    }
}

/// Result of a streamed run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Sharpened frames, in input order.
    pub outputs: Vec<ImageF32>,
    /// Per-frame components.
    pub frames: Vec<FrameComponents>,
    /// Total simulated time without overlap (the paper's serial model).
    pub serial_s: f64,
    /// Total simulated time with double-buffered overlap.
    pub pipelined_s: f64,
}

impl StreamReport {
    /// Steady-state throughput in frames/second under overlap.
    pub fn fps(&self) -> f64 {
        if self.pipelined_s <= 0.0 {
            0.0
        } else {
            self.frames.len() as f64 / self.pipelined_s
        }
    }

    /// Speedup of overlapped streaming over serial processing.
    pub fn overlap_speedup(&self) -> f64 {
        if self.pipelined_s <= 0.0 {
            1.0
        } else {
            self.serial_s / self.pipelined_s
        }
    }
}

/// Computes the pipelined completion time of a frame sequence given the
/// per-frame components: upload engine, compute, and download engine each
/// process frames in order, a frame entering a stage only after leaving
/// the previous one.
pub fn pipelined_time(frames: &[FrameComponents]) -> f64 {
    let mut up_free = 0.0f64;
    let mut dev_free = 0.0f64;
    let mut down_free = 0.0f64;
    for f in frames {
        let up_done = up_free + f.upload_s;
        up_free = up_done;
        let dev_done = up_done.max(dev_free) + f.compute_s;
        dev_free = dev_done;
        let down_done = dev_done.max(down_free) + f.download_s;
        down_free = down_done;
    }
    down_free
}

/// Streaming wrapper around a [`GpuPipeline`].
#[derive(Clone)]
pub struct StreamingPipeline {
    inner: GpuPipeline,
}

impl StreamingPipeline {
    /// Wraps a configured pipeline.
    pub fn new(inner: GpuPipeline) -> Self {
        StreamingPipeline { inner }
    }

    /// The wrapped pipeline.
    pub fn pipeline(&self) -> &GpuPipeline {
        &self.inner
    }

    /// Processes every frame, returning outputs plus serial and
    /// overlapped total times.
    ///
    /// # Errors
    /// Propagates the first frame failure (shape/parameter errors).
    pub fn run_stream(&self, frames: &[ImageF32]) -> Result<StreamReport, String> {
        let mut outputs = Vec::with_capacity(frames.len());
        let mut comps = Vec::with_capacity(frames.len());
        let mut serial = 0.0;
        for frame in frames {
            let report = self.inner.run(frame)?;
            serial += report.total_s;
            comps.push(FrameComponents::from_report(&report));
            outputs.push(report.output);
        }
        let pipelined_s = pipelined_time(&comps);
        Ok(StreamReport {
            outputs,
            frames: comps,
            serial_s: serial,
            pipelined_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::opts::OptConfig;
    use crate::params::SharpnessParams;
    use imagekit::generate;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn pipeline(opts: OptConfig) -> StreamingPipeline {
        StreamingPipeline::new(GpuPipeline::new(
            Context::new(DeviceSpec::firepro_w8000()),
            SharpnessParams::default(),
            opts,
        ))
    }

    #[test]
    fn single_frame_has_no_overlap_benefit() {
        let f = [FrameComponents {
            upload_s: 2.0,
            compute_s: 3.0,
            download_s: 1.0,
        }];
        assert!((pipelined_time(&f) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn steady_state_is_bottleneck_bound() {
        // N identical frames: total -> fill + N * max(stage).
        let c = FrameComponents {
            upload_s: 2.0,
            compute_s: 5.0,
            download_s: 1.0,
        };
        let frames = vec![c; 100];
        let t = pipelined_time(&frames);
        let lower = 100.0 * 5.0;
        let upper = 100.0 * 5.0 + 2.0 + 1.0;
        assert!(t >= lower && t <= upper + 1e-9, "{t}");
    }

    #[test]
    fn pipelining_never_slower_and_never_faster_than_bottleneck() {
        let frames = vec![
            FrameComponents {
                upload_s: 1.0,
                compute_s: 2.0,
                download_s: 3.0,
            },
            FrameComponents {
                upload_s: 3.0,
                compute_s: 1.0,
                download_s: 2.0,
            },
            FrameComponents {
                upload_s: 2.0,
                compute_s: 3.0,
                download_s: 1.0,
            },
        ];
        let serial: f64 = frames.iter().map(FrameComponents::total).sum();
        let t = pipelined_time(&frames);
        assert!(t <= serial + 1e-12);
        for lane in [
            frames.iter().map(|f| f.upload_s).sum::<f64>(),
            frames.iter().map(|f| f.compute_s).sum::<f64>(),
            frames.iter().map(|f| f.download_s).sum::<f64>(),
        ] {
            assert!(t >= lane - 1e-12);
        }
    }

    #[test]
    fn stream_outputs_match_single_runs() {
        let frames: Vec<_> = (0..3).map(|i| generate::natural(64, 64, 50 + i)).collect();
        let sp = pipeline(OptConfig::all());
        let stream = sp.run_stream(&frames).unwrap();
        assert_eq!(stream.outputs.len(), 3);
        for (frame, out) in frames.iter().zip(&stream.outputs) {
            let single = sp.pipeline().run(frame).unwrap();
            assert_eq!(&single.output, out);
        }
        assert!(stream.pipelined_s <= stream.serial_s);
        assert!(stream.overlap_speedup() >= 1.0);
        assert!(stream.fps() > 0.0);
    }

    #[test]
    fn transfer_heavy_streams_benefit_most() {
        // The optimized pipeline is transfer-dominated (f32 frames over
        // PCI-E), so overlap buys a solid speedup on long streams.
        let frames: Vec<_> = (0..6).map(|i| generate::natural(128, 128, i)).collect();
        let stream = pipeline(OptConfig::all()).run_stream(&frames).unwrap();
        assert!(
            stream.overlap_speedup() > 1.2,
            "expected >1.2x from overlap, got {:.2}",
            stream.overlap_speedup()
        );
    }

    #[test]
    fn component_split_accounts_everything() {
        let img = generate::natural(64, 64, 9);
        let run = pipeline(OptConfig::all()).pipeline().run(&img).unwrap();
        let c = FrameComponents::from_report(&run);
        assert!((c.total() - run.total_s).abs() < 1e-12);
        assert!(c.upload_s > 0.0 && c.compute_s > 0.0 && c.download_s > 0.0);
    }
}
