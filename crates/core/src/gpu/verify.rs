//! Static access-summary verification: prove kernel bounds, race-freedom
//! and byte accounting for a pipeline configuration **without executing
//! anything** (DESIGN.md §15).
//!
//! [`enumerate_access`] replays the dispatch schedule of
//! [`GpuPipeline::run`] symbolically: for a `(w, h)` shape, an
//! [`OptConfig`], a [`Tuning`] and a [`Schedule`] it produces — in commit
//! order — every kernel dispatch the frame would issue, each carrying the
//! same closed-form [`AccessSummary`] slices the live kernels declare
//! (the identical `*_access` constructors are called with buffer
//! descriptions built from pure arithmetic, so no device, queue or pixel
//! data is involved). [`verify_static`] then proves, per dispatch:
//!
//! * **(a) bounds** — every declared window stays inside its buffer,
//!   including the ragged tails of non-multiple-of-4 shapes;
//! * **(b) race-freedom** — write windows are internally disjoint and
//!   pairwise disjoint, so no element is stored twice in one dispatch;
//! * **(c) accounting** — the bytes the dispatch charges the cost model
//!   equal the declared write traffic exactly and bound the declared read
//!   traffic within the summary's exact overcharge ratio (for sliced
//!   dispatches the bound holds on the merged totals, mirroring
//!   [`CommandQueue::commit_sliced`]);
//! * **(d) coverage** — the slices of a banded dispatch exactly partition
//!   the grid: no gap, no overlap.
//!
//! The static schedule cannot rot silently: the executed pipeline declares
//! the same summaries through [`CommandQueue::declare_access`] (where the
//! sanitizer cross-validates them against observed per-element traffic and
//! the post-run audit against the actually-charged counters), and the
//! agreement test compares [`CommandQueue::take_access_log`] of a live run
//! against this module's enumeration, slice for slice.
//!
//! [`GpuPipeline::run`]: crate::gpu::GpuPipeline::run
//! [`CommandQueue::commit_sliced`]: simgpu::queue::CommandQueue::commit_sliced
//! [`CommandQueue::declare_access`]: simgpu::queue::CommandQueue::declare_access
//! [`CommandQueue::take_access_log`]: simgpu::queue::CommandQueue::take_access_log

use std::ops::Range;

use simgpu::access::{
    verify_partition, verify_summary, AccessError, AccessSummary, BufRef, VerifyStats,
};
use simgpu::kernel::KernelDesc;

use crate::gpu::kernels::downscale::downscale_access;
use crate::gpu::kernels::perror::perror_access;
use crate::gpu::kernels::reduction::{
    stage1_access, stage1_desc, stage1_groups, stage2_access, stage2_desc,
};
use crate::gpu::kernels::sharpen::{
    overshoot_access, preliminary_access, sharpness_fused_access, sharpness_fused_vec4_access,
};
use crate::gpu::kernels::sobel::{sobel_scalar_access, sobel_vec4_access};
use crate::gpu::kernels::upscale::{
    upscale_border_col_access, upscale_border_row_access, upscale_center_scalar_access,
    upscale_center_vec4_access,
};
use crate::gpu::kernels::{grid1d, grid2d, SrcInfo, GROUP_2D};
use crate::gpu::megapass::{downscale_cursor, effective_group_rows, stage1_cursor};
use crate::gpu::opts::{OptConfig, Tuning};
use crate::gpu::Schedule;
use crate::params::{check_shape, device_stride, SCALE};

/// Image rows covered by one work-group row of the 2-D kernels.
const GROUP_ROWS: usize = GROUP_2D[1];

/// One kernel dispatch of the static schedule: its descriptor plus the
/// per-slice access summaries in execution order. A monolithic dispatch
/// has exactly one full-grid slice; a banded dispatch has one slice per
/// `run_sliced` call, in the order the band loop issues them.
pub struct StaticDispatch {
    /// The dispatch descriptor (name, grid geometry).
    pub desc: KernelDesc,
    /// Per-slice summaries, in execution order.
    pub slices: Vec<AccessSummary>,
}

/// The verdict of [`verify_static`]: every enumerated dispatch proved
/// sound, with aggregate counters for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticReport {
    /// Kernel dispatches enumerated (a sliced kernel counts once).
    pub kernels: usize,
    /// Aggregated verifier counters over every slice of every dispatch.
    pub stats: VerifyStats,
}

impl StaticReport {
    /// Publishes the verifier counters as `verify.*` metrics gauges, so
    /// the committed metric baselines catch accounting regressions.
    pub fn to_registry(&self, reg: &mut simgpu::metrics::MetricsRegistry) {
        reg.set_gauge("verify.kernels", self.kernels as f64);
        reg.set_gauge("verify.dispatches", self.stats.dispatches as f64);
        reg.set_gauge("verify.windows", self.stats.windows as f64);
        reg.set_gauge(
            "verify.declared_read_bytes",
            self.stats.declared_read_bytes as f64,
        );
        reg.set_gauge(
            "verify.declared_write_bytes",
            self.stats.declared_write_bytes as f64,
        );
        reg.set_gauge(
            "verify.charged_read_bytes",
            self.stats.charged_read_bytes as f64,
        );
        reg.set_gauge(
            "verify.charged_write_bytes",
            self.stats.charged_write_bytes as f64,
        );
        reg.set_gauge("verify.max_ratio_slack", self.stats.max_ratio_slack);
    }

    /// One human-readable line for CLI summaries.
    pub fn summary_line(&self) -> String {
        format!(
            "static verifier: {} dispatches ({} slices, {} windows) proved in-bounds, \
             race-free and exactly charged; {:.3} MiB writes, {:.3} MiB reads \
             (ratio slack {:.4})",
            self.kernels,
            self.stats.dispatches,
            self.stats.windows,
            self.stats.charged_write_bytes as f64 / (1024.0 * 1024.0),
            self.stats.charged_read_bytes as f64 / (1024.0 * 1024.0),
            self.stats.max_ratio_slack,
        )
    }
}

/// Enumerates, in commit order, every kernel dispatch one frame of the
/// pipeline would issue for this shape, flag set, tuning and schedule —
/// with the same access summaries the live kernels declare. Purely
/// arithmetic: nothing is allocated on the simulated device and nothing
/// executes.
///
/// # Errors
/// On unsupported shapes (below the 3×3 minimum).
pub fn enumerate_access(
    w: usize,
    h: usize,
    opts: &OptConfig,
    tuning: &Tuning,
    schedule: Schedule,
) -> Result<Vec<StaticDispatch>, String> {
    check_shape(w, h)?;
    let f = Frame::new(w, h, opts, tuning);
    Ok(match schedule {
        Schedule::Monolithic => monolithic(&f, opts, tuning),
        Schedule::Banded(rows) => banded(&f, opts, tuning, rows),
    })
}

/// Statically verifies one frame of the pipeline: enumerates the schedule
/// via [`enumerate_access`] and proves bounds, write disjointness, charge
/// accounting and slice coverage for every dispatch.
///
/// # Errors
/// On unsupported shapes, or with the first [`AccessError`] (rendered to a
/// string) if any property fails — which would indicate a rotted
/// closed-form summary, since the same summaries gate live dispatch.
pub fn verify_static(
    w: usize,
    h: usize,
    opts: &OptConfig,
    tuning: &Tuning,
    schedule: Schedule,
) -> Result<StaticReport, String> {
    let dispatches = enumerate_access(w, h, opts, tuning, schedule)?;
    let mut stats = VerifyStats::default();
    for d in &dispatches {
        check_dispatch(d).map_err(|e| e.to_string())?;
        for s in &d.slices {
            stats.absorb(s);
        }
    }
    Ok(StaticReport {
        kernels: dispatches.len(),
        stats,
    })
}

/// Proves one dispatch sound: per-slice window checks, exact partition of
/// the grid, and the merged overcharge-ratio bound (the same three layers
/// [`simgpu::queue::CommandQueue`] applies at declare/commit time).
fn check_dispatch(d: &StaticDispatch) -> Result<(), AccessError> {
    let total = d.desc.total_groups();
    for s in &d.slices {
        if s.kernel != d.desc.name || s.total_groups != total {
            return Err(AccessError::GridMismatch {
                kernel: d.desc.name.clone(),
                detail: format!(
                    "slice declares kernel `{}` over a {}-group grid, dispatch is `{}` over {total}",
                    s.kernel, s.total_groups, d.desc.name
                ),
            });
        }
        verify_summary(s)?;
    }
    let ranges: Vec<Range<usize>> = d.slices.iter().map(|s| s.groups.clone()).collect();
    verify_partition(&d.desc.name, total, &ranges)?;
    // Merged ratio bound, mirroring `commit_sliced`: a single slice may
    // charge reads it does not declare (its halo lives in a neighbouring
    // slice); the whole dispatch must still balance.
    let declared_r: u64 = d.slices.iter().map(|s| s.declared_read_bytes()).sum();
    let charged_r: u64 = d.slices.iter().map(|s| s.charged.reads()).sum();
    let ratio = d.slices.iter().fold(1.0f64, |m, s| m.max(s.read_ratio));
    if charged_r != declared_r && charged_r as f64 > declared_r as f64 * ratio {
        return Err(AccessError::RatioExceeded {
            kernel: d.desc.name.clone(),
            declared: declared_r,
            charged: charged_r,
            ratio_bits: ratio.to_bits(),
        });
    }
    Ok(())
}

/// The frame's buffer universe, derived from shape and flags exactly as
/// `FrameResources::new` allocates it — but as pure [`BufRef`]
/// descriptions, no device memory.
struct Frame {
    w: usize,
    h: usize,
    w4: usize,
    h4: usize,
    ws: usize,
    ns: usize,
    padded_src: SrcInfo,
    main_src: SrcInfo,
    down: BufRef,
    up: BufRef,
    pedge: BufRef,
    finalbuf: BufRef,
    partials: Option<BufRef>,
    reduction_out: Option<BufRef>,
    perror: Option<BufRef>,
    prelim: Option<BufRef>,
}

impl Frame {
    fn new(w: usize, h: usize, opts: &OptConfig, tuning: &Tuning) -> Frame {
        let (w4, h4) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
        let n = w * h;
        let ws = device_stride(w);
        let ns = ws * h;
        let pw = ws + 2;
        let groups = stage1_groups(ns);
        let padded_src = SrcInfo {
            buf: BufRef::f32("padded", pw * (h + 2)),
            pitch: pw,
            pad: 1,
        };
        let main_src = if opts.data_transfer {
            padded_src.clone()
        } else {
            SrcInfo {
                buf: BufRef::f32("original", n),
                pitch: w,
                pad: 0,
            }
        };
        Frame {
            w,
            h,
            w4,
            h4,
            ws,
            ns,
            padded_src,
            main_src,
            down: BufRef::f32("down", w4 * h4),
            up: BufRef::f32("up", ns),
            pedge: BufRef::f32("pEdge", ns),
            finalbuf: BufRef::f32("final", ns),
            partials: opts.reduction_gpu.then(|| BufRef::f32("partials", groups)),
            reduction_out: (opts.reduction_gpu && groups > tuning.stage2_gpu_threshold)
                .then(|| BufRef::f32("reduction_out", 1)),
            perror: (!opts.kernel_fusion).then(|| BufRef::f32("pError", ns)),
            prelim: (!opts.kernel_fusion).then(|| BufRef::f32("prelim", ns)),
        }
    }

    fn has_center(&self) -> bool {
        self.w4 > 1 && self.h4 > 1
    }

    fn gpu_border(&self, opts: &OptConfig, tuning: &Tuning) -> bool {
        opts.border_gpu && self.w >= tuning.border_gpu_min_width
    }
}

/// Builds a dispatch whose kernel goes through `summarize` on the live
/// path: every slice carries the whole-dispatch exact read-overcharge
/// ratio, exactly as [`crate::gpu::kernels::summarize`] stamps it.
fn make(
    desc: KernelDesc,
    group_rows: &[Range<usize>],
    build: impl Fn(Range<usize>) -> AccessSummary,
) -> StaticDispatch {
    let [gx, _] = desc.num_groups();
    let total = desc.total_groups();
    let ratio = build(0..total).exact_read_ratio();
    let slices = group_rows
        .iter()
        .map(|rows| {
            let mut s = build(rows.start * gx..rows.end * gx);
            s.read_ratio = ratio;
            s
        })
        .collect();
    StaticDispatch { desc, slices }
}

/// A monolithic (single full-grid slice) dispatch declared without the
/// `summarize` wrapper, keeping the constructor's default ratio — the
/// border and reduction kernels, whose accounting is exact.
fn raw(desc: KernelDesc, s: AccessSummary) -> StaticDispatch {
    StaticDispatch {
        desc,
        slices: vec![s],
    }
}

/// The four border dispatches of `upscale_border_gpu`, in issue order.
fn border_dispatches(f: &Frame) -> Vec<StaticDispatch> {
    let (w, h, ws) = (f.w, f.h, f.ws);
    let (wd, hd) = (f.w4, f.h4);
    let mut out = Vec::with_capacity(4);
    for (name, src_row, dst_row) in [
        ("upscale_border_top", 0usize, 0usize),
        ("upscale_border_bottom", hd - 1, h - 2),
    ] {
        let desc = grid1d(name, (wd - 1).max(1), 64);
        let companion = if dst_row == 0 { 1 } else { h - 1 };
        let s = upscale_border_row_access(
            &desc,
            f.down.clone(),
            f.up.clone(),
            w,
            ws,
            src_row,
            dst_row,
            companion,
        );
        out.push(raw(desc, s));
    }
    for (name, src_col, dst_col) in [
        ("upscale_border_left", 0usize, 0usize),
        ("upscale_border_right", wd - 1, w - 2),
    ] {
        let desc = grid1d(name, (hd - 1).max(1), 64);
        let companion = if dst_col == 0 { 1 } else { w - 1 };
        let s = upscale_border_col_access(
            &desc,
            f.down.clone(),
            f.up.clone(),
            wd,
            h,
            ws,
            src_col,
            dst_col,
            companion,
        );
        out.push(raw(desc, s));
    }
    out
}

/// The upscale-center dispatch over the given group-row slices.
fn center_dispatch(f: &Frame, opts: &OptConfig, slices: &[Range<usize>]) -> StaticDispatch {
    let (w, h, ws) = (f.w, f.h, f.ws);
    let (nx, ny) = (f.w4 - 1, f.h4 - 1);
    if opts.vectorization {
        let desc = grid2d("upscale_center_vec4", nx.div_ceil(4), ny);
        make(desc.clone(), slices, |g| {
            upscale_center_vec4_access(&desc, g, f.down.clone(), f.up.clone(), w, h, ws)
        })
    } else {
        let desc = grid2d("upscale_center", nx, ny);
        make(desc.clone(), slices, |g| {
            upscale_center_scalar_access(&desc, g, f.down.clone(), f.up.clone(), w, h, ws)
        })
    }
}

/// The Sobel dispatch over the given group-row slices.
fn sobel_dispatch(f: &Frame, opts: &OptConfig, slices: &[Range<usize>]) -> StaticDispatch {
    let (w, h, ws) = (f.w, f.h, f.ws);
    if opts.vectorization {
        let desc = grid2d("sobel_vec4", ws / 4, h);
        make(desc.clone(), slices, |g| {
            sobel_vec4_access(&desc, g, &f.padded_src, f.pedge.clone(), w, h, ws)
        })
    } else {
        let desc = grid2d("sobel", w, h);
        make(desc.clone(), slices, |g| {
            sobel_scalar_access(&desc, g, &f.main_src, f.pedge.clone(), w, h, ws)
        })
    }
}

/// The downscale dispatch over the given group-row slices.
fn downscale_dispatch(f: &Frame, slices: &[Range<usize>]) -> StaticDispatch {
    let (w, h) = (f.w, f.h);
    let desc = grid2d("downscale", f.w4, f.h4);
    make(desc.clone(), slices, |g| {
        downscale_access(&desc, g, &f.main_src, f.down.clone(), w, h)
    })
}

/// Reduction stage 1 over the given *flat group* slices (1-D grid), each
/// slice declared exactly as `reduction_stage1_sliced` does.
fn stage1_dispatch(f: &Frame, tuning: &Tuning, slices: &[Range<usize>]) -> StaticDispatch {
    let desc = stage1_desc(f.ns, tuning.reduction_strategy);
    let partials = f.partials.clone().expect("gpu reduction declares partials");
    let slices = slices
        .iter()
        .map(|g| stage1_access(&desc, g.clone(), f.pedge.clone(), partials.clone(), 0, f.ns))
        .collect();
    StaticDispatch { desc, slices }
}

/// The sharpening-tail dispatches over the given group-row slices: one
/// fused dispatch, or the pError → preliminary → overshoot chain (in the
/// monolithic record order the banded executor also commits in).
fn tail_dispatches(f: &Frame, opts: &OptConfig, slices: &[Range<usize>]) -> Vec<StaticDispatch> {
    let (w, h, ws) = (f.w, f.h, f.ws);
    if opts.kernel_fusion {
        let d = if opts.vectorization {
            let desc = grid2d("sharpness_vec4", ws / 4, h);
            make(desc.clone(), slices, |g| {
                sharpness_fused_vec4_access(
                    &desc,
                    g,
                    &f.padded_src,
                    f.up.clone(),
                    f.pedge.clone(),
                    f.finalbuf.clone(),
                    w,
                    h,
                    ws,
                )
            })
        } else {
            let desc = grid2d("sharpness", w, h);
            make(desc.clone(), slices, |g| {
                sharpness_fused_access(
                    &desc,
                    g,
                    &f.padded_src,
                    f.up.clone(),
                    f.pedge.clone(),
                    f.finalbuf.clone(),
                    w,
                    h,
                    ws,
                )
            })
        };
        return vec![d];
    }
    let perr = f.perror.clone().expect("unfused path declares pError");
    let prelim = f.prelim.clone().expect("unfused path declares prelim");
    let pe_desc = grid2d("perror", w, h);
    let pr_desc = grid2d("preliminary", w, h);
    let ov_desc = grid2d("overshoot", w, h);
    vec![
        make(pe_desc.clone(), slices, |g| {
            perror_access(
                &pe_desc,
                g,
                &f.main_src,
                f.up.clone(),
                perr.clone(),
                w,
                h,
                ws,
            )
        }),
        make(pr_desc.clone(), slices, |g| {
            preliminary_access(
                &pr_desc,
                g,
                f.up.clone(),
                f.pedge.clone(),
                perr.clone(),
                prelim.clone(),
                w,
                h,
                ws,
            )
        }),
        make(ov_desc.clone(), slices, |g| {
            overshoot_access(
                &ov_desc,
                g,
                &f.padded_src,
                prelim.clone(),
                f.finalbuf.clone(),
                w,
                h,
                ws,
            )
        }),
    ]
}

/// Reduction dispatches after stage 1: the device stage 2, when the
/// partial count clears the tuned threshold.
fn stage2_dispatch(f: &Frame, tuning: &Tuning) -> Option<StaticDispatch> {
    let groups = stage1_groups(f.ns);
    if groups <= tuning.stage2_gpu_threshold {
        return None;
    }
    let desc = stage2_desc();
    let partials = f.partials.clone().expect("gpu reduction declares partials");
    let result = f
        .reduction_out
        .clone()
        .expect("gpu stage2 declares reduction_out");
    Some(raw(
        desc.clone(),
        stage2_access(&desc, partials, groups, result),
    ))
}

/// The monolithic schedule: each kernel once over its full grid, in the
/// order of `run_frame_monolithic`.
fn monolithic(f: &Frame, opts: &OptConfig, tuning: &Tuning) -> Vec<StaticDispatch> {
    let full = |total_rows: usize| std::iter::once(0..total_rows).collect::<Vec<_>>();
    let mut out = Vec::new();
    out.push(downscale_dispatch(f, &full(f.h4.div_ceil(GROUP_ROWS))));
    if f.gpu_border(opts, tuning) {
        out.extend(border_dispatches(f));
    }
    if f.has_center() {
        out.push(center_dispatch(
            f,
            opts,
            &full((f.h4 - 1).div_ceil(GROUP_ROWS)),
        ));
    }
    out.push(sobel_dispatch(f, opts, &full(f.h.div_ceil(GROUP_ROWS))));
    if opts.reduction_gpu {
        out.push(stage1_dispatch(
            f,
            tuning,
            std::slice::from_ref(&(0..stage1_groups(f.ns))),
        ));
        out.extend(stage2_dispatch(f, tuning));
    }
    out.extend(tail_dispatches(f, opts, &full(f.h.div_ceil(GROUP_ROWS))));
    out
}

/// The banded schedule: the same dispatches as [`monolithic`], each sliced
/// into the band partition `run_frame_banded` issues, in commit order.
fn banded(f: &Frame, opts: &OptConfig, tuning: &Tuning, band_rows: usize) -> Vec<StaticDispatch> {
    let (h, ws) = (f.h, f.ws);
    let bg = effective_group_rows(band_rows, ws, h);
    let gtot = h.div_ceil(GROUP_ROWS);
    let d_groups = f.h4.div_ceil(GROUP_ROWS);
    let u_groups = if f.has_center() {
        (f.h4 - 1).div_ceil(GROUP_ROWS)
    } else {
        0
    };
    let s1_total = stage1_groups(f.ns);

    // Phase A slice partitions, replaying the band loop's cursors.
    let mut down_slices = Vec::new();
    let mut sobel_slices = Vec::new();
    let mut stage1_slices = Vec::new();
    let (mut cur_d, mut cur_s, mut cur_r) = (0usize, 0usize, 0usize);
    let mut g0 = 0usize;
    while g0 < gtot {
        let g1 = (g0 + bg).min(gtot);
        let r1 = (GROUP_ROWS * g1).min(h);
        let td = downscale_cursor(g1, gtot, d_groups);
        if td > cur_d {
            down_slices.push(cur_d..td);
            cur_d = td;
        }
        if g1 > cur_s {
            sobel_slices.push(cur_s..g1);
            cur_s = g1;
        }
        if opts.reduction_gpu {
            let tr = stage1_cursor(g1, gtot, r1, ws, s1_total);
            if tr > cur_r {
                stage1_slices.push(cur_r..tr);
                cur_r = tr;
            }
        }
        g0 = g1;
    }
    let chunked = |total: usize| -> Vec<Range<usize>> {
        let mut v = Vec::new();
        let mut g0 = 0usize;
        while g0 < total {
            let g1 = (g0 + bg).min(total);
            v.push(g0..g1);
            g0 = g1;
        }
        v
    };

    let mut out = Vec::new();
    out.push(downscale_dispatch(f, &down_slices));
    if f.gpu_border(opts, tuning) {
        out.extend(border_dispatches(f));
    }
    if f.has_center() {
        out.push(center_dispatch(f, opts, &chunked(u_groups)));
    }
    out.push(sobel_dispatch(f, opts, &sobel_slices));
    if opts.reduction_gpu {
        out.push(stage1_dispatch(f, tuning, &stage1_slices));
        out.extend(stage2_dispatch(f, tuning));
    }
    out.extend(tail_dispatches(f, opts, &chunked(gtot)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_configs() -> Vec<OptConfig> {
        (0u32..64)
            .map(|bits| OptConfig {
                data_transfer: bits & 1 != 0,
                kernel_fusion: bits & 2 != 0,
                reduction_gpu: bits & 4 != 0,
                vectorization: bits & 8 != 0,
                border_gpu: bits & 16 != 0,
                others: bits & 32 != 0,
            })
            .collect()
    }

    #[test]
    fn verifies_all_configs_on_a_ragged_shape() {
        let tuning = Tuning::default();
        for opts in all_configs() {
            for schedule in [Schedule::Monolithic, Schedule::Banded(64)] {
                let r = verify_static(1001, 701, &opts, &tuning, schedule)
                    .unwrap_or_else(|e| panic!("{opts:?} {schedule:?}: {e}"));
                assert!(r.kernels >= 4, "{opts:?}: only {} dispatches", r.kernels);
                assert!(r.stats.dispatches >= r.kernels as u64);
                assert!(r.stats.max_ratio_slack >= 0.0);
                assert!(r.stats.charged_write_bytes == r.stats.declared_write_bytes);
            }
        }
    }

    #[test]
    fn banded_slices_partition_each_grid() {
        let opts = OptConfig::all();
        let tuning = Tuning::default();
        let dispatches = enumerate_access(768, 768, &opts, &tuning, Schedule::Banded(64)).unwrap();
        // At least one dispatch is genuinely multi-slice at this shape.
        assert!(dispatches.iter().any(|d| d.slices.len() > 1));
        for d in &dispatches {
            let covered: usize = d.slices.iter().map(|s| s.groups.len()).sum();
            assert_eq!(covered, d.desc.total_groups(), "{}", d.desc.name);
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(verify_static(
            2,
            2,
            &OptConfig::none(),
            &Tuning::default(),
            Schedule::Monolithic
        )
        .is_err());
    }

    #[test]
    fn small_stage2_threshold_adds_device_stage2() {
        let opts = OptConfig {
            reduction_gpu: true,
            ..OptConfig::none()
        };
        let tuning = Tuning {
            stage2_gpu_threshold: 1,
            ..Tuning::default()
        };
        let names: Vec<String> = enumerate_access(256, 256, &opts, &tuning, Schedule::Monolithic)
            .unwrap()
            .into_iter()
            .map(|d| d.desc.name)
            .collect();
        assert!(names.iter().any(|n| n == "reduction_stage2"));
    }
}
