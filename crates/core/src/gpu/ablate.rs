//! Standalone stage measurements for the paper's component figures:
//! reduction CPU-vs-GPU (Fig. 16), reduction unrolling (Fig. 15) and the
//! upscale border CPU-vs-GPU (Fig. 17).
//!
//! All functions measure *in-pipeline* cost: the stage input is already
//! resident on the device (as it is mid-pipeline), so the CPU variants pay
//! the device→host transfer the paper highlights ("the procedure of
//! reduction on CPU includes transferring the pEdge matrix from GPU to
//! CPU").

use imagekit::ImageF32;
use simgpu::context::Context;
use simgpu::cost::{CostCounters, OpCounts};

use crate::cpu::stages as cpu_stages;
use crate::gpu::kernels::reduction::{
    reduction_stage1_kernel, reduction_stage2_kernel, stage1_groups, ReductionStrategy,
};
use crate::gpu::kernels::upscale::upscale_border_gpu;
use crate::gpu::kernels::KernelTuning;
use crate::params::{device_stride, SCALE};

/// Simulated time of the two-stage GPU reduction of `n` elements,
/// including the stage-2 host finish (or device stage 2 above
/// `stage2_threshold` partials) and the small result readback.
pub fn reduction_gpu_time(
    ctx: &Context,
    n: usize,
    strategy: ReductionStrategy,
    stage2_threshold: usize,
) -> f64 {
    let mut q = ctx.queue();
    let data = vec![1.0f32; n];
    let src = ctx.buffer_from("pEdge", &data);
    let partials = ctx.buffer::<f32>("partials", stage1_groups(n));
    let (groups, _) =
        reduction_stage1_kernel(&mut q, &src.view(), n, &partials, strategy).expect("stage1");
    if groups > stage2_threshold {
        let result = ctx.buffer::<f32>("reduction_out", 1);
        reduction_stage2_kernel(&mut q, &partials.view(), groups, &result).expect("stage2");
        let mut one = [0.0f32];
        q.enqueue_read(&result, &mut one).expect("read result");
    } else {
        let mut part = vec![0.0f32; groups];
        q.enqueue_read(&partials, &mut part).expect("read partials");
        let mut c = CostCounters::new();
        c.charge_ops_n(&OpCounts::ZERO.adds(1), groups as u64);
        c.global_read_scalar = groups as u64 * 4;
        q.charge_host("host:reduction_stage2", &c);
    }
    q.elapsed()
}

/// Simulated time of the CPU reduction of `n` device-resident elements:
/// full transfer back plus a serial host sum.
pub fn reduction_cpu_time(ctx: &Context, n: usize) -> f64 {
    let mut q = ctx.queue();
    let data = vec![1.0f32; n];
    let src = ctx.buffer_from("pEdge", &data);
    let mut host = vec![0.0f32; n];
    q.enqueue_read(&src, &mut host).expect("read pEdge");
    let mut c = CostCounters::new();
    c.charge_ops_n(&OpCounts::ZERO.adds(1), n as u64);
    c.global_read_scalar = n as u64 * 4;
    q.charge_host("host:reduction", &c);
    q.elapsed()
}

/// Simulated time of the GPU upscale-border for a `w × h` image (four
/// small, divergence-heavy kernels).
pub fn border_gpu_time(ctx: &Context, w: usize, h: usize) -> f64 {
    let (w4, h4) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    let ws = device_stride(w);
    let mut q = ctx.queue();
    let down = ctx.buffer::<f32>("down", w4 * h4);
    down.fill_from(&vec![1.0f32; w4 * h4]);
    let up = ctx.buffer::<f32>("up", ws * h);
    upscale_border_gpu(&mut q, &down.view(), &up, w, h, ws, KernelTuning::default())
        .expect("border kernels");
    q.elapsed()
}

/// Simulated time of the CPU upscale-border for a `w × h` image:
/// downscaled matrix read back, host interpolation, border region written
/// to the device.
pub fn border_cpu_time(ctx: &Context, w: usize, h: usize) -> f64 {
    let (w4, h4) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    let mut q = ctx.queue();
    let down = ctx.buffer::<f32>("down", w4 * h4);
    down.fill_from(&vec![1.0f32; w4 * h4]);
    let mut host = vec![0.0f32; w4 * h4];
    q.enqueue_read(&down, &mut host).expect("read down");
    let down_img = ImageF32::from_vec(w4, h4, host);
    let mut up_host = ImageF32::zeros(w, h);
    let counters = cpu_stages::upscale_border_into(&down_img, &mut up_host);
    q.charge_host("host:upscale_border", &counters);
    let border_bytes = (4 * w + 4 * (h - 4)) as u64 * 4;
    q.charge_bulk(
        "write:up_border",
        simgpu::queue::CommandKind::WriteBuffer,
        border_bytes,
    );
    q.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::device::DeviceSpec;

    fn ctx() -> Context {
        Context::new(DeviceSpec::firepro_w8000())
    }

    #[test]
    fn gpu_reduction_beats_cpu_at_scale() {
        // Fig. 16: at large sizes the GPU reduction wins by a wide margin.
        let c = ctx();
        let n = 4096 * 4096;
        let t_cpu = reduction_cpu_time(&c, n);
        let t_gpu = reduction_gpu_time(&c, n, ReductionStrategy::UnrollOne, 4096);
        assert!(t_gpu * 5.0 < t_cpu, "gpu {t_gpu} vs cpu {t_cpu}");
    }

    #[test]
    fn reduction_times_scale_with_n() {
        let c = ctx();
        let small = reduction_gpu_time(&c, 256 * 256, ReductionStrategy::UnrollOne, 4096);
        let large = reduction_gpu_time(&c, 2048 * 2048, ReductionStrategy::UnrollOne, 4096);
        assert!(large > small);
    }

    #[test]
    fn border_cpu_wins_small_gpu_wins_large() {
        // Fig. 17: the crossover sits between the smallest and largest
        // tested sizes.
        let c = ctx();
        assert!(border_cpu_time(&c, 448, 448) < border_gpu_time(&c, 448, 448));
        assert!(border_gpu_time(&c, 1536, 1536) < border_cpu_time(&c, 1536, 1536));
    }

    #[test]
    fn stage2_threshold_changes_path() {
        let c = ctx();
        let n = 2048 * 2048;
        // Force device stage 2 vs host stage 2; both must complete.
        let t_dev = reduction_gpu_time(&c, n, ReductionStrategy::UnrollOne, 0);
        let t_host = reduction_gpu_time(&c, n, ReductionStrategy::UnrollOne, usize::MAX);
        assert!(t_dev > 0.0 && t_host > 0.0);
    }
}
