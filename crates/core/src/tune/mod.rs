//! The model-based schedule autotuner: predict simulated cost without
//! execution, search the full configuration space.
//!
//! The paper hand-picks its winning schedule (kernel fusion on, vec4
//! vectorization, a ~768-wide border crossover) after manual measurement
//! on one FirePro W8000. This module derives those choices — and better
//! ones on devices the paper never tried — from the analytical cost model
//! alone:
//!
//! * [`predict`] is the closed-form cost predictor: the exact simulated
//!   seconds of any `(w, h, OptConfig, Tuning, Schedule, DeviceSpec)`
//!   with zero execution, `.to_bits()`-identical to what running the
//!   pipeline reports (the agreement sweep in `tests/tune.rs` enforces
//!   bit equality, not approximation).
//! * [`search`] enumerates the candidate space over the predictor —
//!   exhaustively or axis-by-axis — and returns the argmin per
//!   `(shape, device)`, plus closed-form equivalents of the
//!   [`crate::gpu::ablate`] probes so [`crate::autotune`] decides from
//!   the model instead of executing probe queues.
//!
//! The proved-vs-searched boundary: the static verifier
//! ([`crate::gpu::verify`]) proves what a schedule *touches*; this module
//! only ranks schedules by *cost*. A wrong cost recipe here can pick a
//! slow schedule, never an incorrect one — and the bit-exactness sweep
//! makes a wrong recipe loudly visible. Nothing in this module may
//! execute: a lint rule bans pipelines, queues and buffers from the
//! whole directory.

pub mod predict;
pub mod search;

pub use predict::{predict_frame, PredictedCommand, Prediction};
pub use search::{
    border_cpu_model, border_gpu_model, flags_label, reduction_cpu_model, reduction_gpu_model,
    search, search_pixel_invariant, SearchMode, TuneReport,
};
