//! Model-based search over the schedule space, plus closed-form ablation
//! probes that replace the measure-by-running probes in
//! [`crate::autotune`].
//!
//! Every candidate is evaluated with [`predict_frame`] — the bit-exact
//! closed-form predictor — so walking the full space costs microseconds
//! per candidate instead of a simulated pipeline execution per probe.
//! [`SearchMode::Exhaustive`] enumerates the full cross product: 64
//! [`OptConfig`]s × 3 reduction strategies × {host, device} stage-2
//! placement × {CPU, GPU} border placement, 768 candidates per shape.
//! [`SearchMode::Guided`] fixes one axis at a time (~71 candidates);
//! `benches/tune_model.rs` records how often the two argmins agree.
//!
//! Banded schedules are deliberately absent from the candidate axes: the
//! megapass commits each sliced kernel as the one record the monolithic
//! schedule would produce, so every band height predicts (and executes)
//! the identical simulated time. The search verifies that claim for the
//! winner ([`TuneReport::banded_tie`]) instead of multiplying the space
//! by it.
//!
//! Like the predictor, this module must stay execution-free — no
//! pipelines, no queues, no buffers (a lint rule enforces it). The wall
//! clock of a search is measured by callers (the `tune` bin and the
//! bench) and exported as the `tune.search_wall_s` gauge; it is kept out
//! of [`TuneReport::to_registry`] so committed metric baselines stay
//! deterministic.

use simgpu::cost::{CostCounters, OpCounts};
use simgpu::device::{CpuSpec, DeviceSpec};
use simgpu::metrics::MetricsRegistry;
use simgpu::timing::{bulk_transfer_time, cpu_stage_time, kernel_time};

use crate::gpu::kernels::reduction::{stage1_groups, ReductionStrategy};
use crate::gpu::kernels::KernelTuning;
use crate::gpu::{OptConfig, Schedule, Tuning};
use crate::params::{device_stride, SCALE};

use super::predict::{border_host_counters, predict_frame, stage1_work, stage2_work};

/// How [`search`] walks the candidate space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// The full cross product of every axis (768 candidates per shape).
    Exhaustive,
    /// One axis at a time: flags at the paper-default tuning, then the
    /// reduction strategy, stage-2 placement and border placement on the
    /// winner (~71 candidates).
    Guided,
}

/// The argmin of one `(shape, device)` search, with enough context to
/// report and to gate regressions.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Image width the search tuned for.
    pub w: usize,
    /// Image height the search tuned for.
    pub h: usize,
    /// Device preset name the candidates were costed on.
    pub device: &'static str,
    /// Which walk produced this report.
    pub mode: SearchMode,
    /// Winning optimization flags.
    pub opts: OptConfig,
    /// Winning tuning. `stage2_gpu_threshold` and `border_gpu_min_width`
    /// encode the binary per-shape placement decisions (`usize::MAX` /
    /// partials−1 for host/device stage 2; `w+1` / `w` for CPU/GPU
    /// border), not a crossover — crossovers come from
    /// [`crate::autotune::autotune`].
    pub tuning: Tuning,
    /// Predicted simulated seconds of the winner (bit-identical to what
    /// executing it would report).
    pub predicted_s: f64,
    /// Predicted simulated seconds of the paper's hand-tuned default
    /// ([`OptConfig::all`] + [`Tuning::default`]) on the same shape and
    /// device.
    pub default_s: f64,
    /// Candidates evaluated.
    pub candidates: usize,
    /// Whether a banded schedule of the winner predicts the exact same
    /// simulated seconds as the monolithic schedule (it always should).
    pub banded_tie: bool,
}

impl TuneReport {
    /// Simulated speedup of the tuned schedule over the paper default
    /// (> 1.0 means the search beat the hand-tuned configuration).
    pub fn speedup_vs_default(&self) -> f64 {
        self.default_s / self.predicted_s
    }

    /// Exports the deterministic `tune.*` gauges (everything but search
    /// wall time, which callers measure and export separately).
    pub fn to_registry(&self, reg: &mut MetricsRegistry) {
        reg.set_gauge("tune.candidates", self.candidates as f64);
        reg.set_gauge("tune.predicted_best_s", self.predicted_s);
        reg.set_gauge("tune.default_s", self.default_s);
        reg.set_gauge("tune.speedup_vs_default", self.speedup_vs_default());
        reg.set_gauge("tune.flag_bits", f64::from(self.opts.bits()));
        let strategy = match self.tuning.reduction_strategy {
            ReductionStrategy::NoUnroll => 0.0,
            ReductionStrategy::UnrollOne => 1.0,
            ReductionStrategy::UnrollTwo => 2.0,
        };
        reg.set_gauge("tune.reduction_strategy", strategy);
        let stage2_device =
            stage1_groups(device_stride(self.w) * self.h) > self.tuning.stage2_gpu_threshold;
        reg.set_gauge("tune.stage2_device", f64::from(u8::from(stage2_device)));
        let border_gpu = self.opts.border_gpu && self.w >= self.tuning.border_gpu_min_width;
        reg.set_gauge("tune.border_gpu", f64::from(u8::from(border_gpu)));
        reg.set_gauge("tune.banded_tie", f64::from(u8::from(self.banded_tie)));
    }

    /// One human-readable line for CLI summaries.
    pub fn summary_line(&self) -> String {
        let stage2 =
            if stage1_groups(device_stride(self.w) * self.h) > self.tuning.stage2_gpu_threshold {
                "device"
            } else {
                "host"
            };
        let border = if self.opts.border_gpu && self.w >= self.tuning.border_gpu_min_width {
            "gpu"
        } else {
            "cpu"
        };
        format!(
            "tune: {}x{} on {}: best {} ({:?}, stage2 {stage2}, border {border}) \
             predicted {:.3} ms, {:.3}x vs paper default ({} candidates{})",
            self.w,
            self.h,
            self.device,
            flags_label(&self.opts),
            self.tuning.reduction_strategy,
            self.predicted_s * 1e3,
            self.speedup_vs_default(),
            self.candidates,
            if self.mode == SearchMode::Guided {
                ", guided"
            } else {
                ""
            },
        )
    }
}

/// Compact label for a flag set, e.g. `dt+kf+red+vec+bord+oth` or `base`.
pub fn flags_label(o: &OptConfig) -> String {
    let names = [
        (o.data_transfer, "dt"),
        (o.kernel_fusion, "kf"),
        (o.reduction_gpu, "red"),
        (o.vectorization, "vec"),
        (o.border_gpu, "bord"),
        (o.others, "oth"),
    ];
    let on: Vec<&str> = names.iter().filter(|(b, _)| *b).map(|&(_, n)| n).collect();
    if on.is_empty() {
        "base".to_string()
    } else {
        on.join("+")
    }
}

/// Finds the fastest predicted schedule for one `(w, h)` frame on one
/// device, evaluating candidates purely through the cost model.
///
/// Ties keep the earliest candidate in the fixed enumeration order
/// (flag bits ascending; `NoUnroll` → `UnrollOne` → `UnrollTwo`; host
/// stage 2 before device; CPU border before GPU), so inert axes settle
/// on the least-machinery choice deterministically.
///
/// # Errors
/// On unsupported shapes (propagated from the predictor).
pub fn search(
    w: usize,
    h: usize,
    dev: &DeviceSpec,
    cpu: &CpuSpec,
    mode: SearchMode,
) -> Result<TuneReport, String> {
    let groups = stage1_groups(device_stride(w) * h);
    // Host stage 2 first (threshold no partial count exceeds), then
    // device (threshold just below this shape's partial count).
    let thresholds = [usize::MAX, groups.saturating_sub(1)];
    // CPU border first (crossover above this width), then GPU (at it).
    let border_widths = [w + 1, w];
    let strategies = [
        ReductionStrategy::NoUnroll,
        ReductionStrategy::UnrollOne,
        ReductionStrategy::UnrollTwo,
    ];

    let mut candidates = 0usize;
    let mut best: Option<(OptConfig, Tuning, f64)> = None;
    let consider = |opts: OptConfig,
                    tuning: Tuning,
                    candidates: &mut usize,
                    best: &mut Option<(OptConfig, Tuning, f64)>|
     -> Result<(), String> {
        let p = predict_frame(w, h, &opts, &tuning, Schedule::Monolithic, dev, cpu)?;
        *candidates += 1;
        if best.as_ref().is_none_or(|(_, _, t)| p.total_s < *t) {
            *best = Some((opts, tuning, p.total_s));
        }
        Ok(())
    };

    match mode {
        SearchMode::Exhaustive => {
            for bits in 0u32..64 {
                let opts = OptConfig::from_bits(bits);
                for strategy in strategies {
                    for &stage2 in &thresholds {
                        for &border_w in &border_widths {
                            let tuning = Tuning {
                                reduction_strategy: strategy,
                                stage2_gpu_threshold: stage2,
                                border_gpu_min_width: border_w,
                            };
                            consider(opts, tuning, &mut candidates, &mut best)?;
                        }
                    }
                }
            }
        }
        SearchMode::Guided => {
            // Axis 1: flags, at the paper-default tuning.
            for bits in 0u32..64 {
                consider(
                    OptConfig::from_bits(bits),
                    Tuning::default(),
                    &mut candidates,
                    &mut best,
                )?;
            }
            // Axis 2: reduction strategy on the winning flags.
            let opts = best.as_ref().expect("64 candidates evaluated").0;
            for strategy in strategies {
                let tuning = Tuning {
                    reduction_strategy: strategy,
                    ..best.as_ref().expect("nonempty").1
                };
                consider(opts, tuning, &mut candidates, &mut best)?;
            }
            // Axis 3: stage-2 placement.
            for &stage2 in &thresholds {
                let tuning = Tuning {
                    stage2_gpu_threshold: stage2,
                    ..best.as_ref().expect("nonempty").1
                };
                consider(opts, tuning, &mut candidates, &mut best)?;
            }
            // Axis 4: border placement — flag and width move together, so
            // the axis stays live even when axis 1 ran below the default
            // crossover (where the bare flag is inert).
            let (opts, tuning, _) = *best.as_ref().expect("nonempty");
            for (flag, border_w) in [(false, w + 1), (true, w)] {
                let opts = OptConfig {
                    border_gpu: flag,
                    ..opts
                };
                let tuning = Tuning {
                    border_gpu_min_width: border_w,
                    ..tuning
                };
                consider(opts, tuning, &mut candidates, &mut best)?;
            }
        }
    }

    let (opts, tuning, predicted_s) = best.expect("search evaluated at least one candidate");
    let default_s = predict_frame(
        w,
        h,
        &OptConfig::all(),
        &Tuning::default(),
        Schedule::Monolithic,
        dev,
        cpu,
    )?
    .total_s;
    let banded_s = predict_frame(w, h, &opts, &tuning, Schedule::Banded(64), dev, cpu)?.total_s;
    Ok(TuneReport {
        w,
        h,
        device: dev.name,
        mode,
        opts,
        tuning,
        predicted_s,
        default_s,
        candidates,
        banded_tie: banded_s.to_bits() == predicted_s.to_bits(),
    })
}

/// [`search`] restricted to the *pixel-invariant* axes: transfer
/// strategy, kernel fusion, vectorization, border placement, the extra
/// optimizations and the reduction unrolling strategy. The two
/// summation-order axes — the `reduction_gpu` flag (host sequential sum
/// vs device tree) and the stage-2 host/device placement — change the
/// rounding of the global pEdge mean and with it the output pixels, so
/// they stay pinned to `pinned_opts`/`pinned_tuning`. The service plan
/// cache tunes through this entry so a tuned plan's pixels are
/// bit-identical to the fixed pipeline's.
///
/// The walk is exhaustive over the restricted space (32 flag sets × 3
/// strategies × 2 border placements = 192 candidates) and the pinned
/// configuration's effective behavior is inside it, so the winner always
/// beats-or-ties the pinned configuration. The report's `mode` is
/// [`SearchMode::Exhaustive`]; `default_s` still refers to the paper
/// default, as everywhere else.
///
/// # Errors
/// On unsupported shapes (propagated from the predictor).
pub fn search_pixel_invariant(
    w: usize,
    h: usize,
    dev: &DeviceSpec,
    cpu: &CpuSpec,
    pinned_opts: &OptConfig,
    pinned_tuning: &Tuning,
) -> Result<TuneReport, String> {
    let strategies = [
        ReductionStrategy::NoUnroll,
        ReductionStrategy::UnrollOne,
        ReductionStrategy::UnrollTwo,
    ];
    let border_widths = [w + 1, w];
    let mut candidates = 0usize;
    let mut best: Option<(OptConfig, Tuning, f64)> = None;
    for bits in 0u32..64 {
        let opts = OptConfig::from_bits(bits);
        if opts.reduction_gpu != pinned_opts.reduction_gpu {
            continue;
        }
        for strategy in strategies {
            for &border_w in &border_widths {
                let tuning = Tuning {
                    reduction_strategy: strategy,
                    stage2_gpu_threshold: pinned_tuning.stage2_gpu_threshold,
                    border_gpu_min_width: border_w,
                };
                let p = predict_frame(w, h, &opts, &tuning, Schedule::Monolithic, dev, cpu)?;
                candidates += 1;
                if best.as_ref().is_none_or(|(_, _, t)| p.total_s < *t) {
                    best = Some((opts, tuning, p.total_s));
                }
            }
        }
    }
    let (opts, tuning, predicted_s) = best.expect("pinned search evaluated 192 candidates");
    let default_s = predict_frame(
        w,
        h,
        &OptConfig::all(),
        &Tuning::default(),
        Schedule::Monolithic,
        dev,
        cpu,
    )?
    .total_s;
    let banded_s = predict_frame(w, h, &opts, &tuning, Schedule::Banded(64), dev, cpu)?.total_s;
    Ok(TuneReport {
        w,
        h,
        device: dev.name,
        mode: SearchMode::Exhaustive,
        opts,
        tuning,
        predicted_s,
        default_s,
        candidates,
        banded_tie: banded_s.to_bits() == predicted_s.to_bits(),
    })
}

// ---------------------------------------------------------------------------
// Closed-form ablation probes, mirroring `gpu::ablate`'s executed probes
// bit for bit (the autotune tests cross-check them against the executed
// versions). Each replays the probe's command durations in the same
// order an executing queue would sum them — no syncs, always-bulk
// readbacks, default kernel tuning — so `crate::autotune` can keep its
// exact decision semantics while evaluating in microseconds.
// ---------------------------------------------------------------------------

/// Counters of a standalone stage-1 reduction dispatch over `n` elements.
fn stage1_counters(n: usize, strategy: ReductionStrategy) -> CostCounters {
    let groups = stage1_groups(n) as u64;
    let mut c = CostCounters::new();
    // Every element is loaded once (full groups coalesce 8 per thread,
    // the ragged tail loads singly — 4 bytes per element either way) and
    // each group stores one partial.
    c.global_read_scalar = n as u64 * 4;
    c.global_write_scalar = groups * 4;
    c.groups = groups;
    c.group_lanes = 128;
    stage1_work(strategy, groups, &mut c);
    c
}

/// Counters of the single-group stage-2 dispatch over `n_partials`.
fn stage2_counters(n_partials: usize) -> CostCounters {
    let mut c = CostCounters::new();
    c.global_read_scalar = n_partials as u64 * 4;
    c.global_write_scalar = 4;
    c.groups = 1;
    c.group_lanes = 128;
    stage2_work(n_partials as u64, &mut c);
    c
}

/// Host-side stage-2 finish: read `n` partials, sum them.
fn host_sum_counters(n: usize) -> CostCounters {
    let mut c = CostCounters::new();
    c.charge_ops_n(&OpCounts::ZERO.adds(1), n as u64);
    c.global_read_scalar = n as u64 * 4;
    c
}

/// Predicted seconds of the GPU reduction probe: stage 1 over `n`
/// elements, then either the device stage 2 plus a one-element readback
/// (partial count above `stage2_threshold`) or a partials readback plus
/// the host-side sum. Bit-identical to `gpu::ablate::reduction_gpu_time`.
pub fn reduction_gpu_model(
    dev: &DeviceSpec,
    cpu: &CpuSpec,
    n: usize,
    strategy: ReductionStrategy,
    stage2_threshold: usize,
) -> f64 {
    let groups = stage1_groups(n);
    let mut t = kernel_time(dev, &stage1_counters(n, strategy)).total_s;
    if groups > stage2_threshold {
        t += kernel_time(dev, &stage2_counters(groups)).total_s;
        t += bulk_transfer_time(&dev.transfer, 4);
    } else {
        t += bulk_transfer_time(&dev.transfer, groups as u64 * 4);
        t += cpu_stage_time(cpu, &host_sum_counters(groups));
    }
    t
}

/// Predicted seconds of the CPU reduction probe: read all `n` elements
/// back, sum on the host. Bit-identical to
/// `gpu::ablate::reduction_cpu_time`.
pub fn reduction_cpu_model(dev: &DeviceSpec, cpu: &CpuSpec, n: usize) -> f64 {
    let mut t = bulk_transfer_time(&dev.transfer, n as u64 * 4);
    t += cpu_stage_time(cpu, &host_sum_counters(n));
    t
}

/// Counters of one border row kernel (top or bottom) at width `w`.
fn border_row_counters(w: usize) -> CostCounters {
    let idx = KernelTuning::default().idx_ops();
    let wd = w.div_ceil(SCALE);
    let mut c = CostCounters::new();
    c.groups = (wd - 1).max(1).div_ceil(64) as u64;
    c.group_lanes = 64;
    if wd == 1 {
        c.charge_ops_n(&OpCounts::ZERO.cmps(2).plus(&idx), 1);
        c.global_read_scalar = 4;
    } else {
        c.charge_ops_n(
            &OpCounts::ZERO.muls(8).adds(4).cmps(2).plus(&idx),
            wd as u64 - 1,
        );
        c.divergent_branches += 2;
        c.global_read_scalar = 4 * 2 * (wd as u64 - 1);
    }
    c.global_write_scalar = 4 * 2 * w as u64;
    c
}

/// Counters of one border column kernel (left or right) at height `h`.
fn border_col_counters(h: usize) -> CostCounters {
    let idx = KernelTuning::default().idx_ops();
    let hd = h.div_ceil(SCALE);
    let mut c = CostCounters::new();
    c.groups = (hd - 1).max(1).div_ceil(64) as u64;
    c.group_lanes = 64;
    if hd >= 2 {
        c.charge_ops_n(
            &OpCounts::ZERO.muls(8).adds(4).cmps(2).plus(&idx),
            hd as u64 - 1,
        );
        c.global_read_scalar = 4 * 2 * (hd as u64 - 1);
        c.global_write_scalar = 4 * 2 * (h as u64 - 4);
    }
    c
}

/// Predicted seconds of the GPU border probe: the four border kernels
/// (top, bottom, left, right), nothing else. Bit-identical to
/// `gpu::ablate::border_gpu_time`.
pub fn border_gpu_model(dev: &DeviceSpec, w: usize, h: usize) -> f64 {
    let row = kernel_time(dev, &border_row_counters(w)).total_s;
    let col = kernel_time(dev, &border_col_counters(h)).total_s;
    let mut t = row;
    t += row;
    t += col;
    t += col;
    t
}

/// Predicted seconds of the CPU border probe: read the downscaled image
/// back, interpolate the border on the host, write the border band to
/// the device. Bit-identical to `gpu::ablate::border_cpu_time`.
pub fn border_cpu_model(dev: &DeviceSpec, cpu: &CpuSpec, w: usize, h: usize) -> f64 {
    let (wd, hd) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    let mut t = bulk_transfer_time(&dev.transfer, (wd * hd * 4) as u64);
    t += cpu_stage_time(cpu, &border_host_counters(w, h));
    let border_bytes = ((4 * w + 4 * (h - 4)) * 4) as u64;
    t += bulk_transfer_time(&dev.transfer, border_bytes);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w8000() -> (DeviceSpec, CpuSpec) {
        (DeviceSpec::firepro_w8000(), CpuSpec::core_i5_3470())
    }

    #[test]
    fn exhaustive_search_covers_the_full_space() {
        let (dev, cpu) = w8000();
        let r = search(256, 256, &dev, &cpu, SearchMode::Exhaustive).unwrap();
        assert_eq!(r.candidates, 64 * 3 * 2 * 2);
        assert!(r.predicted_s > 0.0);
        assert!(r.predicted_s <= r.default_s, "argmin beats any fixed point");
        assert!(r.banded_tie, "banding must not change simulated time");
    }

    #[test]
    fn guided_search_agrees_with_exhaustive_on_w8000() {
        let (dev, cpu) = w8000();
        for (w, h) in [(256, 256), (1001, 701)] {
            let ex = search(w, h, &dev, &cpu, SearchMode::Exhaustive).unwrap();
            let gd = search(w, h, &dev, &cpu, SearchMode::Guided).unwrap();
            assert!(gd.candidates < ex.candidates / 10);
            assert_eq!(
                ex.predicted_s.to_bits(),
                gd.predicted_s.to_bits(),
                "{w}x{h}: guided {} vs exhaustive {}",
                gd.summary_line(),
                ex.summary_line()
            );
        }
    }

    #[test]
    fn report_exports_deterministic_gauges() {
        let (dev, cpu) = w8000();
        let r = search(256, 256, &dev, &cpu, SearchMode::Guided).unwrap();
        let mut reg = MetricsRegistry::new();
        r.to_registry(&mut reg);
        assert_eq!(reg.gauge("tune.candidates"), r.candidates as f64);
        assert_eq!(reg.gauge("tune.predicted_best_s"), r.predicted_s);
        assert!(reg.gauge("tune.speedup_vs_default") >= 1.0);
        assert!(
            reg.get("tune.search_wall_s").is_none(),
            "wall time is caller-owned"
        );
    }

    #[test]
    fn pixel_invariant_search_respects_its_pins() {
        let (dev, cpu) = w8000();
        for pin_red in [true, false] {
            let pinned = OptConfig {
                reduction_gpu: pin_red,
                ..OptConfig::all()
            };
            let r =
                search_pixel_invariant(256, 256, &dev, &cpu, &pinned, &Tuning::default()).unwrap();
            assert_eq!(r.candidates, 32 * 3 * 2);
            assert_eq!(r.opts.reduction_gpu, pin_red, "{}", r.summary_line());
            assert_eq!(
                r.tuning.stage2_gpu_threshold,
                Tuning::default().stage2_gpu_threshold
            );
            // The pinned configuration's effective behavior is in the
            // space, so the winner can only beat or tie it.
            let pinned_s = predict_frame(
                256,
                256,
                &pinned,
                &Tuning::default(),
                Schedule::Monolithic,
                &dev,
                &cpu,
            )
            .unwrap()
            .total_s;
            assert!(r.predicted_s <= pinned_s);
        }
    }

    #[test]
    fn flags_label_is_compact() {
        assert_eq!(flags_label(&OptConfig::none()), "base");
        assert_eq!(flags_label(&OptConfig::all()), "dt+kf+red+vec+bord+oth");
    }
}
