//! The closed-form cost predictor: exact simulated seconds of one frame
//! with zero execution.
//!
//! [`predict_frame`] walks the same commit-ordered dispatch enumeration
//! [`crate::gpu::verify`] produces and replays the monolithic command
//! stream — uploads, kernels, host stages, transfers, `finish` calls — as
//! an ordered `f64` sum, calling the identical [`simgpu::timing`] cost
//! functions the executing [`simgpu::queue::CommandQueue`] would call, in
//! the identical order. Because the executed virtual clock is itself an
//! ordered `f64` sum (`clock += duration` per command) and every duration
//! is a pure function of integer work counters that this module computes
//! in closed form, the prediction is `.to_bits()`-identical to what
//! running the pipeline reports — not merely close. The agreement sweep in
//! `tests/tune.rs` enforces that across all 64 configs, both schedules and
//! multiple device profiles.
//!
//! Banded schedules need no separate model: the megapass commits each
//! sliced kernel as the one record the monolithic schedule would have
//! produced (same name, same merged counters, same [`kernel_time`]), so
//! one replay covers every band height.
//!
//! This module must stay execution-free — no pipelines, no queues, no
//! buffers (a lint rule enforces it). The per-kernel arithmetic recipes
//! below mirror the `charge_n` calls in `crate::gpu::kernels`; global
//! traffic is not duplicated here but taken from the verified access
//! summaries, which the sanitizer audits against executed counters.

use simgpu::cost::{CostCounters, OpCounts};
use simgpu::device::{CpuSpec, DeviceSpec};
use simgpu::kernel::KernelDesc;
use simgpu::timing::{
    bulk_transfer_time, cpu_stage_time, host_memcpy_time, kernel_time, map_transfer_time,
    rect_transfer_time,
};

use crate::gpu::kernels::reduction::{stage1_groups, ReductionStrategy};
use crate::gpu::kernels::KernelTuning;
use crate::gpu::verify::StaticDispatch;
use crate::gpu::{enumerate_access, OptConfig, Schedule, Tuning};
use crate::params::{device_stride, SCALE};

/// One predicted command record: the name the executing queue would give
/// it and its simulated duration.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedCommand {
    /// Command name (kernel name, `"write:padded"`, `"host:reduction"`,
    /// `"finish"`, ...), matching the executed record's name.
    pub name: String,
    /// Simulated duration in seconds.
    pub seconds: f64,
}

/// The predicted frame: total simulated seconds plus the per-command
/// breakdown, in commit order.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted end-to-end simulated seconds (`.to_bits()`-identical to
    /// the executed `RunReport::total_s`).
    pub total_s: f64,
    /// Per-command breakdown in the order the queue would record them.
    pub commands: Vec<PredictedCommand>,
}

/// Frame geometry shared by every recipe, mirroring
/// `gpu::pipeline::FrameResources`.
struct Geom {
    w: usize,
    h: usize,
    /// Vec4-aligned device row stride.
    ws: usize,
    /// Pixels (`w * h`).
    n: usize,
    /// Strided elements (`ws * h`).
    ns: usize,
    /// Padded row pitch (`ws + 2`).
    pw: usize,
    /// Downscaled grid (`⌈w/4⌉ × ⌈h/4⌉`).
    wd: usize,
    hd: usize,
}

impl Geom {
    fn new(w: usize, h: usize) -> Self {
        let ws = device_stride(w);
        Geom {
            w,
            h,
            ws,
            n: w * h,
            ns: ws * h,
            pw: ws + 2,
            wd: w.div_ceil(SCALE),
            hd: h.div_ceil(SCALE),
        }
    }
}

/// The replayed virtual clock: an ordered `f64` sum with the queue's
/// pending-command `finish` semantics.
struct Clock<'a> {
    dev: &'a DeviceSpec,
    total: f64,
    pending: usize,
    commands: Vec<PredictedCommand>,
}

impl<'a> Clock<'a> {
    fn new(dev: &'a DeviceSpec) -> Self {
        Clock {
            dev,
            total: 0.0,
            pending: 0,
            commands: Vec::new(),
        }
    }

    fn push(&mut self, name: &str, seconds: f64) {
        self.commands.push(PredictedCommand {
            name: name.to_string(),
            seconds,
        });
        self.total += seconds;
        self.pending += 1;
    }

    /// `clFinish`: charges the sync overhead only when commands are
    /// pending, exactly like `CommandQueue::finish`.
    fn finish(&mut self) {
        if self.pending > 0 {
            self.commands.push(PredictedCommand {
                name: "finish".to_string(),
                seconds: self.dev.sync_overhead_s,
            });
            self.total += self.dev.sync_overhead_s;
        }
        self.pending = 0;
    }

    /// The pipeline's inter-stage sync: elided when the `others`
    /// optimization removes redundant synchronisation.
    fn sync(&mut self, opts: &OptConfig) {
        if !opts.others {
            self.finish();
        }
    }
}

/// Predicts the exact simulated seconds of one `(w, h)` frame under the
/// given configuration, with zero execution.
///
/// The dispatch list is enumerated by [`enumerate_access`] (validating the
/// schedule exactly as execution would); the inter-kernel command stream
/// is replayed from the same branch structure
/// `GpuPipeline::run_frame_monolithic` executes. The result is
/// `.to_bits()`-identical to `GpuPipeline::run(...).total_s` for both the
/// monolithic and every banded schedule.
///
/// # Errors
/// On unsupported shapes, invalid band heights, or an enumeration that
/// desynchronises from the replay (a bug, surfaced loudly).
pub fn predict_frame(
    w: usize,
    h: usize,
    opts: &OptConfig,
    tuning: &Tuning,
    schedule: Schedule,
    dev: &DeviceSpec,
    cpu: &CpuSpec,
) -> Result<Prediction, String> {
    let dispatches = enumerate_access(w, h, opts, tuning, schedule)?;
    let g = Geom::new(w, h);
    let t = &dev.transfer;
    let mut clk = Clock::new(dev);
    let mut cursor = 0usize;

    let kernel = |clk: &mut Clock, cursor: &mut usize, expect: &str| -> Result<(), String> {
        let d = dispatches.get(*cursor).ok_or_else(|| {
            format!("predictor desync: expected a {expect} dispatch, enumeration exhausted")
        })?;
        *cursor += 1;
        if !d.desc.name.starts_with(expect) {
            return Err(format!(
                "predictor desync: expected {expect}, enumeration has {}",
                d.desc.name
            ));
        }
        let c = kernel_counters(d, &g, opts)?;
        clk.push(&d.desc.name, kernel_time(dev, &c).total_s);
        Ok(())
    };

    // ---- upload -------------------------------------------------------
    if opts.data_transfer {
        // One rect-write pads during the transfer.
        clk.push(
            "rect-write:padded",
            rect_transfer_time(t, g.h as u64, (g.n * 4) as u64),
        );
    } else {
        // Host-side padding, then both matrices through map/unmap.
        let padded_bytes = (g.pw * (g.h + 2) * 4) as u64;
        clk.push("host:padding", host_memcpy_time(cpu, padded_bytes));
        clk.push("map-write:padded", map_transfer_time(t, padded_bytes));
        clk.push("map-write:original", map_transfer_time(t, (g.n * 4) as u64));
    }
    clk.sync(opts);

    // ---- downscale ----------------------------------------------------
    kernel(&mut clk, &mut cursor, "downscale")?;
    clk.sync(opts);

    // ---- upscale border -----------------------------------------------
    if opts.border_gpu && w >= tuning.border_gpu_min_width {
        for _ in 0..4 {
            kernel(&mut clk, &mut cursor, "upscale_border")?;
        }
        clk.sync(opts);
    } else {
        let down_bytes = (g.wd * g.hd * 4) as u64;
        if opts.data_transfer {
            clk.push("read:down", bulk_transfer_time(t, down_bytes));
        } else {
            clk.push("map-read:down", map_transfer_time(t, down_bytes));
        }
        clk.push(
            "host:upscale_border",
            cpu_stage_time(cpu, &border_host_counters(w, h)),
        );
        let bytes = border_elems(w, h) * 4;
        if opts.data_transfer {
            clk.push("write:up_border", bulk_transfer_time(t, bytes));
        } else {
            clk.push("map-write:up_border", map_transfer_time(t, bytes));
        }
        // No sync: the CPU border path ends on the write-back.
    }

    // ---- upscale center -----------------------------------------------
    if g.wd > 1 && g.hd > 1 {
        kernel(&mut clk, &mut cursor, "upscale_center")?;
        clk.sync(opts);
    }

    // ---- Sobel --------------------------------------------------------
    kernel(&mut clk, &mut cursor, "sobel")?;
    clk.sync(opts);

    // ---- reduction ----------------------------------------------------
    if opts.reduction_gpu {
        kernel(&mut clk, &mut cursor, "reduction_stage1")?;
        clk.sync(opts);
        let groups = stage1_groups(g.ns);
        if groups > tuning.stage2_gpu_threshold {
            kernel(&mut clk, &mut cursor, "reduction_stage2")?;
            clk.sync(opts);
            if opts.data_transfer {
                clk.push("read:reduction_out", bulk_transfer_time(t, 4));
            } else {
                clk.push("map-read:reduction_out", map_transfer_time(t, 4));
            }
        } else {
            let bytes = (groups * 4) as u64;
            if opts.data_transfer {
                clk.push("read:partials", bulk_transfer_time(t, bytes));
            } else {
                clk.push("map-read:partials", map_transfer_time(t, bytes));
            }
            let mut c = CostCounters::new();
            c.charge_ops_n(&OpCounts::ZERO.adds(1), groups as u64);
            c.global_read_scalar = groups as u64 * 4;
            clk.push("host:reduction_stage2", cpu_stage_time(cpu, &c));
        }
    } else {
        let bytes = (g.ns * 4) as u64;
        if opts.data_transfer {
            clk.push("read:pEdge", bulk_transfer_time(t, bytes));
        } else {
            clk.push("map-read:pEdge", map_transfer_time(t, bytes));
        }
        let mut c = CostCounters::new();
        c.charge_ops_n(&OpCounts::ZERO.adds(1), g.ns as u64);
        c.global_read_scalar = g.ns as u64 * 4;
        clk.push("host:reduction", cpu_stage_time(cpu, &c));
    }

    // ---- sharpening tail ----------------------------------------------
    if opts.kernel_fusion {
        kernel(&mut clk, &mut cursor, "sharpness")?;
        clk.sync(opts);
    } else {
        kernel(&mut clk, &mut cursor, "perror")?;
        clk.sync(opts);
        kernel(&mut clk, &mut cursor, "preliminary")?;
        clk.sync(opts);
        kernel(&mut clk, &mut cursor, "overshoot")?;
        clk.sync(opts);
    }

    // ---- readback -----------------------------------------------------
    clk.finish();
    if g.ws == g.w {
        let bytes = (g.n * 4) as u64;
        if opts.data_transfer {
            clk.push("read:final", bulk_transfer_time(t, bytes));
        } else {
            clk.push("map-read:final", map_transfer_time(t, bytes));
        }
    } else if opts.data_transfer {
        clk.push(
            "rect-read:final",
            rect_transfer_time(t, g.h as u64, (g.n * 4) as u64),
        );
    } else {
        clk.push("map-read:final", map_transfer_time(t, (g.ns * 4) as u64));
    }

    if cursor != dispatches.len() {
        return Err(format!(
            "predictor desync: {} of {} dispatches consumed",
            cursor,
            dispatches.len()
        ));
    }
    Ok(Prediction {
        total_s: clk.total,
        commands: clk.commands,
    })
}

/// Reconstructs the merged cost counters of one dispatch: global traffic
/// from the verified access summaries, arithmetic/barriers/divergence/LDS
/// from the closed-form per-kernel recipes below.
fn kernel_counters(d: &StaticDispatch, g: &Geom, opts: &OptConfig) -> Result<CostCounters, String> {
    let mut c = CostCounters::new();
    for s in &d.slices {
        c.global_read_scalar += s.charged.read_scalar;
        c.global_read_vector += s.charged.read_vector;
        c.global_write_scalar += s.charged.write_scalar;
        c.global_write_vector += s.charged.write_vector;
    }
    c.groups = d.desc.total_groups() as u64;
    c.group_lanes = d.desc.group_lanes() as u64;
    kernel_work(&d.desc, g, opts, &mut c)?;
    Ok(c)
}

/// The non-traffic half of each kernel's counters, matching the
/// `charge_n` / `barrier` / `divergent` / LDS calls of the kernel bodies
/// in `crate::gpu::kernels` exactly.
fn kernel_work(
    desc: &KernelDesc,
    g: &Geom,
    opts: &OptConfig,
    c: &mut CostCounters,
) -> Result<(), String> {
    let tune = KernelTuning {
        others: opts.others,
    };
    let idx = tune.idx_ops();
    let cd = tune.clamp_divergence();
    let (w, h) = (g.w as u64, g.h as u64);
    let n = g.n as u64;
    let (wd, hd) = (g.wd as u64, g.hd as u64);
    // Per-item bundles of the row/column border kernels.
    let border_item = OpCounts::ZERO.muls(8).adds(4).cmps(2).plus(&idx);
    // Body/border pixel counts of the w×h stencil kernels.
    let n_body = w.saturating_sub(2) * h.saturating_sub(2);
    let n_border = n - n_body;
    match desc.name.as_str() {
        "downscale" => {
            // Full 4×4 blocks vs ragged edge blocks: a block of k samples
            // charges k-1 adds, one mul, and the index recipe.
            let n_full = (g.w / SCALE) as u64 * (g.h / SCALE) as u64;
            let n_tail = wd * hd - n_full;
            let tail_adds = (n - 16 * n_full) - n_tail;
            c.charge_ops_n(&OpCounts::ZERO.adds(15).muls(1).plus(&idx), n_full);
            c.charge_ops_n(&OpCounts::ZERO.adds(1), tail_adds);
            c.charge_ops_n(&OpCounts::ZERO.muls(1).plus(&idx), n_tail);
        }
        "upscale_border_top" | "upscale_border_bottom" => {
            if wd == 1 {
                // Single downscaled column: one replicating item.
                c.charge_ops_n(&OpCounts::ZERO.cmps(2).plus(&idx), 1);
            } else {
                c.charge_ops_n(&border_item, wd - 1);
                // The two corner items each take their extra branch.
                c.divergent_branches += 2;
            }
        }
        "upscale_border_left" | "upscale_border_right" => {
            c.charge_ops_n(&border_item, hd - 1);
        }
        "upscale_center" => {
            let n_vals = w.saturating_sub(4) * h.saturating_sub(4);
            let n_blocks = (wd - 1) * (hd - 1);
            c.charge_ops_n(&OpCounts::ZERO.muls(6).adds(3), n_vals);
            c.charge_ops_n(&idx, n_blocks);
        }
        "upscale_center_vec4" => {
            let n_vals = w.saturating_sub(4) * h.saturating_sub(4);
            let n_threads = ((g.wd - 1).div_ceil(4) * (g.hd - 1)) as u64;
            c.charge_ops_n(&OpCounts::ZERO.muls(6).adds(3), n_vals);
            c.charge_ops_n(&OpCounts::ZERO.cmps(4).plus(&idx), n_threads);
        }
        "sobel" => {
            c.charge_ops_n(&OpCounts::ZERO.adds(11).muls(4).cmps(2).plus(&idx), n_body);
            c.charge_ops_n(&OpCounts::ZERO.cmps(4), n);
            c.divergent_branches += n_border * cd;
        }
        "sobel_vec4" => {
            let n_threads = (g.ws / 4 * g.h) as u64;
            c.charge_ops_n(
                &OpCounts::ZERO.adds(44).muls(16).cmps(12).plus(&idx),
                n_threads,
            );
        }
        "perror" => {
            c.charge_ops_n(&OpCounts::ZERO.adds(1).plus(&idx), n);
        }
        "preliminary" => {
            c.charge_ops_n(
                &OpCounts::ZERO
                    .divs(1)
                    .adds(2)
                    .pows(1)
                    .muls(2)
                    .cmps(2)
                    .plus(&idx),
                n,
            );
            c.divergent_branches += n * cd;
        }
        "overshoot" => {
            c.charge_ops_n(&OpCounts::ZERO.cmps(20).muls(1).adds(1).plus(&idx), n_body);
            c.charge_ops_n(&OpCounts::ZERO.cmps(4), n_border);
            c.divergent_branches += (2 * n_body + n_border) * cd;
        }
        "sharpness" => {
            c.charge_ops_n(
                &OpCounts::ZERO
                    .adds(4)
                    .divs(1)
                    .pows(1)
                    .muls(3)
                    .cmps(24)
                    .plus(&idx),
                n_body,
            );
            c.charge_ops_n(
                &OpCounts::ZERO.adds(3).divs(1).pows(1).muls(2).cmps(6),
                n_border,
            );
            c.divergent_branches += (2 * n_body + n_border) * cd;
        }
        "sharpness_vec4" => {
            let n_threads = (g.ws / 4 * g.h) as u64;
            c.charge_ops_n(
                &OpCounts::ZERO
                    .adds(16)
                    .divs(4)
                    .pows(4)
                    .muls(12)
                    .cmps(104)
                    .plus(&idx),
                n_threads,
            );
            c.divergent_branches += n_threads * cd;
        }
        "reduction_stage1" | "reduction_stage1_unroll1" | "reduction_stage1_unroll2" => {
            let strategy = match desc.name.as_str() {
                "reduction_stage1" => ReductionStrategy::NoUnroll,
                "reduction_stage1_unroll1" => ReductionStrategy::UnrollOne,
                _ => ReductionStrategy::UnrollTwo,
            };
            stage1_work(strategy, c.groups, c);
        }
        "reduction_stage2" => {
            stage2_work(stage1_groups(g.ns) as u64, c);
        }
        other => return Err(format!("predictor has no recipe for kernel {other}")),
    }
    Ok(())
}

/// Per-group stage-1 reduction work, identical for full and ragged
/// groups: the add-during-load pass charges its full per-thread recipe
/// unconditionally, and the tree shape depends only on the strategy.
pub(super) fn stage1_work(strategy: ReductionStrategy, groups: u64, c: &mut CostCounters) {
    // 128 threads × (8 adds + 8 cmps + 1 mul) for the load pass, plus 127
    // tree adds (126 half-tree + 1 combine for UnrollTwo).
    c.charge_ops_n(&OpCounts::ZERO.adds(1151).cmps(1024).muls(128), groups);
    let (barriers, divergent, local) = match strategy {
        // Load barrier + one per tree step (64..1).
        ReductionStrategy::NoUnroll => (8, 0, 2040),
        // Load barrier only; the last wavefront diverges lock-step.
        ReductionStrategy::UnrollOne => (1, 6, 2040),
        // Load barrier + the halves-combining barrier; both wavefronts
        // diverge through their half-trees.
        ReductionStrategy::UnrollTwo => (2, 12, 2032),
    };
    c.barriers += barriers * groups;
    c.divergent_branches += divergent * groups;
    c.local_bytes += local * groups;
    c.local_alloc_bytes = c.local_alloc_bytes.max(512);
}

/// Stage-2 reduction work for one 128-lane group strided-summing
/// `n_partials` stage-1 partials.
pub(super) fn stage2_work(n_partials: u64, c: &mut CostCounters) {
    let ptl = n_partials.div_ceil(128);
    c.charge_ops_n(&OpCounts::ZERO.adds(ptl + 7).cmps(ptl), 128);
    c.barriers += 2;
    c.divergent_branches += 6;
    c.local_bytes += 2040;
    c.local_alloc_bytes = c.local_alloc_bytes.max(512);
}

/// Host-side cost counters of the CPU upscale-border stage, the closed
/// form of `cpu::stages::upscale_border_into`'s counted loops.
pub(super) fn border_host_counters(w: usize, h: usize) -> CostCounters {
    let (wd, hd) = (w.div_ceil(SCALE), h.div_ceil(SCALE));
    let mut interp = 0u64;
    let mut copied = 0u64;
    // Two horizontal border-row passes.
    for _ in 0..2 {
        if wd >= 2 {
            for bi in 0..wd - 1 {
                interp += (w as i64 - 4 - 4 * bi as i64).clamp(0, 4) as u64;
            }
            copied += 4;
        } else {
            copied += w as u64;
        }
        copied += w as u64; // companion-row copy
    }
    // Two vertical border-column passes over body rows 2 ..= h-3.
    for _ in 0..2 {
        for bj in 0..hd.saturating_sub(1) {
            interp += (h as i64 - 4 - 4 * bj as i64).clamp(0, 4) as u64;
        }
        copied += (2..h.saturating_sub(2)).len() as u64; // companion-column copy
    }
    let mut c = CostCounters::new();
    c.charge_ops_n(&OpCounts::ZERO.muls(2).adds(1), interp);
    c.global_read_scalar = (interp * 2 + copied) * 4;
    c.global_write_scalar = (interp + copied + 8) * 4;
    c
}

/// Elements the CPU border path writes back to the device: the four
/// border rows and the four border columns of the body rows, with
/// adjacent duplicates skipped for tiny shapes.
fn border_elems(w: usize, h: usize) -> u64 {
    let mut elems = 0u64;
    let rows = [0, 1, h - 2, h - 1];
    let mut prev = usize::MAX;
    for &y in &rows {
        if y == prev {
            continue;
        }
        prev = y;
        elems += w as u64;
    }
    let cols = [0, 1, w - 2, w - 1];
    for _y in 2..=h.saturating_sub(3) {
        let mut prev = usize::MAX;
        for &x in &cols {
            if x == prev {
                continue;
            }
            prev = x;
            elems += 1;
        }
    }
    elems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn border_elems_counts_tiny_shapes() {
        // 3×3: rows {0,1,2} cover everything; the column loop is empty.
        assert_eq!(border_elems(3, 3), 9);
        // 8×8: rows {0,1,6,7} = 32, columns {0,1,6,7} on rows 2..=5 = 16.
        assert_eq!(border_elems(8, 8), 48);
    }

    #[test]
    fn border_host_counters_match_multiple_of_four_closed_form() {
        // For multiple-of-4 shapes every interpolation window is full:
        // 2 row passes × 15 windows × 4 + 2 column passes × 15 × 4 = 240.
        let c = border_host_counters(64, 64);
        assert_eq!(c.ops.mul, 240 * 2);
        assert_eq!(c.ops.add, 240);
    }

    #[test]
    fn predict_rejects_tiny_shapes() {
        let dev = DeviceSpec::firepro_w8000();
        let cpu = CpuSpec::core_i5_3470();
        assert!(predict_frame(
            2,
            2,
            &OptConfig::all(),
            &Tuning::default(),
            Schedule::Monolithic,
            &dev,
            &cpu
        )
        .is_err());
    }

    #[test]
    fn prediction_total_is_the_ordered_command_sum() {
        let dev = DeviceSpec::firepro_w8000();
        let cpu = CpuSpec::core_i5_3470();
        let p = predict_frame(
            256,
            256,
            &OptConfig::all(),
            &Tuning::default(),
            Schedule::Monolithic,
            &dev,
            &cpu,
        )
        .unwrap();
        let mut sum = 0.0f64;
        for cmd in &p.commands {
            sum += cmd.seconds;
        }
        assert_eq!(sum.to_bits(), p.total_s.to_bits());
        assert!(p.total_s > 0.0);
    }
}
