//! Sharpen-as-a-service: synthetic traffic, a sharded plan cache, and a
//! coalescing scheduler with admission control (ROADMAP north-star item:
//! the request broker in front of the pipeline).
//!
//! The module splits along the runtime/broker seam:
//!
//! * [`traffic`] — deterministic synthetic request streams (Zipf shapes,
//!   bursty arrivals, priority classes) from one seed;
//! * [`cache`] — the sharded, LRU-evicting [`PipelinePlan`]
//!   (crate::gpu::PipelinePlan) cache that amortises plan preparation
//!   across compatible requests;
//! * [`scheduler`] — the single-threaded event loop: bounded per-class
//!   queues, model-based shed-on-overload admission, shape-coalescing
//!   batches, and latency accounting in simulated seconds (the honest
//!   currency on a 1-core host — see the scheduler docs).
//!
//! Observation-only invariant: nothing in this module charges simulated
//! time or mutates device state — all cost flows through the kernels a
//! [`PipelinePlan`](crate::gpu::PipelinePlan) runs, and the scheduler
//! only *reads* the resulting component times (`lint_invariants`
//! enforces this).
//!
//! ```
//! use sharpness_core::gpu::{GpuPipeline, OptConfig};
//! use sharpness_core::params::SharpnessParams;
//! use sharpness_core::service::{generate_requests, ServiceConfig, SharpenService, TrafficConfig};
//! use simgpu::context::Context;
//! use simgpu::device::DeviceSpec;
//!
//! let cfg = TrafficConfig { requests: 12, ..TrafficConfig::default() };
//! let requests = generate_requests(&cfg);
//! let ctx = Context::new(DeviceSpec::firepro_w8000());
//! let pipe = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all());
//! let report = SharpenService::new(pipe, ServiceConfig::default())
//!     .serve(&requests)
//!     .unwrap();
//! assert_eq!(report.served + report.shed, 12);
//! ```

pub mod cache;
pub mod scheduler;
pub mod traffic;

pub use cache::{CacheStats, PlanCache};
pub use scheduler::{ClassReport, ServiceConfig, ServiceReport, SharpenService};
pub use traffic::{generate_requests, Priority, Request, TrafficConfig};
